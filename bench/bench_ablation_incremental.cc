// Micro-benchmarks (google-benchmark) for the O(m) incremental objective
// updates of Corollary 1 against O(|C| m) recomputation from scratch, the
// closed-form expected distances against sample integration, and the cost
// of one UCPC relocation pass. These quantify the constants behind
// Proposition 5's complexity claim.
#include <benchmark/benchmark.h>

#include <vector>

#include "clustering/cluster_stats.h"
#include "clustering/ucpc.h"
#include "common/rng.h"
#include "data/uncertainty_model.h"
#include "uncertain/expected_distance.h"
#include "uncertain/moments.h"
#include "uncertain/sample_store.h"

namespace {

using namespace uclust;  // NOLINT: bench brevity
using clustering::ClusterMoments;
using uncertain::MomentMatrix;

MomentMatrix RandomMoments(std::size_t n, std::size_t m, uint64_t seed) {
  common::Rng rng(seed);
  MomentMatrix mm(n, m);
  std::vector<double> mean(m), mu2(m), var(m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      mean[j] = rng.Uniform(-2.0, 2.0);
      var[j] = rng.Uniform(0.01, 0.5);
      mu2[j] = var[j] + mean[j] * mean[j];
    }
    mm.AppendRow(mean, mu2, var);
  }
  return mm;
}

// Corollary 1: evaluate J(C + o) in O(m) from the cluster aggregates.
void BM_IncrementalObjectiveAfterAdd(benchmark::State& state) {
  const std::size_t cluster_size = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const MomentMatrix mm = RandomMoments(cluster_size + 1, m, 42);
  ClusterMoments c(m);
  for (std::size_t i = 0; i < cluster_size; ++i) c.Add(mm, i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::ObjectiveAfterAdd(
        clustering::ObjectiveKind::kUcpc, c, mm, cluster_size));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalObjectiveAfterAdd)
    ->Args({16, 8})
    ->Args({256, 8})
    ->Args({4096, 8})
    ->Args({256, 64});

// The naive alternative: rebuild the aggregates of C + o from scratch.
void BM_RecomputeObjectiveAfterAdd(benchmark::State& state) {
  const std::size_t cluster_size = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const MomentMatrix mm = RandomMoments(cluster_size + 1, m, 42);
  for (auto _ : state) {
    ClusterMoments c(m);
    for (std::size_t i = 0; i <= cluster_size; ++i) c.Add(mm, i);
    benchmark::DoNotOptimize(clustering::UcpcObjective(c));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RecomputeObjectiveAfterAdd)
    ->Args({16, 8})
    ->Args({256, 8})
    ->Args({4096, 8})
    ->Args({256, 64});

// Closed-form ED^ (Lemma 3) vs sample-integrated estimation: the efficiency
// cornerstone separating the fast from the slow algorithm group.
void BM_ClosedFormExpectedDistance(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::vector<uncertain::PdfPtr> da, db;
  for (std::size_t j = 0; j < m; ++j) {
    da.push_back(data::MakeUncertainPdf(data::PdfFamily::kNormal,
                                        0.1 * static_cast<double>(j), 0.3));
    db.push_back(data::MakeUncertainPdf(data::PdfFamily::kUniform,
                                        -0.1 * static_cast<double>(j), 0.2));
  }
  const uncertain::UncertainObject a(std::move(da));
  const uncertain::UncertainObject b(std::move(db));
  for (auto _ : state) {
    benchmark::DoNotOptimize(uncertain::ExpectedSquaredDistance(a, b));
  }
}
BENCHMARK(BM_ClosedFormExpectedDistance)->Arg(4)->Arg(16)->Arg(64);

void BM_SampledExpectedDistance(benchmark::State& state) {
  const std::size_t m = 16;
  const int samples = static_cast<int>(state.range(0));
  std::vector<uncertain::UncertainObject> objs;
  for (int i = 0; i < 2; ++i) {
    std::vector<uncertain::PdfPtr> dims;
    for (std::size_t j = 0; j < m; ++j) {
      dims.push_back(
          data::MakeUncertainPdf(data::PdfFamily::kNormal, 0.0, 0.3));
    }
    objs.emplace_back(std::move(dims));
  }
  const uncertain::ResidentSampleStore store(objs, samples, 7);
  const uncertain::SampleView cache = store.view();
  const std::vector<double> y(m, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.ExpectedSquaredDistanceToPoint(0, y));
  }
}
BENCHMARK(BM_SampledExpectedDistance)->Arg(8)->Arg(32)->Arg(128);

// One full UCPC run on n objects: the O(I k n m) online phase.
void BM_UcpcRun(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const MomentMatrix mm = RandomMoments(n, 8, 99);
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        clustering::Ucpc::RunOnMoments(mm, k, seed++));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UcpcRun)->Args({1000, 5})->Args({4000, 5})->Args({16000, 5});

}  // namespace
// main() is provided by benchmark::benchmark_main.
