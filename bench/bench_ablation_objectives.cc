// Ablation: numeric verification of the paper's objective-function
// identities over random clusters, plus an end-to-end ablation of the
// local-search objective (UCPC's J vs the UK-means J_UK run through the
// *same* relocation engine) isolating the value of the variance term.
//
//   Proposition 2:  J_MM(C) = J_UK(C) / |C|
//   Proposition 3:  J^(C)   = 2 J_UK(C)
//   Theorem 2:      sigma^2(U-centroid) = |C|^-2 sum_i sigma^2(o_i)
//   Theorem 3:      J(C) = |C|^-1 sum_i sigma^2(o_i) + J_UK(C)
#include <cmath>
#include <cstdio>
#include <vector>

#include "clustering/cluster_stats.h"
#include "clustering/local_search.h"
#include "common/cli.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"
#include "uncertain/moments.h"

namespace {
using namespace uclust;  // NOLINT: bench brevity
using clustering::ClusterMoments;
using uncertain::MomentMatrix;

MomentMatrix RandomCluster(std::size_t n, std::size_t m, common::Rng* rng) {
  MomentMatrix mm(n, m);
  std::vector<double> mean(m), mu2(m), var(m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto family = static_cast<data::PdfFamily>(rng->UniformInt(0, 2));
      const auto pdf = data::MakeUncertainPdf(family, rng->Uniform(-3, 3),
                                              rng->Uniform(0.05, 1.0));
      mean[j] = pdf->mean();
      mu2[j] = pdf->second_moment();
      var[j] = pdf->variance();
    }
    mm.AppendRow(mean, mu2, var);
  }
  return mm;
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const int trials = static_cast<int>(args.GetInt("trials", 200));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  common::Rng rng(seed);

  std::printf("=== Ablation A: objective-function identities over %d random "
              "clusters ===\n",
              trials);
  double worst_p2 = 0.0, worst_p3 = 0.0, worst_t2 = 0.0, worst_t3 = 0.0;
  for (int t = 0; t < trials; ++t) {
    const std::size_t n = 2 + rng.Index(40);
    const std::size_t m = 1 + rng.Index(8);
    const MomentMatrix mm = RandomCluster(n, m, &rng);
    ClusterMoments c(m);
    double sum_var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      c.Add(mm, i);
      sum_var += mm.total_variance(i);
    }
    const double juk = clustering::UkmeansObjective(c);
    const double jmm = clustering::MmvarObjective(c);
    const double j = clustering::UcpcObjective(c);
    const double dn = static_cast<double>(n);
    // Proposition 2.
    worst_p2 = std::max(worst_p2, std::fabs(jmm - juk / dn) / (1.0 + juk));
    // Proposition 3 (J^ via the mixture moments = 2 J_UK).
    double j_hat = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < m; ++d) {
        const double mu_mm = c.sum_mu()[d] / dn;
        const double mu2_mm = c.sum_mu2()[d] / dn;
        j_hat +=
            mm.second_moment(i)[d] - 2.0 * mm.mean(i)[d] * mu_mm + mu2_mm;
      }
    }
    worst_p3 =
        std::max(worst_p3, std::fabs(j_hat - 2.0 * juk) / (1.0 + j_hat));
    // Theorem 2 (U-centroid variance via aggregates).
    const double ucentroid_var = common::Sum(c.sum_var()) / (dn * dn);
    worst_t2 = std::max(
        worst_t2,
        std::fabs(ucentroid_var - sum_var / (dn * dn)) / (1.0 + ucentroid_var));
    // Theorem 3 decomposition.
    worst_t3 =
        std::max(worst_t3, std::fabs(j - (sum_var / dn + juk)) / (1.0 + j));
  }
  std::printf("  Prop 2  max rel deviation: %.3e\n", worst_p2);
  std::printf("  Prop 3  max rel deviation: %.3e\n", worst_p3);
  std::printf("  Thm 2   max rel deviation: %.3e\n", worst_t2);
  std::printf("  Thm 3   max rel deviation: %.3e\n", worst_t3);

  std::printf("\n=== Ablation B: same local-search engine, different "
              "objective (value of the variance term) ===\n");
  std::printf("%-10s %-12s | %10s %10s %10s\n", "dataset", "pdf", "F(J_UK)",
              "F(J_MM)", "F(J UCPC)");
  for (const char* name : {"Iris", "Glass", "Ecoli"}) {
    const auto source = data::MakeBenchmarkDataset(name, seed).ValueOrDie();
    for (auto family : {data::PdfFamily::kNormal,
                        data::PdfFamily::kExponential}) {
      data::UncertaintyParams up;
      up.family = family;
      up.min_scale_frac = 0.05;
      up.max_scale_frac = 0.20;  // pronounced uncertainty
      const auto ds = data::UncertaintyModel(source, up, seed + 2).Uncertain();
      double f[3] = {0.0, 0.0, 0.0};
      const clustering::ObjectiveKind kinds[3] = {
          clustering::ObjectiveKind::kUkmeans,
          clustering::ObjectiveKind::kMmvar,
          clustering::ObjectiveKind::kUcpc};
      const int runs = 5;
      for (int r = 0; r < runs; ++r) {
        for (int a = 0; a < 3; ++a) {
          clustering::LocalSearchParams params;
          params.objective = kinds[a];
          common::Rng ls_rng(seed + 100 + r);
          const auto out = clustering::RunLocalSearch(
              ds.moments(), source.num_classes, params, &ls_rng);
          f[a] += eval::FMeasure(ds.labels(), out.labels);
        }
      }
      std::printf("%-10s %-12s | %10.3f %10.3f %10.3f\n", name,
                  data::PdfFamilyName(family), f[0] / runs, f[1] / runs,
                  f[2] / runs);
    }
  }
  std::printf("\nIdentities should hold to ~1e-12; Ablation B shows how the "
              "variance-aware J behaves\nunder identical search dynamics "
              "(the paper's Section 3 and 4 arguments).\n");
  return 0;
}
