// Ablation: pruning power of the basic-UK-means accelerators (Section 2.2).
// For each strategy, reports the number of exact sample-integrated expected
// distance computations, the fraction saved w.r.t. the unpruned baseline,
// the online runtime, and verifies that the final partitions are identical
// (the pruners are exact).
//
// Flags: --n=2000 --k=5,10,20 --samples=32 --seed=1 --threads=1
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "clustering/basic_ukmeans.h"
#include "common/cli.h"
#include "common/csv.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "engine/engine.h"

namespace {
using namespace uclust;  // NOLINT: bench brevity
}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.GetInt("n", 2000));
  const int samples = static_cast<int>(args.GetInt("samples", 32));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  std::vector<int> ks;
  for (const std::string& tok :
       common::SplitString(args.GetString("k", "5,10,20"), ',')) {
    ks.push_back(std::stoi(tok));
  }

  data::MixtureParams mix;
  mix.n = n;
  mix.dims = 6;
  mix.classes = ks.back();
  const auto source = data::MakeGaussianMixture(mix, seed, "pruning");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  const auto ds = data::UncertaintyModel(source, up, seed + 1).Uncertain();
  const engine::Engine eng(
      bench::EngineConfigFromFlagsOrDie(args, "ablation pruning"));

  struct Config {
    const char* label;
    clustering::PruningStrategy strategy;
    bool shift;
  };
  const Config configs[] = {
      {"bUK-means (none)", clustering::PruningStrategy::kNone, false},
      {"MinMax-BB", clustering::PruningStrategy::kMinMaxBB, false},
      {"MinMax-BB+shift", clustering::PruningStrategy::kMinMaxBB, true},
      {"VDBiP", clustering::PruningStrategy::kVoronoi, false},
      {"VDBiP+shift", clustering::PruningStrategy::kVoronoi, true},
  };

  std::printf("=== Ablation: pruning power (n=%zu, m=6, S=%d) ===\n\n", n,
              samples);
  for (int k : ks) {
    std::printf("--- k = %d ---\n", k);
    std::printf("%-20s %14s %10s %12s %10s\n", "strategy", "ED evals",
                "saved", "online_ms", "same part.");
    int64_t baseline_evals = 0;
    std::vector<int> baseline_labels;
    for (const Config& cfg : configs) {
      clustering::BasicUkmeans::Params p;
      p.samples = samples;
      p.pruning = cfg.strategy;
      p.cluster_shift = cfg.shift;
      clustering::BasicUkmeans algo(p);
      algo.set_engine(eng);
      const auto r = algo.Cluster(ds, k, seed + 3);
      if (cfg.strategy == clustering::PruningStrategy::kNone) {
        baseline_evals = r.ed_evaluations;
        baseline_labels = r.labels;
      }
      const double saved =
          baseline_evals > 0
              ? 100.0 * (1.0 - static_cast<double>(r.ed_evaluations) /
                                   static_cast<double>(baseline_evals))
              : 0.0;
      std::printf("%-20s %14lld %9.1f%% %12.2f %10s\n", cfg.label,
                  static_cast<long long>(r.ed_evaluations), saved,
                  r.online_ms,
                  r.labels == baseline_labels ? "yes" : "NO!");
    }
    std::printf("\n");
  }
  std::printf("Expected shape (paper/Section 2.2 literature): both pruners "
              "avoid most exact ED\nintegrations; cluster-shift tightens "
              "further; results stay bit-identical.\n");
  return 0;
}
