// CK-means smoke: proves the bound-pruned fast path is exact AND cheaper,
// and that the mini-batch epoch-streaming driver clusters a dataset whose
// resident moment columns exceed the process's address-space cap. CI greps
// the machine-readable CKMEANS RESULT= marker (same scheme as
// bench_pairwise_smoke / bench_moments_smoke), so an unrelated crash cannot
// masquerade as an expected outcome. Modes:
//
//   --mode=compare   -> ingest the dataset's moments, run the direct
//                       UK-means sweeps and the reduced+bounded CK-means
//                       path on the same seed, and require bit-identical
//                       labels/objective/iterations AND bounded
//                       center_distance_evals <= max_eval_ratio x the
//                       direct count. CKMEANS RESULT=OK only when both the
//                       exactness and the pruning-win gates hold.
//   --mode=resident  -> the classic flat moment columns ((3m + 1) n
//                       doubles) followed by the in-memory run. Under CI's
//                       `ulimit -v` cap this is expected to exhaust the
//                       address space: CKMEANS RESULT=OOM (exit 3).
//   --mode=minibatch -> CkMeans::ClusterFile with a forced mini-batch size:
//                       epoch streaming re-reads the file once per
//                       iteration holding only O(n) labels/bounds plus one
//                       batch of moments — expected to finish under the
//                       same cap: CKMEANS RESULT=OK.
//
// Flags:
//   --dataset=PATH       binary dataset file                   (required)
//   --mode=compare|resident|minibatch                  (default compare)
//   --k=K                clusters                              (default 8)
//   --max_iters=I        Lloyd iteration cap                   (default 30)
//   --minibatch=B        rows per epoch batch (minibatch mode) (default 8192)
//   --max_eval_ratio=X   compare-mode pruning gate             (default 0.5)
//   --seed=S             clustering seed                       (default 1)
//   --threads=N --block_size=B                                 engine knobs
#include <cstdint>
#include <cstdio>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "clustering/ckmeans.h"
#include "clustering/ukmeans.h"
#include "common/cli.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "io/ingest.h"
#include "uncertain/moment_store.h"

namespace {

using namespace uclust;  // NOLINT: bench brevity

constexpr const char* kFail = "CKMEANS RESULT=FAIL\n";

int Run(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::string path = args.GetString("dataset", "");
  if (path.empty()) {
    std::fprintf(stderr, "ckmeans smoke: --dataset=PATH is required\n");
    return 1;
  }
  const std::string mode = args.GetString("mode", "compare");
  const int k = static_cast<int>(args.GetInt("k", 8));
  const int max_iters = static_cast<int>(args.GetInt("max_iters", 30));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const engine::Engine eng(
      bench::EngineConfigFromFlagsOrDie(args, "ckmeans smoke"));

  std::printf("[ckmeans smoke] mode=%s dataset=%s k=%d max_iters=%d\n",
              mode.c_str(), path.c_str(), k, max_iters);

  if (mode == "minibatch") {
    clustering::CkMeans::Params p;
    p.max_iters = max_iters;
    p.minibatch_size =
        static_cast<std::size_t>(args.GetInt("minibatch", 8192));
    common::Stopwatch sw;
    auto r = clustering::CkMeans::ClusterFile(path, k, seed, p, eng);
    if (!r.ok()) {
      std::fprintf(stderr, "ckmeans smoke: %s\n",
                   r.status().ToString().c_str());
      std::printf(kFail);
      return 1;
    }
    const clustering::ClusteringResult& out = r.ValueOrDie();
    std::printf("[ckmeans smoke] epoch-streamed n=%zu: objective=%.4f "
                "iterations=%d evals=%lld skipped=%lld in %.1fms, "
                "rss=%ld KB\n",
                out.labels.size(), out.objective, out.iterations,
                static_cast<long long>(out.center_distance_evals),
                static_cast<long long>(out.bounds_skipped), sw.ElapsedMs(),
                bench::PeakRssKb());
    if (out.labels.empty()) {
      std::printf(kFail);
      return 1;
    }
    std::printf("CKMEANS RESULT=OK mode=minibatch n=%zu batch=%zu\n",
                out.labels.size(), p.minibatch_size);
    return 0;
  }

  // compare / resident both start from fully ingested resident columns.
  common::Stopwatch sw;
  io::MomentStoreOptions options;
  options.backend = io::MomentBackendChoice::kResident;
  auto opened = io::StreamMomentStoreFromFile(path, eng, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "ckmeans smoke: %s\n",
                 opened.status().ToString().c_str());
    std::printf(kFail);
    return 1;
  }
  const uncertain::MomentStorePtr store = std::move(opened).ValueOrDie();
  const uncertain::MomentView mm = store->view();
  std::printf("[ckmeans smoke] resident moments n=%zu m=%zu built in "
              "%.1fms, rss=%ld KB\n",
              mm.size(), mm.dims(), sw.ElapsedMs(), bench::PeakRssKb());
  if (k < 1 || mm.size() < static_cast<std::size_t>(k)) {
    std::fprintf(stderr, "ckmeans smoke: n=%zu smaller than k=%d\n",
                 mm.size(), k);
    std::printf(kFail);
    return 1;
  }

  if (mode == "resident") {
    clustering::CkMeans::Params p;
    p.max_iters = max_iters;
    sw.Reset();
    const auto out = clustering::CkMeans::RunOnMoments(mm, k, seed, p, eng);
    std::printf("[ckmeans smoke] resident run: objective=%.4f iterations=%d "
                "in %.1fms\n",
                out.objective, out.iterations, sw.ElapsedMs());
    std::printf("CKMEANS RESULT=OK mode=resident n=%zu\n", mm.size());
    return 0;
  }
  if (mode != "compare") {
    std::fprintf(stderr,
                 "ckmeans smoke: --mode must be compare, resident, or "
                 "minibatch\n");
    return 1;
  }

  const double max_eval_ratio = args.GetDouble("max_eval_ratio", 0.5);
  clustering::Ukmeans::Params dp;
  dp.max_iters = max_iters;
  sw.Reset();
  const auto direct =
      clustering::Ukmeans::RunOnMoments(mm, k, seed, dp, eng);
  const double direct_ms = sw.ElapsedMs();

  clustering::CkMeans::Params cp;
  cp.max_iters = max_iters;  // reduction + bounds on by default
  sw.Reset();
  const auto fast = clustering::CkMeans::RunOnMoments(mm, k, seed, cp, eng);
  const double fast_ms = sw.ElapsedMs();

  const double ratio =
      direct.center_distance_evals > 0
          ? static_cast<double>(fast.center_distance_evals) /
                static_cast<double>(direct.center_distance_evals)
          : 1.0;
  std::printf("[ckmeans smoke] direct:  %8.1fms iterations=%d evals=%lld\n",
              direct_ms, direct.iterations,
              static_cast<long long>(direct.center_distance_evals));
  std::printf("[ckmeans smoke] bounded: %8.1fms iterations=%d evals=%lld "
              "skipped=%lld (eval ratio %.3f, gate %.3f)\n",
              fast_ms, fast.iterations,
              static_cast<long long>(fast.center_distance_evals),
              static_cast<long long>(fast.bounds_skipped), ratio,
              max_eval_ratio);

  if (fast.labels != direct.labels || fast.objective != direct.objective ||
      fast.iterations != direct.iterations) {
    std::fprintf(stderr,
                 "ckmeans smoke: bounded run diverged from the direct "
                 "sweeps (exactness contract broken)\n");
    std::printf(kFail);
    return 1;
  }
  if (ratio > max_eval_ratio) {
    std::fprintf(stderr,
                 "ckmeans smoke: pruning win too small: eval ratio %.3f > "
                 "gate %.3f\n",
                 ratio, max_eval_ratio);
    std::printf(kFail);
    return 1;
  }
  std::printf("CKMEANS RESULT=OK mode=compare n=%zu eval_ratio=%.3f\n",
              mm.size(), ratio);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::bad_alloc&) {
    // Out of memory (e.g. under a CI `ulimit -v` cap): report it in the
    // machine-readable channel and exit non-zero.
    std::printf("CKMEANS RESULT=OOM\n");
    std::fflush(stdout);
    return 3;
  }
}
