// Reproduces the motivating scenarios of Figures 1 and 2.
//
// Figure 1 — clusters with the same central tendency but different
// variances: the UK-means compactness criterion J_UK barely separates them
// (only via the variance-induced second-moment shift), whereas UCPC's J adds
// the within-cluster variance explicitly and prefers the compact cluster
// decisively. A full clustering run shows UK-means splitting the data by
// chance while UCPC consistently separates low- from high-variance objects.
//
// Figure 2 — objects with different central tendency: a variance-only
// criterion (Theorem 2: the U-centroid variance, i.e. what "minimize
// centroid variance" would optimize) prefers a *scattered* cluster of
// near-deterministic objects over a *tight* cluster of moderately uncertain
// ones; J ranks them correctly.
#include <cstdio>
#include <vector>

#include "clustering/cluster_stats.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "common/math_utils.h"
#include "data/dataset.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"

namespace {
using namespace uclust;  // NOLINT: bench brevity
using clustering::ClusterMoments;
using uncertain::MomentMatrix;
using uncertain::PdfPtr;
using uncertain::UncertainObject;

UncertainObject Make2D(data::PdfFamily family, double x, double y,
                       double scale) {
  std::vector<PdfPtr> dims;
  dims.push_back(data::MakeUncertainPdf(family, x, scale));
  dims.push_back(data::MakeUncertainPdf(family, y, scale));
  return UncertainObject(std::move(dims));
}

ClusterMoments Aggregate(const MomentMatrix& mm) {
  ClusterMoments c(mm.dims());
  for (std::size_t i = 0; i < mm.size(); ++i) c.Add(mm, i);
  return c;
}

}  // namespace

int main() {
  std::printf("=== Figures 1 & 2: why the U-centroid objective is needed "
              "===\n\n");

  // ---------------- Figure 1 ----------------
  // Same expected positions, different variances.
  std::vector<UncertainObject> compact, spread;
  const double pos[][2] = {{0.0, 0.0}, {0.6, 0.1}, {0.2, 0.7}, {0.8, 0.8}};
  for (const auto& p : pos) {
    compact.push_back(Make2D(data::PdfFamily::kNormal, p[0], p[1], 0.05));
    spread.push_back(Make2D(data::PdfFamily::kNormal, p[0], p[1], 0.80));
  }
  const auto mm_c = MomentMatrix::FromObjects(compact);
  const auto mm_s = MomentMatrix::FromObjects(spread);
  const ClusterMoments agg_c = Aggregate(mm_c);
  const ClusterMoments agg_s = Aggregate(mm_s);

  std::printf("[Figure 1] two clusters, identical expected positions:\n");
  std::printf("%28s %14s %14s\n", "", "low-variance", "high-variance");
  std::printf("%-28s %14.4f %14.4f\n", "sum of member variances",
              common::Sum(agg_c.sum_var()), common::Sum(agg_s.sum_var()));
  const double juk_c = clustering::UkmeansObjective(agg_c);
  const double juk_s = clustering::UkmeansObjective(agg_s);
  const double j_c = clustering::UcpcObjective(agg_c);
  const double j_s = clustering::UcpcObjective(agg_s);
  std::printf("%-28s %14.4f %14.4f\n", "J_UK (geometry part only)",
              juk_c - common::Sum(agg_c.sum_var()),
              juk_s - common::Sum(agg_s.sum_var()));
  std::printf("%-28s %14.4f %14.4f\n", "J_UK", juk_c, juk_s);
  std::printf("%-28s %14.4f %14.4f\n", "J (UCPC)", j_c, j_s);
  std::printf("  -> relative preference for the compact cluster: "
              "J_UK x%.2f vs J x%.2f\n\n",
              juk_s / juk_c, j_s / j_c);

  // Clustering demonstration: 16 low-variance + 16 high-variance objects at
  // interleaved positions; the informative signal is variance, not position.
  std::vector<UncertainObject> objects;
  std::vector<int> truth;
  for (int i = 0; i < 16; ++i) {
    const double x = 0.1 + 0.05 * (i % 4);
    const double y = 0.1 + 0.05 * (i / 4);
    objects.push_back(Make2D(data::PdfFamily::kNormal, x, y, 0.02));
    truth.push_back(0);
    objects.push_back(Make2D(data::PdfFamily::kNormal, x + 0.025, y, 1.5));
    truth.push_back(1);
  }
  const data::UncertainDataset mixed("fig1", std::move(objects), truth, 2);
  const clustering::Ucpc ucpc;
  const clustering::Ukmeans ukm;
  double f_ucpc = 0.0, f_ukm = 0.0;
  const int runs = 20;
  for (int r = 0; r < runs; ++r) {
    f_ucpc += eval::FMeasure(truth, ucpc.Cluster(mixed, 2, r).labels);
    f_ukm += eval::FMeasure(truth, ukm.Cluster(mixed, 2, r).labels);
  }
  std::printf("  clustering interleaved low/high-variance objects "
              "(avg F over %d runs):\n", runs);
  std::printf("    UK-means F = %.3f   (blind to variance: splits by "
              "position)\n", f_ukm / runs);
  std::printf("    UCPC     F = %.3f   (separates by uncertainty "
              "structure)\n\n", f_ucpc / runs);

  // ---------------- Figure 2 ----------------
  // (a) scattered, near-deterministic objects; (b) tight, moderately
  // uncertain objects.
  std::vector<UncertainObject> scattered, tight;
  scattered.push_back(Make2D(data::PdfFamily::kNormal, -3.0, -3.0, 0.01));
  scattered.push_back(Make2D(data::PdfFamily::kNormal, 3.0, -3.0, 0.01));
  scattered.push_back(Make2D(data::PdfFamily::kNormal, 0.0, 3.0, 0.01));
  tight.push_back(Make2D(data::PdfFamily::kNormal, 0.00, 0.00, 0.40));
  tight.push_back(Make2D(data::PdfFamily::kNormal, 0.05, 0.05, 0.40));
  tight.push_back(Make2D(data::PdfFamily::kNormal, -0.05, 0.05, 0.40));
  const ClusterMoments agg_a = Aggregate(MomentMatrix::FromObjects(scattered));
  const ClusterMoments agg_b = Aggregate(MomentMatrix::FromObjects(tight));
  const double n2 = 9.0;  // |C|^2
  std::printf("[Figure 2] variance-only criterion vs J:\n");
  std::printf("%-34s %12s %12s\n", "", "scattered(a)", "tight(b)");
  std::printf("%-34s %12.4f %12.4f\n",
              "U-centroid variance (Theorem 2)",
              common::Sum(agg_a.sum_var()) / n2,
              common::Sum(agg_b.sum_var()) / n2);
  std::printf("%-34s %12.4f %12.4f\n", "J (UCPC)",
              clustering::UcpcObjective(agg_a),
              clustering::UcpcObjective(agg_b));
  std::printf("  -> the variance-only criterion prefers (a) [WRONG]; "
              "J prefers (b) [RIGHT]\n");
  return 0;
}
