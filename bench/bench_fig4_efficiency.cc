// Reproduces Figure 4: online clustering runtimes of all ten algorithms on
// the two largest benchmark datasets (Abalone, Letter) and the two real
// (microarray-like) datasets, split into the paper's "slower" group
// (UK-medoids, basic UK-means, UAHC, FDBSCAN, FOPTICS) and "faster" group
// (MMVar, UK-means, MinMax-BB, VDBiP, UCPC).
//
// Offline phases (sample drawing, pairwise tables) are excluded from the
// reported time, matching the paper's protocol. The slower group runs on a
// subsample (its size is printed) because of its quadratic cost/memory —
// the paper's qualitative claim is about orders of magnitude, which survives
// scaling. Flags:
//   --runs=N      timed repetitions per algorithm      (default 1)
//   --scale=F     fast-group dataset scale in (0,1]    (default 0.5)
//   --slow_cap=N  slower-group subsample cap           (default 1200)
//   --genes=N     gene count for the real datasets     (default 3000)
//   --seed=S      master seed                          (default 1)
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "clustering/basic_ukmeans.h"
#include "clustering/fdbscan.h"
#include "clustering/foptics.h"
#include "clustering/mmvar.h"
#include "clustering/uahc.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "clustering/ukmedoids.h"
#include "common/cli.h"
#include "data/benchmark_gen.h"
#include "data/microarray_gen.h"
#include "data/uncertainty_model.h"

namespace {

using namespace uclust;  // NOLINT: bench brevity

struct Workload {
  std::string name;
  data::UncertainDataset fast_ds;  // full-size (scaled) dataset
  data::UncertainDataset slow_ds;  // subsample for the quadratic group
  int k;
};

double TimeAlgorithm(const clustering::Clusterer& algo,
                     const data::UncertainDataset& ds, int k, int runs,
                     uint64_t seed) {
  double total = 0.0;
  for (int r = 0; r < runs; ++r) {
    total += algo.Cluster(ds, k, seed + r).online_ms;
  }
  return total / runs;
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const int runs = static_cast<int>(args.GetInt("runs", 1));
  const double scale = args.GetDouble("scale", 0.5);
  const std::size_t slow_cap =
      static_cast<std::size_t>(args.GetInt("slow_cap", 1200));
  const int genes = static_cast<int>(args.GetInt("genes", 3000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));

  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;

  std::vector<Workload> workloads;
  for (const char* name : {"Abalone", "Letter"}) {
    const auto spec = data::FindBenchmarkSpec(name).ValueOrDie();
    const auto source =
        data::MakeBenchmarkDataset(name, seed, scale).ValueOrDie();
    const data::UncertaintyModel model(source, up, seed + 1);
    auto full = model.Uncertain();
    auto small = full.Subsampled(slow_cap, seed + 2);
    workloads.push_back(
        {name, std::move(full), std::move(small), spec.classes});
  }
  for (const auto& spec : data::PaperMicroarraySpecs()) {
    const double gscale =
        static_cast<double>(genes) / static_cast<double>(spec.genes);
    auto full =
        data::MakeMicroarrayByName(spec.name, seed, gscale).ValueOrDie();
    auto small = full.Subsampled(slow_cap, seed + 3);
    workloads.push_back({spec.name, std::move(full), std::move(small), 5});
  }

  // The two groups of Figure 4.
  std::vector<std::unique_ptr<clustering::Clusterer>> slow_group;
  slow_group.push_back(std::make_unique<clustering::UkMedoids>());
  slow_group.push_back(std::make_unique<clustering::BasicUkmeans>());
  slow_group.push_back(std::make_unique<clustering::Uahc>());
  slow_group.push_back(std::make_unique<clustering::Fdbscan>());
  slow_group.push_back(std::make_unique<clustering::Foptics>());

  std::vector<std::unique_ptr<clustering::Clusterer>> fast_group;
  fast_group.push_back(std::make_unique<clustering::Mmvar>());
  fast_group.push_back(std::make_unique<clustering::Ukmeans>());
  {
    clustering::BasicUkmeans::Params p;
    p.pruning = clustering::PruningStrategy::kMinMaxBB;
    p.cluster_shift = true;  // the paper couples both pruners with shift
    fast_group.push_back(std::make_unique<clustering::BasicUkmeans>(p));
    p.pruning = clustering::PruningStrategy::kVoronoi;
    fast_group.push_back(std::make_unique<clustering::BasicUkmeans>(p));
  }
  fast_group.push_back(std::make_unique<clustering::Ucpc>());

  std::printf("=== Figure 4: online clustering runtimes in ms "
              "(runs=%d, scale=%.2f, slow_cap=%zu) ===\n\n",
              runs, scale, slow_cap);
  for (const auto& w : workloads) {
    std::printf("--- %s: k=%d, fast group n=%zu, slow group n=%zu ---\n",
                w.name.c_str(), w.k, w.fast_ds.size(), w.slow_ds.size());
    std::printf("  [slower group, subsampled]\n");
    // UCPC is printed in both plots in the paper; replicate that so each
    // group is directly comparable to it.
    const clustering::Ucpc ucpc_ref;
    const double ucpc_on_slow =
        TimeAlgorithm(ucpc_ref, w.slow_ds, w.k, runs, seed + 5);
    for (const auto& algo : slow_group) {
      const double ms = TimeAlgorithm(*algo, w.slow_ds, w.k, runs, seed + 5);
      std::printf("    %-14s %12.2f ms   (%8.1fx UCPC)\n",
                  algo->name().c_str(), ms,
                  ucpc_on_slow > 0 ? ms / ucpc_on_slow : 0.0);
    }
    std::printf("    %-14s %12.2f ms\n", "UCPC", ucpc_on_slow);
    std::printf("  [faster group, full scaled size]\n");
    double ucpc_fast = 0.0;
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& algo : fast_group) {
      const double ms = TimeAlgorithm(*algo, w.fast_ds, w.k, runs, seed + 6);
      rows.emplace_back(algo->name(), ms);
      if (algo->name() == "UCPC") ucpc_fast = ms;
    }
    for (const auto& [name, ms] : rows) {
      std::printf("    %-14s %12.2f ms   (%8.1fx UCPC)\n", name.c_str(), ms,
                  ucpc_fast > 0 ? ms / ucpc_fast : 0.0);
    }
    std::printf("\n");
  }
  std::printf("Expected shape (paper): UCPC orders of magnitude below the "
              "slower group,\nwithin the same order as UK-means/MMVar, and "
              "at or below the pruning methods.\n");
  return 0;
}
