// Reproduces Figure 4: online clustering runtimes of all ten algorithms on
// the two largest benchmark datasets (Abalone, Letter) and the two real
// (microarray-like) datasets, split into the paper's "slower" group
// (UK-medoids, basic UK-means, UAHC, FDBSCAN, FOPTICS) and "faster" group
// (MMVar, UK-means, MinMax-BB, VDBiP, UCPC).
//
// Offline phases (sample drawing, pairwise tables) are excluded from the
// reported time, matching the paper's protocol, but both phases are
// persisted to a machine-readable BENCH_fig4_efficiency.json. The slower
// group runs on a subsample (its size is printed) because of its quadratic
// cost/memory — the paper's qualitative claim is about orders of magnitude,
// which survives scaling. Flags:
//   --runs=N        timed repetitions per algorithm      (default 1)
//   --threads=N     engine threads; 0 = hardware         (default 1)
//   --block_size=B  engine block size                    (default 1024)
//   --json_out=PATH JSON path (default BENCH_fig4_efficiency.json)
//   --scale=F       fast-group dataset scale in (0,1]    (default 0.5)
//   --slow_cap=N    slower-group subsample cap           (default 1200)
//   --genes=N       gene count for the real datasets     (default 3000)
//   --dataset=PATH  additionally time all algorithms on a binary dataset
//                   file (see src/io/); k is the file's class count
//   --seed=S        master seed                          (default 1)
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "bench_util.h"
#include "clustering/basic_ukmeans.h"
#include "clustering/fdbscan.h"
#include "clustering/foptics.h"
#include "clustering/mmvar.h"
#include "clustering/uahc.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "clustering/ukmedoids.h"
#include "common/cli.h"
#include "data/benchmark_gen.h"
#include "data/microarray_gen.h"
#include "data/uncertainty_model.h"
#include "engine/engine.h"
#include "io/dataset_reader.h"

namespace {

using namespace uclust;  // NOLINT: bench brevity

struct Workload {
  std::string name;
  data::UncertainDataset fast_ds;  // full-size (scaled) dataset
  data::UncertainDataset slow_ds;  // subsample for the quadratic group
  int k;
};

struct PhaseTimes {
  double online_ms = 0.0;
  double offline_ms = 0.0;
};

PhaseTimes TimeAlgorithm(const clustering::Clusterer& algo,
                         const data::UncertainDataset& ds, int k, int runs,
                         uint64_t seed) {
  PhaseTimes total;
  for (int r = 0; r < runs; ++r) {
    const clustering::ClusteringResult result = algo.Cluster(ds, k, seed + r);
    total.online_ms += result.online_ms;
    total.offline_ms += result.offline_ms;
  }
  total.online_ms /= runs;
  total.offline_ms /= runs;
  return total;
}

void JsonAlgorithmRow(common::JsonWriter* json, const std::string& group,
                      const std::string& name, std::size_t n,
                      const PhaseTimes& t) {
  json->BeginObject();
  json->KV("group", group);
  json->KV("name", name);
  json->KV("n", n);
  json->KV("online_ms", t.online_ms);
  json->KV("offline_ms", t.offline_ms);
  json->EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const int runs = static_cast<int>(args.GetInt("runs", 1));
  const double scale = args.GetDouble("scale", 0.5);
  const std::size_t slow_cap =
      static_cast<std::size_t>(args.GetInt("slow_cap", 1200));
  const int genes = static_cast<int>(args.GetInt("genes", 3000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string json_out =
      args.GetString("json_out", "BENCH_fig4_efficiency.json");

  const engine::Engine eng(
      bench::EngineConfigFromFlagsOrDie(args, "fig4 efficiency"));

  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;

  std::vector<Workload> workloads;
  for (const char* name : {"Abalone", "Letter"}) {
    const auto spec = data::FindBenchmarkSpec(name).ValueOrDie();
    const auto source =
        data::MakeBenchmarkDataset(name, seed, scale).ValueOrDie();
    const data::UncertaintyModel model(source, up, seed + 1);
    auto full = model.Uncertain();
    auto small = full.Subsampled(slow_cap, seed + 2);
    workloads.push_back(
        {name, std::move(full), std::move(small), spec.classes});
  }
  for (const auto& spec : data::PaperMicroarraySpecs()) {
    const double gscale =
        static_cast<double>(genes) / static_cast<double>(spec.genes);
    auto full =
        data::MakeMicroarrayByName(spec.name, seed, gscale).ValueOrDie();
    auto small = full.Subsampled(slow_cap, seed + 3);
    workloads.push_back({spec.name, std::move(full), std::move(small), 5});
  }
  // Optional file-backed workload: the object-backed (slow group) timings
  // need resident pdfs, so this loads the file fully — moment-only streaming
  // at scale is fig5's --dataset mode.
  if (const std::string dataset_path = args.GetString("dataset", "");
      !dataset_path.empty()) {
    auto loaded = io::ReadUncertainDataset(dataset_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "fig4: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    auto full = std::move(loaded).ValueOrDie();
    const int file_k = full.num_classes() > 1 ? full.num_classes() : 5;
    auto small = full.Subsampled(slow_cap, seed + 4);
    workloads.push_back(
        {full.name(), std::move(full), std::move(small), file_k});
  }

  // The two groups of Figure 4, all running on one shared engine.
  std::vector<std::unique_ptr<clustering::Clusterer>> slow_group;
  slow_group.push_back(std::make_unique<clustering::UkMedoids>());
  slow_group.push_back(std::make_unique<clustering::BasicUkmeans>());
  slow_group.push_back(std::make_unique<clustering::Uahc>());
  slow_group.push_back(std::make_unique<clustering::Fdbscan>());
  slow_group.push_back(std::make_unique<clustering::Foptics>());

  std::vector<std::unique_ptr<clustering::Clusterer>> fast_group;
  fast_group.push_back(std::make_unique<clustering::Mmvar>());
  fast_group.push_back(std::make_unique<clustering::Ukmeans>());
  {
    clustering::BasicUkmeans::Params p;
    p.pruning = clustering::PruningStrategy::kMinMaxBB;
    p.cluster_shift = true;  // the paper couples both pruners with shift
    fast_group.push_back(std::make_unique<clustering::BasicUkmeans>(p));
    p.pruning = clustering::PruningStrategy::kVoronoi;
    fast_group.push_back(std::make_unique<clustering::BasicUkmeans>(p));
  }
  fast_group.push_back(std::make_unique<clustering::Ucpc>());
  for (auto& algo : slow_group) algo->set_engine(eng);
  for (auto& algo : fast_group) algo->set_engine(eng);

  common::JsonWriter json;
  json.BeginObject();
  json.KV("bench", "fig4_efficiency");
  json.Key("config");
  json.BeginObject();
  json.KV("runs", runs);
  json.KV("scale", scale);
  json.KV("slow_cap", slow_cap);
  json.KV("genes", genes);
  json.KV("seed", static_cast<int64_t>(seed));
  json.KV("threads", eng.num_threads());
  json.KV("block_size", eng.block_size());
  json.KV("hardware_threads", static_cast<int64_t>(bench::HardwareThreads()));
  json.KV("simd_isa", eng.simd_isa());
  json.EndObject();
  // The kernel_throughput axis: per-ISA ED^ tile throughput on this
  // machine, so the algorithm runtimes below are interpretable against the
  // kernel-level ceiling (full microbench: bench_kernel_throughput).
  json.Key("kernel_throughput");
  json.BeginArray();
  for (const bench::KernelThroughputRow& row :
       bench::MeasureEd2TileThroughput(64, 64, 2048, 50.0, seed)) {
    json.BeginObject();
    json.KV("isa", row.isa);
    json.KV("ed2_evals_per_s", row.ed2_evals_per_s);
    json.KV("ed2_gb_per_s", row.ed2_gb_per_s);
    json.EndObject();
    std::printf("[kernel] %-7s ED^ tile %10.3g evals/s (%.2f GB/s)\n",
                row.isa.c_str(), row.ed2_evals_per_s, row.ed2_gb_per_s);
  }
  json.EndArray();
  json.Key("workloads");
  json.BeginArray();

  std::printf("=== Figure 4: online clustering runtimes in ms "
              "(runs=%d, scale=%.2f, slow_cap=%zu, threads=%d) ===\n\n",
              runs, scale, slow_cap, eng.num_threads());
  for (const auto& w : workloads) {
    std::printf("--- %s: k=%d, fast group n=%zu, slow group n=%zu ---\n",
                w.name.c_str(), w.k, w.fast_ds.size(), w.slow_ds.size());
    json.BeginObject();
    json.KV("name", w.name);
    json.KV("k", w.k);
    json.KV("fast_n", w.fast_ds.size());
    json.KV("slow_n", w.slow_ds.size());
    json.Key("algorithms");
    json.BeginArray();
    std::printf("  [slower group, subsampled]\n");
    // UCPC is printed in both plots in the paper; replicate that so each
    // group is directly comparable to it.
    clustering::Ucpc ucpc_ref;
    ucpc_ref.set_engine(eng);
    const PhaseTimes ucpc_on_slow =
        TimeAlgorithm(ucpc_ref, w.slow_ds, w.k, runs, seed + 5);
    for (const auto& algo : slow_group) {
      const PhaseTimes t = TimeAlgorithm(*algo, w.slow_ds, w.k, runs, seed + 5);
      std::printf("    %-14s %12.2f ms   (%8.1fx UCPC)\n",
                  algo->name().c_str(), t.online_ms,
                  ucpc_on_slow.online_ms > 0
                      ? t.online_ms / ucpc_on_slow.online_ms
                      : 0.0);
      JsonAlgorithmRow(&json, "slow", algo->name(), w.slow_ds.size(), t);
    }
    std::printf("    %-14s %12.2f ms\n", "UCPC", ucpc_on_slow.online_ms);
    JsonAlgorithmRow(&json, "slow", "UCPC", w.slow_ds.size(), ucpc_on_slow);
    std::printf("  [faster group, full scaled size]\n");
    double ucpc_fast = 0.0;
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& algo : fast_group) {
      const PhaseTimes t = TimeAlgorithm(*algo, w.fast_ds, w.k, runs, seed + 6);
      rows.emplace_back(algo->name(), t.online_ms);
      if (algo->name() == "UCPC") ucpc_fast = t.online_ms;
      JsonAlgorithmRow(&json, "fast", algo->name(), w.fast_ds.size(), t);
    }
    for (const auto& [name, ms] : rows) {
      std::printf("    %-14s %12.2f ms   (%8.1fx UCPC)\n", name.c_str(), ms,
                  ucpc_fast > 0 ? ms / ucpc_fast : 0.0);
    }
    json.EndArray();
    json.EndObject();
    std::printf("\n");
  }
  json.EndArray();
  json.EndObject();
  if (json.WriteFile(json_out)) {
    std::printf("[wrote %s]\n", json_out.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
  }
  std::printf("Expected shape (paper): UCPC orders of magnitude below the "
              "slower group,\nwithin the same order as UK-means/MMVar, and "
              "at or below the pruning methods.\n");
  return 0;
}
