// Reproduces Figure 5: scalability on the KDD-Cup-'99-like dataset. The
// dataset size is swept from 5% to 100% of a base size with k fixed to 23
// (every class covered), and the online runtimes of the fastest algorithms
// (UK-means, MMVar, UCPC) are reported; all three consume only per-object
// moment statistics, so the sweep streams moments directly.
//
// Besides the paper's table, the bench measures the serial-vs-parallel
// speedup of the execution engine at the 100% size, sweeps the
// PairwiseStore backend axis (dense / tiled / on-the-fly ED^ tables) on an
// object-backed UK-medoids workload with peak-RSS and peak-table-memory
// accounting, sweeps the tile-policy axis (full sweep vs gather tiles vs
// gather + warm rows, with kernel-eval and warm-hit counters) plus an
// FDBSCAN pruned-vs-unpruned sweep on a mix-family dataset, sweeps the
// CK-means axis (direct vs reduced vs reduced+bounds UK-means assignment
// work, with distance-eval and bounds-skip accounting), sweeps the
// MomentStore backend axis (resident columns vs the mmap-backed .umom
// sidecar) on the fast group with moments-bytes-resident accounting, and
// persists everything to a machine-readable BENCH_fig5_scalability.json
// (see --json_out).
//
// Flags:
//   --dataset=PATH    file-backed mode: sweep prefixes of a binary dataset
//                     (see src/io/) streamed through DatasetBuilder instead
//                     of the synthetic KDD generator; k is taken from the
//                     file's class count (default: generate synthetically)
//   --base_n=N        100% dataset size          (default 100000)
//   --runs=N          timed repetitions per cell (default 1)
//   --threads=N       engine threads for the sweep; 0 = hardware (default 1)
//   --block_size=B    engine block size          (default 1024)
//   --speedup_threads=N  thread count of the speedup probe; 0 = hardware
//                        (default 0)
//   --json_out=PATH   JSON output path (default BENCH_fig5_scalability.json)
//   --with_pruning    also time bUKM/MinMax-BB/VDBiP (object-backed; the
//                     base size is then capped at --pruning_cap)
//   --pruning_cap=N   cap for the pruning sweep  (default 8000)
//   --pairwise_n=N    size of the backend/tile-policy axis sweeps
//                     (default 1500; 0 skips them)
//   --pairwise_budget_mb=M  tiled-backend budget   (default 4)
//   --pairwise_gather_tiles/--pairwise_warm_rows/--pairwise_pruned_sweeps
//                     engine tile-policy knobs for the main sweeps (the
//                     tile-policy axis sweeps them itself)
//   --seed=S          master seed                (default 1)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"
#include "bench_util.h"
#include "clustering/basic_ukmeans.h"
#include "clustering/ckmeans.h"
#include "clustering/fdbscan.h"
#include "clustering/mmvar.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "clustering/ukmedoids.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/benchmark_gen.h"
#include "data/kdd_gen.h"
#include "data/uncertainty_model.h"
#include "engine/engine.h"
#include "io/ingest.h"
#include "io/moment_file.h"
#include "uncertain/moment_store.h"
#include "uncertain/moments.h"

namespace {
using namespace uclust;  // NOLINT: bench brevity

struct Timing {
  double ms = 0.0;
  int iterations = 0;
};

using bench::PeakRssKb;

// Average online time of each moment-kernel algorithm over `runs`.
void TimeFastGroup(const uncertain::MomentView& mm, int k, int runs,
                   uint64_t seed, const engine::Engine& eng, Timing* ukm,
                   Timing* mmv, Timing* ucpc) {
  for (int r = 0; r < runs; ++r) {
    common::Stopwatch sw;
    ukm->iterations = clustering::Ukmeans::RunOnMoments(
                          mm, k, seed + r, clustering::Ukmeans::Params(), eng)
                          .iterations;
    ukm->ms += sw.ElapsedMs();
    sw.Reset();
    mmv->iterations = clustering::Mmvar::RunOnMoments(
                          mm, k, seed + r, clustering::Mmvar::Params(), eng)
                          .passes;
    mmv->ms += sw.ElapsedMs();
    sw.Reset();
    ucpc->iterations = clustering::Ucpc::RunOnMoments(
                           mm, k, seed + r, clustering::Ucpc::Params(), eng)
                           .passes;
    ucpc->ms += sw.ElapsedMs();
  }
  ukm->ms /= runs;
  mmv->ms /= runs;
  ucpc->ms /= runs;
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::size_t base_n =
      static_cast<std::size_t>(args.GetInt("base_n", 50000));
  const int runs = static_cast<int>(args.GetInt("runs", 1));
  const bool with_pruning = args.GetBool("with_pruning", false);
  const std::size_t pruning_cap =
      static_cast<std::size_t>(args.GetInt("pruning_cap", 8000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string json_out =
      args.GetString("json_out", "BENCH_fig5_scalability.json");
  const std::string dataset_path = args.GetString("dataset", "");
  int k = 23;

  const engine::EngineConfig engine_config =
      bench::EngineConfigFromFlagsOrDie(args, "fig5 scalability");
  const engine::Engine eng(engine_config);
  engine::EngineConfig speedup_config = engine_config;
  speedup_config.num_threads =
      static_cast<int>(args.GetInt("speedup_threads", 0));
  const engine::Engine speedup_eng(speedup_config);
  const engine::Engine serial_eng;

  // File-backed mode: stream the file's moments once through the bounded-
  // memory ingestion path; the fraction sweep below then slices row
  // prefixes of the streamed matrix.
  uncertain::MomentMatrix file_mm;
  std::size_t sweep_dims = 42;
  if (!dataset_path.empty()) {
    std::vector<int> file_labels;
    auto streamed = io::StreamMomentsFromFile(
        dataset_path, eng, uncertain::DatasetBuilder::kDefaultBatchSize,
        &file_labels);
    if (!streamed.ok()) {
      std::fprintf(stderr, "fig5: %s\n", streamed.status().ToString().c_str());
      return 1;
    }
    file_mm = std::move(streamed).ValueOrDie();
    sweep_dims = file_mm.dims();
    int max_label = -1;
    for (int label : file_labels) max_label = std::max(max_label, label);
    if (max_label >= 1) k = max_label + 1;
    // Unlabeled / single-class / tiny files: keep k within [2, n] (the
    // moment kernels require n >= k, enforced by assert only).
    k = std::max(2, std::min<int>(k, static_cast<int>(file_mm.size())));
    if (file_mm.size() < 2) {
      std::fprintf(stderr, "fig5: dataset %s has fewer than 2 objects\n",
                   dataset_path.c_str());
      return 1;
    }
    std::printf("[file-backed: %s, n=%zu m=%zu k=%d]\n", dataset_path.c_str(),
                file_mm.size(), file_mm.dims(), k);
  }

  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;

  const double fractions[] = {0.05, 0.10, 0.25, 0.50, 0.75, 1.00};

  common::JsonWriter json;
  json.BeginObject();
  json.KV("bench", "fig5_scalability");
  json.Key("config");
  json.BeginObject();
  json.KV("base_n", dataset_path.empty() ? base_n : file_mm.size());
  json.KV("dataset", dataset_path);
  json.KV("runs", runs);
  json.KV("seed", static_cast<int64_t>(seed));
  json.KV("k", k);
  json.KV("m", sweep_dims);
  json.KV("threads", eng.num_threads());
  json.KV("block_size", eng.block_size());
  json.KV("hardware_threads", static_cast<int64_t>(bench::HardwareThreads()));
  json.KV("simd_isa", eng.simd_isa());
  json.EndObject();

  std::printf("=== Figure 5: scalability on the %s dataset "
              "(base n=%zu, m=%zu, k=%d, runs=%d, threads=%d) ===\n\n",
              dataset_path.empty() ? "KDD-like" : "file-backed",
              dataset_path.empty() ? base_n : file_mm.size(), sweep_dims, k,
              runs, eng.num_threads());
  std::printf("%8s %10s | %12s %12s %12s\n", "fraction", "n", "UK-means",
              "MMVar", "UCPC");
  json.Key("results");
  json.BeginArray();
  uncertain::MomentMatrix largest_mm;
  for (double frac : fractions) {
    uncertain::MomentMatrix mm;
    if (!dataset_path.empty()) {
      if (frac == 1.00) {
        // The 100% cell is the whole file; moving (the loop's last use of
        // file_mm) avoids doubling the O(n m) moment columns.
        mm = std::move(file_mm);
      } else {
        // Row prefix of the streamed file moments.
        const std::size_t want = std::max<std::size_t>(
            static_cast<std::size_t>(k),
            static_cast<std::size_t>(static_cast<double>(file_mm.size()) *
                                     frac));
        const std::size_t prefix_n = std::min(want, file_mm.size());
        uncertain::MomentMatrix prefix(prefix_n, file_mm.dims());
        for (std::size_t i = 0; i < prefix_n; ++i) {
          prefix.AppendRow(file_mm.mean(i), file_mm.second_moment(i),
                           file_mm.variance(i));
        }
        mm = std::move(prefix);
      }
    } else {
      data::KddLikeParams params;
      params.n = std::max<std::size_t>(
          static_cast<std::size_t>(k),
          static_cast<std::size_t>(static_cast<double>(base_n) * frac));
      std::vector<int> labels;
      mm = data::MakeKddLikeMoments(params, up, seed, &labels);
    }

    Timing ukm, mmv, ucpc;
    TimeFastGroup(mm, k, runs, seed, eng, &ukm, &mmv, &ucpc);
    std::printf(
        "%7.0f%% %10zu | %8.1fms (I=%3d) %8.1fms (I=%3d) %8.1fms (I=%3d)\n",
        frac * 100.0, mm.size(), ukm.ms, ukm.iterations, mmv.ms,
        mmv.iterations, ucpc.ms, ucpc.iterations);
    json.BeginObject();
    json.KV("fraction", frac);
    json.KV("n", mm.size());
    json.Key("online_ms");
    json.BeginObject();
    json.KV("UK-means", ukm.ms);
    json.KV("MMVar", mmv.ms);
    json.KV("UCPC", ucpc.ms);
    json.EndObject();
    json.Key("iterations");
    json.BeginObject();
    json.KV("UK-means", ukm.iterations);
    json.KV("MMVar", mmv.iterations);
    json.KV("UCPC", ucpc.iterations);
    json.EndObject();
    json.EndObject();
    if (frac == 1.00) largest_mm = std::move(mm);
  }
  json.EndArray();

  // Timing-free results fingerprint of the 100% UK-means run (labels +
  // objective bits only): two invocations that cluster identically print
  // the same value no matter how fast they ran. CI diffs this line between
  // --simd_isa=scalar and auto dispatch to pin the bit-exactness contract
  // end to end on real hardware.
  {
    const auto fp_run = clustering::Ukmeans::RunOnMoments(
        largest_mm.view(), k, seed, clustering::Ukmeans::Params(), eng);
    const uint64_t fp = bench::ResultFingerprint(fp_run.labels,
                                                 fp_run.objective);
    std::printf("\nFIG5 FINGERPRINT=%016llx\n",
                static_cast<unsigned long long>(fp));
    json.KV("result_fingerprint", clustering::FingerprintHex(fp));
    // The same run in the one canonical ClusteringResult serialization the
    // service's GET /v1/jobs/{id}/result route emits, so an archived fig5
    // artifact and a service response are directly diffable (the field
    // order and the embedded fingerprint are pinned by
    // tests/golden/clustering_result.json).
    clustering::ClusteringResult canonical;
    canonical.labels = fp_run.labels;
    canonical.k_requested = k;
    canonical.clusters_found = clustering::CountClusters(fp_run.labels);
    canonical.iterations = fp_run.iterations;
    canonical.objective = fp_run.objective;
    canonical.center_distance_evals = fp_run.center_distance_evals;
    json.Key("result");
    clustering::AppendResultJson(&json, canonical, /*include_labels=*/false);
  }

  // Serial vs parallel on the 100% dataset: the engine's speedup entry that
  // tracks the perf trajectory across PRs.
  std::printf("\n[engine speedup at n=%zu: 1 thread vs %d threads]\n",
              largest_mm.size(), speedup_eng.num_threads());
  std::printf("%12s | %12s %12s %10s\n", "algorithm", "serial", "parallel",
              "speedup");
  json.Key("speedup");
  json.BeginArray();
  {
    Timing s_ukm, s_mmv, s_ucpc;
    TimeFastGroup(largest_mm, k, runs, seed, serial_eng, &s_ukm, &s_mmv,
                  &s_ucpc);
    Timing p_ukm, p_mmv, p_ucpc;
    TimeFastGroup(largest_mm, k, runs, seed, speedup_eng, &p_ukm, &p_mmv,
                  &p_ucpc);
    const struct {
      const char* name;
      const Timing* serial;
      const Timing* parallel;
    } rows[] = {{"UK-means", &s_ukm, &p_ukm},
                {"MMVar", &s_mmv, &p_mmv},
                {"UCPC", &s_ucpc, &p_ucpc}};
    for (const auto& row : rows) {
      const double speedup =
          row.parallel->ms > 0.0 ? row.serial->ms / row.parallel->ms : 0.0;
      std::printf("%12s | %10.1fms %10.1fms %9.2fx\n", row.name,
                  row.serial->ms, row.parallel->ms, speedup);
      json.BeginObject();
      json.KV("name", row.name);
      json.KV("n", largest_mm.size());
      json.KV("serial_ms", row.serial->ms);
      json.KV("parallel_ms", row.parallel->ms);
      json.KV("threads", speedup_eng.num_threads());
      json.KV("speedup", speedup);
      json.EndObject();
    }
  }
  json.EndArray();

  // CK-means axis: the UK-means assignment work at the 100% size under the
  // three pruning levels — direct sweeps, moment reduction only, and
  // reduction plus Hamerly/Elkan bounds. Labels must agree bit-for-bit
  // (the levels are exact optimizations); what changes is online time and
  // the (center_distance_evals, bounds_skipped) accounting. This axis
  // records the trajectory; the hard pruning-win gate lives in
  // bench_ckmeans_smoke, which CI greps for CKMEANS RESULT=OK.
  if (largest_mm.size() > 0) {
    std::printf("\n[ckmeans axis: UK-means assignment work at n=%zu, "
                "k=%d]\n",
                largest_mm.size(), k);
    std::printf("%16s | %10s %6s %16s %16s %8s\n", "level", "online",
                "iters", "distance_evals", "bounds_skipped", "labels");
    json.Key("ckmeans_speedup");
    json.BeginArray();
    struct Level {
      const char* name;
      bool reduction;
      bool bounds;
    };
    const Level levels[] = {{"direct", false, false},
                            {"reduced", true, false},
                            {"reduced+bounds", true, true}};
    std::vector<int> direct_labels;
    for (const Level& level : levels) {
      double ms = 0.0;
      clustering::CkMeans::Outcome out;
      for (int r = 0; r < runs; ++r) {
        common::Stopwatch sw;
        if (!level.reduction && !level.bounds) {
          const auto d = clustering::Ukmeans::RunOnMoments(
              largest_mm.view(), k, seed, clustering::Ukmeans::Params(), eng);
          ms += sw.ElapsedMs();
          out.labels = d.labels;
          out.objective = d.objective;
          out.iterations = d.iterations;
          out.center_distance_evals = d.center_distance_evals;
          out.bounds_skipped = 0;
        } else {
          clustering::CkMeans::Params cp;
          cp.reduction = level.reduction;
          cp.bound_pruning = level.bounds;
          out = clustering::CkMeans::RunOnMoments(largest_mm.view(), k, seed,
                                                  cp, eng);
          ms += sw.ElapsedMs();
        }
      }
      ms /= runs;
      if (direct_labels.empty()) direct_labels = out.labels;
      const bool labels_match = out.labels == direct_labels;
      std::printf("%16s | %8.1fms %6d %16lld %16lld %8s\n", level.name, ms,
                  out.iterations,
                  static_cast<long long>(out.center_distance_evals),
                  static_cast<long long>(out.bounds_skipped),
                  labels_match ? "match" : "MISMATCH!");
      json.BeginObject();
      json.KV("level", level.name);
      json.KV("n", largest_mm.size());
      json.KV("k", k);
      json.KV("online_ms", ms);
      json.KV("iterations", out.iterations);
      json.KV("center_distance_evals", out.center_distance_evals);
      json.KV("bounds_skipped", out.bounds_skipped);
      json.KV("labels_match_direct", labels_match);
      json.EndObject();
    }
    json.EndArray();
  }

  // MomentStore backend axis: the fast group on resident columns vs the
  // mmap-backed .umom sidecar, at the 100% size. Labels must agree
  // bit-for-bit; what changes is moments_bytes_resident — the bytes of
  // moment storage pinned in memory (full columns vs the peak of the
  // chunk-window cache) — which is the new memory floor this axis tracks.
  // RSS is recorded too, but the resident columns already exist in this
  // process, so moments_bytes_resident is the meaningful memory signal.
  if (largest_mm.size() > 0 && args.GetBool("with_moment_backends", true)) {
    const std::string umom_path = json_out + ".umom";
    const common::Status wst = io::WriteMomentFile(
        largest_mm.view(), umom_path, eng.moment_chunk_rows());
    auto mapped_store =
        wst.ok() ? io::MappedMomentStore::Open(umom_path)
                 : common::Result<std::unique_ptr<io::MappedMomentStore>>(wst);
    if (!mapped_store.ok()) {
      std::fprintf(stderr, "fig5: moment backend axis skipped: %s\n",
                   mapped_store.status().ToString().c_str());
    } else {
      const uncertain::ResidentMomentStore resident(std::move(largest_mm));
      const io::MappedMomentStore& mapped = *mapped_store.ValueOrDie();
      std::printf("\n[moment backend axis: fast group at n=%zu, resident "
                  "columns = %.1f MiB, chunk_rows=%zu]\n",
                  resident.size(),
                  static_cast<double>(resident.moment_bytes_resident()) /
                      (1 << 20),
                  mapped.chunk_rows());
      std::printf("%10s | %12s %12s %12s %14s %12s\n", "backend", "UK-means",
                  "MMVar", "UCPC", "moment_bytes", "peak_rss");
      json.Key("moment_backends");
      json.BeginArray();
      // The resident store runs first and its labels become the reference
      // the mapped run is compared against — one labels pass per backend.
      std::vector<int> reference_labels;
      const uncertain::MomentStore* stores[] = {&resident, &mapped};
      for (const uncertain::MomentStore* store : stores) {
        Timing ukm, mmv, ucpc;
        TimeFastGroup(store->view(), k, runs, seed, eng, &ukm, &mmv, &ucpc);
        std::vector<int> labels =
            clustering::Ukmeans::RunOnMoments(store->view(), k, seed,
                                              clustering::Ukmeans::Params(),
                                              eng)
                .labels;
        if (reference_labels.empty()) reference_labels = std::move(labels);
        const bool labels_match =
            store == &resident || labels == reference_labels;
        const long rss_kb = PeakRssKb();
        std::printf("%10s | %10.1fms %10.1fms %10.1fms %11.2f MiB %9ld KB%s\n",
                    uncertain::MomentBackendName(store->backend()).c_str(),
                    ukm.ms, mmv.ms, ucpc.ms,
                    static_cast<double>(store->moment_bytes_resident()) /
                        (1 << 20),
                    rss_kb, labels_match ? "" : "  LABEL MISMATCH!");
        json.BeginObject();
        json.KV("backend", uncertain::MomentBackendName(store->backend()));
        json.KV("n", store->size());
        json.Key("online_ms");
        json.BeginObject();
        json.KV("UK-means", ukm.ms);
        json.KV("MMVar", mmv.ms);
        json.KV("UCPC", ucpc.ms);
        json.EndObject();
        json.KV("moments_bytes_resident", store->moment_bytes_resident());
        json.KV("peak_rss_kb", static_cast<int64_t>(rss_kb));
        json.KV("labels_match_resident", labels_match);
        json.EndObject();
      }
      json.EndArray();
    }
    std::remove(umom_path.c_str());
  }

  // PairwiseStore backend axis: the same object-backed UK-medoids workload
  // under an unlimited budget (dense table), a tiled budget, and a 1-byte
  // budget (on-the-fly rows). Labels must agree bit-for-bit; what changes
  // is peak table memory (recorded from the store) and process RSS.
  const std::size_t pairwise_n =
      static_cast<std::size_t>(args.GetInt("pairwise_n", 1500));
  if (pairwise_n > 0) {
    const std::size_t tiled_budget =
        static_cast<std::size_t>(args.GetInt("pairwise_budget_mb", 4))
        << 20;
    data::KddLikeParams kp;
    kp.n = std::max<std::size_t>(pairwise_n, static_cast<std::size_t>(k));
    const auto source = data::MakeKddLikeDataset(kp, seed);
    const auto ds = data::UncertaintyModel(source, up, seed + 1).Uncertain();
    clustering::UkMedoids::Params mp;
    mp.use_closed_form = true;
    mp.max_iters = 4;  // memory probe, not a convergence study

    std::printf("\n[pairwise backend axis: UK-medoids (closed form) at "
                "n=%zu, dense table = %.1f MiB, tiled budget = %zu MiB]\n",
                ds.size(),
                static_cast<double>(ds.size()) * ds.size() *
                    sizeof(double) / (1 << 20),
                tiled_budget >> 20);
    std::printf("%10s %14s | %10s %10s %14s %12s\n", "backend", "budget",
                "offline", "online", "table_peak", "peak_rss");
    json.Key("pairwise_backends");
    json.BeginArray();
    // Ascending-memory order with dense LAST: ru_maxrss is a monotone
    // lifetime high-water mark, so each row's RSS reading is meaningful
    // only if no heavier run preceded it.
    const std::size_t budgets[] = {1, tiled_budget, 0};
    struct BackendRun {
      std::size_t budget = 0;
      long rss_kb = 0;
      clustering::ClusteringResult r;
    };
    std::vector<BackendRun> runs_out;
    for (const std::size_t budget : budgets) {
      engine::EngineConfig bc = engine_config;
      bc.memory_budget_bytes = budget;
      clustering::UkMedoids algo(mp);
      algo.set_engine(engine::Engine(bc));
      BackendRun run;
      run.budget = budget;
      run.r = algo.Cluster(ds, k, seed);
      run.rss_kb = PeakRssKb();
      runs_out.push_back(std::move(run));
    }
    const std::vector<int>& dense_labels = runs_out.back().r.labels;
    for (const BackendRun& run : runs_out) {
      const bool labels_match = run.r.labels == dense_labels;
      std::printf("%10s %14zu | %8.1fms %8.1fms %11.2f MiB %9ld KB%s\n",
                  run.r.pairwise_backend.c_str(), run.budget,
                  run.r.offline_ms, run.r.online_ms,
                  static_cast<double>(run.r.table_bytes_peak) / (1 << 20),
                  run.rss_kb, labels_match ? "" : "  LABEL MISMATCH!");
      json.BeginObject();
      json.KV("backend", run.r.pairwise_backend);
      json.KV("memory_budget_bytes", run.budget);
      json.KV("n", ds.size());
      json.KV("offline_ms", run.r.offline_ms);
      json.KV("online_ms", run.r.online_ms);
      json.KV("iterations", run.r.iterations);
      json.KV("table_bytes_peak", run.r.table_bytes_peak);
      json.KV("peak_rss_kb", static_cast<int64_t>(run.rss_kb));
      json.KV("labels_match_dense", labels_match);
      json.EndObject();
    }
    json.EndArray();

    // Tile-policy axis: the same tiled UK-medoids workload under the three
    // policy levels — the classic full-table swap sweep, asymmetric gather
    // tiles, and gather tiles plus warm-row reuse. Labels must agree
    // bit-for-bit; what changes is kernel evaluations (the swap sweep reads
    // member x member slabs instead of full tiles) and warm hit rates.
    // The budget is capped at a quarter of the dense table so the axis
    // always exercises the tiled backend, even at CI sizes where the
    // configured budget would let the dense table fit.
    const std::size_t policy_budget = std::min(
        tiled_budget, ds.size() * ds.size() * sizeof(double) / 4);
    std::printf("\n[tile policy axis: UK-medoids tiled at n=%zu, budget = "
                "%zu KiB]\n",
                ds.size(), policy_budget >> 10);
    std::printf("%14s | %10s %14s %10s %10s %8s\n", "policy", "online",
                "kernel_evals", "warm_hits", "warm_miss", "labels");
    json.Key("tile_policies");
    json.BeginArray();
    struct Policy {
      const char* name;
      bool gather;
      bool warm;
    };
    const Policy policies[] = {{"full", false, false},
                               {"gather", true, false},
                               {"gather+warm", true, true}};
    std::vector<int> full_labels;
    for (const Policy& policy : policies) {
      engine::EngineConfig pc = engine_config;
      pc.memory_budget_bytes = policy_budget;
      pc.pairwise_gather_tiles = policy.gather;
      pc.pairwise_warm_rows = policy.warm;
      clustering::UkMedoids algo(mp);
      algo.set_engine(engine::Engine(pc));
      const clustering::ClusteringResult r = algo.Cluster(ds, k, seed);
      if (full_labels.empty()) full_labels = r.labels;
      const bool labels_match = r.labels == full_labels;
      std::printf("%14s | %8.1fms %14lld %10lld %10lld %8s\n", policy.name,
                  r.online_ms, static_cast<long long>(r.pair_evaluations),
                  static_cast<long long>(r.tile_warm_hits),
                  static_cast<long long>(r.tile_warm_misses),
                  labels_match ? "match" : "MISMATCH!");
      json.BeginObject();
      json.KV("policy", policy.name);
      json.KV("backend", r.pairwise_backend);
      json.KV("n", ds.size());
      json.KV("online_ms", r.online_ms);
      json.KV("iterations", r.iterations);
      json.KV("pair_evaluations", r.pair_evaluations);
      json.KV("tile_warm_hits", r.tile_warm_hits);
      json.KV("tile_warm_misses", r.tile_warm_misses);
      json.KV("table_bytes_peak", r.table_bytes_peak);
      json.KV("labels_match_full", labels_match);
      json.EndObject();
    }
    json.EndArray();

    // FDBSCAN pruned-sweep axis on a mix-family dataset: per-dimension pdfs
    // cycle uniform / normal / exponential, exercising every bounded-support
    // shape the spatial bounds must cover. The pruned sweep must reproduce
    // the unpruned labels while evaluating strictly fewer pairs.
    {
      const data::DeterministicDataset det = data::MakeGaussianMixture(
          [&] {
            data::MixtureParams gp;
            gp.n = std::max<std::size_t>(pairwise_n, 32);
            gp.dims = 3;
            gp.classes = std::min(k, 6);
            gp.min_separation = 0.4;
            return gp;
          }(),
          seed + 5, "fig5-mix");
      common::Rng scale_rng(seed + 6);
      std::vector<uncertain::UncertainObject> mix_objects;
      mix_objects.reserve(det.size());
      constexpr data::PdfFamily kFamilies[] = {data::PdfFamily::kUniform,
                                               data::PdfFamily::kNormal,
                                               data::PdfFamily::kExponential};
      for (std::size_t i = 0; i < det.size(); ++i) {
        std::vector<uncertain::PdfPtr> dims;
        dims.reserve(det.dims());
        for (std::size_t j = 0; j < det.dims(); ++j) {
          const double scale = 0.01 + 0.02 * scale_rng.Uniform();
          dims.push_back(data::MakeUncertainPdf(
              kFamilies[(i + j) % 3], det.points[i][j], scale));
        }
        mix_objects.emplace_back(std::move(dims));
      }
      const data::UncertainDataset mix_ds("fig5-mix", std::move(mix_objects),
                                          det.labels, det.num_classes);
      clustering::Fdbscan::Params fp;
      fp.eps = 0.1;  // below the class separation: cross-class pairs prune
      std::printf("\n[fdbscan pruned-sweep axis: mix-family dataset, "
                  "n=%zu]\n",
                  mix_ds.size());
      std::printf("%10s | %10s %14s %14s %8s\n", "sweep", "online",
                  "kernel_evals", "pairs_pruned", "labels");
      json.Key("fdbscan_pruning");
      json.BeginArray();
      std::vector<int> unpruned_labels;
      for (const bool pruned : {false, true}) {
        engine::EngineConfig pc = engine_config;
        pc.memory_budget_bytes = tiled_budget;
        pc.pairwise_pruned_sweeps = pruned;
        clustering::Fdbscan algo(fp);
        algo.set_engine(engine::Engine(pc));
        const clustering::ClusteringResult r = algo.Cluster(mix_ds, k, seed);
        if (unpruned_labels.empty()) unpruned_labels = r.labels;
        const bool labels_match = r.labels == unpruned_labels;
        std::printf("%10s | %8.1fms %14lld %14lld %8s\n",
                    pruned ? "pruned" : "unpruned", r.online_ms,
                    static_cast<long long>(r.pair_evaluations),
                    static_cast<long long>(r.pairs_pruned),
                    labels_match ? "match" : "MISMATCH!");
        json.BeginObject();
        json.KV("sweep", pruned ? "pruned" : "unpruned");
        json.KV("backend", r.pairwise_backend);
        json.KV("n", mix_ds.size());
        json.KV("online_ms", r.online_ms);
        json.KV("pair_evaluations", r.pair_evaluations);
        json.KV("pairs_pruned", r.pairs_pruned);
        json.KV("clusters_found", r.clusters_found);
        json.KV("labels_match_unpruned", labels_match);
        json.EndObject();
      }
      json.EndArray();

      // Spatial-index axis on the same mix-family dataset: the index must
      // reproduce the index-off pruned sweep bit-for-bit (same labels, same
      // evaluated pairs) while replacing the n*(n-1)/2 per-pair bound tests
      // with candidate-set queries.
      std::printf("\n[fdbscan spatial-index axis: mix-family dataset, "
                  "n=%zu]\n",
                  mix_ds.size());
      std::printf("%8s | %10s %14s %14s %14s %8s\n", "index", "online",
                  "bound_tests", "candidates", "pruned_by_idx", "labels");
      json.Key("spatial_index");
      json.BeginArray();
      std::vector<int> off_labels;
      for (const char* index : {"off", "rtree", "grid"}) {
        engine::EngineConfig pc = engine_config;
        pc.memory_budget_bytes = tiled_budget;
        pc.pairwise_pruned_sweeps = true;
        pc.spatial_index = index;
        clustering::Fdbscan algo(fp);
        algo.set_engine(engine::Engine(pc));
        const clustering::ClusteringResult r = algo.Cluster(mix_ds, k, seed);
        if (off_labels.empty()) off_labels = r.labels;
        const bool labels_match = r.labels == off_labels;
        std::printf("%8s | %8.1fms %14lld %14lld %14lld %8s\n", index,
                    r.online_ms,
                    static_cast<long long>(r.index_bound_tests),
                    static_cast<long long>(r.index_candidates),
                    static_cast<long long>(r.pairs_pruned_by_index),
                    labels_match ? "match" : "MISMATCH!");
        json.BeginObject();
        json.KV("spatial_index", index);
        json.KV("backend", r.pairwise_backend);
        json.KV("n", mix_ds.size());
        json.KV("online_ms", r.online_ms);
        json.KV("pair_evaluations", r.pair_evaluations);
        json.KV("pairs_pruned", r.pairs_pruned);
        json.KV("index_bound_tests", r.index_bound_tests);
        json.KV("index_candidates", r.index_candidates);
        json.KV("pairs_pruned_by_index", r.pairs_pruned_by_index);
        json.KV("labels_match_off", labels_match);
        json.EndObject();
      }
      json.EndArray();
    }
  }

  if (with_pruning) {
    std::printf("\n[pruning-based variants: object-backed sweep, base "
                "n=%zu]\n",
                pruning_cap);
    std::printf("%8s %10s | %12s %12s %12s\n", "fraction", "n", "bUK-means",
                "MinMax-BB", "VDBiP");
    json.Key("pruning_results");
    json.BeginArray();
    for (double frac : fractions) {
      data::KddLikeParams params;
      params.n = std::max<std::size_t>(
          static_cast<std::size_t>(k),
          static_cast<std::size_t>(static_cast<double>(pruning_cap) * frac));
      const auto source = data::MakeKddLikeDataset(params, seed);
      const auto ds = data::UncertaintyModel(source, up, seed + 1).Uncertain();
      clustering::BasicUkmeans::Params bp;
      clustering::BasicUkmeans plain(bp);
      bp.pruning = clustering::PruningStrategy::kMinMaxBB;
      bp.cluster_shift = true;
      clustering::BasicUkmeans minmax(bp);
      bp.pruning = clustering::PruningStrategy::kVoronoi;
      clustering::BasicUkmeans voronoi(bp);
      plain.set_engine(eng);
      minmax.set_engine(eng);
      voronoi.set_engine(eng);
      double t0 = 0.0, t1 = 0.0, t2 = 0.0;
      for (int r = 0; r < runs; ++r) {
        t0 += plain.Cluster(ds, k, seed + r).online_ms;
        t1 += minmax.Cluster(ds, k, seed + r).online_ms;
        t2 += voronoi.Cluster(ds, k, seed + r).online_ms;
      }
      std::printf("%7.0f%% %10zu | %10.1fms %10.1fms %10.1fms\n",
                  frac * 100.0, ds.size(), t0 / runs, t1 / runs, t2 / runs);
      json.BeginObject();
      json.KV("fraction", frac);
      json.KV("n", ds.size());
      json.Key("online_ms");
      json.BeginObject();
      json.KV("bUK-means", t0 / runs);
      json.KV("MinMax-BB", t1 / runs);
      json.KV("VDBiP", t2 / runs);
      json.EndObject();
      json.EndObject();
    }
    json.EndArray();
  }
  json.EndObject();
  if (json.WriteFile(json_out)) {
    std::printf("\n[wrote %s]\n", json_out.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
  }
  std::printf("\nExpected shape (paper): all curves linear in n; MMVar "
              "scales best; UCPC tracks UK-means closely.\n");
  return 0;
}
