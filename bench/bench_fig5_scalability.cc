// Reproduces Figure 5: scalability on the KDD-Cup-'99-like dataset. The
// dataset size is swept from 5% to 100% of a base size with k fixed to 23
// (every class covered), and the online runtimes of the fastest algorithms
// (UK-means, MMVar, UCPC) are reported; all three consume only per-object
// moment statistics, so the sweep streams moments directly.
//
// Flags:
//   --base_n=N        100% dataset size          (default 100000)
//   --runs=N          timed repetitions per cell (default 1)
//   --with_pruning    also time bUKM/MinMax-BB/VDBiP (object-backed; the
//                     base size is then capped at --pruning_cap)
//   --pruning_cap=N   cap for the pruning sweep  (default 8000)
//   --seed=S          master seed                (default 1)
#include <cstdio>
#include <vector>

#include "clustering/basic_ukmeans.h"
#include "clustering/mmvar.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "common/cli.h"
#include "common/stopwatch.h"
#include "data/kdd_gen.h"
#include "data/uncertainty_model.h"

namespace {
using namespace uclust;  // NOLINT: bench brevity
}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::size_t base_n =
      static_cast<std::size_t>(args.GetInt("base_n", 50000));
  const int runs = static_cast<int>(args.GetInt("runs", 1));
  const bool with_pruning = args.GetBool("with_pruning", false);
  const std::size_t pruning_cap =
      static_cast<std::size_t>(args.GetInt("pruning_cap", 8000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const int k = 23;

  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;

  const double fractions[] = {0.05, 0.10, 0.25, 0.50, 0.75, 1.00};

  std::printf("=== Figure 5: scalability on the KDD-like dataset "
              "(base n=%zu, m=42, k=23, runs=%d) ===\n\n",
              base_n, runs);
  std::printf("%8s %10s | %12s %12s %12s\n", "fraction", "n", "UK-means",
              "MMVar", "UCPC");
  for (double frac : fractions) {
    data::KddLikeParams params;
    params.n = std::max<std::size_t>(
        static_cast<std::size_t>(k),
        static_cast<std::size_t>(static_cast<double>(base_n) * frac));
    std::vector<int> labels;
    const uncertain::MomentMatrix mm =
        data::MakeKddLikeMoments(params, up, seed, &labels);

    double t_ukm = 0.0, t_mmv = 0.0, t_ucpc = 0.0;
    int it_ukm = 0, it_mmv = 0, it_ucpc = 0;
    for (int r = 0; r < runs; ++r) {
      common::Stopwatch sw;
      it_ukm = clustering::Ukmeans::RunOnMoments(mm, k, seed + r).iterations;
      t_ukm += sw.ElapsedMs();
      sw.Reset();
      it_mmv = clustering::Mmvar::RunOnMoments(mm, k, seed + r).passes;
      t_mmv += sw.ElapsedMs();
      sw.Reset();
      it_ucpc = clustering::Ucpc::RunOnMoments(mm, k, seed + r).passes;
      t_ucpc += sw.ElapsedMs();
    }
    std::printf(
        "%7.0f%% %10zu | %8.1fms (I=%3d) %8.1fms (I=%3d) %8.1fms (I=%3d)\n",
        frac * 100.0, mm.size(), t_ukm / runs, it_ukm, t_mmv / runs, it_mmv,
        t_ucpc / runs, it_ucpc);
  }

  if (with_pruning) {
    std::printf("\n[pruning-based variants: object-backed sweep, base "
                "n=%zu]\n",
                pruning_cap);
    std::printf("%8s %10s | %12s %12s %12s\n", "fraction", "n", "bUK-means",
                "MinMax-BB", "VDBiP");
    for (double frac : fractions) {
      data::KddLikeParams params;
      params.n = std::max<std::size_t>(
          static_cast<std::size_t>(k),
          static_cast<std::size_t>(static_cast<double>(pruning_cap) * frac));
      const auto source = data::MakeKddLikeDataset(params, seed);
      const auto ds = data::UncertaintyModel(source, up, seed + 1).Uncertain();
      clustering::BasicUkmeans::Params bp;
      const clustering::BasicUkmeans plain(bp);
      bp.pruning = clustering::PruningStrategy::kMinMaxBB;
      bp.cluster_shift = true;
      const clustering::BasicUkmeans minmax(bp);
      bp.pruning = clustering::PruningStrategy::kVoronoi;
      const clustering::BasicUkmeans voronoi(bp);
      double t0 = 0.0, t1 = 0.0, t2 = 0.0;
      for (int r = 0; r < runs; ++r) {
        t0 += plain.Cluster(ds, k, seed + r).online_ms;
        t1 += minmax.Cluster(ds, k, seed + r).online_ms;
        t2 += voronoi.Cluster(ds, k, seed + r).online_ms;
      }
      std::printf("%7.0f%% %10zu | %10.1fms %10.1fms %10.1fms\n",
                  frac * 100.0, ds.size(), t0 / runs, t1 / runs, t2 / runs);
    }
  }
  std::printf("\nExpected shape (paper): all curves linear in n; MMVar "
              "scales best; UCPC tracks UK-means closely.\n");
  return 0;
}
