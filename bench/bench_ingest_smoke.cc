// Bounded-memory ingestion smoke: proves a file-backed dataset larger than
// the process's address-space cap can still be turned into moments and
// clustered, where the classic fully-resident construction path dies. CI
// runs this twice on the same dataset_gen-produced file under a hard
// `ulimit -v`:
//
//   --mode=stream  -> BinaryDatasetReader -> DatasetBuilder batches; only
//                     O(batch) pdf objects are ever resident. Expected to
//                     finish: INGEST_SMOKE RESULT=OK.
//   --mode=inram   -> ReadUncertainDataset materializes every pdf object
//                     before the moments are packed. Expected to exhaust the
//                     cap: INGEST_SMOKE RESULT=OOM.
//
// The RESULT= marker is machine-readable on purpose: CI greps for it instead
// of inspecting bare exit codes, so an unrelated crash cannot masquerade as
// the expected out-of-memory outcome (same scheme as bench_pairwise_smoke).
// Both modes print a moment-matrix fingerprint; on an uncapped run the two
// must agree (streamed ingestion is bit-identical to in-memory).
//
// Flags:
//   --dataset=PATH   binary dataset file                      (required)
//   --mode=stream|inram                                       (default stream)
//   --k=K            clusters for the UK-means run            (default 8)
//   --batch=B        streaming batch size                     (default 4096)
//   --seed=S         clustering seed                          (default 1)
//   --threads=N --block_size=B --memory_budget_bytes=B        engine knobs
#include <cstdint>
#include <cstdio>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "clustering/ukmeans.h"
#include "common/cli.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "io/dataset_reader.h"
#include "io/ingest.h"
#include "uncertain/moments.h"

namespace {

using namespace uclust;  // NOLINT: bench brevity

int Run(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::string path = args.GetString("dataset", "");
  if (path.empty()) {
    std::fprintf(stderr, "ingest smoke: --dataset=PATH is required\n");
    return 1;
  }
  const std::string mode = args.GetString("mode", "stream");
  const int k = static_cast<int>(args.GetInt("k", 8));
  const std::size_t batch = static_cast<std::size_t>(args.GetInt("batch", 4096));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const engine::Engine eng(
      bench::EngineConfigFromFlagsOrDie(args, "ingest smoke"));

  std::printf("[ingest smoke] mode=%s dataset=%s batch=%zu budget=%zu\n",
              mode.c_str(), path.c_str(), batch, eng.memory_budget_bytes());

  common::Stopwatch sw;
  uncertain::MomentMatrix mm;
  std::vector<int> labels;
  if (mode == "stream") {
    auto result = io::StreamMomentsFromFile(path, eng, batch, &labels);
    if (!result.ok()) {
      std::fprintf(stderr, "ingest smoke: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    mm = std::move(result).ValueOrDie();
  } else if (mode == "inram") {
    auto ds = io::ReadUncertainDataset(path);
    if (!ds.ok()) {
      std::fprintf(stderr, "ingest smoke: %s\n",
                   ds.status().ToString().c_str());
      return 1;
    }
    const data::UncertainDataset dataset = std::move(ds).ValueOrDie();
    // Copy so the matrix survives the dataset; the all-resident objects are
    // the memory hog this mode exists to demonstrate.
    mm = dataset.moments();
    labels = dataset.labels();
  } else {
    std::fprintf(stderr, "ingest smoke: --mode must be stream or inram\n");
    return 1;
  }
  const double ingest_ms = sw.ElapsedMs();
  std::printf("[ingest smoke] ingested n=%zu m=%zu in %.1fms, "
              "fingerprint=%016llx, rss=%ld KB\n",
              mm.size(), mm.dims(), ingest_ms,
              static_cast<unsigned long long>(bench::MomentFingerprint(mm)),
              bench::PeakRssKb());
  // Size sanity must precede the clustering call: RunOnMoments requires
  // n >= k (assert-only, compiled out in Release).
  if (k < 1 || mm.size() < static_cast<std::size_t>(k)) {
    std::fprintf(stderr, "ingest smoke: n=%zu smaller than k=%d\n", mm.size(),
                 k);
    std::printf("INGEST_SMOKE RESULT=FAIL\n");
    return 1;
  }

  sw.Reset();
  const auto outcome = clustering::Ukmeans::RunOnMoments(
      mm, k, seed, clustering::Ukmeans::Params(), eng);
  std::printf("[ingest smoke] UK-means k=%d: objective=%.4f iterations=%d "
              "in %.1fms, rss=%ld KB\n",
              k, outcome.objective, outcome.iterations, sw.ElapsedMs(),
              bench::PeakRssKb());
  if (outcome.labels.size() != mm.size()) {
    std::printf("INGEST_SMOKE RESULT=FAIL\n");
    return 1;
  }
  std::printf("INGEST_SMOKE RESULT=OK mode=%s n=%zu\n", mode.c_str(),
              mm.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::bad_alloc&) {
    // Out of memory (e.g. under a CI `ulimit -v` cap): report it in the
    // machine-readable channel and exit non-zero.
    std::printf("INGEST_SMOKE RESULT=OOM\n");
    std::fflush(stdout);
    return 3;
  }
}
