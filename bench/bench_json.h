// Back-compat shim: the bench JSON writer moved to src/common/json.h so
// the service layer and the canonical ClusteringResult serialization
// (src/clustering/result_json.h) share one emitter. Benches keep spelling
// it bench::JsonWriter.
#ifndef UCLUST_BENCH_BENCH_JSON_H_
#define UCLUST_BENCH_BENCH_JSON_H_

#include "common/json.h"

namespace uclust::bench {

using JsonWriter = common::JsonWriter;

}  // namespace uclust::bench

#endif  // UCLUST_BENCH_BENCH_JSON_H_
