// Minimal JSON emitter for the bench executables. Benches print their
// human-readable tables to stdout and additionally persist a BENCH_*.json
// with the run configuration and per-phase wall times, so the performance
// trajectory of the repo is machine-trackable across PRs.
#ifndef UCLUST_BENCH_BENCH_JSON_H_
#define UCLUST_BENCH_BENCH_JSON_H_

#include <cmath>
#include <cstdio>
#include <string>

namespace uclust::bench {

/// Incremental writer producing one JSON document. Values are emitted in
/// call order; the caller is responsible for balanced Begin/End pairs.
class JsonWriter {
 public:
  std::string& str() { return out_; }

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  /// Starts `"key": ` inside an object; follow with a value call.
  void Key(const std::string& key) {
    Comma();
    out_ += '"';
    Escape(key);
    out_ += "\": ";
    pending_value_ = true;
  }

  void Value(const std::string& v) {
    Comma();
    out_ += '"';
    Escape(v);
    out_ += '"';
  }
  void Value(const char* v) { Value(std::string(v)); }
  void Value(double v) {
    Comma();
    if (std::isfinite(v)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      out_ += buf;
    } else {
      out_ += "null";
    }
  }
  void Value(int64_t v) {
    Comma();
    out_ += std::to_string(v);
  }
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(std::size_t v) { Value(static_cast<int64_t>(v)); }
  void Value(bool v) {
    Comma();
    out_ += v ? "true" : "false";
  }

  /// Convenience: Key + Value.
  template <typename T>
  void KV(const std::string& key, const T& v) {
    Key(key);
    Value(v);
  }

  /// Writes the document to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
    std::fclose(f);
    return ok;
  }

 private:
  void Comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (need_comma_) out_ += ", ";
    need_comma_ = true;
  }
  void Open(char c) {
    Comma();
    out_ += c;
    need_comma_ = false;
  }
  void Close(char c) {
    out_ += c;
    need_comma_ = true;
    pending_value_ = false;
  }
  void Escape(const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
  }

  std::string out_;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

}  // namespace uclust::bench

#endif  // UCLUST_BENCH_BENCH_JSON_H_
