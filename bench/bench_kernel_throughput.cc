// Microbench for the SIMD kernel layer (src/clustering/simd/): per-ISA
// throughput of the three hot inner loops — the closed-form ED^ tile
// accumulation, the moment-column packing, and the CK-means reduced-moment
// nearest-two center sweep — plus a runtime cross-check that every compiled
// vector path reproduces the scalar reference bit for bit on this machine's
// actual hardware.
//
// Output:
//   - a human-readable table (evals/s, GB/s, speedup vs forced scalar),
//   - `DISPATCH best=<isa>` — what auto dispatch resolves to here,
//   - `KERNEL RESULT=OK|FAIL` — greppable smoke marker: OK iff every
//     available vector path's tile outputs match the scalar reference
//     bitwise (the bit-exactness contract, checked at runtime, on real
//     inputs, with remainder lanes),
//   - BENCH_kernel_throughput.json with everything above per ISA.
//
// Flags:
//   --m=D           dimensions per object             (default 64)
//   --tile_rows=R   rows per ED^ tile                 (default 64)
//   --n=N           objects (tile columns / sweep points) (default 2048)
//   --k=K           centers for the nearest-two sweep (default 16)
//   --min_ms=T      min measured wall ms per kernel   (default 200)
//   --seed=S        input generator seed              (default 1)
//   --json_out=PATH JSON path (default BENCH_kernel_throughput.json)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "bench_util.h"
#include "clustering/simd/simd.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace {

using namespace uclust;  // NOLINT: bench brevity
namespace simd = clustering::simd;

// Defeats dead-code elimination of the timed loops without perturbing them:
// every measured repetition folds its result into this sink.
double g_sink = 0.0;

struct Inputs {
  std::size_t m = 0;
  std::size_t tile_rows = 0;
  std::size_t n = 0;
  int k = 0;
  std::vector<double> means;      // n x m
  std::vector<double> mu2;        // n x m
  std::vector<double> var;        // n x m
  std::vector<double> total_var;  // n
  std::vector<double> centroids;  // k x m
};

Inputs MakeInputs(std::size_t m, std::size_t tile_rows, std::size_t n, int k,
                  uint64_t seed) {
  Inputs in;
  in.m = m;
  in.tile_rows = tile_rows;
  in.n = n;
  in.k = k;
  common::Rng rng(seed);
  in.means.resize(n * m);
  in.mu2.resize(n * m);
  in.var.resize(n * m);
  in.total_var.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double tv = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double mean = rng.Uniform(-10.0, 10.0);
      const double variance = rng.Uniform(0.0, 4.0);
      in.means[i * m + j] = mean;
      in.var[i * m + j] = variance;
      in.mu2[i * m + j] = variance + mean * mean;
      tv += variance;
    }
    in.total_var[i] = tv;
  }
  in.centroids.resize(static_cast<std::size_t>(k) * m);
  for (double& c : in.centroids) c = rng.Uniform(-10.0, 10.0);
  return in;
}

// One ED^ tile pass in FillRowTile's shape: rows x n closed-form kernel
// evaluations through the table's ed2. Returns the number of evaluations.
std::size_t Ed2Tile(const simd::KernelTable& t, const Inputs& in,
                    std::vector<double>* out) {
  const std::size_t m = in.m;
  std::size_t evals = 0;
  for (std::size_t r = 0; r < in.tile_rows; ++r) {
    double* row = out->data() + r * in.n;
    const double* mean_r = in.means.data() + r * m;
    const double tv_r = in.total_var[r];
    for (std::size_t j = 0; j < in.n; ++j) {
      row[j] = t.ed2(mean_r, in.means.data() + j * m, m, tv_r,
                     in.total_var[j]);
      ++evals;
    }
  }
  return evals;
}

// One packing pass: every object's three moment columns through pack_row.
void PackPass(const simd::KernelTable& t, const Inputs& in,
              std::vector<double>* mean_out, std::vector<double>* mu2_out,
              std::vector<double>* var_out, std::vector<double>* tv_out) {
  const std::size_t m = in.m;
  for (std::size_t i = 0; i < in.n; ++i) {
    t.pack_row(in.means.data() + i * m, in.mu2.data() + i * m,
               in.var.data() + i * m, m, mean_out->data() + i * m,
               mu2_out->data() + i * m, var_out->data() + i * m,
               tv_out->data() + i);
  }
}

// One assignment sweep: every object against all k centers via nearest_two.
std::size_t SweepPass(const simd::KernelTable& t, const Inputs& in,
                      std::vector<int>* labels) {
  const std::size_t m = in.m;
  for (std::size_t i = 0; i < in.n; ++i) {
    int best = 0;
    double best_d2 = 0.0;
    double second_d2 = 0.0;
    t.nearest_two(in.means.data() + i * m, in.centroids.data(), in.k, m, -1,
                  0.0, &best, &best_d2, &second_d2);
    (*labels)[i] = best;
    g_sink += best_d2 - second_d2;
  }
  return in.n * static_cast<std::size_t>(in.k);
}

// Repeats fn until at least min_ms of wall time is covered; returns
// (repetitions, elapsed seconds).
template <typename Fn>
std::pair<std::size_t, double> Measure(double min_ms, Fn&& fn) {
  std::size_t reps = 0;
  common::Stopwatch sw;
  do {
    fn();
    ++reps;
  } while (sw.ElapsedMs() < min_ms);
  return {reps, sw.ElapsedSeconds()};
}

struct IsaResults {
  std::string name;
  double ed2_evals_per_s = 0.0;
  double ed2_gb_per_s = 0.0;
  double pack_gb_per_s = 0.0;
  double sweep_evals_per_s = 0.0;
  bool cross_check_ok = true;
};

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::size_t m = static_cast<std::size_t>(args.GetInt("m", 64));
  const std::size_t tile_rows =
      static_cast<std::size_t>(args.GetInt("tile_rows", 64));
  const std::size_t n = static_cast<std::size_t>(args.GetInt("n", 2048));
  const int k = static_cast<int>(args.GetInt("k", 16));
  const double min_ms = args.GetDouble("min_ms", 200.0);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string json_out =
      args.GetString("json_out", "BENCH_kernel_throughput.json");

  const Inputs in = MakeInputs(m, tile_rows, n, k, seed);
  const simd::Isa best = simd::DetectBestIsa();
  std::printf("=== SIMD kernel throughput (m=%zu, tile=%zux%zu, k=%d) ===\n",
              m, tile_rows, n, k);
  std::printf("DISPATCH best=%s\n\n", simd::IsaName(best).c_str());

  // Scalar reference outputs for the runtime cross-check.
  const simd::KernelTable* scalar = simd::TableFor(simd::Isa::kScalar);
  std::vector<double> ref_tile(tile_rows * n);
  std::vector<double> ref_mean(n * m), ref_mu2(n * m), ref_var(n * m),
      ref_tv(n);
  std::vector<int> ref_labels(n);
  Ed2Tile(*scalar, in, &ref_tile);
  PackPass(*scalar, in, &ref_mean, &ref_mu2, &ref_var, &ref_tv);
  SweepPass(*scalar, in, &ref_labels);

  const simd::Isa kCandidates[] = {simd::Isa::kScalar, simd::Isa::kAvx2,
                                   simd::Isa::kNeon};
  std::vector<IsaResults> results;
  bool all_ok = true;
  for (const simd::Isa isa : kCandidates) {
    const simd::KernelTable* table = simd::TableFor(isa);
    if (table == nullptr) continue;
    IsaResults r;
    r.name = simd::IsaName(isa);

    // Cross-check first (bitwise, memcmp over the output buffers): the
    // throughput numbers of a path that produces different bits would be
    // meaningless.
    if (isa != simd::Isa::kScalar) {
      std::vector<double> tile(tile_rows * n);
      std::vector<double> mean(n * m), mu2(n * m), var(n * m), tv(n);
      std::vector<int> labels(n);
      Ed2Tile(*table, in, &tile);
      PackPass(*table, in, &mean, &mu2, &var, &tv);
      SweepPass(*table, in, &labels);
      r.cross_check_ok =
          std::memcmp(tile.data(), ref_tile.data(),
                      tile.size() * sizeof(double)) == 0 &&
          std::memcmp(mean.data(), ref_mean.data(),
                      mean.size() * sizeof(double)) == 0 &&
          std::memcmp(mu2.data(), ref_mu2.data(),
                      mu2.size() * sizeof(double)) == 0 &&
          std::memcmp(var.data(), ref_var.data(),
                      var.size() * sizeof(double)) == 0 &&
          std::memcmp(tv.data(), ref_tv.data(),
                      tv.size() * sizeof(double)) == 0 &&
          std::memcmp(labels.data(), ref_labels.data(),
                      labels.size() * sizeof(int)) == 0;
      all_ok = all_ok && r.cross_check_ok;
    }

    // ED^ tile: each eval reads two mean rows (2 m doubles); GB/s counts
    // those reads (writes are one double per eval, negligible next to them).
    {
      std::vector<double> tile(tile_rows * n);
      std::size_t evals = 0;
      const auto [reps, secs] = Measure(min_ms, [&] {
        evals += Ed2Tile(*table, in, &tile);
      });
      (void)reps;
      r.ed2_evals_per_s = static_cast<double>(evals) / secs;
      r.ed2_gb_per_s = r.ed2_evals_per_s * (2.0 * static_cast<double>(m)) *
                       sizeof(double) / 1e9;
      g_sink += tile[0];
    }
    // Moment packing: 3 m doubles read + 3 m + 1 written per row.
    {
      std::vector<double> mean(n * m), mu2(n * m), var(n * m), tv(n);
      std::size_t rows = 0;
      const auto [reps, secs] = Measure(min_ms, [&] {
        PackPass(*table, in, &mean, &mu2, &var, &tv);
        rows += n;
      });
      (void)reps;
      const double bytes_per_row =
          (6.0 * static_cast<double>(m) + 1.0) * sizeof(double);
      r.pack_gb_per_s = static_cast<double>(rows) * bytes_per_row / secs / 1e9;
      g_sink += tv[0];
    }
    // Nearest-two sweep: n x k squared-distance evaluations per pass.
    {
      std::vector<int> labels(n);
      std::size_t evals = 0;
      const auto [reps, secs] = Measure(min_ms, [&] {
        evals += SweepPass(*table, in, &labels);
      });
      (void)reps;
      r.sweep_evals_per_s = static_cast<double>(evals) / secs;
      g_sink += labels[0];
    }
    results.push_back(std::move(r));
  }

  double scalar_ed2 = 0.0;
  for (const IsaResults& r : results) {
    if (r.name == "scalar") scalar_ed2 = r.ed2_evals_per_s;
  }
  std::printf("%-8s %14s %10s %10s %14s %9s %6s\n", "isa", "ed2 evals/s",
              "ed2 GB/s", "pack GB/s", "sweep evals/s", "vs scalar", "bits");
  for (const IsaResults& r : results) {
    std::printf("%-8s %14.3g %10.2f %10.2f %14.3g %8.2fx %6s\n",
                r.name.c_str(), r.ed2_evals_per_s, r.ed2_gb_per_s,
                r.pack_gb_per_s, r.sweep_evals_per_s,
                scalar_ed2 > 0 ? r.ed2_evals_per_s / scalar_ed2 : 0.0,
                r.name == "scalar" ? "ref"
                                   : (r.cross_check_ok ? "ok" : "DIFF"));
  }

  common::JsonWriter json;
  json.BeginObject();
  json.KV("bench", "kernel_throughput");
  json.Key("config");
  json.BeginObject();
  json.KV("m", m);
  json.KV("tile_rows", tile_rows);
  json.KV("n", n);
  json.KV("k", k);
  json.KV("min_ms", min_ms);
  json.KV("seed", static_cast<int64_t>(seed));
  json.KV("hardware_threads",
          static_cast<int64_t>(bench::HardwareThreads()));
  json.KV("dispatch_best", simd::IsaName(best));
  json.EndObject();
  json.Key("isas");
  json.BeginArray();
  for (const IsaResults& r : results) {
    json.BeginObject();
    json.KV("isa", r.name);
    json.KV("ed2_evals_per_s", r.ed2_evals_per_s);
    json.KV("ed2_gb_per_s", r.ed2_gb_per_s);
    json.KV("pack_gb_per_s", r.pack_gb_per_s);
    json.KV("sweep_evals_per_s", r.sweep_evals_per_s);
    json.KV("ed2_speedup_vs_scalar",
            scalar_ed2 > 0 ? r.ed2_evals_per_s / scalar_ed2 : 0.0);
    json.KV("cross_check_ok", r.cross_check_ok);
    json.EndObject();
  }
  json.EndArray();
  json.KV("cross_check_ok", all_ok);
  json.EndObject();
  if (json.WriteFile(json_out)) {
    std::printf("\n[wrote %s]\n", json_out.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
  }

  // Greppable smoke marker (CI gates this, not the speedup ratio, so
  // non-AVX2 runners stay green).
  std::printf("KERNEL RESULT=%s\n", all_ok ? "OK" : "FAIL");
  if (g_sink == 12345.6789) std::printf("(sink %f)\n", g_sink);
  return all_ok ? 0 : 1;
}
