// Out-of-core moment-store smoke: proves a dataset whose RESIDENT moment
// columns exceed the process's address-space cap still clusters to
// completion on the Mapped (mmap-backed .umom) MomentStore backend, where
// the Resident backend dies. CI runs this twice on the same
// dataset_gen-produced file under a hard `ulimit -v`:
//
//   --mode=mapped   -> DatasetBuilder spills batches into the .umom sidecar
//                      (O(batch + chunk) heap), then UK-means runs over
//                      chunk-granular mapped windows (bounded address
//                      space). Expected to finish: MOMENTS_SMOKE RESULT=OK.
//   --mode=resident -> the classic flat columns: (3 n m + n) doubles must
//                      fit the cap. Expected to exhaust it:
//                      MOMENTS_SMOKE RESULT=OOM.
//
// The RESULT= marker is machine-readable on purpose: CI greps for it instead
// of inspecting bare exit codes, so an unrelated crash cannot masquerade as
// the expected out-of-memory outcome (same scheme as bench_pairwise_smoke
// and bench_ingest_smoke). Both modes print a moment fingerprint; on an
// uncapped run the two must agree (the backends are bit-identical).
//
// Flags:
//   --dataset=PATH   binary dataset file                      (required)
//   --mode=mapped|resident                                    (default mapped)
//   --sidecar=PATH   .umom location        (default: dataset path + ".umom")
//   --reuse_sidecar=0|1  reuse a matching sidecar             (default 1)
//   --k=K            clusters for the UK-means run            (default 8)
//   --max_iters=I    UK-means iteration cap                   (default 30)
//   --batch=B        streaming batch size                     (default 4096)
//   --seed=S         clustering seed                          (default 1)
//   --threads=N --block_size=B --moment_chunk_rows=R          engine knobs
#include <cstdint>
#include <cstdio>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "clustering/ukmeans.h"
#include "common/cli.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "io/ingest.h"
#include "io/mmap_file.h"
#include "io/moment_file.h"
#include "uncertain/moment_store.h"

namespace {

using namespace uclust;  // NOLINT: bench brevity

int Run(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::string path = args.GetString("dataset", "");
  if (path.empty()) {
    std::fprintf(stderr, "moments smoke: --dataset=PATH is required\n");
    return 1;
  }
  const std::string mode = args.GetString("mode", "mapped");
  const int k = static_cast<int>(args.GetInt("k", 8));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const engine::Engine eng(
      bench::EngineConfigFromFlagsOrDie(args, "moments smoke"));

  io::MomentStoreOptions options;
  options.batch_size = static_cast<std::size_t>(args.GetInt("batch", 4096));
  options.sidecar_path = args.GetString("sidecar", "");
  options.reuse_sidecar = args.GetBool("reuse_sidecar", true);
  if (mode == "mapped") {
    options.backend = io::MomentBackendChoice::kMapped;
  } else if (mode == "resident") {
    options.backend = io::MomentBackendChoice::kResident;
  } else {
    std::fprintf(stderr,
                 "moments smoke: --mode must be mapped or resident\n");
    return 1;
  }

  std::printf("[moments smoke] mode=%s dataset=%s batch=%zu chunk_hint=%zu\n",
              mode.c_str(), path.c_str(), options.batch_size,
              eng.moment_chunk_rows());

  common::Stopwatch sw;
  std::vector<int> labels;
  auto opened = io::StreamMomentStoreFromFile(path, eng, options, &labels);
  if (!opened.ok()) {
    std::fprintf(stderr, "moments smoke: %s\n",
                 opened.status().ToString().c_str());
    std::printf("MOMENTS_SMOKE RESULT=FAIL\n");
    return 1;
  }
  const uncertain::MomentStorePtr store = std::move(opened).ValueOrDie();
  const uncertain::MomentView mm = store->view();
  std::printf("[moments smoke] backend=%s n=%zu m=%zu built in %.1fms, "
              "moment_bytes_resident=%zu, rss=%ld KB\n",
              uncertain::MomentBackendName(store->backend()).c_str(),
              mm.size(), mm.dims(), sw.ElapsedMs(),
              store->moment_bytes_resident(), bench::PeakRssKb());
  std::printf("[moments smoke] fingerprint=%016llx\n",
              static_cast<unsigned long long>(bench::MomentFingerprint(mm)));
  // Size sanity must precede the clustering call: RunOnMoments requires
  // n >= k (assert-only, compiled out in Release).
  if (k < 1 || mm.size() < static_cast<std::size_t>(k)) {
    std::fprintf(stderr, "moments smoke: n=%zu smaller than k=%d\n",
                 mm.size(), k);
    std::printf("MOMENTS_SMOKE RESULT=FAIL\n");
    return 1;
  }

  sw.Reset();
  clustering::Ukmeans::Params params;
  params.max_iters = static_cast<int>(args.GetInt("max_iters", 30));
  const auto outcome =
      clustering::Ukmeans::RunOnMoments(mm, k, seed, params, eng);
  std::printf("[moments smoke] UK-means k=%d: objective=%.4f iterations=%d "
              "in %.1fms, moment_bytes_resident=%zu, rss=%ld KB\n",
              k, outcome.objective, outcome.iterations, sw.ElapsedMs(),
              store->moment_bytes_resident(), bench::PeakRssKb());
  if (outcome.labels.size() != mm.size()) {
    std::printf("MOMENTS_SMOKE RESULT=FAIL\n");
    return 1;
  }
  if (const auto* mapped =
          dynamic_cast<const io::MappedMomentStore*>(store.get())) {
    // Diagnose whether the windows actually came from mmap or from the
    // graceful heap-read fallback — same values either way, different
    // paging behavior.
    std::printf("[moments smoke] mmap_windows=%s (mmap supported: %s)\n",
                mapped->used_mmap() ? "yes" : "no",
                io::MmapSupported() ? "yes" : "no");
  }
  std::printf("MOMENTS_SMOKE RESULT=OK mode=%s backend=%s n=%zu\n",
              mode.c_str(),
              uncertain::MomentBackendName(store->backend()).c_str(),
              mm.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::bad_alloc&) {
    // Out of memory (e.g. under a CI `ulimit -v` cap): report it in the
    // machine-readable channel and exit non-zero.
    std::printf("MOMENTS_SMOKE RESULT=OOM\n");
    std::fflush(stdout);
    return 3;
  }
}
