// Large-n memory smoke for the PairwiseStore backends: runs UK-medoids
// (closed form) at a size whose dense n x n ED^ table cannot fit the
// process's address-space limit, proving the budgeted backends cluster
// where the dense table would OOM. CI runs this twice under a hard
// `ulimit -v`:
//
//   --memory_budget_bytes=0   -> dense backend, expected to die on the
//                                table allocation;
//   --memory_budget_bytes=64M -> tiled backend, expected to finish and to
//                                keep peak table bytes within the budget.
//
// Every terminal outcome is reported through one machine-readable marker so
// CI can grep for the expected state instead of inspecting bare exit codes
// (an unrelated crash — segfault, assert — emits no marker and therefore
// cannot masquerade as the expected OOM):
//
//   [pairwise smoke] RESULT=OOM   allocation failure (std::bad_alloc)
//   [pairwise smoke] RESULT=OK    clustered within its own budget
//   [pairwise smoke] RESULT=FAIL  clustered but violated budget/shape checks
//
// Budgeted runs with the gather-tile policy enabled additionally emit a
// tile-policy marker with the run's kernel-eval and warm-row counters:
//
//   [pairwise smoke] TILE_POLICY RESULT=OK|FAIL gather=.. warm=.. evals=..
//
// TILE_POLICY RESULT=OK asserts the gather-tile swap sweep actually beat
// the full-table sweep's evaluation count (< iterations * n * (n - 1), the
// floor of the legacy policy on a recomputing backend).
//
// Budgeted runs with the spatial index enabled (the default) additionally
// gate the indexed FDBSCAN eps-sweep on a smaller separable dataset:
//
//   [pairwise smoke] INDEX RESULT=OK|FAIL spatial_index=.. bound_tests=..
//
// INDEX RESULT=OK asserts the index answered its candidate queries at
// <= 0.2x the n * (n - 1) / 2 pair-bound floor AND that the indexed labels
// match the index-off sweep bit-for-bit.
//
// Exit code: 0 for OK, 1 for FAIL, 3 for OOM.
//
// Flags:
//   --n=N                      objects               (default 20000)
//   --index_n=N                indexed-sweep objects (default 6000)
//   --m=M                      dimensions            (default 2)
//   --k=K                      clusters              (default 8)
//   --max_iters=I              PAM iteration cap     (default 2)
//   --threads=N --block_size=B --memory_budget_bytes=B   engine knobs
//   --seed=S                   master seed           (default 1)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_util.h"
#include "clustering/fdbscan.h"
#include "clustering/ukmedoids.h"
#include "common/cli.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "engine/engine.h"

namespace {

int Run(int argc, char** argv) {
  using namespace uclust;  // NOLINT: bench brevity
  const common::ArgParser args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.GetInt("n", 20000));
  const std::size_t m = static_cast<std::size_t>(args.GetInt("m", 2));
  const int k = static_cast<int>(args.GetInt("k", 8));
  const int max_iters = static_cast<int>(args.GetInt("max_iters", 2));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));

  const engine::EngineConfig config =
      bench::EngineConfigFromFlagsOrDie(args, "pairwise smoke");
  const engine::Engine eng(config);

  std::printf("[pairwise smoke] n=%zu m=%zu k=%d budget=%zu bytes "
              "(dense table would be %.2f GiB)\n",
              n, m, k, config.memory_budget_bytes,
              static_cast<double>(n) * n * sizeof(double) /
                  (1024.0 * 1024.0 * 1024.0));

  data::MixtureParams mp;
  mp.n = n;
  mp.dims = m;
  mp.classes = k;
  const data::DeterministicDataset d =
      data::MakeGaussianMixture(mp, seed, "pairwise-smoke");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  const data::UncertainDataset ds =
      data::UncertaintyModel(d, up, seed + 1).Uncertain();
  std::printf("[pairwise smoke] dataset built, rss=%ld KB\n", bench::PeakRssKb());

  clustering::UkMedoids::Params params;
  params.use_closed_form = true;
  params.max_iters = max_iters;
  clustering::UkMedoids algo(params);
  algo.set_engine(eng);
  const clustering::ClusteringResult r = algo.Cluster(ds, k, seed);

  std::printf("[pairwise smoke] backend=%s iterations=%d clusters=%d "
              "offline=%.1fms online=%.1fms table_peak=%zu bytes "
              "rss=%ld KB\n",
              r.pairwise_backend.c_str(), r.iterations, r.clusters_found,
              r.offline_ms, r.online_ms, r.table_bytes_peak, bench::PeakRssKb());

  if (r.clusters_found < 1 ||
      r.labels.size() != ds.size()) {
    std::fprintf(stderr, "degenerate clustering\n");
    std::printf("[pairwise smoke] RESULT=FAIL\n");
    return 1;
  }
  // One row is the hard floor of row-granular access (see
  // PairwiseStore::StreamRows), so a sub-row budget is checked against it.
  const std::size_t budget_floor =
      std::max(config.memory_budget_bytes, n * sizeof(double));
  if (config.memory_budget_bytes > 0 && r.table_bytes_peak > budget_floor) {
    std::fprintf(stderr, "table peak %zu exceeded the %zu-byte budget\n",
                 r.table_bytes_peak, budget_floor);
    std::printf("[pairwise smoke] RESULT=FAIL\n");
    return 1;
  }
  if (config.memory_budget_bytes > 0 && config.pairwise_gather_tiles) {
    // The legacy full-table swap sweep costs n * (n - 1) evaluations per
    // iteration on a recomputing backend; the gather-tile policy must land
    // strictly below that floor.
    const int64_t full_sweep_floor = static_cast<int64_t>(r.iterations) *
                                     static_cast<int64_t>(n) *
                                     static_cast<int64_t>(n - 1);
    const bool tile_ok = r.pair_evaluations < full_sweep_floor;
    std::printf("[pairwise smoke] TILE_POLICY RESULT=%s gather=%d warm=%d "
                "evals=%lld full_sweep_floor=%lld warm_hits=%lld "
                "warm_misses=%lld\n",
                tile_ok ? "OK" : "FAIL", config.pairwise_gather_tiles ? 1 : 0,
                config.pairwise_warm_rows ? 1 : 0,
                static_cast<long long>(r.pair_evaluations),
                static_cast<long long>(full_sweep_floor),
                static_cast<long long>(r.tile_warm_hits),
                static_cast<long long>(r.tile_warm_misses));
    if (!tile_ok) {
      std::printf("[pairwise smoke] RESULT=FAIL\n");
      return 1;
    }
  }
  if (config.memory_budget_bytes > 0 && config.pairwise_pruned_sweeps &&
      config.spatial_index != "off") {
    // Spatial-index gate: an indexed FDBSCAN eps-sweep must answer its
    // candidate queries well below the n * (n - 1) / 2 pair-bound floor the
    // all-pairs predicate sweep pays — the whole point of candidate-SET
    // pruning — while reproducing the index-off labels bit-for-bit.
    const std::size_t index_n =
        static_cast<std::size_t>(args.GetInt("index_n", 6000));
    // The regime a range index targets: 3-D, broad clusters (moderate local
    // density) and localized uncertainty regions well below eps. Tight 2-D
    // cluster cores or fat regions push the TRUE eps-neighbor count — which
    // no exact index can undercut — toward all pairs.
    data::MixtureParams imp;
    imp.n = index_n;
    imp.dims = 3;
    imp.classes = k;
    imp.sigma_min = 0.15;
    imp.sigma_max = 0.25;
    imp.min_separation = 0.4;
    const data::DeterministicDataset id =
        data::MakeGaussianMixture(imp, seed + 2, "pairwise-smoke-index");
    data::UncertaintyParams iup = up;
    iup.min_scale_frac = 0.002;
    iup.max_scale_frac = 0.01;
    const data::UncertainDataset ids =
        data::UncertaintyModel(id, iup, seed + 3).Uncertain();
    clustering::Fdbscan::Params fp;
    fp.eps = 0.02;  // well below the class separation: most pairs prune
    const auto sweep = [&](const char* index) {
      engine::EngineConfig icfg = config;
      icfg.spatial_index = index;
      clustering::Fdbscan fdbscan(fp);
      fdbscan.set_engine(engine::Engine(icfg));
      return fdbscan.Cluster(ids, k, seed);
    };
    const clustering::ClusteringResult off = sweep("off");
    const clustering::ClusteringResult indexed =
        sweep(config.spatial_index.c_str());
    const int64_t pair_floor = static_cast<int64_t>(index_n) *
                               static_cast<int64_t>(index_n - 1) / 2;
    const int64_t index_cost =
        indexed.index_bound_tests + indexed.index_candidates;
    const bool index_ok = indexed.labels == off.labels &&
                          index_cost * 5 <= pair_floor;  // <= 0.2x the floor
    std::printf("[pairwise smoke] INDEX RESULT=%s spatial_index=%s n=%zu "
                "bound_tests=%lld candidates=%lld cost=%lld "
                "pair_floor=%lld labels_match_off=%d online=%.1fms "
                "(off=%.1fms)\n",
                index_ok ? "OK" : "FAIL", config.spatial_index.c_str(),
                index_n, static_cast<long long>(indexed.index_bound_tests),
                static_cast<long long>(indexed.index_candidates),
                static_cast<long long>(index_cost),
                static_cast<long long>(pair_floor),
                indexed.labels == off.labels ? 1 : 0, indexed.online_ms,
                off.online_ms);
    if (!index_ok) {
      std::printf("[pairwise smoke] RESULT=FAIL\n");
      return 1;
    }
  }
  std::printf("[pairwise smoke] RESULT=OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::bad_alloc&) {
    std::printf("[pairwise smoke] RESULT=OOM\n");
    std::fflush(stdout);
    return 3;
  }
}
