// Out-of-core sample-store smoke: proves a dataset whose RESIDENT Monte-
// Carlo sample block (n * S * m doubles) exceeds the process's address-space
// cap still runs a sampled workload to completion on the Mapped (mmap-backed
// .usmp) SampleStore backend, where the Resident backend dies. CI runs this
// twice on the same dataset_gen-produced file under a hard `ulimit -v`:
//
//   --mode=mapped   -> the factory streams the dataset file into the .usmp
//                      sidecar (O(batch) heap, or reuses a matching emitted
//                      sidecar via the staleness guard) and the workload
//                      then runs over chunk-granular mapped windows (bounded
//                      address space). Expected to finish:
//                      SAMPLES RESULT=OK.
//   --mode=resident -> the classic flat block: n * S * m doubles must fit
//                      the cap. Expected to exhaust it: SAMPLES RESULT=OOM.
//
// The RESULT= marker is machine-readable on purpose: CI greps for it instead
// of inspecting bare exit codes, so an unrelated crash cannot masquerade as
// the expected out-of-memory outcome (same scheme as bench_moments_smoke).
// Both modes print a sample fingerprint and run the same sampled
// nearest-pseudo-center assignment; on an uncapped run fingerprint,
// objective, and labels must agree (the backends are bit-identical by the
// SampleView contract).
//
// Flags:
//   --dataset=PATH   binary dataset file                      (required)
//   --mode=mapped|resident                                    (default mapped)
//   --sidecar=PATH   .usmp location (default: the factory's param-encoded
//                    path next to the dataset)
//   --reuse_sidecar=0|1  reuse a matching sidecar             (default 1)
//   --samples_per_object=S  realizations per object           (default 64)
//   --sample_seed=S  master draw seed            (default dataset_gen's
//                    0x5eedbeef, so --emit-samples sidecars are reusable)
//   --k=K            pseudo-centers for the assignment sweep  (default 8)
//   --batch=B        streaming build batch size               (default 1024)
//   --json_out=PATH  bench JSON artifact ("" = none)          (default "")
//   --threads=N --sample_chunk_rows=R                         engine knobs
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "io/dataset_reader.h"
#include "io/mmap_file.h"
#include "io/sample_file.h"
#include "uncertain/sample_store.h"

namespace {

using namespace uclust;  // NOLINT: bench brevity

/// FNV-1a over every sample byte, row by row — stable across backends,
/// chunk sizes, and thread counts (the bytes themselves are the contract).
uint64_t SampleFingerprint(const uncertain::SampleView& view) {
  uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < view.size(); ++i) {
    for (const double v : view.ObjectSamples(i)) {
      uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      for (int b = 0; b < 64; b += 8) {
        h ^= (bits >> b) & 0xff;
        h *= 1099511628211ull;
      }
    }
  }
  return h;
}

int Run(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::string path = args.GetString("dataset", "");
  if (path.empty()) {
    std::fprintf(stderr, "samples smoke: --dataset=PATH is required\n");
    return 1;
  }
  const std::string mode = args.GetString("mode", "mapped");
  const int k = static_cast<int>(args.GetInt("k", 8));
  const int samples_per_object =
      static_cast<int>(args.GetInt("samples_per_object", 64));
  const uint64_t sample_seed =
      static_cast<uint64_t>(args.GetInt("sample_seed", 0x5eedbeefLL));
  const engine::Engine eng(
      bench::EngineConfigFromFlagsOrDie(args, "samples smoke"));

  io::SampleStoreOptions options;
  options.batch_size = static_cast<std::size_t>(args.GetInt("batch", 1024));
  options.sidecar_path = args.GetString("sidecar", "");
  options.reuse_sidecar = args.GetBool("reuse_sidecar", true);
  if (mode == "mapped") {
    options.backend = io::SampleBackendChoice::kMapped;
  } else if (mode == "resident") {
    options.backend = io::SampleBackendChoice::kResident;
  } else {
    std::fprintf(stderr,
                 "samples smoke: --mode must be mapped or resident\n");
    return 1;
  }

  std::printf("[samples smoke] mode=%s dataset=%s S=%d seed=%llx "
              "batch=%zu chunk_hint=%zu\n",
              mode.c_str(), path.c_str(), samples_per_object,
              static_cast<unsigned long long>(sample_seed),
              options.batch_size, eng.sample_chunk_rows());

  common::Stopwatch sw;
  auto read = io::ReadUncertainDataset(path);
  if (!read.ok()) {
    std::fprintf(stderr, "samples smoke: %s\n",
                 read.status().ToString().c_str());
    std::printf("SAMPLES RESULT=FAIL\n");
    return 1;
  }
  const data::UncertainDataset ds = std::move(read).ValueOrDie();
  std::printf("[samples smoke] dataset n=%zu m=%zu loaded in %.1fms, "
              "rss=%ld KB\n",
              ds.size(), ds.dims(), sw.ElapsedMs(), bench::PeakRssKb());
  if (k < 1 || ds.size() < static_cast<std::size_t>(k)) {
    std::fprintf(stderr, "samples smoke: n=%zu smaller than k=%d\n",
                 ds.size(), k);
    std::printf("SAMPLES RESULT=FAIL\n");
    return 1;
  }

  sw.Reset();
  auto opened =
      io::MakeSampleStore(ds, samples_per_object, sample_seed, eng, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "samples smoke: %s\n",
                 opened.status().ToString().c_str());
    std::printf("SAMPLES RESULT=FAIL\n");
    return 1;
  }
  const uncertain::SampleStorePtr store = std::move(opened).ValueOrDie();
  const uncertain::SampleView view = store->view();
  std::printf("[samples smoke] backend=%s built in %.1fms, "
              "sample_bytes_resident=%zu, rss=%ld KB\n",
              uncertain::SampleBackendName(store->backend()).c_str(),
              sw.ElapsedMs(), store->sample_bytes_resident(),
              bench::PeakRssKb());
  std::printf("[samples smoke] fingerprint=%016llx\n",
              static_cast<unsigned long long>(SampleFingerprint(view)));

  // The workload: one sampled nearest-pseudo-center assignment sweep — the
  // UK-medoids assignment-step shape (every object evaluates the Monte-
  // Carlo expected squared distance to each of k fixed centers), streaming
  // the entire sample block through the chunk windows once more.
  sw.Reset();
  const std::size_t m = view.dims();
  std::vector<double> centers(static_cast<std::size_t>(k) * m, 0.0);
  for (int c = 0; c < k; ++c) {
    // Center c = the sample-mean of an evenly spaced anchor object; a pure
    // function of the sample bytes, so modes must agree on it too.
    const std::size_t anchor = (ds.size() / static_cast<std::size_t>(k)) *
                               static_cast<std::size_t>(c);
    const std::span<const double> rows = view.ObjectSamples(anchor);
    for (int s = 0; s < view.samples_per_object(); ++s) {
      for (std::size_t j = 0; j < m; ++j) {
        centers[static_cast<std::size_t>(c) * m + j] +=
            rows[static_cast<std::size_t>(s) * m + j];
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      centers[static_cast<std::size_t>(c) * m + j] /=
          view.samples_per_object();
    }
  }
  std::vector<int> labels(ds.size(), 0);
  double objective = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    double best = 0.0;
    int arg = -1;
    for (int c = 0; c < k; ++c) {
      const double d = view.ExpectedSquaredDistanceToPoint(
          i, std::span<const double>(centers.data() +
                                         static_cast<std::size_t>(c) * m,
                                     m));
      if (arg < 0 || d < best) {
        best = d;
        arg = c;
      }
    }
    labels[i] = arg;
    objective += best;
  }
  const uint64_t result_fp = bench::ResultFingerprint(labels, objective);
  std::printf("[samples smoke] assignment k=%d: objective=%.4f in %.1fms, "
              "result_fingerprint=%016llx, rss=%ld KB\n",
              k, objective, sw.ElapsedMs(),
              static_cast<unsigned long long>(result_fp),
              bench::PeakRssKb());

  if (const auto* mapped =
          dynamic_cast<const io::MappedSampleStore*>(store.get())) {
    // Diagnose whether the windows actually came from mmap or from the
    // graceful heap-read fallback — same values either way, different
    // paging behavior.
    std::printf("[samples smoke] mmap_windows=%s (mmap supported: %s) "
                "chunk_rows=%zu sidecar=%s\n",
                mapped->used_mmap() ? "yes" : "no",
                io::MmapSupported() ? "yes" : "no", mapped->chunk_rows(),
                mapped->sidecar_path().c_str());
  }

  const std::string json_out = args.GetString("json_out", "");
  if (!json_out.empty()) {
    common::JsonWriter json;
    json.BeginObject();
    json.KV("bench", "samples_smoke");
    json.Key("config");
    json.BeginObject();
    json.KV("dataset", path);
    json.KV("mode", mode);
    json.KV("n", ds.size());
    json.KV("m", ds.dims());
    json.KV("samples_per_object", samples_per_object);
    json.KV("sample_seed", static_cast<int64_t>(sample_seed));
    json.KV("k", k);
    json.KV("hardware_threads",
            static_cast<int64_t>(bench::HardwareThreads()));
    json.EndObject();
    json.KV("backend",
            uncertain::SampleBackendName(store->backend()));
    json.KV("sample_bytes_resident", store->sample_bytes_resident());
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(SampleFingerprint(view)));
    json.KV("sample_fingerprint", fp);
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(result_fp));
    json.KV("result_fingerprint", fp);
    json.KVExact("objective", objective);
    json.KV("peak_rss_kb", static_cast<int64_t>(bench::PeakRssKb()));
    json.EndObject();
    if (json.WriteFile(json_out)) {
      std::printf("[wrote %s]\n", json_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      std::printf("SAMPLES RESULT=FAIL\n");
      return 1;
    }
  }

  std::printf("SAMPLES RESULT=OK mode=%s backend=%s n=%zu S=%d\n",
              mode.c_str(),
              uncertain::SampleBackendName(store->backend()).c_str(),
              ds.size(), samples_per_object);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::bad_alloc&) {
    // Out of memory (e.g. under a CI `ulimit -v` cap): report it in the
    // machine-readable channel and exit non-zero.
    std::printf("SAMPLES RESULT=OOM\n");
    std::fflush(stdout);
    return 3;
  }
}
