// Service smoke: proves the clustering service end to end, with the
// machine-readable SERVICE RESULT= marker CI greps (same scheme as the
// other *_smoke benches). Two phases, both must pass:
//
//   1. Loopback e2e exactness. Starts a real ClusteringService on an
//      ephemeral port, registers the dataset and submits a CK-means job
//      over actual HTTP, polls to completion, and compares the result
//      fingerprint served by GET /v1/jobs/{id}/result against a direct
//      in-process CkMeans::ClusterFile run of the identical spec. The two
//      must be bit-identical (the fingerprint hashes every label and the
//      objective bits) — the service layer may add queueing and JSON, but
//      never a different answer.
//   2. Admission serialization. A JobManager with a finite global budget
//      and a deterministic latched runner gets two jobs that each need
//      more than half the pool: they must run strictly one at a time
//      (max_running_concurrent == 1, admission_waits >= 1) and both
//      complete; a third job over the whole pool must be rejected at
//      submit.
//
// Flags:
//   --dataset=PATH   binary dataset file              (required)
//   --k=K            clusters                         (default 8)
//   --max_iters=I    Lloyd iteration cap              (default 30)
//   --seed=S         clustering seed                  (default 1)
//   --threads=N --block_size=B ...                    engine knobs (the
//                    submitted job carries them, so the service run and
//                    the direct run use one configuration)
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>

#include "clustering/ckmeans.h"
#include "clustering/result_json.h"
#include "common/cli.h"
#include "common/json.h"
#include "service/http_client.h"
#include "service/service.h"

namespace {

using namespace uclust;  // NOLINT: bench brevity

constexpr const char* kFail = "SERVICE RESULT=FAIL\n";

bool PhaseLoopback(const std::string& dataset, int k, int max_iters,
                   uint64_t seed, const engine::EngineConfig& engine_cfg) {
  service::ServiceConfig cfg;
  cfg.http.port = 0;  // ephemeral
  cfg.jobs.executors = 2;
  service::ClusteringService svc(std::move(cfg));
  common::Status st = svc.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "service smoke: %s\n", st.ToString().c_str());
    return false;
  }
  const int port = svc.port();
  std::printf("[service smoke] listening on 127.0.0.1:%d\n", port);

  // Register the dataset over HTTP.
  common::JsonWriter reg;
  reg.BeginObject();
  reg.KV("path", dataset);
  reg.EndObject();
  auto reg_resp =
      service::HttpFetch(port, "POST", "/v1/datasets", reg.str());
  if (!reg_resp.ok() || reg_resp.ValueOrDie().status != 201) {
    std::fprintf(stderr, "service smoke: dataset registration failed: %s\n",
                 reg_resp.ok() ? reg_resp.ValueOrDie().body.c_str()
                               : reg_resp.status().ToString().c_str());
    return false;
  }
  auto reg_json = common::ParseJson(reg_resp.ValueOrDie().body);
  if (!reg_json.ok() || reg_json.ValueOrDie().Find("id") == nullptr) {
    std::fprintf(stderr, "service smoke: bad registration body\n");
    return false;
  }
  const std::string dataset_id = reg_json.ValueOrDie().Find("id")->AsString();

  // Submit the job, carrying the engine knobs so the service-side run is
  // configured exactly like the direct run below.
  common::JsonWriter spec;
  spec.BeginObject();
  spec.KV("dataset_id", dataset_id);
  spec.KV("algorithm", "CK-means");
  spec.KV("k", k);
  spec.KV("seed", static_cast<int64_t>(seed));
  spec.KV("max_iters", max_iters);
  spec.Key("engine");
  spec.BeginObject();
  spec.KV("threads", engine_cfg.num_threads);
  spec.KV("block_size", engine_cfg.block_size);
  spec.EndObject();
  spec.EndObject();
  auto submit = service::HttpFetch(port, "POST", "/v1/jobs", spec.str());
  if (!submit.ok() || submit.ValueOrDie().status != 202) {
    std::fprintf(stderr, "service smoke: submit failed: %s\n",
                 submit.ok() ? submit.ValueOrDie().body.c_str()
                             : submit.status().ToString().c_str());
    return false;
  }
  auto submit_json = common::ParseJson(submit.ValueOrDie().body);
  if (!submit_json.ok() || submit_json.ValueOrDie().Find("job_id") == nullptr) {
    std::fprintf(stderr, "service smoke: bad submit body\n");
    return false;
  }
  const std::string job_id =
      submit_json.ValueOrDie().Find("job_id")->AsString();

  // Poll over HTTP until terminal (cap ~60 s).
  std::string state = "queued";
  for (int poll = 0; poll < 3000; ++poll) {
    auto status = service::HttpFetch(port, "GET", "/v1/jobs/" + job_id);
    if (!status.ok() || status.ValueOrDie().status != 200) {
      std::fprintf(stderr, "service smoke: status poll failed\n");
      return false;
    }
    auto body = common::ParseJson(status.ValueOrDie().body);
    if (!body.ok() || body.ValueOrDie().Find("state") == nullptr) {
      std::fprintf(stderr, "service smoke: bad status body\n");
      return false;
    }
    state = body.ValueOrDie().Find("state")->AsString();
    if (state == "done" || state == "failed" || state == "cancelled") break;
    ::usleep(20 * 1000);
  }
  if (state != "done") {
    std::fprintf(stderr, "service smoke: job ended as %s\n", state.c_str());
    return false;
  }

  auto result =
      service::HttpFetch(port, "GET", "/v1/jobs/" + job_id + "/result");
  if (!result.ok() || result.ValueOrDie().status != 200) {
    std::fprintf(stderr, "service smoke: result fetch failed\n");
    return false;
  }
  auto result_json = common::ParseJson(result.ValueOrDie().body);
  if (!result_json.ok()) {
    std::fprintf(stderr, "service smoke: result body is not JSON\n");
    return false;
  }
  const common::JsonValue* payload = result_json.ValueOrDie().Find("result");
  if (payload == nullptr || payload->Find("fingerprint") == nullptr) {
    std::fprintf(stderr, "service smoke: result body lacks a fingerprint\n");
    return false;
  }
  const std::string service_fp = payload->Find("fingerprint")->AsString();
  svc.Stop();

  // The same spec, run directly — the bit-identity reference.
  clustering::CkMeans::Params params;
  params.max_iters = max_iters;
  params.reduction = engine_cfg.ukmeans_ckmeans_reduction;
  params.bound_pruning = engine_cfg.ukmeans_bound_pruning;
  params.minibatch_size = engine_cfg.ukmeans_minibatch_size;
  engine::Engine eng(engine_cfg);
  auto direct =
      clustering::CkMeans::ClusterFile(dataset, k, seed, params, eng);
  if (!direct.ok()) {
    std::fprintf(stderr, "service smoke: direct run failed: %s\n",
                 direct.status().ToString().c_str());
    return false;
  }
  const clustering::ClusteringResult& ref = direct.ValueOrDie();
  const std::string direct_fp = clustering::FingerprintHex(
      clustering::ResultFingerprint(ref.labels, ref.objective));

  std::printf("SERVICE FINGERPRINT=%s\n", service_fp.c_str());
  std::printf("DIRECT FINGERPRINT=%s\n", direct_fp.c_str());
  if (service_fp != direct_fp) {
    std::fprintf(stderr,
                 "service smoke: loopback result diverged from the direct "
                 "run (bit-identity contract broken)\n");
    return false;
  }
  std::printf("[service smoke] loopback e2e bit-identical (n=%zu)\n",
              ref.labels.size());
  return true;
}

bool PhaseAdmission(const std::string& dataset) {
  service::DatasetRegistry registry;
  auto info = registry.Register(dataset);
  if (!info.ok()) {
    std::fprintf(stderr, "service smoke: %s\n",
                 info.status().ToString().c_str());
    return false;
  }

  constexpr std::size_t kPool = 1 << 20;       // 1 MiB global budget
  constexpr std::size_t kJob = (kPool * 3) / 4;  // each job needs 3/4 of it

  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  service::JobManagerConfig cfg;
  cfg.executors = 2;  // two free lanes — only the budget serializes them
  cfg.global_budget_bytes = kPool;
  cfg.runner_override = [&](const service::JobSpec&,
                            const service::DatasetInfo&,
                            const engine::EngineConfig&)
      -> common::Result<clustering::ClusteringResult> {
    const int now = concurrent.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    ::usleep(50 * 1000);
    concurrent.fetch_sub(1);
    clustering::ClusteringResult r;
    r.labels = {0};
    r.clusters_found = 1;
    return r;
  };
  service::JobManager manager(&registry, cfg);
  manager.Start();

  service::JobSpec spec;
  spec.dataset_id = info.ValueOrDie().id;
  spec.algorithm = "CK-means";
  spec.k = 1;
  spec.engine.memory_budget_bytes = kJob;
  auto a = manager.Submit(spec, "smoke-a");
  auto b = manager.Submit(spec, "smoke-b");
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "service smoke: admission submits failed\n");
    return false;
  }

  // Over the whole pool: must be rejected at submit, not queued.
  service::JobSpec over = spec;
  over.engine.memory_budget_bytes = kPool * 2;
  auto rejected = manager.Submit(over, "smoke-over");
  if (rejected.ok() ||
      rejected.status().code() != common::StatusCode::kOutOfRange) {
    std::fprintf(stderr,
                 "service smoke: over-budget job was not rejected at "
                 "submit\n");
    return false;
  }

  if (!manager.Wait(a.ValueOrDie(), 30000) ||
      !manager.Wait(b.ValueOrDie(), 30000)) {
    std::fprintf(stderr, "service smoke: admission jobs timed out\n");
    return false;
  }
  const service::JobMetrics m = manager.Metrics();
  manager.Stop();

  std::printf("[service smoke] admission: completed=%llu "
              "max_running_concurrent=%zu admission_waits=%llu "
              "rejected=%llu (runner peak=%d)\n",
              static_cast<unsigned long long>(m.completed),
              m.max_running_concurrent,
              static_cast<unsigned long long>(m.admission_waits),
              static_cast<unsigned long long>(m.rejected), peak.load());
  if (m.completed != 2 || m.max_running_concurrent != 1 || peak.load() != 1 ||
      m.admission_waits < 1 || m.rejected != 1) {
    std::fprintf(stderr,
                 "service smoke: over-budget jobs did not serialize\n");
    return false;
  }
  std::printf("SERVICE ADMISSION=OK\n");
  return true;
}

int Run(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::string dataset = args.GetString("dataset", "");
  if (dataset.empty()) {
    std::fprintf(stderr, "service smoke: --dataset=PATH is required\n");
    return 1;
  }
  const int k = static_cast<int>(args.GetInt("k", 8));
  const int max_iters = static_cast<int>(args.GetInt("max_iters", 30));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  engine::EngineConfig engine_cfg;
  common::Status st = common::ParseEngineFlags(args, &engine_cfg);
  if (!st.ok()) {
    std::fprintf(stderr, "service smoke: %s\n", st.ToString().c_str());
    return 1;
  }

  if (!PhaseLoopback(dataset, k, max_iters, seed, engine_cfg)) {
    std::printf(kFail);
    return 1;
  }
  if (!PhaseAdmission(dataset)) {
    std::printf(kFail);
    return 1;
  }
  std::printf("SERVICE RESULT=OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
