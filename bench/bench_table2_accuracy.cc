// Reproduces Table 2: accuracy (external Theta and internal Q criteria) on
// the benchmark datasets x {Uniform, Normal, Exponential} pdfs x 7
// algorithms, averaged over multiple runs.
//
// Defaults are scaled for a laptop run (fewer runs than the paper's 50, and
// the O(n^2)-class baselines are evaluated on a subsample — printed per
// row). Flags:
//   --runs=N        protocol repetitions per cell            (default 3)
//   --scale=F       dataset size scale in (0, 1]             (default 1.0)
//   --slow_cap=N    max objects for UKmed/UAHC/FDB/FOPT      (default 400)
//   --datasets=A,B  comma-separated subset of dataset names  (default all)
//   --umin=F        min uncertainty scale (fraction of range, default 0.05)
//   --umax=F        max uncertainty scale (fraction of range, default 0.25)
//   --seed=S        master seed                              (default 1)
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "clustering/fdbscan.h"
#include "clustering/foptics.h"
#include "clustering/mmvar.h"
#include "clustering/uahc.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "clustering/ukmedoids.h"
#include "common/cli.h"
#include "common/csv.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "engine/engine.h"
#include "eval/protocol.h"

namespace {

using namespace uclust;  // NOLINT: bench brevity

struct AlgoEntry {
  std::unique_ptr<clustering::Clusterer> algo;
  bool slow;  // quadratic-or-worse: runs on the subsampled dataset
};

std::vector<AlgoEntry> MakeAlgorithms(const engine::Engine& eng) {
  std::vector<AlgoEntry> out;
  out.push_back({std::make_unique<clustering::Fdbscan>(), true});
  out.push_back({std::make_unique<clustering::Foptics>(), true});
  out.push_back({std::make_unique<clustering::Uahc>(), true});
  out.push_back({std::make_unique<clustering::UkMedoids>(), true});
  out.push_back({std::make_unique<clustering::Ukmeans>(), false});
  out.push_back({std::make_unique<clustering::Mmvar>(), false});
  out.push_back({std::make_unique<clustering::Ucpc>(), false});
  for (auto& e : out) e.algo->set_engine(eng);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const int runs = static_cast<int>(args.GetInt("runs", 3));
  const double scale = args.GetDouble("scale", 1.0);
  const std::size_t slow_cap =
      static_cast<std::size_t>(args.GetInt("slow_cap", 400));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string only = args.GetString("datasets", "");
  const double umin = args.GetDouble("umin", 0.08);
  const double umax = args.GetDouble("umax", 0.40);

  const auto algorithms = MakeAlgorithms(
      engine::Engine(bench::EngineConfigFromFlagsOrDie(args, "table2")));
  const data::PdfFamily families[] = {data::PdfFamily::kUniform,
                                      data::PdfFamily::kNormal,
                                      data::PdfFamily::kExponential};

  std::printf("=== Table 2: accuracy on benchmark datasets "
              "(runs=%d, scale=%.2f, slow_cap=%zu, seed=%llu) ===\n",
              runs, scale, slow_cap,
              static_cast<unsigned long long>(seed));
  std::printf("Theta = F(uncertain) - F(perturbed), higher is better; "
              "Q = inter - intra in [-1,1].\n\n");
  std::printf("%-9s %-4s | ", "dataset", "pdf");
  for (const auto& e : algorithms) {
    std::printf("%10s ", e.algo->name().c_str());
  }
  std::printf("\n");

  // Per (family, algorithm) running means for the paper's summary rows.
  std::map<std::string, std::map<std::string, std::pair<double, int>>>
      theta_avg;  // family -> algo -> (sum, count)
  std::map<std::string, std::pair<double, int>> theta_overall;
  std::map<std::string, std::map<std::string, std::pair<double, int>>> q_avg;
  std::map<std::string, std::pair<double, int>> q_overall;
  std::map<std::string, std::pair<double, int>> f2_overall;

  for (const auto& spec : data::PaperBenchmarkSpecs()) {
    if (!only.empty() &&
        only.find(spec.name) == std::string::npos) {
      continue;
    }
    const auto full =
        data::MakeBenchmarkDataset(spec.name, seed, scale).ValueOrDie();
    const auto small = data::Subsample(full, slow_cap, seed + 1);
    for (const auto family : families) {
      data::UncertaintyParams up;
      up.family = family;
      up.min_scale_frac = umin;
      up.max_scale_frac = umax;
      const char* fam_tag = family == data::PdfFamily::kUniform ? "U"
                            : family == data::PdfFamily::kNormal ? "N"
                                                                 : "E";
      // Theta row.
      std::printf("%-9s %-4s | ", spec.name, fam_tag);
      std::vector<double> qs;
      for (const auto& entry : algorithms) {
        const auto& source = entry.slow ? small : full;
        const eval::ThetaSummary s = eval::RunThetaProtocol(
            source, up, *entry.algo, spec.classes, runs, seed + 7);
        std::printf("%+10.3f ", s.theta);
        qs.push_back(s.q_case2);
        auto& t = theta_avg[data::PdfFamilyName(family)]
                           [entry.algo->name()];
        t.first += s.theta;
        t.second += 1;
        auto& to = theta_overall[entry.algo->name()];
        to.first += s.theta;
        to.second += 1;
        auto& qa = q_avg[data::PdfFamilyName(family)][entry.algo->name()];
        qa.first += s.q_case2;
        qa.second += 1;
        auto& qo = q_overall[entry.algo->name()];
        qo.first += s.q_case2;
        qo.second += 1;
        auto& fo = f2_overall[entry.algo->name()];
        fo.first += s.f_case2;
        fo.second += 1;
      }
      std::printf("  [Theta]\n%-9s %-4s | ", "", "");
      for (double q : qs) std::printf("%+10.3f ", q);
      std::printf("  [Q]\n");
    }
  }

  std::printf("\n--- average Theta per pdf family ---\n");
  for (const auto& [family, per_algo] : theta_avg) {
    std::printf("%-12s | ", family.c_str());
    for (const auto& entry : algorithms) {
      const auto& [sum, count] = per_algo.at(entry.algo->name());
      std::printf("%+10.3f ", sum / count);
    }
    std::printf("\n");
  }
  std::printf("--- overall average Theta (paper: UCPC best, then MMVar) "
              "---\n%-12s | ",
              "all");
  double ucpc_theta = 0.0;
  for (const auto& entry : algorithms) {
    const auto& [sum, count] = theta_overall.at(entry.algo->name());
    const double avg = sum / count;
    if (entry.algo->name() == "UCPC") ucpc_theta = avg;
    std::printf("%+10.3f ", avg);
  }
  std::printf("\n--- overall average gain of UCPC ---\n%-12s | ", "gain");
  for (const auto& entry : algorithms) {
    const auto& [sum, count] = theta_overall.at(entry.algo->name());
    std::printf("%+10.3f ", ucpc_theta - sum / count);
  }
  std::printf("\n\n--- overall average F on the uncertain datasets (Case 2; "
              "absolute accuracy) ---\n%-12s | ",
              "all");
  for (const auto& entry : algorithms) {
    const auto& [sum, count] = f2_overall.at(entry.algo->name());
    std::printf("%+10.3f ", sum / count);
  }
  std::printf("\n\n--- overall average Q ---\n%-12s | ", "all");
  double ucpc_q = 0.0;
  for (const auto& entry : algorithms) {
    const auto& [sum, count] = q_overall.at(entry.algo->name());
    const double avg = sum / count;
    if (entry.algo->name() == "UCPC") ucpc_q = avg;
    std::printf("%+10.3f ", avg);
  }
  std::printf("\n--- overall average Q gain of UCPC ---\n%-12s | ", "gain");
  for (const auto& entry : algorithms) {
    const auto& [sum, count] = q_overall.at(entry.algo->name());
    std::printf("%+10.3f ", ucpc_q - sum / count);
  }
  std::printf("\n");
  return 0;
}
