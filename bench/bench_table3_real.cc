// Reproduces Table 3: internal quality Q on the two microarray datasets
// (inherent probe-level Normal uncertainty) across cluster counts
// k in {2,3,5,10,15,20,25,30} for the 7 algorithms.
//
// Defaults are laptop-scaled: the simulated datasets carry the paper's
// condition counts but a reduced gene count, and the O(n^2)-class baselines
// run on a further subsample. Flags:
//   --genes=N     genes per dataset                       (default 1500)
//   --slow_cap=N  max genes for UKmed/UAHC/FDB/FOPT       (default 400)
//   --runs=N      repetitions per cell                    (default 2)
//   --seed=S      master seed                             (default 1)
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "clustering/fdbscan.h"
#include "clustering/foptics.h"
#include "clustering/mmvar.h"
#include "clustering/uahc.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "clustering/ukmedoids.h"
#include "common/cli.h"
#include "data/microarray_gen.h"
#include "engine/engine.h"
#include "eval/internal.h"

namespace {

using namespace uclust;  // NOLINT: bench brevity

struct AlgoEntry {
  std::unique_ptr<clustering::Clusterer> algo;
  bool slow;
};

std::vector<AlgoEntry> MakeAlgorithms(const engine::Engine& eng) {
  std::vector<AlgoEntry> out;
  out.push_back({std::make_unique<clustering::Fdbscan>(), true});
  out.push_back({std::make_unique<clustering::Foptics>(), true});
  out.push_back({std::make_unique<clustering::Uahc>(), true});
  out.push_back({std::make_unique<clustering::UkMedoids>(), true});
  out.push_back({std::make_unique<clustering::Ukmeans>(), false});
  out.push_back({std::make_unique<clustering::Mmvar>(), false});
  out.push_back({std::make_unique<clustering::Ucpc>(), false});
  for (auto& e : out) e.algo->set_engine(eng);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const int genes = static_cast<int>(args.GetInt("genes", 1500));
  const std::size_t slow_cap =
      static_cast<std::size_t>(args.GetInt("slow_cap", 400));
  const int runs = static_cast<int>(args.GetInt("runs", 2));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));

  const auto algorithms = MakeAlgorithms(
      engine::Engine(bench::EngineConfigFromFlagsOrDie(args, "table3")));
  const int cluster_counts[] = {2, 3, 5, 10, 15, 20, 25, 30};

  std::printf("=== Table 3: internal quality Q on real (microarray-like) "
              "datasets (genes=%d, slow_cap=%zu, runs=%d) ===\n\n",
              genes, slow_cap, runs);

  std::map<std::string, std::pair<double, int>> overall;
  for (const auto& spec : data::PaperMicroarraySpecs()) {
    const double scale =
        static_cast<double>(genes) / static_cast<double>(spec.genes);
    const auto full =
        data::MakeMicroarrayByName(spec.name, seed, scale).ValueOrDie();
    const auto small = full.Subsampled(slow_cap, seed + 1);
    std::printf("%-14s %4s | ", spec.name, "k");
    for (const auto& e : algorithms) {
      std::printf("%10s ", e.algo->name().c_str());
    }
    std::printf("\n");
    std::map<std::string, std::pair<double, int>> per_dataset;
    for (int k : cluster_counts) {
      std::printf("%-14s %4d | ", "", k);
      for (const auto& entry : algorithms) {
        const auto& ds = entry.slow ? small : full;
        double q_sum = 0.0;
        for (int r = 0; r < runs; ++r) {
          const auto result =
              entry.algo->Cluster(ds, k, seed + 13 * k + r);
          q_sum += eval::EvaluateInternal(
                       ds.moments(), result.labels,
                       std::max(k, result.clusters_found))
                       .q;
        }
        const double q = q_sum / runs;
        std::printf("%+10.3f ", q);
        auto& pd = per_dataset[entry.algo->name()];
        pd.first += q;
        pd.second += 1;
        auto& ov = overall[entry.algo->name()];
        ov.first += q;
        ov.second += 1;
      }
      std::printf("\n");
    }
    std::printf("%-14s %4s | ", spec.name, "avg");
    for (const auto& entry : algorithms) {
      const auto& [sum, count] = per_dataset.at(entry.algo->name());
      std::printf("%+10.3f ", sum / count);
    }
    std::printf("\n\n");
  }

  std::printf("--- overall average Q (paper: UCPC best; MMVar closest "
              "competitor among partitional) ---\n%-19s | ",
              "all");
  double ucpc_q = 0.0;
  for (const auto& entry : algorithms) {
    const auto& [sum, count] = overall.at(entry.algo->name());
    const double avg = sum / count;
    if (entry.algo->name() == "UCPC") ucpc_q = avg;
    std::printf("%+10.3f ", avg);
  }
  std::printf("\n--- overall average gain of UCPC ---\n%-19s | ", "gain");
  for (const auto& entry : algorithms) {
    const auto& [sum, count] = overall.at(entry.algo->name());
    std::printf("%+10.3f ", ucpc_q - sum / count);
  }
  std::printf("\n");
  return 0;
}
