// Small shared helpers for the bench executables.
#ifndef UCLUST_BENCH_BENCH_UTIL_H_
#define UCLUST_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstring>
#include <span>

#include "uncertain/moments.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace uclust::bench {

/// Lifetime peak resident set size of this process in KB (getrusage
/// ru_maxrss; 0 where unsupported). Monotone high-water mark: a reading is
/// attributable to a phase only if no heavier phase preceded it.
inline long PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

/// FNV-1a over every moment byte of a view (mean, mu2, var row by row): a
/// stable fingerprint for cross-mode / cross-backend comparison in CI logs.
/// Identical for any storage backend serving the same statistics.
inline uint64_t MomentFingerprint(const uncertain::MomentView& view) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::span<const double> row) {
    for (double v : row) {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      for (int b = 0; b < 64; b += 8) {
        h ^= (bits >> b) & 0xff;
        h *= 1099511628211ull;
      }
    }
  };
  for (std::size_t i = 0; i < view.size(); ++i) {
    mix(view.mean(i));
    mix(view.second_moment(i));
    mix(view.variance(i));
  }
  return h;
}

}  // namespace uclust::bench

#endif  // UCLUST_BENCH_BENCH_UTIL_H_
