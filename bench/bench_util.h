// Small shared helpers for the bench executables.
#ifndef UCLUST_BENCH_BENCH_UTIL_H_
#define UCLUST_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "clustering/result_json.h"
#include "clustering/simd/simd.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "uncertain/moments.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace uclust::bench {

/// Lifetime peak resident set size of this process in KB (getrusage
/// ru_maxrss; 0 where unsupported). Monotone high-water mark: a reading is
/// attributable to a phase only if no heavier phase preceded it.
inline long PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

/// Hardware concurrency of the machine running the bench (0 when the
/// runtime cannot determine it). Recorded in every bench JSON so archived
/// artifacts are interpretable across runners: a parallel speedup of ~1.0x
/// on hardware_threads=1 is the machine's ceiling, not a regression.
inline unsigned HardwareThreads() { return std::thread::hardware_concurrency(); }

/// Strict engine-knob parsing for bench/tool main()s: every canonical knob
/// present in `args` is applied via common::ParseEngineFlags; a malformed
/// value prints "<tool>: <message>" to stderr and exits 1 (uniform across
/// binaries — unlike the legacy lenient engine::EngineConfigFromArgs, which
/// warned and kept the default).
inline engine::EngineConfig EngineConfigFromFlagsOrDie(
    const common::ArgParser& args, const char* tool) {
  engine::EngineConfig cfg;
  const common::Status st = common::ParseEngineFlags(args, &cfg);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", tool, st.ToString().c_str());
    std::exit(1);
  }
  return cfg;
}

/// Timing-free results fingerprint — now canonical in
/// clustering/result_json.h (the service result route hashes the same
/// bytes); this alias keeps the historical bench spelling.
inline uint64_t ResultFingerprint(std::span<const int> labels,
                                  double objective) {
  return clustering::ResultFingerprint(labels, objective);
}

/// FNV-1a over every moment byte of a view (mean, mu2, var row by row): a
/// stable fingerprint for cross-mode / cross-backend comparison in CI logs.
/// Identical for any storage backend serving the same statistics.
inline uint64_t MomentFingerprint(const uncertain::MomentView& view) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::span<const double> row) {
    for (double v : row) {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      for (int b = 0; b < 64; b += 8) {
        h ^= (bits >> b) & 0xff;
        h *= 1099511628211ull;
      }
    }
  };
  for (std::size_t i = 0; i < view.size(); ++i) {
    mix(view.mean(i));
    mix(view.second_moment(i));
    mix(view.variance(i));
  }
  return h;
}

/// One ISA path's ED^ tile throughput — the compact kernel_throughput axis
/// the macro benches (fig4) embed so archived JSONs tie algorithm-level
/// runtimes to the machine's kernel-level ceiling.
struct KernelThroughputRow {
  std::string isa;
  double ed2_evals_per_s = 0.0;
  double ed2_gb_per_s = 0.0;
};

/// Measures the closed-form ED^ tile kernel (tile_rows x n evaluations of
/// dimension m, FillRowTile's access shape) per compiled-and-supported ISA
/// path. Runs each path for at least min_ms of wall time. Deterministic
/// inputs; does not disturb the process-global dispatch state. The full
/// per-primitive microbench is bench_kernel_throughput.
inline std::vector<KernelThroughputRow> MeasureEd2TileThroughput(
    std::size_t m, std::size_t tile_rows, std::size_t n, double min_ms,
    uint64_t seed) {
  namespace simd = clustering::simd;
  common::Rng rng(seed);
  std::vector<double> means(n * m), total_var(n);
  for (double& v : means) v = rng.Uniform(-10.0, 10.0);
  for (double& v : total_var) v = rng.Uniform(0.0, 4.0 * m);
  std::vector<double> tile(tile_rows * n);
  std::vector<KernelThroughputRow> rows;
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kNeon}) {
    const simd::KernelTable* table = simd::TableFor(isa);
    if (table == nullptr) continue;
    std::size_t evals = 0;
    common::Stopwatch sw;
    do {
      for (std::size_t r = 0; r < tile_rows; ++r) {
        double* out = tile.data() + r * n;
        const double* mean_r = means.data() + r * m;
        for (std::size_t j = 0; j < n; ++j) {
          out[j] = table->ed2(mean_r, means.data() + j * m, m, total_var[r],
                              total_var[j]);
        }
      }
      evals += tile_rows * n;
    } while (sw.ElapsedMs() < min_ms);
    KernelThroughputRow row;
    row.isa = simd::IsaName(isa);
    row.ed2_evals_per_s = static_cast<double>(evals) / sw.ElapsedSeconds();
    row.ed2_gb_per_s = row.ed2_evals_per_s * (2.0 * static_cast<double>(m)) *
                       sizeof(double) / 1e9;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace uclust::bench

#endif  // UCLUST_BENCH_BENCH_UTIL_H_
