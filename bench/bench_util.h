// Small shared helpers for the bench executables.
#ifndef UCLUST_BENCH_BENCH_UTIL_H_
#define UCLUST_BENCH_BENCH_UTIL_H_

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace uclust::bench {

/// Lifetime peak resident set size of this process in KB (getrusage
/// ru_maxrss; 0 where unsupported). Monotone high-water mark: a reading is
/// attributable to a phase only if no heavier phase preceded it.
inline long PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

}  // namespace uclust::bench

#endif  // UCLUST_BENCH_BENCH_UTIL_H_
