file(REMOVE_RECURSE
  "CMakeFiles/test_basic_ukmeans.dir/tests/test_basic_ukmeans.cc.o"
  "CMakeFiles/test_basic_ukmeans.dir/tests/test_basic_ukmeans.cc.o.d"
  "test_basic_ukmeans"
  "test_basic_ukmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_basic_ukmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
