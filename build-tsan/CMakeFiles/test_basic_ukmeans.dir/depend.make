# Empty dependencies file for test_basic_ukmeans.
# This may be replaced when dependencies are built.
