file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_stats.dir/tests/test_cluster_stats.cc.o"
  "CMakeFiles/test_cluster_stats.dir/tests/test_cluster_stats.cc.o.d"
  "test_cluster_stats"
  "test_cluster_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
