# Empty compiler generated dependencies file for test_cluster_stats.
# This may be replaced when dependencies are built.
