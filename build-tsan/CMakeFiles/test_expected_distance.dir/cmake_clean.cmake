file(REMOVE_RECURSE
  "CMakeFiles/test_expected_distance.dir/tests/test_expected_distance.cc.o"
  "CMakeFiles/test_expected_distance.dir/tests/test_expected_distance.cc.o.d"
  "test_expected_distance"
  "test_expected_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expected_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
