# Empty dependencies file for test_expected_distance.
# This may be replaced when dependencies are built.
