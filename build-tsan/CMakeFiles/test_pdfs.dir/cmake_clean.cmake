file(REMOVE_RECURSE
  "CMakeFiles/test_pdfs.dir/tests/test_pdfs.cc.o"
  "CMakeFiles/test_pdfs.dir/tests/test_pdfs.cc.o.d"
  "test_pdfs"
  "test_pdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
