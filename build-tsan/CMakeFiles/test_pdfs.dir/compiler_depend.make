# Empty compiler generated dependencies file for test_pdfs.
# This may be replaced when dependencies are built.
