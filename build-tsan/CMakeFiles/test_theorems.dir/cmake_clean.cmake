file(REMOVE_RECURSE
  "CMakeFiles/test_theorems.dir/tests/test_theorems.cc.o"
  "CMakeFiles/test_theorems.dir/tests/test_theorems.cc.o.d"
  "test_theorems"
  "test_theorems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_theorems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
