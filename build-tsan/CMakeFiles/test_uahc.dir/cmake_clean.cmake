file(REMOVE_RECURSE
  "CMakeFiles/test_uahc.dir/tests/test_uahc.cc.o"
  "CMakeFiles/test_uahc.dir/tests/test_uahc.cc.o.d"
  "test_uahc"
  "test_uahc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uahc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
