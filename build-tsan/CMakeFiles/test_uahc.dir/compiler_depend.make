# Empty compiler generated dependencies file for test_uahc.
# This may be replaced when dependencies are built.
