file(REMOVE_RECURSE
  "CMakeFiles/test_ukmeans.dir/tests/test_ukmeans.cc.o"
  "CMakeFiles/test_ukmeans.dir/tests/test_ukmeans.cc.o.d"
  "test_ukmeans"
  "test_ukmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ukmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
