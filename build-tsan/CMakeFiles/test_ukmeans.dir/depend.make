# Empty dependencies file for test_ukmeans.
# This may be replaced when dependencies are built.
