file(REMOVE_RECURSE
  "CMakeFiles/test_ukmedoids.dir/tests/test_ukmedoids.cc.o"
  "CMakeFiles/test_ukmedoids.dir/tests/test_ukmedoids.cc.o.d"
  "test_ukmedoids"
  "test_ukmedoids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ukmedoids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
