# Empty compiler generated dependencies file for test_ukmedoids.
# This may be replaced when dependencies are built.
