file(REMOVE_RECURSE
  "CMakeFiles/test_uncertain_object.dir/tests/test_uncertain_object.cc.o"
  "CMakeFiles/test_uncertain_object.dir/tests/test_uncertain_object.cc.o.d"
  "test_uncertain_object"
  "test_uncertain_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uncertain_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
