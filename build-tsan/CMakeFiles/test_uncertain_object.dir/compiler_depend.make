# Empty compiler generated dependencies file for test_uncertain_object.
# This may be replaced when dependencies are built.
