
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/basic_ukmeans.cc" "CMakeFiles/uclust.dir/src/clustering/basic_ukmeans.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/basic_ukmeans.cc.o.d"
  "/root/repo/src/clustering/cluster_stats.cc" "CMakeFiles/uclust.dir/src/clustering/cluster_stats.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/cluster_stats.cc.o.d"
  "/root/repo/src/clustering/clusterer.cc" "CMakeFiles/uclust.dir/src/clustering/clusterer.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/clusterer.cc.o.d"
  "/root/repo/src/clustering/fdbscan.cc" "CMakeFiles/uclust.dir/src/clustering/fdbscan.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/fdbscan.cc.o.d"
  "/root/repo/src/clustering/foptics.cc" "CMakeFiles/uclust.dir/src/clustering/foptics.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/foptics.cc.o.d"
  "/root/repo/src/clustering/init.cc" "CMakeFiles/uclust.dir/src/clustering/init.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/init.cc.o.d"
  "/root/repo/src/clustering/kernels.cc" "CMakeFiles/uclust.dir/src/clustering/kernels.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/kernels.cc.o.d"
  "/root/repo/src/clustering/local_search.cc" "CMakeFiles/uclust.dir/src/clustering/local_search.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/local_search.cc.o.d"
  "/root/repo/src/clustering/mmvar.cc" "CMakeFiles/uclust.dir/src/clustering/mmvar.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/mmvar.cc.o.d"
  "/root/repo/src/clustering/pruning.cc" "CMakeFiles/uclust.dir/src/clustering/pruning.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/pruning.cc.o.d"
  "/root/repo/src/clustering/registry.cc" "CMakeFiles/uclust.dir/src/clustering/registry.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/registry.cc.o.d"
  "/root/repo/src/clustering/uahc.cc" "CMakeFiles/uclust.dir/src/clustering/uahc.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/uahc.cc.o.d"
  "/root/repo/src/clustering/ucpc.cc" "CMakeFiles/uclust.dir/src/clustering/ucpc.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/ucpc.cc.o.d"
  "/root/repo/src/clustering/ukmeans.cc" "CMakeFiles/uclust.dir/src/clustering/ukmeans.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/ukmeans.cc.o.d"
  "/root/repo/src/clustering/ukmedoids.cc" "CMakeFiles/uclust.dir/src/clustering/ukmedoids.cc.o" "gcc" "CMakeFiles/uclust.dir/src/clustering/ukmedoids.cc.o.d"
  "/root/repo/src/common/cli.cc" "CMakeFiles/uclust.dir/src/common/cli.cc.o" "gcc" "CMakeFiles/uclust.dir/src/common/cli.cc.o.d"
  "/root/repo/src/common/csv.cc" "CMakeFiles/uclust.dir/src/common/csv.cc.o" "gcc" "CMakeFiles/uclust.dir/src/common/csv.cc.o.d"
  "/root/repo/src/common/math_utils.cc" "CMakeFiles/uclust.dir/src/common/math_utils.cc.o" "gcc" "CMakeFiles/uclust.dir/src/common/math_utils.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/uclust.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/uclust.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/uclust.dir/src/common/status.cc.o" "gcc" "CMakeFiles/uclust.dir/src/common/status.cc.o.d"
  "/root/repo/src/data/benchmark_gen.cc" "CMakeFiles/uclust.dir/src/data/benchmark_gen.cc.o" "gcc" "CMakeFiles/uclust.dir/src/data/benchmark_gen.cc.o.d"
  "/root/repo/src/data/csv_io.cc" "CMakeFiles/uclust.dir/src/data/csv_io.cc.o" "gcc" "CMakeFiles/uclust.dir/src/data/csv_io.cc.o.d"
  "/root/repo/src/data/dataset.cc" "CMakeFiles/uclust.dir/src/data/dataset.cc.o" "gcc" "CMakeFiles/uclust.dir/src/data/dataset.cc.o.d"
  "/root/repo/src/data/kdd_gen.cc" "CMakeFiles/uclust.dir/src/data/kdd_gen.cc.o" "gcc" "CMakeFiles/uclust.dir/src/data/kdd_gen.cc.o.d"
  "/root/repo/src/data/microarray_gen.cc" "CMakeFiles/uclust.dir/src/data/microarray_gen.cc.o" "gcc" "CMakeFiles/uclust.dir/src/data/microarray_gen.cc.o.d"
  "/root/repo/src/data/uncertainty_model.cc" "CMakeFiles/uclust.dir/src/data/uncertainty_model.cc.o" "gcc" "CMakeFiles/uclust.dir/src/data/uncertainty_model.cc.o.d"
  "/root/repo/src/engine/engine.cc" "CMakeFiles/uclust.dir/src/engine/engine.cc.o" "gcc" "CMakeFiles/uclust.dir/src/engine/engine.cc.o.d"
  "/root/repo/src/engine/thread_pool.cc" "CMakeFiles/uclust.dir/src/engine/thread_pool.cc.o" "gcc" "CMakeFiles/uclust.dir/src/engine/thread_pool.cc.o.d"
  "/root/repo/src/eval/external.cc" "CMakeFiles/uclust.dir/src/eval/external.cc.o" "gcc" "CMakeFiles/uclust.dir/src/eval/external.cc.o.d"
  "/root/repo/src/eval/internal.cc" "CMakeFiles/uclust.dir/src/eval/internal.cc.o" "gcc" "CMakeFiles/uclust.dir/src/eval/internal.cc.o.d"
  "/root/repo/src/eval/model_selection.cc" "CMakeFiles/uclust.dir/src/eval/model_selection.cc.o" "gcc" "CMakeFiles/uclust.dir/src/eval/model_selection.cc.o.d"
  "/root/repo/src/eval/protocol.cc" "CMakeFiles/uclust.dir/src/eval/protocol.cc.o" "gcc" "CMakeFiles/uclust.dir/src/eval/protocol.cc.o.d"
  "/root/repo/src/eval/silhouette.cc" "CMakeFiles/uclust.dir/src/eval/silhouette.cc.o" "gcc" "CMakeFiles/uclust.dir/src/eval/silhouette.cc.o.d"
  "/root/repo/src/uncertain/box.cc" "CMakeFiles/uclust.dir/src/uncertain/box.cc.o" "gcc" "CMakeFiles/uclust.dir/src/uncertain/box.cc.o.d"
  "/root/repo/src/uncertain/dirac_pdf.cc" "CMakeFiles/uclust.dir/src/uncertain/dirac_pdf.cc.o" "gcc" "CMakeFiles/uclust.dir/src/uncertain/dirac_pdf.cc.o.d"
  "/root/repo/src/uncertain/discrete_pdf.cc" "CMakeFiles/uclust.dir/src/uncertain/discrete_pdf.cc.o" "gcc" "CMakeFiles/uclust.dir/src/uncertain/discrete_pdf.cc.o.d"
  "/root/repo/src/uncertain/expected_distance.cc" "CMakeFiles/uclust.dir/src/uncertain/expected_distance.cc.o" "gcc" "CMakeFiles/uclust.dir/src/uncertain/expected_distance.cc.o.d"
  "/root/repo/src/uncertain/exponential_pdf.cc" "CMakeFiles/uclust.dir/src/uncertain/exponential_pdf.cc.o" "gcc" "CMakeFiles/uclust.dir/src/uncertain/exponential_pdf.cc.o.d"
  "/root/repo/src/uncertain/moments.cc" "CMakeFiles/uclust.dir/src/uncertain/moments.cc.o" "gcc" "CMakeFiles/uclust.dir/src/uncertain/moments.cc.o.d"
  "/root/repo/src/uncertain/normal_pdf.cc" "CMakeFiles/uclust.dir/src/uncertain/normal_pdf.cc.o" "gcc" "CMakeFiles/uclust.dir/src/uncertain/normal_pdf.cc.o.d"
  "/root/repo/src/uncertain/pdf.cc" "CMakeFiles/uclust.dir/src/uncertain/pdf.cc.o" "gcc" "CMakeFiles/uclust.dir/src/uncertain/pdf.cc.o.d"
  "/root/repo/src/uncertain/sample_cache.cc" "CMakeFiles/uclust.dir/src/uncertain/sample_cache.cc.o" "gcc" "CMakeFiles/uclust.dir/src/uncertain/sample_cache.cc.o.d"
  "/root/repo/src/uncertain/uncertain_object.cc" "CMakeFiles/uclust.dir/src/uncertain/uncertain_object.cc.o" "gcc" "CMakeFiles/uclust.dir/src/uncertain/uncertain_object.cc.o.d"
  "/root/repo/src/uncertain/uniform_pdf.cc" "CMakeFiles/uclust.dir/src/uncertain/uniform_pdf.cc.o" "gcc" "CMakeFiles/uclust.dir/src/uncertain/uniform_pdf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
