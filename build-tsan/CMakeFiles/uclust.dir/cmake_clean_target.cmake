file(REMOVE_RECURSE
  "libuclust.a"
)
