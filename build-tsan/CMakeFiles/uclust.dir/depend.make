# Empty dependencies file for uclust.
# This may be replaced when dependencies are built.
