// A tour of every clustering algorithm in the library on one uncertain
// workload: accuracy (F-measure vs the planted classes), internal quality Q,
// online runtime, and the number of expensive expected-distance
// integrations. A compact, runnable version of the paper's Tables 2-3 and
// Figure 4 story.
//
//   $ ./algorithm_tour [--n=300] [--classes=4] [--family=normal]
//                      [--threads=1] [--block_size=1024]
#include <cstdio>
#include <memory>
#include <vector>

#include "clustering/basic_ukmeans.h"
#include "clustering/fdbscan.h"
#include "clustering/foptics.h"
#include "clustering/mmvar.h"
#include "clustering/uahc.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "clustering/ukmedoids.h"
#include "common/cli.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "engine/engine.h"
#include "eval/external.h"
#include "eval/internal.h"

int main(int argc, char** argv) {
  using namespace uclust;  // NOLINT: example brevity
  const common::ArgParser args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.GetInt("n", 300));
  const int classes = static_cast<int>(args.GetInt("classes", 4));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 3));
  auto family = data::PdfFamily::kNormal;
  if (auto parsed = data::ParsePdfFamily(args.GetString("family", "normal"));
      parsed.ok()) {
    family = parsed.ValueOrDie();
  }

  data::MixtureParams mix;
  mix.n = n;
  mix.dims = 4;
  mix.classes = classes;
  const auto source = data::MakeGaussianMixture(mix, seed, "tour");
  data::UncertaintyParams up;
  up.family = family;
  const auto ds = data::UncertaintyModel(source, up, seed + 1).Uncertain();

  std::vector<std::unique_ptr<clustering::Clusterer>> algorithms;
  algorithms.push_back(std::make_unique<clustering::Ucpc>());
  algorithms.push_back(std::make_unique<clustering::Ukmeans>());
  algorithms.push_back(std::make_unique<clustering::Mmvar>());
  algorithms.push_back(std::make_unique<clustering::BasicUkmeans>());
  {
    clustering::BasicUkmeans::Params p;
    p.pruning = clustering::PruningStrategy::kMinMaxBB;
    p.cluster_shift = true;
    algorithms.push_back(std::make_unique<clustering::BasicUkmeans>(p));
    p.pruning = clustering::PruningStrategy::kVoronoi;
    algorithms.push_back(std::make_unique<clustering::BasicUkmeans>(p));
  }
  algorithms.push_back(std::make_unique<clustering::UkMedoids>());
  algorithms.push_back(std::make_unique<clustering::Uahc>());
  algorithms.push_back(std::make_unique<clustering::Fdbscan>());
  algorithms.push_back(std::make_unique<clustering::Foptics>());
  // One shared engine for the whole tour; --threads=N parallelizes every
  // algorithm without changing any of the reported numbers except runtime.
  engine::EngineConfig engine_cfg;
  const common::Status engine_st = common::ParseEngineFlags(args, &engine_cfg);
  if (!engine_st.ok()) {
    std::fprintf(stderr, "algorithm_tour: %s\n",
                 engine_st.ToString().c_str());
    return 1;
  }
  const engine::Engine eng(engine_cfg);
  for (auto& algo : algorithms) algo->set_engine(eng);

  const int runs = static_cast<int>(args.GetInt("runs", 5));
  std::printf("algorithm_tour: n=%zu m=%zu classes=%d family=%s runs=%d\n\n",
              ds.size(), ds.dims(), classes, data::PdfFamilyName(family),
              runs);
  std::printf("%-18s %8s %8s %10s %12s %6s\n", "algorithm", "F", "Q",
              "online_ms", "ED evals", "k");
  for (const auto& algo : algorithms) {
    double f = 0.0, q = 0.0, ms = 0.0;
    long long evals = 0;
    int found = 0;
    for (int r = 0; r < runs; ++r) {
      const clustering::ClusteringResult result =
          algo->Cluster(ds, classes, seed + r);
      f += eval::FMeasure(ds.labels(), result.labels);
      q += eval::EvaluateInternal(ds.moments(), result.labels,
                                  std::max(classes, result.clusters_found))
               .q;
      ms += result.online_ms;
      evals += result.ed_evaluations;
      found = result.clusters_found;
    }
    std::printf("%-18s %8.3f %8.3f %10.2f %12lld %6d\n",
                algo->name().c_str(), f / runs, q / runs, ms / runs,
                evals / runs, found);
  }
  std::printf("\nUCPC matches the fast group's runtime while leading on "
              "accuracy — the paper's headline claim.\n");
  return 0;
}
