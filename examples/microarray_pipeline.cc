// Microarray analysis scenario (Table 3 of the paper in miniature): gene
// expression levels carry probe-level uncertainty; genes are clustered into
// co-expression modules at several cluster counts and scored with the
// internal validity criterion Q = inter - intra.
//
//   $ ./microarray_pipeline [--genes=2000] [--dataset=Neuroblastoma]
#include <cstdio>
#include <string>

#include "clustering/mmvar.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "common/cli.h"
#include "data/microarray_gen.h"
#include "eval/internal.h"
#include "eval/model_selection.h"

int main(int argc, char** argv) {
  const uclust::common::ArgParser args(argc, argv);
  const std::string name = args.GetString("dataset", "Neuroblastoma");
  const int genes = static_cast<int>(args.GetInt("genes", 2000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 11));

  // Scale the paper-sized dataset down to the requested gene count.
  const auto specs = uclust::data::PaperMicroarraySpecs();
  double scale = 0.1;
  for (const auto& spec : specs) {
    if (name == spec.name) {
      scale = static_cast<double>(genes) / static_cast<double>(spec.genes);
    }
  }
  auto result = uclust::data::MakeMicroarrayByName(name, seed, scale);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const uclust::data::UncertainDataset ds = std::move(result).ValueOrDie();
  std::printf("microarray_pipeline: %s, %zu genes x %zu conditions "
              "(probe-level Normal uncertainty)\n",
              ds.name().c_str(), ds.size(), ds.dims());

  const uclust::clustering::Ucpc ucpc;
  const uclust::clustering::Mmvar mmvar;
  const uclust::clustering::Ukmeans ukmeans;
  std::printf("%6s %10s %10s %10s\n", "k", "Q(UCPC)", "Q(MMVar)", "Q(UKM)");
  for (int k : {2, 3, 5, 10, 15}) {
    const auto ru = ucpc.Cluster(ds, k, seed + k);
    const auto rm = mmvar.Cluster(ds, k, seed + k);
    const auto rk = ukmeans.Cluster(ds, k, seed + k);
    const double qu =
        uclust::eval::EvaluateInternal(ds.moments(), ru.labels, k).q;
    const double qm =
        uclust::eval::EvaluateInternal(ds.moments(), rm.labels, k).q;
    const double qk =
        uclust::eval::EvaluateInternal(ds.moments(), rk.labels, k).q;
    std::printf("%6d %10.4f %10.4f %10.4f\n", k, qu, qm, qk);
  }
  std::printf("(higher Q = more separated, more cohesive clustering)\n");

  // How many modules does the data actually support? Model selection via
  // the expected-distance silhouette (library extension).
  const auto selection =
      uclust::eval::SelectK(ds, ucpc, 2, 12,
                            uclust::eval::SelectionCriterion::kSilhouette,
                            /*runs=*/2, seed + 99);
  std::printf("\nmodel selection (expected-distance silhouette): "
              "best k = %d\n",
              selection.best_k);
  for (const auto& row : selection.scores) {
    std::printf("  k=%2d  silhouette=%.4f\n", row.k, row.score);
  }
  return 0;
}
