// Quickstart: build a handful of uncertain objects by hand, cluster them
// with UCPC, and inspect the result.
//
//   $ ./quickstart
//
// Walks through the four core concepts of the library:
//   1. an UncertainObject = per-dimension pdfs over a box region,
//   2. the UCPC clusterer behind the shared Clusterer interface,
//   3. expected distances and the closed-form objective,
//   4. the execution engine (thread count is a config knob; results are
//      bit-identical for any number of threads).
#include <cstdio>
#include <vector>

#include "clustering/ucpc.h"
#include "data/dataset.h"
#include "engine/engine.h"
#include "uncertain/expected_distance.h"
#include "uncertain/normal_pdf.h"
#include "uncertain/uniform_pdf.h"

int main() {
  using uclust::uncertain::PdfPtr;
  using uclust::uncertain::TruncatedNormalPdf;
  using uclust::uncertain::UncertainObject;
  using uclust::uncertain::UniformPdf;

  // Two groups of 2-D uncertain objects: sensors near (0, 0) with Normal
  // noise and sensors near (5, 5) with Uniform noise.
  std::vector<UncertainObject> objects;
  const double centers[][2] = {{0.0, 0.2}, {0.3, -0.1}, {-0.2, 0.1},
                               {5.0, 5.1}, {5.2, 4.9},  {4.8, 5.0}};
  for (int i = 0; i < 6; ++i) {
    std::vector<PdfPtr> dims;
    for (int j = 0; j < 2; ++j) {
      if (i < 3) {
        dims.push_back(TruncatedNormalPdf::Make(centers[i][j], 0.3));
      } else {
        dims.push_back(UniformPdf::Centered(centers[i][j], 0.4));
      }
    }
    objects.emplace_back(std::move(dims));
  }

  // Wrap them in a dataset (labels optional) and cluster with UCPC. The
  // engine is optional — the default is serial — and changing num_threads
  // never changes the labels or the objective.
  const uclust::data::UncertainDataset dataset("quickstart",
                                               std::move(objects), {}, 0);
  uclust::engine::EngineConfig engine_config;
  engine_config.num_threads = 0;  // 0 = all hardware threads
  uclust::clustering::Ucpc ucpc;
  ucpc.set_engine(uclust::engine::Engine(engine_config));
  const uclust::clustering::ClusteringResult result =
      ucpc.Cluster(dataset, /*k=*/2, /*seed=*/42);

  std::printf("UCPC clustered %zu objects into %d clusters "
              "(objective %.4f, %d passes)\n",
              dataset.size(), result.clusters_found, result.objective,
              result.iterations);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto& o = dataset.object(i);
    std::printf("  object %zu: mean=(%.2f, %.2f) sigma2=%.3f -> cluster %d\n",
                i, o.mean()[0], o.mean()[1], o.total_variance(),
                result.labels[i]);
  }

  // Expected distances come in closed form (Lemma 3 / Eq. 8 of the paper).
  const double cross = uclust::uncertain::ExpectedSquaredDistance(
      dataset.object(0), dataset.object(3));
  const double within = uclust::uncertain::ExpectedSquaredDistance(
      dataset.object(0), dataset.object(1));
  std::printf("ED^(o0, o3) = %.3f (across groups), ED^(o0, o1) = %.3f "
              "(within group)\n",
              cross, within);
  return 0;
}
