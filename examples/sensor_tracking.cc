// Sensor/moving-object scenario (the paper's introductory motivation):
// readings are imprecise, and positions are stale by the time they are
// processed. Raw (perturbed) readings are clustered with plain K-means-like
// processing, then the same data is clustered *with* its uncertainty model;
// the uncertainty-aware clustering recovers the true deployment groups more
// faithfully.
//
//   $ ./sensor_tracking [--sensors=400] [--groups=5] [--noise=0.15]
#include <cstdio>

#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "common/cli.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"

int main(int argc, char** argv) {
  const uclust::common::ArgParser args(argc, argv);
  const std::size_t sensors =
      static_cast<std::size_t>(args.GetInt("sensors", 400));
  const int groups = static_cast<int>(args.GetInt("groups", 5));
  // Default noise where uncertainty-awareness visibly pays off (raw noisy
  // snapshots stop being clusterable around 1/3 of the field size).
  const double noise = args.GetDouble("noise", 0.35);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 7));

  // True deployment: `groups` spatial clusters of sensors in the unit square.
  uclust::data::MixtureParams mix;
  mix.n = sensors;
  mix.dims = 2;
  mix.classes = groups;
  mix.sigma_min = 0.02;
  mix.sigma_max = 0.05;
  const uclust::data::DeterministicDataset truth =
      uclust::data::MakeGaussianMixture(mix, seed, "deployment");

  // Each reported position carries Normal measurement noise whose magnitude
  // varies per sensor (signal quality, staleness, ...).
  uclust::data::UncertaintyParams up;
  up.family = uclust::data::PdfFamily::kNormal;
  up.min_scale_frac = noise / 3.0;
  up.max_scale_frac = noise;
  const uclust::data::UncertaintyModel model(truth, up, seed + 1);

  // Pipeline A (uncertainty-oblivious): cluster noisy snapshots as if they
  // were exact. Pipeline B (uncertainty-aware): cluster the uncertain
  // objects with UCPC. Both averaged over several runs — initialization and
  // snapshot noise are random, exactly like the paper's protocol.
  const int runs = static_cast<int>(args.GetInt("runs", 10));
  const uclust::data::UncertainDataset uncertain = model.Uncertain();
  const uclust::clustering::Ukmeans ukm;
  const uclust::clustering::Ucpc ucpc;
  double f_oblivious = 0.0;
  double f_aware = 0.0;
  double aware_ms = 0.0;
  for (int r = 0; r < runs; ++r) {
    const uclust::data::DeterministicDataset snapshot =
        model.Perturbed(seed + 100 + r);
    const auto snapshot_ds =
        uclust::data::UncertainDataset::FromDeterministic(snapshot);
    f_oblivious += uclust::eval::FMeasure(
        truth.labels, ukm.Cluster(snapshot_ds, groups, seed + r).labels);
    const auto aware = ucpc.Cluster(uncertain, groups, seed + r);
    f_aware += uclust::eval::FMeasure(truth.labels, aware.labels);
    aware_ms += aware.online_ms;
  }
  f_oblivious /= runs;
  f_aware /= runs;

  std::printf("sensor_tracking: %zu sensors, %d groups, noise up to %.0f%% "
              "of the field, %d runs\n",
              sensors, groups, noise * 100.0, runs);
  std::printf("  K-means on noisy snapshots    : F = %.3f\n", f_oblivious);
  std::printf("  UCPC on the uncertainty model : F = %.3f\n", f_aware);
  std::printf("  Theta (aware - oblivious)     : %+.3f\n",
              f_aware - f_oblivious);
  std::printf("  UCPC online time              : %.2f ms/run\n",
              aware_ms / runs);
  return 0;
}
