// Streaming pipeline: write an uncertain dataset to the binary format,
// stream it back into moment statistics in bounded memory, and cluster.
//
//   $ ./streaming_pipeline [--path=/tmp/demo.ubin]
//
// Walks through the dataset I/O layer added for large-n workloads:
//   1. BinaryDatasetWriter — serialize objects one at a time (O(m) memory),
//   2. StreamMomentsFromFile — BinaryDatasetReader batches feeding
//      DatasetBuilder, so only one batch of pdf objects is ever resident,
//   3. UK-means / UCPC on the streamed MomentMatrix via RunOnMoments,
//   4. the bit-identity guarantee: streamed moments equal the classic
//      in-memory path exactly, for any batch size and thread count.
#include <cstdio>
#include <vector>

#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "common/cli.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "io/dataset_writer.h"
#include "io/ingest.h"
#include "uncertain/normal_pdf.h"
#include "uncertain/uniform_pdf.h"

int main(int argc, char** argv) {
  using namespace uclust;  // NOLINT: example brevity
  const common::ArgParser args(argc, argv);
  const std::string path = args.GetString("path", "/tmp/uclust_demo.ubin");

  // 1. Generate two noisy groups and serialize them object by object. A
  // real producer (tools/dataset_gen.cc) never holds more than one object.
  io::BinaryDatasetWriter writer;
  common::Status st = writer.Open(path, /*dims=*/2, "demo", /*num_classes=*/2,
                                  /*with_labels=*/true);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  common::Rng rng(7);
  std::vector<uncertain::UncertainObject> kept;  // for the bit-identity demo
  for (int i = 0; i < 200; ++i) {
    const int group = i % 2;
    const double cx = group == 0 ? 0.0 : 5.0;
    std::vector<uncertain::PdfPtr> dims;
    for (int j = 0; j < 2; ++j) {
      const double center = cx + rng.Normal(0.0, 0.3);
      dims.push_back(group == 0
                         ? uncertain::TruncatedNormalPdf::Make(center, 0.25)
                         : uncertain::UniformPdf::Centered(center, 0.4));
    }
    uncertain::UncertainObject object(std::move(dims));
    st = writer.Append(object, group);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    kept.push_back(std::move(object));
  }
  st = writer.Finish();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu objects to %s\n", writer.written(), path.c_str());

  // 2. Stream the file back: batches of 32 objects feed the builder; the
  // full pdf set is never resident at once.
  std::vector<int> labels;
  auto streamed = io::StreamMomentsFromFile(path, engine::Engine::Serial(),
                                            /*batch_size=*/32, &labels);
  if (!streamed.ok()) {
    std::fprintf(stderr, "%s\n", streamed.status().ToString().c_str());
    return 1;
  }
  const uncertain::MomentMatrix mm = std::move(streamed).ValueOrDie();
  std::printf("streamed n=%zu m=%zu (batch size 32)\n", mm.size(), mm.dims());

  // 3. The fast algorithms consume the matrix directly.
  const auto ukm = clustering::Ukmeans::RunOnMoments(mm, /*k=*/2, /*seed=*/42);
  const auto ucpc = clustering::Ucpc::RunOnMoments(mm, /*k=*/2, /*seed=*/42);
  std::printf("UK-means: objective=%.4f iterations=%d\n", ukm.objective,
              ukm.iterations);
  std::printf("UCPC:     objective=%.4f passes=%d\n", ucpc.objective,
              ucpc.passes);

  // 4. Streamed ingestion is bit-identical to the in-memory path.
  const data::UncertainDataset in_memory("demo", std::move(kept),
                                         std::move(labels), 2);
  const uncertain::MomentMatrix& reference = in_memory.moments();
  bool identical = reference.size() == mm.size();
  for (std::size_t i = 0; identical && i < mm.size(); ++i) {
    for (std::size_t j = 0; j < mm.dims(); ++j) {
      identical = identical && reference.mean(i)[j] == mm.mean(i)[j] &&
                  reference.second_moment(i)[j] == mm.second_moment(i)[j] &&
                  reference.variance(i)[j] == mm.variance(i)[j];
    }
  }
  std::printf("streamed == in-memory moments: %s\n",
              identical ? "bit-identical" : "MISMATCH!");
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
