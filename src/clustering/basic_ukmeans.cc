#include "clustering/basic_ukmeans.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "clustering/init.h"
#include "clustering/kernels.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "engine/parallel_for.h"
#include "io/sample_file.h"
#include "uncertain/sample_store.h"

namespace uclust::clustering {

std::string BasicUkmeans::name() const {
  std::string base;
  switch (params_.pruning) {
    case PruningStrategy::kNone:
      base = "bUK-means";
      break;
    case PruningStrategy::kMinMaxBB:
      base = "MinMax-BB";
      break;
    case PruningStrategy::kVoronoi:
      base = "VDBiP";
      break;
  }
  if (params_.cluster_shift && params_.pruning != PruningStrategy::kNone) {
    base += "+shift";
  }
  return base;
}

ClusteringResult BasicUkmeans::Cluster(const data::UncertainDataset& data,
                                       int k, uint64_t seed) const {
  const std::size_t n = data.size();
  const std::size_t m = data.dims();
  assert(k >= 1 && n >= static_cast<std::size_t>(k));
  common::Rng rng(seed);
  const engine::Engine& eng = engine();

  // Offline phase: draw the per-object sample sets (the numeric stand-in for
  // the pdfs) and collect the regions. Excluded from the online time, as in
  // the paper's efficiency protocol.
  common::Stopwatch offline;
  const uncertain::SampleStorePtr store = io::MakeSampleStoreOrResident(
      data, params_.samples, params_.sample_seed, eng);
  const uncertain::SampleView samples = store->view();
  const uncertain::MomentView mm = data.moments().view();
  const double offline_ms = offline.ElapsedMs();

  common::Stopwatch online;
  std::vector<double> centroids =
      CentroidsFromObjects(mm, RandomDistinctObjects(n, k, &rng));
  auto centroid = [&](int c) {
    return std::span<const double>(
        centroids.data() + static_cast<std::size_t>(c) * m, m);
  };

  ClusteringResult result;
  result.k_requested = k;
  result.labels.assign(n, -1);

  const bool use_shift =
      params_.cluster_shift && params_.pruning != PruningStrategy::kNone;
  // Cluster-shift state: last exact ED per (object, centroid), plus the
  // cumulative centroid travel at the time it was stored. The centroid's
  // travel since then upper-bounds ||c_then - c_now|| by triangle inequality.
  std::vector<double> stored_ed;
  std::vector<double> stored_travel;
  std::vector<double> travel(k, 0.0);
  if (use_shift) {
    stored_ed.assign(n * static_cast<std::size_t>(k), -1.0);
    stored_travel.assign(n * static_cast<std::size_t>(k), 0.0);
  }
  std::vector<double> prev_centroids;

  // Per-object scratch of the assignment sweep, one copy per engine lane.
  struct Scratch {
    std::vector<int> candidates;
    std::vector<EdBounds> bounds;
  };
  engine::PerWorker<Scratch> scratch(
      eng, Scratch{{}, std::vector<EdBounds>(k)});
  struct BlockStats {
    std::size_t changed = 0;
    int64_t ed_evaluations = 0;
  };

  std::vector<double> sums;
  std::vector<std::size_t> counts;

  for (result.iterations = 0; result.iterations < params_.max_iters;
       ++result.iterations) {
    if (use_shift && !prev_centroids.empty()) {
      for (int c = 0; c < k; ++c) {
        travel[c] += common::Distance(
            centroid(c), std::span<const double>(
                             prev_centroids.data() +
                                 static_cast<std::size_t>(c) * m,
                             m));
      }
    }

    // Assignment sweep over object blocks. Rows of the cluster-shift cache
    // are per-object, so blocks write disjoint state; labels and counters
    // are combined in block order, keeping the outcome independent of the
    // engine thread count.
    const std::vector<BlockStats> per_block =
        engine::MapBlocks<BlockStats>(eng, n, [&](const engine::BlockedRange&
                                                      range) {
          BlockStats bs;
          Scratch& sc = scratch.local();
          for (std::size_t i = range.begin; i < range.end; ++i) {
            const uncertain::Box& box = data.object(i).region();
            sc.candidates.clear();

            if (params_.pruning == PruningStrategy::kNone) {
              for (int c = 0; c < k; ++c) sc.candidates.push_back(c);
            } else {
              // Bounds per centroid: MBR bounds, refined by cluster shift.
              double min_ub = std::numeric_limits<double>::infinity();
              for (int c = 0; c < k; ++c) {
                EdBounds b = MinMaxBounds(box, centroid(c));
                if (use_shift) {
                  const std::size_t idx = i * static_cast<std::size_t>(k) +
                                          static_cast<std::size_t>(c);
                  if (stored_ed[idx] >= 0.0) {
                    b = TightestOf(
                        b, ShiftBounds(stored_ed[idx],
                                       travel[c] - stored_travel[idx]));
                  }
                }
                sc.bounds[c] = b;
                min_ub = std::min(min_ub, b.ub);
              }
              for (int c = 0; c < k; ++c) {
                if (sc.bounds[c].lb <= min_ub) sc.candidates.push_back(c);
              }
              if (params_.pruning == PruningStrategy::kVoronoi &&
                  sc.candidates.size() > 1) {
                VoronoiFilter(box, centroids, m, &sc.candidates);
              }
            }

            int best = sc.candidates.front();
            if (sc.candidates.size() > 1) {
              double best_ed = std::numeric_limits<double>::infinity();
              for (int c : sc.candidates) {
                const double ed =
                    samples.ExpectedSquaredDistanceToPoint(i, centroid(c));
                ++bs.ed_evaluations;
                if (use_shift) {
                  const std::size_t idx = i * static_cast<std::size_t>(k) +
                                          static_cast<std::size_t>(c);
                  stored_ed[idx] = ed;
                  stored_travel[idx] = travel[c];
                }
                if (ed < best_ed) {
                  best_ed = ed;
                  best = c;
                }
              }
            }
            if (best != result.labels[i]) {
              result.labels[i] = best;
              ++bs.changed;
            }
          }
          return bs;
        });
    std::size_t changed = 0;
    for (const BlockStats& bs : per_block) {
      changed += bs.changed;
      result.ed_evaluations += bs.ed_evaluations;
    }
    if (changed == 0) break;

    // Centroid update (Eq. 7), identical to the fast UK-means.
    if (use_shift) prev_centroids = centroids;
    kernels::SumMeansByLabel(eng, mm, result.labels, k, &sums, &counts);
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        const auto mean = mm.mean(rng.Index(n));
        std::copy(mean.begin(), mean.end(),
                  centroids.begin() + static_cast<std::size_t>(c) * m);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t j = 0; j < m; ++j) {
        centroids[static_cast<std::size_t>(c) * m + j] =
            sums[static_cast<std::size_t>(c) * m + j] * inv;
      }
    }
  }

  // Reported objective uses the closed form (Eq. 8) — exact and free, so the
  // pruning effort is not polluted by reporting-only ED integrations.
  result.objective =
      kernels::AssignmentObjective(eng, mm, result.labels, centroids);
  result.online_ms = online.ElapsedMs();
  result.offline_ms = offline_ms;
  result.clusters_found = CountClusters(result.labels);
  return result;
}

}  // namespace uclust::clustering
