// Basic UK-means (Chau, Cheng, Kao & Ng, PAKDD 2006): Lloyd-style clustering
// where each expected distance ED(o, c) is integrated numerically over S
// Monte-Carlo realizations of o — the O(I S k n m) cost profile that the
// pruning literature (MinMax-BB, VDBiP, cluster shift) attacks. The pruning
// strategy is pluggable so the same binary reproduces bUKM and its pruned
// variants; `ed_evaluations` in the result counts the exact sample-based
// integrations the pruners try to avoid.
//
// This sample-integrated formulation exists to reproduce the baselines the
// paper compares against; it is NOT the production UK-means path. The fast
// family (ukmeans.h) removes the S factor entirely via the closed form, and
// its CK-means layer (ckmeans.h) prunes the remaining k factor with
// Hamerly/Elkan bounds over the reduced representation — the bounds there
// play the role MinMax-BB/VDBiP play here, but without any sampling error.
#ifndef UCLUST_CLUSTERING_BASIC_UKMEANS_H_
#define UCLUST_CLUSTERING_BASIC_UKMEANS_H_

#include "clustering/clusterer.h"
#include "clustering/pruning.h"

namespace uclust::clustering {

/// The basic (sample-integrating) UK-means with optional pruning.
class BasicUkmeans final : public Clusterer {
 public:
  /// Tuning knobs.
  struct Params {
    int samples = 32;          ///< Monte-Carlo samples per object (S).
    int max_iters = 100;       ///< Cap on Lloyd iterations.
    PruningStrategy pruning = PruningStrategy::kNone;
    bool cluster_shift = false;  ///< Couple with the cluster-shift bounds.
    uint64_t sample_seed = 0x5eedcafeULL;  ///< Seed for the sample cache.
  };

  BasicUkmeans() = default;
  explicit BasicUkmeans(const Params& params) : params_(params) {}

  std::string name() const override;
  ClusteringResult Cluster(const data::UncertainDataset& data, int k,
                           uint64_t seed) const override;

 private:
  Params params_;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_BASIC_UKMEANS_H_
