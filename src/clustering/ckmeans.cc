#include "clustering/ckmeans.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "clustering/kernels.h"
#include "clustering/simd/simd.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/parallel_for.h"
#include "io/ingest.h"
#include "uncertain/dataset_builder.h"

namespace uclust::clustering {

namespace {

// Relative floating-point safety margin of the bound maintenance: upper
// bounds are inflated and lower bounds deflated by this factor at every
// step, so rounding can never turn a bound test into an unsound skip. The
// skip tests are additionally strict (<), which closes the remaining exact-
// tie corner (coincident centroids at distance 0): ties always fall through
// to the full scan, whose comparison order matches kernels::NearestCentroid
// exactly — that is what makes the pruned path bit-identical to the direct
// sweeps. (Same scheme as the PairwiseBoundIndex slack, tighter because the
// quantities here are single distances, not sample sums.)
constexpr double kBoundSlack = 1e-12;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Per-sweep tallies. changed feeds the convergence test; evals/skipped feed
// the ClusteringResult counters and always sum to n * k per sweep.
struct SweepCounts {
  std::size_t changed = 0;
  int64_t evals = 0;
  int64_t skipped = 0;
};

inline std::span<const double> CentroidAt(std::span<const double> centroids,
                                          int c, std::size_t m) {
  return centroids.subspan(static_cast<std::size_t>(c) * m, m);
}

// Full k-center scan in kernels::NearestCentroid's exact comparison order
// (ascending c, strict <), additionally tracking the runner-up squared
// distance for the lower bound. reuse_c (-1 = none) short-circuits the one
// distance the bound-tightening step already evaluated — the reused value
// is the same float the scan would recompute, so the decision sequence is
// unchanged.
struct ScanResult {
  int best = 0;
  double best_d2 = kInf;
  double second_d2 = kInf;
};

inline ScanResult ScanCenters(std::span<const double> mean,
                              std::span<const double> centroids, int k,
                              std::size_t m, int reuse_c, double reuse_d2) {
  // Dispatched reduced-moment sweep kernel (clustering/simd/): same
  // ascending-c strict-< decision sequence and runner-up tracking this
  // function implemented inline before, now vectorized per distance.
  ScanResult r;
  simd::NearestTwo(mean.data(), centroids.data(), k, m, reuse_c, reuse_d2,
                   &r.best, &r.best_d2, &r.second_d2);
  return r;
}

// One object's assignment decision — a pure function of the object's own
// (label, ub, lb) state and the shared centroids/half_sep inputs, so any
// partition of objects over threads yields the same labels and the same
// counter totals. Hamerly's test first (skip the whole scan), then the
// tightened-upper-bound retest (skip all but the assigned center), then
// the full scan that restores exact bounds.
inline void AssignOne(std::span<const double> mean,
                      std::span<const double> centroids, int k, std::size_t m,
                      bool use_bounds, std::span<const double> half_sep,
                      int* label, double* ub, double* lb, SweepCounts* sc) {
  if (use_bounds && *label >= 0) {
    const double bound = std::max(*lb, half_sep[*label]);
    if (*ub < bound) {
      sc->skipped += k;
      return;
    }
    const double d2a =
        common::SquaredDistance(mean, CentroidAt(centroids, *label, m));
    sc->evals += 1;
    *ub = std::sqrt(d2a) * (1.0 + kBoundSlack);
    if (*ub < bound) {
      sc->skipped += k - 1;
      return;
    }
    const ScanResult r = ScanCenters(mean, centroids, k, m, *label, d2a);
    sc->evals += k - 1;
    if (r.best != *label) {
      *label = r.best;
      ++sc->changed;
    }
    *ub = std::sqrt(r.best_d2) * (1.0 + kBoundSlack);
    *lb = std::sqrt(r.second_d2) * (1.0 - kBoundSlack);
    return;
  }
  const ScanResult r = ScanCenters(mean, centroids, k, m, -1, 0.0);
  sc->evals += k;
  if (r.best != *label) {
    *label = r.best;
    ++sc->changed;
  }
  if (use_bounds) {
    *ub = std::sqrt(r.best_d2) * (1.0 + kBoundSlack);
    *lb = std::sqrt(r.second_d2) * (1.0 - kBoundSlack);
  }
}

// half_sep[c] = deflated half distance to c's nearest other center — the
// Elkan-style per-center skip radius: an object within half_sep of its
// assigned center cannot be closer to any other. O(k^2); not counted by
// center_distance_evals (it is center-to-center, not object-to-center).
void HalfSeparations(std::span<const double> centroids, int k, std::size_t m,
                     std::vector<double>* half_sep) {
  std::vector<double> min_d2(static_cast<std::size_t>(k), kInf);
  for (int c = 0; c < k; ++c) {
    for (int c2 = c + 1; c2 < k; ++c2) {
      const double d2 = common::SquaredDistance(CentroidAt(centroids, c, m),
                                                CentroidAt(centroids, c2, m));
      if (d2 < min_d2[c]) min_d2[c] = d2;
      if (d2 < min_d2[c2]) min_d2[c2] = d2;
    }
  }
  half_sep->resize(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    (*half_sep)[c] = 0.5 * std::sqrt(min_d2[c]) * (1.0 - kBoundSlack);
  }
}

// Loosens every object's bounds after a centroid update: the upper bound
// absorbs its own center's drift, the lower bound gives up the largest
// drift of any center. Inflation/deflation keeps both sides conservative
// under rounding; the inf lower bounds of k == 1 stay inf.
void MaintainBounds(const engine::Engine& eng, std::size_t m, int k,
                    std::span<const double> old_centroids,
                    std::span<const double> centroids,
                    std::span<const int> labels, std::span<double> ub,
                    std::span<double> lb) {
  std::vector<double> drift(static_cast<std::size_t>(k));
  double max_drift = 0.0;
  for (int c = 0; c < k; ++c) {
    drift[c] = std::sqrt(common::SquaredDistance(
        CentroidAt(old_centroids, c, m), CentroidAt(centroids, c, m)));
    max_drift = std::max(max_drift, drift[c]);
  }
  engine::ParallelFor(eng, labels.size(), [&](const engine::BlockedRange& r) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      ub[i] = (ub[i] + drift[labels[i]]) * (1.0 + kBoundSlack);
      const double down = lb[i] - max_drift;
      lb[i] = down <= 0.0 ? 0.0 : down * (1.0 - kBoundSlack);
    }
  });
}

// In-memory assignment sweep over a full view. Label/bound writes are
// per-object disjoint; the shared inputs are read-only, so the blocked
// parallel pass is race-free and partition-independent.
SweepCounts AssignSweep(const engine::Engine& eng,
                        const uncertain::MomentView& view,
                        std::span<const double> centroids, int k,
                        bool use_bounds, std::span<const double> half_sep,
                        std::span<int> labels, std::span<double> ub,
                        std::span<double> lb) {
  const std::size_t m = view.dims();
  const std::vector<SweepCounts> per_block = engine::MapBlocks<SweepCounts>(
      eng, view.size(), [&](const engine::BlockedRange& r) {
        SweepCounts sc;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          AssignOne(view.mean(i), centroids, k, m, use_bounds, half_sep,
                    &labels[i], use_bounds ? &ub[i] : nullptr,
                    use_bounds ? &lb[i] : nullptr, &sc);
        }
        return sc;
      });
  SweepCounts total;
  for (const SweepCounts& sc : per_block) {
    total.changed += sc.changed;
    total.evals += sc.evals;
    total.skipped += sc.skipped;
  }
  return total;
}

// ---- epoch-streaming support (ClusterFile's mini-batch driver) ----------

// Assignment sweep over one streamed batch (batch-local view rows, absolute
// label/bound indices). Per-object decisions are pure, so neither the
// mini-batch size nor the thread partition affects the produced labels.
SweepCounts AssignBatch(const engine::Engine& eng,
                        const uncertain::MomentView& view, std::size_t base,
                        std::span<const double> centroids, int k,
                        bool use_bounds, std::span<const double> half_sep,
                        std::span<int> labels, std::span<double> ub,
                        std::span<double> lb) {
  const std::size_t m = view.dims();
  const std::vector<SweepCounts> per_block = engine::MapBlocks<SweepCounts>(
      eng, view.size(), [&](const engine::BlockedRange& r) {
        SweepCounts sc;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          const std::size_t g = base + i;
          AssignOne(view.mean(i), centroids, k, m, use_bounds, half_sep,
                    &labels[g], use_bounds ? &ub[g] : nullptr,
                    use_bounds ? &lb[g] : nullptr, &sc);
        }
        return sc;
      });
  SweepCounts total;
  for (const SweepCounts& sc : per_block) {
    total.changed += sc.changed;
    total.evals += sc.evals;
    total.skipped += sc.skipped;
  }
  return total;
}

// Streaming replication of kernels::SumMeansByLabel's partial structure:
// fold points are the engine block grid over ABSOLUTE object indices, never
// the mini-batch cuts. A grid block wholly inside the batch gets its partial
// computed in parallel; the fragments at the batch edges continue (or open)
// the sequential carry partial, which accumulates rows in index order across
// batch boundaries. Completed blocks fold into the totals in ascending
// order — the exact left-to-right fold of the in-memory kernel, so the
// final sums are bit-identical for ANY mini-batch size and thread count.
struct GridSumAccumulator {
  std::vector<double> sums;            // k * m running totals
  std::vector<std::size_t> counts;     // k running totals
  std::vector<double> carry_sums;      // open partial of the current block
  std::vector<std::size_t> carry_counts;
  bool carry_open = false;
};

void AccumulateSumsBatch(const engine::Engine& eng,
                         const uncertain::MomentView& view, std::size_t base,
                         std::size_t n_total, std::span<const int> labels,
                         int k, GridSumAccumulator* acc) {
  const std::size_t rows = view.size();
  const std::size_t m = view.dims();
  const std::size_t km = static_cast<std::size_t>(k) * m;
  const std::size_t block = eng.block_size();
  const std::size_t end = base + rows;
  struct Partial {
    std::vector<double> sums;
    std::vector<std::size_t> counts;
  };
  const std::size_t first_full = (base + block - 1) / block;
  const std::size_t full_bound = end / block;  // exclusive
  std::vector<Partial> partials;
  auto add_row = [&](std::size_t i, std::vector<double>* sums,
                     std::vector<std::size_t>* counts) {
    const auto mean = view.mean(i - base);
    double* dst =
        sums->data() + static_cast<std::size_t>(labels[i]) * m;
    simd::VectorAdd(dst, mean.data(), m);
    ++(*counts)[labels[i]];
  };
  if (full_bound > first_full) {
    partials.resize(full_bound - first_full);
    engine::ParallelFor(eng, partials.size(),
                        [&](const engine::BlockedRange& r) {
      for (std::size_t t = r.begin; t < r.end; ++t) {
        Partial& p = partials[t];
        p.sums.assign(km, 0.0);
        p.counts.assign(static_cast<std::size_t>(k), 0);
        const std::size_t lo = (first_full + t) * block;
        for (std::size_t i = lo; i < lo + block; ++i) {
          add_row(i, &p.sums, &p.counts);
        }
      }
    });
  }
  auto fold = [&](const std::vector<double>& sums,
                  const std::vector<std::size_t>& counts) {
    for (std::size_t j = 0; j < km; ++j) acc->sums[j] += sums[j];
    for (int c = 0; c < k; ++c) acc->counts[c] += counts[c];
  };
  std::size_t pos = base;
  while (pos < end) {
    const std::size_t g = pos / block;
    const std::size_t block_end = (g + 1) * block;
    const std::size_t seg_end = std::min(end, block_end);
    if (pos == g * block && g >= first_full && g < full_bound) {
      // A whole grid block: its parallel partial folds directly. The carry
      // cannot be open here — an open carry means pos is mid-block.
      fold(partials[g - first_full].sums, partials[g - first_full].counts);
    } else {
      if (!acc->carry_open) {
        acc->carry_sums.assign(km, 0.0);
        acc->carry_counts.assign(static_cast<std::size_t>(k), 0);
        acc->carry_open = true;
      }
      for (std::size_t i = pos; i < seg_end; ++i) {
        add_row(i, &acc->carry_sums, &acc->carry_counts);
      }
      if (seg_end == block_end || seg_end == n_total) {
        fold(acc->carry_sums, acc->carry_counts);
        acc->carry_open = false;
      }
    }
    pos = seg_end;
  }
}

// Same grid-aligned carry scheme for the final objective: per-block double
// partials folded in ascending block order, replicating the in-memory
// kernels::AssignmentObjective reduction bit for bit.
struct GridObjAccumulator {
  double total = 0.0;
  double carry = 0.0;
  bool carry_open = false;
};

void AccumulateObjectiveBatch(const engine::Engine& eng,
                              const uncertain::MomentView& view,
                              std::size_t base, std::size_t n_total,
                              std::span<const int> labels,
                              std::span<const double> centroids,
                              GridObjAccumulator* acc) {
  const std::size_t rows = view.size();
  const std::size_t m = view.dims();
  const std::size_t block = eng.block_size();
  const std::size_t end = base + rows;
  const std::size_t first_full = (base + block - 1) / block;
  const std::size_t full_bound = end / block;
  auto row_term = [&](std::size_t i) {
    const std::size_t c = static_cast<std::size_t>(labels[i]);
    return view.total_variance(i - base) +
           common::SquaredDistance(view.mean(i - base),
                                   centroids.subspan(c * m, m));
  };
  std::vector<double> partials;
  if (full_bound > first_full) {
    partials.assign(full_bound - first_full, 0.0);
    engine::ParallelFor(eng, partials.size(),
                        [&](const engine::BlockedRange& r) {
      for (std::size_t t = r.begin; t < r.end; ++t) {
        double p = 0.0;
        const std::size_t lo = (first_full + t) * block;
        for (std::size_t i = lo; i < lo + block; ++i) p += row_term(i);
        partials[t] = p;
      }
    });
  }
  std::size_t pos = base;
  while (pos < end) {
    const std::size_t g = pos / block;
    const std::size_t block_end = (g + 1) * block;
    const std::size_t seg_end = std::min(end, block_end);
    if (pos == g * block && g >= first_full && g < full_bound) {
      acc->total += partials[g - first_full];
    } else {
      if (!acc->carry_open) {
        acc->carry = 0.0;
        acc->carry_open = true;
      }
      for (std::size_t i = pos; i < seg_end; ++i) acc->carry += row_term(i);
      if (seg_end == block_end || seg_end == n_total) {
        acc->total += acc->carry;
        acc->carry_open = false;
      }
    }
    pos = seg_end;
  }
}

}  // namespace

ReducedMoments CkmeansReduce(const engine::Engine& eng,
                             const uncertain::MomentView& mm) {
  ReducedMoments r;
  r.n = mm.size();
  r.m = mm.dims();
  r.means.resize(r.n * r.m);
  r.constants.resize(r.n);
  engine::ParallelFor(eng, r.n, [&](const engine::BlockedRange& range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const auto mean = mm.mean(i);
      std::copy(mean.begin(), mean.end(), r.means.begin() + i * r.m);
      r.constants[i] = mm.total_variance(i);
    }
  });
  return r;
}

CkMeans::Outcome CkMeans::RunOnMoments(const uncertain::MomentView& mm,
                                       int k, uint64_t seed,
                                       const Params& params,
                                       const engine::Engine& eng) {
  const std::size_t n = mm.size();
  const std::size_t m = mm.dims();
  assert(k >= 1 && n >= static_cast<std::size_t>(k));

  ReducedMoments reduced;
  uncertain::MomentView active = mm;
  if (params.reduction) {
    reduced = CkmeansReduce(eng, mm);
    active = reduced.view();
  }

  // Seeding consumes the rng exactly like the direct path; with the
  // reduction active, k-means++ runs its D^2 rounds over the flat copied
  // means (one pass over the moments total) instead of re-touching a
  // possibly chunked view per candidate round.
  common::Rng rng(seed);
  const std::vector<std::size_t> picks =
      params.init == InitStrategy::kPlusPlus
          ? (params.reduction
                 ? PlusPlusObjects(std::span<const double>(reduced.means), n,
                                   m, k, &rng)
                 : PlusPlusObjects(active, k, &rng))
          : RandomDistinctObjects(n, k, &rng);
  std::vector<double> centroids = CentroidsFromObjects(active, picks);

  const bool use_bounds = params.bound_pruning;
  Outcome out;
  out.labels.assign(n, -1);
  std::vector<double> ub, lb, half_sep, old_centroids;
  if (use_bounds) {
    ub.assign(n, 0.0);
    lb.assign(n, 0.0);
  }
  std::vector<double> sums;
  std::vector<std::size_t> counts;

  for (out.iterations = 0; out.iterations < params.max_iters;
       ++out.iterations) {
    // The first sweep has no labels to defend, so it always full-scans;
    // half separations only matter from the second sweep on.
    if (use_bounds && out.iterations > 0) {
      HalfSeparations(centroids, k, m, &half_sep);
    }
    const SweepCounts sc = AssignSweep(eng, active, centroids, k, use_bounds,
                                       half_sep, out.labels, ub, lb);
    out.center_distance_evals += sc.evals;
    out.bounds_skipped += sc.skipped;
    if (sc.changed == 0) break;

    // Update: centroid = average of member expected values (Eq. 7), with
    // the direct path's empty-cluster reseed in the same rng order.
    kernels::SumMeansByLabel(eng, active, out.labels, k, &sums, &counts);
    if (use_bounds) old_centroids = centroids;
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        const auto mean = active.mean(rng.Index(n));
        std::copy(mean.begin(), mean.end(),
                  centroids.begin() + static_cast<std::size_t>(c) * m);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t j = 0; j < m; ++j) {
        centroids[static_cast<std::size_t>(c) * m + j] =
            sums[static_cast<std::size_t>(c) * m + j] * inv;
      }
    }
    if (use_bounds) {
      MaintainBounds(eng, m, k, old_centroids, centroids, out.labels, ub, lb);
    }
    if (params.bound_audit) {
      params.bound_audit(out.iterations, centroids, out.labels, ub, lb);
    }
  }

  out.objective = kernels::AssignmentObjective(eng, active, out.labels,
                                               centroids);
  return out;
}

ClusteringResult CkMeans::Cluster(const data::UncertainDataset& data, int k,
                                  uint64_t seed) const {
  common::Stopwatch offline;
  const uncertain::MomentView mm = data.moments().view();
  const double offline_ms = offline.ElapsedMs();

  // The engine knobs gate the instance's own parameters (never re-enable
  // what the caller turned off), so a registry-wide policy sweep controls
  // this algorithm the same way it controls the UK-means routing.
  Params p = params_;
  p.reduction = p.reduction && engine().ukmeans_ckmeans_reduction();
  p.bound_pruning = p.bound_pruning && engine().ukmeans_bound_pruning();

  common::Stopwatch online;
  Outcome outcome = RunOnMoments(mm, k, seed, p, engine());
  ClusteringResult result;
  result.online_ms = online.ElapsedMs();
  result.offline_ms = offline_ms;
  result.labels = std::move(outcome.labels);
  result.k_requested = k;
  result.clusters_found = CountClusters(result.labels);
  result.iterations = outcome.iterations;
  result.objective = outcome.objective;
  result.center_distance_evals = outcome.center_distance_evals;
  result.bounds_skipped = outcome.bounds_skipped;
  return result;
}

common::Result<ClusteringResult> CkMeans::ClusterFile(
    const std::string& path, int k, uint64_t seed, const Params& params,
    const engine::Engine& eng) {
  common::Stopwatch offline;
  io::MomentBatchStream stream(eng);
  UCLUST_RETURN_NOT_OK(stream.Open(path));
  const std::size_t n = stream.size();
  const std::size_t m = stream.dims();
  if (k < 1 || n < static_cast<std::size_t>(k)) {
    return common::Status::InvalidArgument(
        path + ": need 1 <= k <= n, got k=" + std::to_string(k) + ", n=" +
        std::to_string(n));
  }
  const std::size_t default_batch =
      uncertain::DatasetBuilder::kDefaultBatchSize;

  // Auto mode: the reduced representation is only (m + 1) doubles per
  // object — when that fits the budget, one streaming pass materializes it
  // and the in-memory loop takes over. Forcing a mini-batch size (or a
  // budget too small for even the reduction) selects the epoch-streaming
  // driver below.
  const std::size_t budget = eng.memory_budget_bytes();
  const std::size_t reduced_bytes = (m + 1) * n * sizeof(double);
  if (params.minibatch_size == 0 && (budget == 0 || reduced_bytes <= budget)) {
    ReducedMoments red;
    red.n = n;
    red.m = m;
    red.means.resize(n * m);
    red.constants.resize(n);
    for (;;) {
      auto got = stream.NextBatch(default_batch);
      UCLUST_RETURN_NOT_OK(got.status());
      const std::size_t rows = got.ValueOrDie();
      if (rows == 0) break;
      const uncertain::MomentView view = stream.batch_view();
      const std::size_t base = stream.base_index();
      engine::ParallelFor(eng, rows, [&](const engine::BlockedRange& r) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          const auto mean = view.mean(i);
          std::copy(mean.begin(), mean.end(),
                    red.means.begin() + (base + i) * m);
          red.constants[base + i] = view.total_variance(i);
        }
      });
    }
    const double offline_ms = offline.ElapsedMs();
    common::Stopwatch online;
    Params p = params;
    p.reduction = false;  // the streamed copy above IS the reduction
    Outcome outcome = RunOnMoments(red.view(), k, seed, p, eng);
    ClusteringResult result;
    result.online_ms = online.ElapsedMs();
    result.offline_ms = offline_ms;
    result.labels = std::move(outcome.labels);
    result.k_requested = k;
    result.clusters_found = CountClusters(result.labels);
    result.iterations = outcome.iterations;
    result.objective = outcome.objective;
    result.center_distance_evals = outcome.center_distance_evals;
    result.bounds_skipped = outcome.bounds_skipped;
    return result;
  }

  // Epoch streaming: labels and bounds stay resident (O(n) small scalars);
  // the moments are re-streamed once per iteration in mini-batches, plus
  // one seeding pass up front and one objective pass at the end.
  if (params.init == InitStrategy::kPlusPlus) {
    return common::Status::InvalidArgument(
        "CK-means epoch streaming supports random (Forgy) seeding only; "
        "k-means++ needs the resident reduced representation");
  }
  const std::size_t batch =
      params.minibatch_size > 0 ? params.minibatch_size : default_batch;

  common::Rng rng(seed);
  const std::vector<std::size_t> picks = RandomDistinctObjects(n, k, &rng);
  // Gather the picked objects' means in one ordered pass; pick order (not
  // file order) decides the centroid slots, like CentroidsFromObjects.
  std::vector<double> centroids(static_cast<std::size_t>(k) * m);
  {
    std::vector<std::pair<std::size_t, int>> wanted;
    wanted.reserve(picks.size());
    for (int c = 0; c < k; ++c) wanted.emplace_back(picks[c], c);
    std::sort(wanted.begin(), wanted.end());
    std::size_t next = 0;
    while (next < wanted.size()) {
      auto got = stream.NextBatch(batch);
      UCLUST_RETURN_NOT_OK(got.status());
      const std::size_t rows = got.ValueOrDie();
      if (rows == 0) break;
      const uncertain::MomentView view = stream.batch_view();
      const std::size_t base = stream.base_index();
      while (next < wanted.size() && wanted[next].first < base + rows) {
        const auto mean = view.mean(wanted[next].first - base);
        std::copy(mean.begin(), mean.end(),
                  centroids.begin() +
                      static_cast<std::size_t>(wanted[next].second) * m);
        ++next;
      }
    }
    if (next != wanted.size()) {
      return common::Status::Internal(path + ": seeding pass ended early");
    }
  }
  const double offline_ms = offline.ElapsedMs();

  common::Stopwatch online;
  const bool use_bounds = params.bound_pruning;
  const std::size_t km = static_cast<std::size_t>(k) * m;
  std::vector<int> labels(n, -1);
  std::vector<double> ub, lb, half_sep, old_centroids, reseed_mean(m);
  if (use_bounds) {
    ub.assign(n, 0.0);
    lb.assign(n, 0.0);
  }
  ClusteringResult result;
  GridSumAccumulator acc;
  for (result.iterations = 0; result.iterations < params.max_iters;
       ++result.iterations) {
    if (use_bounds && result.iterations > 0) {
      HalfSeparations(centroids, k, m, &half_sep);
    }
    UCLUST_RETURN_NOT_OK(stream.Rewind());
    SweepCounts sweep;
    acc.sums.assign(km, 0.0);
    acc.counts.assign(static_cast<std::size_t>(k), 0);
    acc.carry_open = false;
    for (;;) {
      auto got = stream.NextBatch(batch);
      UCLUST_RETURN_NOT_OK(got.status());
      const std::size_t rows = got.ValueOrDie();
      if (rows == 0) break;
      const uncertain::MomentView view = stream.batch_view();
      const std::size_t base = stream.base_index();
      // Assign the batch first, then fold it into the per-label sums: the
      // assignment only reads this iteration's fixed centroids, so the
      // interleaving produces the same labels and sums as the in-memory
      // two-full-pass schedule.
      const SweepCounts sc =
          AssignBatch(eng, view, base, centroids, k, use_bounds, half_sep,
                      labels, ub, lb);
      sweep.changed += sc.changed;
      sweep.evals += sc.evals;
      sweep.skipped += sc.skipped;
      AccumulateSumsBatch(eng, view, base, n, labels, k, &acc);
    }
    result.center_distance_evals += sweep.evals;
    result.bounds_skipped += sweep.skipped;
    if (sweep.changed == 0) break;

    if (use_bounds) old_centroids = centroids;
    for (int c = 0; c < k; ++c) {
      if (acc.counts[c] == 0) {
        // Empty-cluster reseed: same rng order as the in-memory loop; the
        // mean comes from a targeted forward scan (rare, O(n) worst case).
        UCLUST_RETURN_NOT_OK(stream.ReadMeanAt(rng.Index(n), reseed_mean));
        std::copy(reseed_mean.begin(), reseed_mean.end(),
                  centroids.begin() + static_cast<std::size_t>(c) * m);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(acc.counts[c]);
      for (std::size_t j = 0; j < m; ++j) {
        centroids[static_cast<std::size_t>(c) * m + j] =
            acc.sums[static_cast<std::size_t>(c) * m + j] * inv;
      }
    }
    if (use_bounds) {
      MaintainBounds(eng, m, k, old_centroids, centroids, labels, ub, lb);
    }
    if (params.bound_audit) {
      params.bound_audit(result.iterations, centroids, labels, ub, lb);
    }
  }

  // Final objective pass, grid-aligned like the sums.
  UCLUST_RETURN_NOT_OK(stream.Rewind());
  GridObjAccumulator obj;
  for (;;) {
    auto got = stream.NextBatch(batch);
    UCLUST_RETURN_NOT_OK(got.status());
    const std::size_t rows = got.ValueOrDie();
    if (rows == 0) break;
    AccumulateObjectiveBatch(eng, stream.batch_view(), stream.base_index(),
                             n, labels, centroids, &obj);
  }
  result.objective = obj.total;
  result.online_ms = online.ElapsedMs();
  result.offline_ms = offline_ms;
  result.labels = std::move(labels);
  result.k_requested = k;
  result.clusters_found = CountClusters(result.labels);
  return result;
}

}  // namespace uclust::clustering
