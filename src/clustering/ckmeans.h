// CK-means: the O(nk)-per-iteration fast path of the UK-means family.
//
// Two stacked optimizations over the direct UK-means sweeps (ukmeans.h),
// both exact under the library determinism contract — labels, objective,
// and iteration count are bit-identical to the direct path for any knob
// combination and any engine thread count:
//
//   1. Moment reduction (Lee, Kao & Cheng, ICDM-W 2007). König-Huygens
//      splits the expected distance as ED(o, c) = sigma^2(o) +
//      ||mu(o) - c||^2 (Eq. 8), so the Lloyd loop only ever touches each
//      object's expected centroid mu(o) and the additive constant
//      sigma^2(o). CkmeansReduce copies exactly those two columns out of a
//      MomentView in one sequential pass — Resident or Mapped backend alike
//      — and the loop then runs on a flat resident block of (m+1)/(3m+1)
//      of the full moment bytes, with zero chunk faults per sweep.
//
//   2. Hamerly/Elkan bound pruning. A per-object Euclidean upper bound to
//      the assigned center and a lower bound to the second-closest center
//      are maintained from per-center drift norms after every update; an
//      Elkan-style half-min-separation test rides along. Objects whose
//      bounds prove the assignment unchanged skip the whole k-center scan,
//      making late iterations O(n) instead of O(nk) distance evaluations.
//      Bounds are kept floating-point-safe by a relative slack (upper
//      bounds inflated, lower bounds deflated at every maintenance step),
//      so a pruning decision is always conservative and the surviving
//      full scans reproduce the direct path's tie-breaking exactly.
//
// The file-backed driver ClusterFile adds a third form: mini-batch epoch
// streaming, which re-streams a .ubin dataset once per iteration through
// io::MomentBatchStream and keeps only O(n) labels/bounds plus one batch
// of moments resident. Per-cluster sums are accumulated through a carry
// accumulator aligned to the engine's block grid, so the floating-point
// result matches kernels::SumMeansByLabel for ANY mini-batch size.
//
// Accounting contract: center_distance_evals counts the object-to-center
// ||mu(o) - c||^2 evaluations of the assignment sweeps and bounds_skipped
// the (object, center) slots the bounds proved unnecessary; the pair always
// satisfies evals + skipped == sweeps * n * k, where sweeps is the number
// of assignment sweeps actually run — iterations + 1 on a converged run
// (the final sweep changes nothing but still executes, exactly as on the
// direct path) and iterations when the cap stops the loop. Center-to-center
// work (drift norms, half separations — O(k^2) per iteration) is not
// counted.
#ifndef UCLUST_CLUSTERING_CKMEANS_H_
#define UCLUST_CLUSTERING_CKMEANS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "clustering/clusterer.h"
#include "clustering/init.h"
#include "common/status.h"
#include "uncertain/moments.h"

namespace uclust::clustering {

/// The reduced (König-Huygens) representation of an uncertain dataset: the
/// flat expected-centroid block the Lloyd loop runs on, plus the additive
/// per-object ED^ constants. ~(m+1) doubles per object.
struct ReducedMoments {
  std::size_t n = 0;
  std::size_t m = 0;
  /// Row-major n x m expected centroids mu(o_i).
  std::vector<double> means;
  /// Per-object additive constant sigma^2(o_i) (the total variance).
  std::vector<double> constants;

  /// Flat MomentView over the reduction. Only mean() and total_variance()
  /// are backed — the reduction exists precisely because the Lloyd loop
  /// reads nothing else; second_moment()/variance() would dereference null.
  uncertain::MomentView view() const {
    return uncertain::MomentView(n, m, means.data(), /*mu2=*/nullptr,
                                 /*var=*/nullptr, constants.data());
  }
};

/// Copies the expected centroids and ED^ constants out of `mm` in one
/// blocked pass. Works against flat and chunked (mapped) views alike; the
/// copied values are bit-identical to what the view serves.
ReducedMoments CkmeansReduce(const engine::Engine& eng,
                             const uncertain::MomentView& mm);

/// The CK-means fast path as a standalone registry algorithm. As a library
/// entry point, prefer Ukmeans — it routes through this path automatically
/// when the engine's ukmeans_* knobs are on (the default).
class CkMeans final : public Clusterer {
 public:
  /// Audit observer for the bound-invariant tests: fired after every drift
  /// maintenance step with the new centroids and the loosened bounds, so a
  /// test can verify upper >= d(o, assigned) and lower <= min distance to
  /// the other centers. Empty upper/lower spans when pruning is off.
  using BoundAudit = std::function<void(
      int iteration, std::span<const double> centroids,
      std::span<const int> labels, std::span<const double> upper,
      std::span<const double> lower)>;

  /// Tuning knobs.
  struct Params {
    int max_iters = 100;  ///< Cap on Lloyd iterations.
    /// Seeding: Forgy (the paper's choice) or D^2-weighted. The epoch-
    /// streaming driver of ClusterFile supports kRandom only.
    InitStrategy init = InitStrategy::kRandom;
    /// Run on the reduced representation (off = sweep the MomentView
    /// directly, still with bounds if enabled).
    bool reduction = true;
    /// Maintain Hamerly/Elkan bounds and skip proven assignments.
    bool bound_pruning = true;
    /// ClusterFile only — rows per streamed mini-batch. 0 = auto: keep the
    /// reduced representation resident when it fits the engine memory
    /// budget, otherwise epoch-stream at the ingestion default batch size.
    /// Nonzero forces epoch streaming with that batch size.
    std::size_t minibatch_size = 0;
    /// Test-only bound observer (see BoundAudit); empty in production.
    BoundAudit bound_audit;
  };

  /// Outcome of the kernel (mirrors Ukmeans::Outcome plus the counters).
  struct Outcome {
    std::vector<int> labels;
    double objective = 0.0;  ///< sum_o [ sigma^2(o) + ||mu(o) - c_l(o)||^2 ].
    int iterations = 0;
    int64_t center_distance_evals = 0;
    int64_t bounds_skipped = 0;
  };

  CkMeans() = default;
  explicit CkMeans(const Params& params) : params_(params) {}

  std::string name() const override { return "CK-means"; }
  ClusteringResult Cluster(const data::UncertainDataset& data, int k,
                           uint64_t seed) const override;

  /// Kernel entry point for pre-packed moment statistics. Bit-identical to
  /// Ukmeans::RunOnMoments (same seeding, tie-breaking, update, and
  /// empty-cluster reseed order) for every Params combination, at any
  /// engine thread count.
  static Outcome RunOnMoments(const uncertain::MomentView& mm, int k,
                              uint64_t seed, const Params& params,
                              const engine::Engine& eng =
                                  engine::Engine::Serial());

  /// File-backed driver: clusters a binary .ubin dataset in bounded memory.
  /// Auto mode (minibatch_size == 0) streams one reduction pass and runs
  /// resident when (m+1)*n doubles fit the engine budget; otherwise — or
  /// when a mini-batch size is forced — it re-streams the file once per
  /// iteration (plus one seeding and one objective pass) holding only O(n)
  /// labels/bounds and one batch of moments. Labels, objective, and
  /// iteration count are bit-identical to RunOnMoments over the fully
  /// ingested file, for every mini-batch size and thread count.
  static common::Result<ClusteringResult> ClusterFile(
      const std::string& path, int k, uint64_t seed, const Params& params,
      const engine::Engine& eng = engine::Engine::Serial());

 private:
  Params params_;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_CKMEANS_H_
