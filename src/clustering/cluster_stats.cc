#include "clustering/cluster_stats.h"

#include <cassert>

namespace uclust::clustering {

void ClusterMoments::Add(const uncertain::MomentView& moments,
                         std::size_t i) {
  assert(moments.dims() == dims());
  const auto var = moments.variance(i);
  const auto mu2 = moments.second_moment(i);
  const auto mu = moments.mean(i);
  for (std::size_t j = 0; j < dims(); ++j) {
    sum_var_[j] += var[j];
    sum_mu2_[j] += mu2[j];
    sum_mu_[j] += mu[j];
  }
  ++size_;
}

void ClusterMoments::Remove(const uncertain::MomentView& moments,
                            std::size_t i) {
  assert(size_ > 0);
  assert(moments.dims() == dims());
  const auto var = moments.variance(i);
  const auto mu2 = moments.second_moment(i);
  const auto mu = moments.mean(i);
  for (std::size_t j = 0; j < dims(); ++j) {
    sum_var_[j] -= var[j];
    sum_mu2_[j] -= mu2[j];
    sum_mu_[j] -= mu[j];
  }
  --size_;
}

const char* ObjectiveKindName(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kUcpc:
      return "UCPC";
    case ObjectiveKind::kMmvar:
      return "MMVar";
    case ObjectiveKind::kUkmeans:
      return "UK-means";
  }
  return "unknown";
}

double UcpcObjective(const ClusterMoments& c) {
  if (c.size() == 0) return 0.0;
  const double s = static_cast<double>(c.size());
  double acc = 0.0;
  for (std::size_t j = 0; j < c.dims(); ++j) {
    const double t = c.sum_mu()[j];
    acc += c.sum_var()[j] / s + c.sum_mu2()[j] - t * t / s;
  }
  return acc;
}

double UkmeansObjective(const ClusterMoments& c) {
  if (c.size() == 0) return 0.0;
  const double s = static_cast<double>(c.size());
  double acc = 0.0;
  for (std::size_t j = 0; j < c.dims(); ++j) {
    const double t = c.sum_mu()[j];
    acc += c.sum_mu2()[j] - t * t / s;
  }
  return acc;
}

double MmvarObjective(const ClusterMoments& c) {
  if (c.size() == 0) return 0.0;
  const double s = static_cast<double>(c.size());
  double acc = 0.0;
  for (std::size_t j = 0; j < c.dims(); ++j) {
    const double mean_j = c.sum_mu()[j] / s;
    acc += c.sum_mu2()[j] / s - mean_j * mean_j;
  }
  return acc;
}

double Objective(ObjectiveKind kind, const ClusterMoments& c) {
  switch (kind) {
    case ObjectiveKind::kUcpc:
      return UcpcObjective(c);
    case ObjectiveKind::kMmvar:
      return MmvarObjective(c);
    case ObjectiveKind::kUkmeans:
      return UkmeansObjective(c);
  }
  return 0.0;
}

namespace {

// Shared kernel: evaluates `kind` on (Psi_j + dv, Phi_j + d2, T_j + dm) with
// cluster size `s`, where the deltas come from one object row scaled by
// `sign` (+1 add, -1 remove). O(m), allocation-free.
double ObjectiveWithDelta(ObjectiveKind kind, const ClusterMoments& c,
                          const uncertain::MomentView& moments,
                          std::size_t i, double sign, std::size_t new_size) {
  if (new_size == 0) return 0.0;
  const double s = static_cast<double>(new_size);
  const auto var = moments.variance(i);
  const auto mu2 = moments.second_moment(i);
  const auto mu = moments.mean(i);
  double acc = 0.0;
  switch (kind) {
    case ObjectiveKind::kUcpc:
      for (std::size_t j = 0; j < c.dims(); ++j) {
        const double psi = c.sum_var()[j] + sign * var[j];
        const double phi = c.sum_mu2()[j] + sign * mu2[j];
        const double t = c.sum_mu()[j] + sign * mu[j];
        acc += psi / s + phi - t * t / s;
      }
      return acc;
    case ObjectiveKind::kMmvar:
      for (std::size_t j = 0; j < c.dims(); ++j) {
        const double phi = c.sum_mu2()[j] + sign * mu2[j];
        const double t = c.sum_mu()[j] + sign * mu[j];
        const double mean_j = t / s;
        acc += phi / s - mean_j * mean_j;
      }
      return acc;
    case ObjectiveKind::kUkmeans:
      for (std::size_t j = 0; j < c.dims(); ++j) {
        const double phi = c.sum_mu2()[j] + sign * mu2[j];
        const double t = c.sum_mu()[j] + sign * mu[j];
        acc += phi - t * t / s;
      }
      return acc;
  }
  return acc;
}

}  // namespace

double ObjectiveAfterAdd(ObjectiveKind kind, const ClusterMoments& c,
                         const uncertain::MomentView& moments,
                         std::size_t i) {
  return ObjectiveWithDelta(kind, c, moments, i, +1.0, c.size() + 1);
}

double ObjectiveAfterRemove(ObjectiveKind kind, const ClusterMoments& c,
                            const uncertain::MomentView& moments,
                            std::size_t i) {
  assert(c.size() >= 1);
  return ObjectiveWithDelta(kind, c, moments, i, -1.0, c.size() - 1);
}

double TotalObjective(ObjectiveKind kind,
                      const uncertain::MomentView& moments,
                      const std::vector<int>& labels, int k) {
  assert(labels.size() == moments.size());
  std::vector<ClusterMoments> stats(k, ClusterMoments(moments.dims()));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    assert(labels[i] >= 0 && labels[i] < k);
    stats[labels[i]].Add(moments, i);
  }
  double total = 0.0;
  for (const ClusterMoments& c : stats) total += Objective(kind, c);
  return total;
}

double ExpectedDistanceToUCentroid(const ClusterMoments& c,
                                   const uncertain::MomentView& moments,
                                   std::size_t i) {
  assert(c.size() >= 1);
  const double s = static_cast<double>(c.size());
  const auto mu2 = moments.second_moment(i);
  const auto mu = moments.mean(i);
  double acc = 0.0;
  for (std::size_t j = 0; j < c.dims(); ++j) {
    // Lemma 5: mu_j(U) = T_j / s and
    // mu2_j(U) = (Phi_j + T_j^2 - Q_j) / s^2 with Q_j = Phi_j - Psi_j the
    // sum of squared member means. Then Lemma 3 gives the expected distance.
    const double t = c.sum_mu()[j];
    const double q = c.sum_mu2()[j] - c.sum_var()[j];
    const double mu2_centroid = (c.sum_mu2()[j] + t * t - q) / (s * s);
    const double mu_centroid = t / s;
    acc += mu2[j] - 2.0 * mu[j] * mu_centroid + mu2_centroid;
  }
  return acc;
}

}  // namespace uclust::clustering
