// Per-cluster moment aggregates and the closed-form objectives built on them.
//
// Theorem 3 reduces the UCPC objective of a cluster C to the per-dimension
// aggregates
//   Psi_j = sum_i (sigma^2)_j(o_i)   (variances)
//   Phi_j = sum_i (mu2)_j(o_i)       (second moments)
//   T_j   = sum_i  mu_j(o_i)         (means; Upsilon_j = T_j^2)
// and the same three sums also yield the UK-means (Lemma 1) and MMVar
// (Lemma 2 + Eq. 11) objectives, which is what makes Propositions 2 and 3
// directly checkable. Corollary 1 turns add/remove into O(m) updates.
//
// Caveat for the CK-means reduced representation (clustering/ckmeans.h):
// these aggregates consume the FULL moment columns — Phi needs mu2 and Psi
// needs the per-dimension variances, neither of which the reduced view
// carries (it serves mean() and total_variance() only). Feed ClusterMoments
// the original MomentView, never ReducedMoments::view(). The CK-means
// objective itself needs no aggregates: by König-Huygens it is the
// assignment objective sum_o [sigma^2(o) + ||mu(o) - c||^2], which Lemma 1
// equals at converged centroids (tests/test_ukmeans.cc cross-checks this).
#ifndef UCLUST_CLUSTERING_CLUSTER_STATS_H_
#define UCLUST_CLUSTERING_CLUSTER_STATS_H_

#include <span>
#include <vector>

#include "uncertain/moments.h"

namespace uclust::clustering {

/// Aggregated moment sums of one cluster, supporting O(m) add/remove.
class ClusterMoments {
 public:
  ClusterMoments() = default;
  /// Creates empty aggregates for m dimensions.
  explicit ClusterMoments(std::size_t m)
      : sum_var_(m, 0.0), sum_mu2_(m, 0.0), sum_mu_(m, 0.0) {}

  /// Number of member objects |C|.
  std::size_t size() const { return size_; }
  /// Dimensionality m.
  std::size_t dims() const { return sum_var_.size(); }
  /// Psi: per-dimension sums of member variances.
  std::span<const double> sum_var() const { return sum_var_; }
  /// Phi: per-dimension sums of member second moments.
  std::span<const double> sum_mu2() const { return sum_mu2_; }
  /// T: per-dimension sums of member means (Upsilon_j = T_j^2).
  std::span<const double> sum_mu() const { return sum_mu_; }

  /// Adds object i of `moments` to the cluster. O(m).
  void Add(const uncertain::MomentView& moments, std::size_t i);
  /// Removes object i of `moments` from the cluster (must be a member). O(m).
  void Remove(const uncertain::MomentView& moments, std::size_t i);

 private:
  std::size_t size_ = 0;
  std::vector<double> sum_var_;
  std::vector<double> sum_mu2_;
  std::vector<double> sum_mu_;
};

/// Which closed-form objective a local-search run minimizes.
enum class ObjectiveKind {
  kUcpc,     ///< J(C) of Theorem 3 (this paper).
  kMmvar,    ///< J_MM(C) = sigma^2(C_MM) (Eq. 11).
  kUkmeans,  ///< J_UK(C) (Lemma 1) — exposed for ablations.
};

/// Display name of an objective kind.
const char* ObjectiveKindName(ObjectiveKind kind);

/// J(C) of Theorem 3: sum_j (Psi_j/|C| + Phi_j - T_j^2/|C|). O(m).
/// Returns 0 for an empty cluster.
double UcpcObjective(const ClusterMoments& c);

/// J_UK(C) of Lemma 1: sum_j (Phi_j - T_j^2/|C|). O(m).
double UkmeansObjective(const ClusterMoments& c);

/// J_MM(C) of Eq. 11 via Lemma 2: sigma^2 of the mixture centroid,
/// sum_j (Phi_j/|C| - (T_j/|C|)^2). O(m).
double MmvarObjective(const ClusterMoments& c);

/// Dispatches on `kind`. O(m).
double Objective(ObjectiveKind kind, const ClusterMoments& c);

/// Objective of C + {object i} computed in O(m) without mutating `c`
/// (Corollary 1 for additions, generalized to all three objectives).
double ObjectiveAfterAdd(ObjectiveKind kind, const ClusterMoments& c,
                         const uncertain::MomentView& moments,
                         std::size_t i);

/// Objective of C - {object i} computed in O(m) without mutating `c`
/// (Corollary 1 for removals). `i` must be a member; |C| must be >= 1.
double ObjectiveAfterRemove(ObjectiveKind kind, const ClusterMoments& c,
                            const uncertain::MomentView& moments,
                            std::size_t i);

/// Sum over clusters of `kind`'s objective for a full labeling. O(n m).
double TotalObjective(ObjectiveKind kind,
                      const uncertain::MomentView& moments,
                      const std::vector<int>& labels, int k);

/// Expected squared distance between object i and the U-centroid of the
/// cluster described by `c` — the per-object term of Eq. 14 in closed form
/// (derived from Theorem 3 / Lemma 5); `i` must be a member of `c`.
/// Exposed for tests that validate the closed form against Monte Carlo.
double ExpectedDistanceToUCentroid(const ClusterMoments& c,
                                   const uncertain::MomentView& moments,
                                   std::size_t i);

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_CLUSTER_STATS_H_
