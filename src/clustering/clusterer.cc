#include "clustering/clusterer.h"

#include <map>

namespace uclust::clustering {

Clusterer::~Clusterer() = default;

int CountClusters(const std::vector<int>& labels) {
  std::map<int, bool> seen;
  for (int l : labels) {
    if (l >= 0) seen[l] = true;
  }
  return static_cast<int>(seen.size());
}

std::vector<std::size_t> ClusterSizes(const std::vector<int>& labels, int k) {
  std::vector<std::size_t> sizes(k, 0);
  for (int l : labels) {
    if (l >= 0 && l < k) ++sizes[l];
  }
  return sizes;
}

std::vector<int> RelabelConsecutive(const std::vector<int>& labels) {
  std::map<int, int> remap;
  std::vector<int> out;
  out.reserve(labels.size());
  for (int l : labels) {
    if (l < 0) {
      out.push_back(l);
      continue;
    }
    auto [it, inserted] = remap.emplace(l, static_cast<int>(remap.size()));
    out.push_back(it->second);
  }
  return out;
}

}  // namespace uclust::clustering
