// Common interface implemented by every clustering algorithm in the library,
// plus the shared result type and small label utilities.
#ifndef UCLUST_CLUSTERING_CLUSTERER_H_
#define UCLUST_CLUSTERING_CLUSTERER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "engine/engine.h"

namespace uclust::clustering {

/// Outcome of one clustering run.
struct ClusteringResult {
  /// Cluster id per object, in [0, clusters_found).
  std::vector<int> labels;
  /// Number of clusters requested (density-based algorithms may differ).
  int k_requested = 0;
  /// Number of distinct clusters in `labels`.
  int clusters_found = 0;
  /// Number of outer iterations / passes until convergence.
  int iterations = 0;
  /// Final value of the algorithm's own objective (NaN when undefined, e.g.
  /// for density-based algorithms).
  double objective = 0.0;
  /// Wall-clock time of the online clustering phase, in milliseconds
  /// (excludes offline precomputation such as sample drawing or pairwise
  /// distance tables, matching the paper's measurement protocol).
  double online_ms = 0.0;
  /// Wall-clock time of the offline phase, in milliseconds.
  double offline_ms = 0.0;
  /// Number of expensive (sample-integrated) expected-distance evaluations;
  /// the quantity the pruning techniques minimize. 0 for closed-form
  /// algorithms.
  int64_t ed_evaluations = 0;
  /// Objects labeled as noise before noise-policy mapping (density-based
  /// algorithms only).
  int noise_objects = 0;
  /// PairwiseStore backend the run used ("dense", "tiled", "onthefly");
  /// empty for algorithms without a pairwise phase.
  std::string pairwise_backend;
  /// Peak bytes of storage the PairwiseStore materialized at any one time
  /// (dense table, cached tiles, warm rows, or streaming scratch). 0
  /// without a pairwise phase. Not included: algorithm-side working state
  /// outside the store — in particular UAHC's Lance-Williams overlay, which
  /// holds one distance row per alive merge-product cluster (see uahc.h).
  std::size_t table_bytes_peak = 0;
  /// Total pairwise kernel evaluations the run performed (closed-form and
  /// sampled alike — unlike ed_evaluations, which counts only sample
  /// integrations). The recompute cost the tile policies minimize. 0
  /// without a pairwise phase.
  int64_t pair_evaluations = 0;
  /// Gathered rows the PairwiseStore served without kernel work (warm
  /// cache, dense table, or resident tile).
  int64_t tile_warm_hits = 0;
  /// Gathered rows the PairwiseStore had to compute.
  int64_t tile_warm_misses = 0;
  /// Sweep pairs skipped by cheap spatial bounds instead of evaluated
  /// (the pruned-sweep policy; see clustering::PairwiseBoundIndex).
  int64_t pairs_pruned = 0;
  /// Closed-form object-to-center distance evaluations the centroid methods
  /// performed (the ||mu(o) - c||^2 computations of the UK-means assignment
  /// sweeps — the quantity the CK-means bound pruning minimizes). Together
  /// with bounds_skipped the pair accounts for every (object, center) slot:
  /// center_distance_evals + bounds_skipped == sweeps * n * k on the
  /// CK-means path, where sweeps = iterations + 1 when the run converged
  /// before the cap (the final no-change sweep still runs) and = iterations
  /// at the cap. Center-to-center drift/separation work is not counted.
  /// 0 for algorithms without a centroid assignment sweep.
  int64_t center_distance_evals = 0;
  /// (object, center) distance evaluations the CK-means Hamerly/Elkan bounds
  /// proved unnecessary and skipped. 0 when bound pruning is off.
  int64_t bounds_skipped = 0;
  /// Candidate pairs the spatial index returned to the candidate-driven
  /// sweeps (clustering::SpatialIndex range/nearest queries) — the pairs
  /// that still reached the per-pair bound test or kernel. 0 when the index
  /// is off or the algorithm has no indexed sweep.
  int64_t index_candidates = 0;
  /// Sweep pairs the spatial index excluded wholesale — pairs an all-pairs
  /// sweep would have bound-tested but a candidate query never touched.
  /// 0 when the index is off.
  int64_t pairs_pruned_by_index = 0;
  /// Box-distance bound computations the spatial index performed inside its
  /// queries (node MBR tests plus per-item tests). The indexed analogue of
  /// the all-pairs sweep's n*(n-1)/2 bound tests; the CI index gate
  /// compares index_bound_tests + index_candidates against that floor.
  int64_t index_bound_tests = 0;
};

/// Abstract clustering algorithm over uncertain datasets.
class Clusterer {
 public:
  virtual ~Clusterer();

  /// Algorithm display name (e.g. "UCPC", "UK-means").
  virtual std::string name() const = 0;

  /// Clusters `data` into (about) `k` clusters; `seed` drives every random
  /// choice so runs are reproducible.
  virtual ClusteringResult Cluster(const data::UncertainDataset& data, int k,
                                   uint64_t seed) const = 0;

  /// Installs the execution engine used by the compute kernels (serial by
  /// default). Results are bit-identical for any engine thread count.
  void set_engine(const engine::Engine& eng) { engine_ = eng; }
  /// The engine the algorithm dispatches its compute through.
  const engine::Engine& engine() const { return engine_; }

 private:
  engine::Engine engine_;
};

/// Number of distinct non-negative labels.
int CountClusters(const std::vector<int>& labels);

/// Sizes of clusters 0..k-1 (labels outside the range are ignored).
std::vector<std::size_t> ClusterSizes(const std::vector<int>& labels, int k);

/// Remaps labels onto 0..k'-1 preserving first-appearance order; negative
/// labels (noise) are left untouched.
std::vector<int> RelabelConsecutive(const std::vector<int>& labels);

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_CLUSTERER_H_
