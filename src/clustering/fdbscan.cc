#include "clustering/fdbscan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "clustering/pairwise_store.h"
#include "clustering/pruning.h"
#include "clustering/spatial_index.h"
#include "common/stopwatch.h"
#include "engine/parallel_for.h"
#include "uncertain/expected_distance.h"
#include "io/sample_file.h"
#include "uncertain/sample_store.h"

namespace uclust::clustering {

namespace {

// Median MinPts-nearest-neighbor distance over (a subsample of) the objects,
// using sqrt of the closed-form expected distance as the proximity proxy.
// The probes are drawn serially; each probe's scan is independent, so the
// sweep parallelizes over probe blocks without changing the outcome.
double AutoEps(const data::UncertainDataset& data, int min_pts,
               common::Rng* rng, const engine::Engine& eng) {
  const std::size_t n = data.size();
  if (n < 2) return 0.0;  // no neighbor distances to rank
  const std::size_t probe_count = std::min<std::size_t>(n, 256);
  std::vector<std::size_t> probes =
      rng->SampleWithoutReplacement(n, probe_count);
  std::vector<double> kth(probe_count, 0.0);
  engine::ParallelFor(eng, probe_count, [&](const engine::BlockedRange& r) {
    std::vector<double> dists;
    dists.reserve(n - 1);
    for (std::size_t p = r.begin; p < r.end; ++p) {
      const std::size_t i = probes[p];
      dists.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        dists.push_back(std::sqrt(uncertain::ExpectedSquaredDistance(
            data.object(i), data.object(j))));
      }
      // Clamp into [1, |dists|] so min_pts = 0 cannot wrap the rank.
      const std::size_t rank = std::min<std::size_t>(
          std::max<std::size_t>(static_cast<std::size_t>(min_pts), 1),
          dists.size());
      std::nth_element(dists.begin(), dists.begin() + (rank - 1),
                       dists.end());
      kth[p] = dists[rank - 1];
    }
  });
  std::nth_element(kth.begin(), kth.begin() + kth.size() / 2, kth.end());
  return kth[kth.size() / 2];
}

}  // namespace

double Fdbscan::AtLeastProbability(const std::vector<double>& probs,
                                   int min_pts) {
  assert(min_pts >= 0);
  if (min_pts == 0) return 1.0;
  const int cap = min_pts;  // track counts 0..cap, cap = "min_pts or more"
  std::vector<double> state(static_cast<std::size_t>(cap) + 1, 0.0);
  state[0] = 1.0;
  for (double p : probs) {
    if (p <= 0.0) continue;
    for (int c = cap; c >= 1; --c) {
      const double from_prev = state[c - 1] * p;
      if (c == cap) {
        state[c] += from_prev;
      } else {
        state[c] = state[c] * (1.0 - p) + from_prev;
      }
    }
    state[0] *= (1.0 - p);
  }
  return state[cap];
}

ClusteringResult Fdbscan::Cluster(const data::UncertainDataset& data,
                                  int /*k*/, uint64_t seed) const {
  const std::size_t n = data.size();
  common::Rng rng(seed);
  const engine::Engine& eng = engine();

  ClusteringResult result;
  result.k_requested = 0;

  // Offline: sample store (the fuzzy-distance machinery's numeric basis;
  // resident or mapped, per the memory budget).
  common::Stopwatch offline;
  const uncertain::SampleStorePtr samples = io::MakeSampleStoreOrResident(
      data, params_.samples, params_.sample_seed, eng);
  const double offline_ms = offline.ElapsedMs();

  common::Stopwatch online;
  const double eps = params_.eps > 0.0
                         ? params_.eps
                         : AutoEps(data, params_.min_pts, &rng, eng);

  // Pairwise distance probabilities: one streaming upper-triangle sweep
  // through the pairwise store (each pair evaluated once, in parallel row
  // blocks, only bounded scratch materialized), then mirrored serially into
  // the sparse adjacency. Under the pruned-sweep policy, pairs whose
  // regions are provably farther apart than eps are skipped before any
  // kernel evaluation: every realization pair is then beyond eps, so the
  // distance probability is exactly the 0 the kernel would have produced —
  // labels stay bit-identical, only the evaluation count drops.
  PairwiseStore store(
      eng,
      kernels::PairwiseKernel::DistanceProbability(samples->view(), eps));
  std::vector<std::vector<std::pair<std::size_t, double>>> upper(n);
  const auto sweep = [&](std::size_t i, std::span<const double> tail) {
    for (std::size_t t = 0; t < tail.size(); ++t) {
      if (tail[t] > 0.0) upper[i].emplace_back(i + 1 + t, tail[t]);
    }
  };
  SpatialIndexChoice index_choice = SpatialIndexChoice::kOff;
  SpatialIndexChoiceFromString(eng.spatial_index(), &index_choice);
  if (eng.pairwise_pruned_sweeps() &&
      index_choice != SpatialIndexChoice::kOff) {
    // Candidate-driven sweep: the spatial index narrows which pairs are
    // *tested* to the eps-range hits of each region box, and the
    // PairwiseBoundIndex predicate still decides which of those are
    // evaluated. Every non-candidate has its computed box separation above
    // the same slacked threshold the predicate consults, so the evaluated
    // set — and with it every value, label, and the pair_evaluations /
    // pairs_pruned counters — is bit-identical to the all-pairs predicate
    // sweep; only the bound-test count drops from n*(n-1)/2 to the index
    // query cost.
    const PairwiseBoundIndex bounds(data.objects());
    const SpatialIndex index(data.objects(),
                             ResolveSpatialIndexKind(index_choice,
                                                     data.dims()));
    const double threshold2 = SlackedSquaredThreshold(eps * eps);
    std::vector<std::vector<std::size_t>> cands(n);
    engine::ParallelFor(eng, n, [&](const engine::BlockedRange& r) {
      std::vector<std::size_t> hits;
      for (std::size_t i = r.begin; i < r.end; ++i) {
        index.QueryWithin(data.object(i).region(), threshold2, i, &hits);
        // Keep the upper-triangle columns j > i (hits are ascending).
        cands[i].assign(std::upper_bound(hits.begin(), hits.end(), i),
                        hits.end());
      }
    });
    store.VisitUpperTriangleCandidates(
        sweep,
        [&](std::size_t i) { return std::span<const std::size_t>(cands[i]); },
        [&](std::size_t i, std::size_t j) {
          return bounds.ProvablyBeyond(i, j, eps);
        });
    for (const auto& c : cands) {
      result.index_candidates += static_cast<int64_t>(c.size());
    }
    result.pairs_pruned_by_index =
        static_cast<int64_t>(n) * (static_cast<int64_t>(n) - 1) / 2 -
        result.index_candidates;
    result.index_bound_tests = index.bound_tests();
  } else if (eng.pairwise_pruned_sweeps()) {
    const PairwiseBoundIndex bounds(data.objects());
    store.VisitUpperTriangle(sweep, [&](std::size_t i, std::size_t j) {
      return bounds.ProvablyBeyond(i, j, eps);
    });
  } else {
    store.VisitUpperTriangle(sweep);
  }
  result.ed_evaluations += store.ed_evaluations();
  result.pairwise_backend = PairwiseBackendName(store.backend());
  result.table_bytes_peak = store.table_bytes_peak();
  result.pair_evaluations = store.evaluations();
  result.pairs_pruned = store.pruned_pairs();
  std::vector<std::vector<std::pair<std::size_t, double>>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [j, p] : upper[i]) {
      adj[i].emplace_back(j, p);
      adj[j].emplace_back(i, p);
    }
  }

  // Core-object probabilities via the Poisson-binomial tail.
  std::vector<char> core(n, 0);
  engine::ParallelFor(eng, n, [&](const engine::BlockedRange& r) {
    std::vector<double> probs;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      probs.clear();
      probs.reserve(adj[i].size());
      for (const auto& [j, p] : adj[i]) probs.push_back(p);
      core[i] = AtLeastProbability(probs, params_.min_pts) >=
                params_.core_threshold;
    }
  });

  // Expansion: BFS over reachability edges seeded at unvisited core objects.
  result.labels.assign(n, -1);
  int next_cluster = 0;
  std::queue<std::size_t> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (!core[i] || result.labels[i] >= 0) continue;
    const int cluster = next_cluster++;
    result.labels[i] = cluster;
    frontier.push(i);
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      for (const auto& [v, p] : adj[u]) {
        if (p < params_.reach_threshold || result.labels[v] >= 0) continue;
        result.labels[v] = cluster;
        if (core[v]) frontier.push(v);
      }
    }
  }

  // Noise policy: all unreached objects share one extra cluster, keeping the
  // output a partition as the external validity criteria require.
  for (std::size_t i = 0; i < n; ++i) {
    if (result.labels[i] < 0) {
      result.labels[i] = next_cluster;
      ++result.noise_objects;
    }
  }
  result.clusters_found = CountClusters(result.labels);
  result.iterations = 1;
  result.objective = std::numeric_limits<double>::quiet_NaN();
  result.online_ms = online.ElapsedMs();
  result.offline_ms = offline_ms;
  return result;
}

}  // namespace uclust::clustering
