// FDBSCAN (Kriegel & Pfeifle, KDD 2005): density-based clustering of
// uncertain objects via fuzzy distance functions.
//
// Distance probabilities Pr[dist(o, o') <= eps] are estimated over matched
// Monte-Carlo sample pairs; the probability that an object is a core object
// (>= MinPts neighbors within eps) is evaluated exactly from those pairwise
// probabilities with a Poisson-binomial dynamic program, which is valid
// under the library-wide independence assumption between objects. Objects
// whose core probability reaches the core threshold seed clusters; expansion
// follows pairs whose distance probability reaches the reachability
// threshold.
//
// The pairwise sweep streams through clustering::PairwiseStore (bounded
// scratch on every backend; the table is never retained). Under the
// pruned-sweep policy (EngineConfig::pairwise_pruned_sweeps, default on)
// pairs whose domain regions are provably farther apart than eps — per
// clustering::PairwiseBoundIndex — are skipped before any kernel
// evaluation: their distance probability is exactly 0, so labels are
// bit-identical and only ClusteringResult::pair_evaluations/pairs_pruned
// change.
#ifndef UCLUST_CLUSTERING_FDBSCAN_H_
#define UCLUST_CLUSTERING_FDBSCAN_H_

#include "clustering/clusterer.h"

namespace uclust::clustering {

/// The FDBSCAN algorithm. The `k` argument of Cluster() is ignored (density-
/// based algorithms determine the number of clusters themselves); noise
/// objects are mapped to one shared extra cluster.
class Fdbscan final : public Clusterer {
 public:
  /// Tuning knobs.
  struct Params {
    /// Neighborhood radius; <= 0 selects it automatically from the median
    /// MinPts-nearest-neighbor distance (k-dist heuristic).
    double eps = 0.0;
    int min_pts = 5;              ///< Density threshold (MinPts).
    double core_threshold = 0.5;  ///< Min core-object probability.
    double reach_threshold = 0.5; ///< Min direct-reachability probability.
    int samples = 24;             ///< Monte-Carlo samples per object.
    uint64_t sample_seed = 0x5eedf00dULL;  ///< Seed for the sample cache.
  };

  Fdbscan() = default;
  explicit Fdbscan(const Params& params) : params_(params) {}

  std::string name() const override { return "FDBSCAN"; }
  ClusteringResult Cluster(const data::UncertainDataset& data, int k,
                           uint64_t seed) const override;

  /// Probability that at least `min_pts` of the independent events with
  /// probabilities `probs` occur (Poisson-binomial tail). Exposed for tests.
  static double AtLeastProbability(const std::vector<double>& probs,
                                   int min_pts);

 private:
  Params params_;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_FDBSCAN_H_
