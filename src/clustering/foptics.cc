#include "clustering/foptics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "uncertain/sample_cache.h"

namespace uclust::clustering {

namespace {
constexpr double kUndefined = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<int> Foptics::ExtractAtThreshold(
    const std::vector<double>& reachability,
    const std::vector<double>& core_distance,
    const std::vector<std::size_t>& order, double threshold) {
  std::vector<int> labels(order.size(), -1);
  int current = -1;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t i = order[pos];
    if (reachability[i] > threshold) {
      if (core_distance[i] <= threshold) {
        ++current;  // start of a new dense region
        labels[i] = current;
      }  // else noise
    } else if (current >= 0) {
      labels[i] = current;
    }
  }
  return labels;
}

ClusteringResult Foptics::Cluster(const data::UncertainDataset& data, int k,
                                  uint64_t /*seed*/) const {
  const std::size_t n = data.size();
  ClusteringResult result;
  result.k_requested = k;

  // Offline: sample cache + pairwise fuzzy distance table.
  common::Stopwatch offline;
  const uncertain::SampleCache cache(data.objects(), params_.samples,
                                     params_.sample_seed);
  std::vector<double> dist(n * n, 0.0);
  const int s_count = cache.samples_per_object();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (int s = 0; s < s_count; ++s) {
        acc += common::SquaredDistance(cache.SampleOf(i, s),
                                       cache.SampleOf(j, s));
      }
      const double d = std::sqrt(acc / s_count);
      dist[i * n + j] = d;
      dist[j * n + i] = d;
      ++result.ed_evaluations;
    }
  }
  const double offline_ms = offline.ElapsedMs();

  common::Stopwatch online;
  // Core distances: MinPts-th smallest distance to another object.
  std::vector<double> core_dist(n, kUndefined);
  {
    std::vector<double> row;
    for (std::size_t i = 0; i < n; ++i) {
      row.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) row.push_back(dist[i * n + j]);
      }
      const std::size_t rank = std::min<std::size_t>(
          static_cast<std::size_t>(params_.min_pts), row.size());
      if (rank == 0) continue;
      std::nth_element(row.begin(), row.begin() + (rank - 1), row.end());
      core_dist[i] = row[rank - 1];
    }
  }

  // OPTICS walk (eps = infinity: one complete ordering).
  std::vector<double> reach(n, kUndefined);
  std::vector<bool> processed(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    // Expand from `start` by always picking the unprocessed object with the
    // smallest reachability (linear scan; the table is dense anyway).
    std::size_t current = start;
    for (;;) {
      processed[current] = true;
      order.push_back(current);
      // Relax reachability of all unprocessed objects through `current`.
      for (std::size_t j = 0; j < n; ++j) {
        if (processed[j]) continue;
        const double r = std::max(core_dist[current], dist[current * n + j]);
        reach[j] = std::min(reach[j], r);
      }
      // Next: smallest reachability among unprocessed.
      std::size_t next = n;
      double best = kUndefined;
      for (std::size_t j = 0; j < n; ++j) {
        if (!processed[j] && reach[j] < best) {
          best = reach[j];
          next = j;
        }
      }
      if (next == n) break;  // all remaining are unreachable: new component
      current = next;
    }
  }

  // Flat extraction: choose the cut whose cluster count is closest to k,
  // preferring (at equal cluster-count gap) the cut leaving less noise.
  // Candidate thresholds are quantiles of the finite reachability and core
  // distances — the values at which the plot's structure changes.
  std::vector<double> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    if (core_dist[i] != kUndefined) candidates.push_back(core_dist[i]);
    if (reach[i] != kUndefined) candidates.push_back(reach[i]);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<int> best_labels;
  int best_gap = std::numeric_limits<int>::max();
  int best_noise = std::numeric_limits<int>::max();
  const std::size_t probes = std::min<std::size_t>(candidates.size(), 128);
  for (std::size_t p = 0; p < probes; ++p) {
    const std::size_t idx =
        p * (candidates.size() - 1) / std::max<std::size_t>(probes - 1, 1);
    const std::vector<int> labels =
        ExtractAtThreshold(reach, core_dist, order, candidates[idx]);
    const int found = CountClusters(labels);
    if (found == 0) continue;
    int noise = 0;
    for (int l : labels) noise += l < 0 ? 1 : 0;
    const int gap = std::abs(found - k);
    if (gap < best_gap || (gap == best_gap && noise < best_noise)) {
      best_gap = gap;
      best_noise = noise;
      best_labels = labels;
    }
  }
  if (best_labels.empty()) {
    best_labels.assign(n, 0);  // degenerate data: one cluster
  }

  // Noise policy: one shared extra cluster.
  int next_cluster = CountClusters(best_labels);
  for (int& l : best_labels) {
    if (l < 0) {
      l = next_cluster;
      ++result.noise_objects;
    }
  }
  result.labels = std::move(best_labels);
  result.clusters_found = CountClusters(result.labels);
  result.iterations = 1;
  result.objective = std::numeric_limits<double>::quiet_NaN();
  result.online_ms = online.ElapsedMs();
  result.offline_ms = offline_ms;
  return result;
}

}  // namespace uclust::clustering
