#include "clustering/foptics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "clustering/pairwise_store.h"
#include "clustering/pruning.h"
#include "clustering/spatial_index.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "engine/parallel_for.h"
#include "io/sample_file.h"
#include "uncertain/sample_store.h"

namespace uclust::clustering {

namespace {
constexpr double kUndefined = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<int> Foptics::ExtractAtThreshold(
    const std::vector<double>& reachability,
    const std::vector<double>& core_distance,
    const std::vector<std::size_t>& order, double threshold) {
  std::vector<int> labels(order.size(), -1);
  int current = -1;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t i = order[pos];
    if (reachability[i] > threshold) {
      if (core_distance[i] <= threshold) {
        ++current;  // start of a new dense region
        labels[i] = current;
      }  // else noise
    } else if (current >= 0) {
      labels[i] = current;
    }
  }
  return labels;
}

ClusteringResult Foptics::Cluster(const data::UncertainDataset& data, int k,
                                  uint64_t /*seed*/) const {
  const std::size_t n = data.size();
  const engine::Engine& eng = engine();
  ClusteringResult result;
  result.k_requested = k;

  // Offline: sample store (resident or mapped, per the memory budget) + the
  // pairwise fuzzy-distance store (the dense backend builds the classic full
  // table here; budgeted backends recompute rows during the sweeps below).
  common::Stopwatch offline;
  const uncertain::SampleStorePtr samples = io::MakeSampleStoreOrResident(
      data, params_.samples, params_.sample_seed, eng);
  const kernels::PairwiseKernel kernel =
      kernels::PairwiseKernel::SampleED(samples->view());
  PairwiseStore store(eng, kernel);
  store.Warm();
  const double offline_ms = offline.ElapsedMs();

  common::Stopwatch online;
  // Core distances: MinPts-th smallest distance to another object (one
  // parallel row sweep through the store; per-worker scratch for the
  // self-excluding copy).
  std::vector<double> core_dist(n, kUndefined);
  SpatialIndexChoice index_choice = SpatialIndexChoice::kOff;
  SpatialIndexChoiceFromString(eng.spatial_index(), &index_choice);
  int64_t core_sweep_evals = 0;
  if (index_choice != SpatialIndexChoice::kOff &&
      store.backend() != PairwiseBackend::kDense && n > 1) {
    // Indexed core distances (recompute backends only — on the dense
    // backend the warmed table serves rows for free). For each object the
    // rank-th smallest box-box MAX squared distance bounds the MinPts-th
    // fuzzy distance from above, so the range query's candidate set
    // provably contains the MinPts nearest objects, and every excluded
    // object's distance is strictly beyond the rank-th (its box separation
    // clears the slacked bound). nth_element over the candidate values
    // therefore yields the bit-identical core distance while evaluating
    // only the candidates instead of all n - 1 columns per row.
    const SpatialIndex index(
        data.objects(), ResolveSpatialIndexKind(index_choice, data.dims()));
    const std::size_t rank = std::min<std::size_t>(
        static_cast<std::size_t>(params_.min_pts), n - 1);
    struct SweepCounts {
      int64_t evals = 0;
      int64_t pruned = 0;
    };
    if (rank > 0) {
      const std::vector<SweepCounts> per_block =
          engine::MapBlocks<SweepCounts>(
              eng, n, [&](const engine::BlockedRange& r) {
                SweepCounts c;
                std::vector<std::size_t> cand;
                std::vector<double> vals;
                for (std::size_t i = r.begin; i < r.end; ++i) {
                  const uncertain::Box& region = data.object(i).region();
                  const double u2 =
                      index.KthMaxSquaredDistance(region, rank, i);
                  index.QueryWithin(region, SlackedSquaredThreshold(u2), i,
                                    &cand);
                  vals.clear();
                  vals.reserve(cand.size());
                  for (const std::size_t j : cand) {
                    vals.push_back(kernel.Eval(i, j));
                  }
                  c.evals += static_cast<int64_t>(vals.size());
                  c.pruned += static_cast<int64_t>(n - 1 - vals.size());
                  assert(vals.size() >= rank);
                  std::nth_element(vals.begin(), vals.begin() + (rank - 1),
                                   vals.end());
                  core_dist[i] = vals[rank - 1];
                }
                return c;
              });
      for (const SweepCounts& c : per_block) {
        core_sweep_evals += c.evals;
        result.pairs_pruned_by_index += c.pruned;
      }
    }
    result.index_candidates = core_sweep_evals;
    result.index_bound_tests = index.bound_tests();
  } else {
    engine::PerWorker<std::vector<double>> scratch(eng);
    store.VisitAllRows([&](std::size_t i, std::span<const double> drow) {
      std::vector<double>& row = scratch.local();
      row.clear();
      row.reserve(n > 0 ? n - 1 : 0);
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) row.push_back(drow[j]);
      }
      const std::size_t rank = std::min<std::size_t>(
          static_cast<std::size_t>(params_.min_pts), row.size());
      if (rank == 0) return;
      std::nth_element(row.begin(), row.begin() + (rank - 1), row.end());
      core_dist[i] = row[rank - 1];
    });
  }

  // OPTICS walk (eps = infinity: one complete ordering).
  std::vector<double> reach(n, kUndefined);
  std::vector<bool> processed(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<double> walk_row;
  for (std::size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    // Expand from `start` by always picking the unprocessed object with the
    // smallest reachability (linear scan over the current row).
    std::size_t current = start;
    for (;;) {
      processed[current] = true;
      order.push_back(current);
      // Relax reachability of all unprocessed objects through `current`.
      // Zero-copy when the row is already materialized (dense table or
      // resident tile); otherwise a single-row fetch, cache untouched —
      // the walk order has no tile locality, so faulting whole tiles
      // would multiply kernel work by tile_rows.
      std::span<const double> drow = store.ResidentRow(current);
      if (drow.empty()) {
        store.GatherRow(current, &walk_row);
        drow = walk_row;
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (processed[j]) continue;
        const double r = std::max(core_dist[current], drow[j]);
        reach[j] = std::min(reach[j], r);
      }
      // Next: smallest reachability among unprocessed.
      std::size_t next = n;
      double best = kUndefined;
      for (std::size_t j = 0; j < n; ++j) {
        if (!processed[j] && reach[j] < best) {
          best = reach[j];
          next = j;
        }
      }
      if (next == n) break;  // all remaining are unreachable: new component
      current = next;
    }
  }

  // Flat extraction: choose the cut whose cluster count is closest to k,
  // preferring (at equal cluster-count gap) the cut leaving less noise.
  // Candidate thresholds are quantiles of the finite reachability and core
  // distances — the values at which the plot's structure changes. Each
  // probe is scored independently (parallel); the winner is selected in
  // probe order, so the cut is independent of the thread count.
  std::vector<double> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    if (core_dist[i] != kUndefined) candidates.push_back(core_dist[i]);
    if (reach[i] != kUndefined) candidates.push_back(reach[i]);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  const std::size_t probes = std::min<std::size_t>(candidates.size(), 128);
  struct ProbeScore {
    int found = 0;
    int noise = 0;
    double threshold = 0.0;
  };
  std::vector<ProbeScore> scores(probes);
  engine::ParallelForBlocked(
      eng, probes, 8, [&](const engine::BlockedRange& r) {
        for (std::size_t p = r.begin; p < r.end; ++p) {
          const std::size_t idx = p * (candidates.size() - 1) /
                                  std::max<std::size_t>(probes - 1, 1);
          scores[p].threshold = candidates[idx];
          const std::vector<int> labels =
              ExtractAtThreshold(reach, core_dist, order, scores[p].threshold);
          scores[p].found = CountClusters(labels);
          for (int l : labels) scores[p].noise += l < 0 ? 1 : 0;
        }
      });
  std::size_t best_probe = probes;
  int best_gap = std::numeric_limits<int>::max();
  int best_noise = std::numeric_limits<int>::max();
  for (std::size_t p = 0; p < probes; ++p) {
    if (scores[p].found == 0) continue;
    const int gap = std::abs(scores[p].found - k);
    if (gap < best_gap || (gap == best_gap && scores[p].noise < best_noise)) {
      best_gap = gap;
      best_noise = scores[p].noise;
      best_probe = p;
    }
  }
  std::vector<int> best_labels;
  if (best_probe < probes) {
    best_labels = ExtractAtThreshold(reach, core_dist, order,
                                     scores[best_probe].threshold);
  } else {
    best_labels.assign(n, 0);  // degenerate data: one cluster
  }

  // Noise policy: one shared extra cluster.
  int next_cluster = CountClusters(best_labels);
  for (int& l : best_labels) {
    if (l < 0) {
      l = next_cluster;
      ++result.noise_objects;
    }
  }
  result.labels = std::move(best_labels);
  result.clusters_found = CountClusters(result.labels);
  result.iterations = 1;
  result.objective = std::numeric_limits<double>::quiet_NaN();
  result.online_ms = online.ElapsedMs();
  result.offline_ms = offline_ms;
  // The indexed core sweep evaluates the kernel outside the store; its
  // evaluations (sample-integrated, like every SampleED call) fold into the
  // same totals the store-driven sweep would have produced them under.
  result.ed_evaluations += store.ed_evaluations() + core_sweep_evals;
  result.pairwise_backend = PairwiseBackendName(store.backend());
  result.table_bytes_peak = store.table_bytes_peak();
  result.pair_evaluations = store.evaluations() + core_sweep_evals;
  result.tile_warm_hits = store.warm_hits();
  result.tile_warm_misses = store.warm_misses();
  return result;
}

}  // namespace uclust::clustering
