// FOPTICS (Kriegel & Pfeifle, ICDM 2005): hierarchical density-based
// ordering of uncertain objects with fuzzy distances.
//
// Object proximities are sqrt of sample-integrated expected squared
// distances; the OPTICS walk produces an ordering with reachability values,
// from which a flat partition is extracted by cutting the reachability plot
// at the threshold whose cluster count is closest to the requested k (the
// paper evaluates FOPTICS against reference classifications with a known
// class count).
#ifndef UCLUST_CLUSTERING_FOPTICS_H_
#define UCLUST_CLUSTERING_FOPTICS_H_

#include "clustering/clusterer.h"

namespace uclust::clustering {

/// The FOPTICS algorithm.
class Foptics final : public Clusterer {
 public:
  /// Tuning knobs.
  struct Params {
    int min_pts = 5;   ///< Density threshold (MinPts).
    int samples = 24;  ///< Monte-Carlo samples per object.
    uint64_t sample_seed = 0x5eedfadeULL;  ///< Seed for the sample cache.
  };

  Foptics() = default;
  explicit Foptics(const Params& params) : params_(params) {}

  std::string name() const override { return "FOPTICS"; }
  ClusteringResult Cluster(const data::UncertainDataset& data, int k,
                           uint64_t seed) const override;

  /// Flat extraction: cuts the reachability plot (in walk order) at
  /// threshold t — an object with reachability > t starts a new cluster if
  /// its core distance is <= t and becomes noise (-1) otherwise. Exposed for
  /// tests.
  static std::vector<int> ExtractAtThreshold(
      const std::vector<double>& reachability,
      const std::vector<double>& core_distance,
      const std::vector<std::size_t>& order, double threshold);

 private:
  Params params_;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_FOPTICS_H_
