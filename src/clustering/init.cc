#include "clustering/init.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/math_utils.h"

namespace uclust::clustering {

std::vector<int> RandomPartition(std::size_t n, int k, common::Rng* rng) {
  assert(k > 0 && n >= static_cast<std::size_t>(k));
  std::vector<int> labels(n);
  // Guarantee non-emptiness: the first k slots get one object per cluster,
  // the remainder is uniform; then shuffle object positions.
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i < static_cast<std::size_t>(k)
                    ? static_cast<int>(i)
                    : rng->UniformInt(0, k - 1);
  }
  rng->Shuffle(&labels);
  return labels;
}

std::vector<std::size_t> RandomDistinctObjects(std::size_t n, int k,
                                               common::Rng* rng) {
  assert(k > 0 && n >= static_cast<std::size_t>(k));
  return rng->SampleWithoutReplacement(n, static_cast<std::size_t>(k));
}

std::vector<double> CentroidsFromObjects(
    const uncertain::MomentMatrix& moments,
    const std::vector<std::size_t>& picks) {
  const std::size_t m = moments.dims();
  std::vector<double> centroids;
  centroids.reserve(picks.size() * m);
  for (std::size_t idx : picks) {
    const auto mean = moments.mean(idx);
    centroids.insert(centroids.end(), mean.begin(), mean.end());
  }
  return centroids;
}

std::vector<std::size_t> PlusPlusObjects(const uncertain::MomentMatrix& mm,
                                         int k, common::Rng* rng) {
  const std::size_t n = mm.size();
  assert(k > 0 && n >= static_cast<std::size_t>(k));
  std::vector<std::size_t> seeds;
  seeds.reserve(k);
  seeds.push_back(rng->Index(n));
  // dist2[i] = squared distance of mean(i) to the nearest chosen seed.
  std::vector<double> dist2(n);
  for (std::size_t i = 0; i < n; ++i) {
    dist2[i] = common::SquaredDistance(mm.mean(i), mm.mean(seeds[0]));
  }
  while (seeds.size() < static_cast<std::size_t>(k)) {
    double total = 0.0;
    for (double d : dist2) total += d;
    std::size_t next;
    if (total <= 0.0) {
      // All remaining points coincide with seeds: fall back to uniform.
      next = rng->Index(n);
    } else {
      double target = rng->Uniform() * total;
      next = n - 1;
      for (std::size_t i = 0; i < n; ++i) {
        target -= dist2[i];
        if (target <= 0.0) {
          next = i;
          break;
        }
      }
    }
    seeds.push_back(next);
    for (std::size_t i = 0; i < n; ++i) {
      dist2[i] = std::min(
          dist2[i], common::SquaredDistance(mm.mean(i), mm.mean(next)));
    }
  }
  return seeds;
}

std::vector<int> PartitionFromSeeds(const uncertain::MomentMatrix& mm,
                                    const std::vector<std::size_t>& seeds) {
  assert(!seeds.empty());
  const std::size_t n = mm.size();
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < seeds.size(); ++c) {
      const double d = common::SquaredDistance(mm.mean(i), mm.mean(seeds[c]));
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(c);
      }
    }
    labels[i] = best;
  }
  // Guarantee non-emptiness: each seed claims its own object (a seed is its
  // own nearest seed unless duplicated; enforce explicitly).
  for (std::size_t c = 0; c < seeds.size(); ++c) {
    labels[seeds[c]] = static_cast<int>(c);
  }
  return labels;
}

}  // namespace uclust::clustering
