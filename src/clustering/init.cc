#include "clustering/init.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <span>

#include "common/math_utils.h"

namespace uclust::clustering {

std::vector<int> RandomPartition(std::size_t n, int k, common::Rng* rng) {
  assert(k > 0 && n >= static_cast<std::size_t>(k));
  std::vector<int> labels(n);
  // Guarantee non-emptiness: the first k slots get one object per cluster,
  // the remainder is uniform; then shuffle object positions.
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i < static_cast<std::size_t>(k)
                    ? static_cast<int>(i)
                    : rng->UniformInt(0, k - 1);
  }
  rng->Shuffle(&labels);
  return labels;
}

std::vector<std::size_t> RandomDistinctObjects(std::size_t n, int k,
                                               common::Rng* rng) {
  assert(k > 0 && n >= static_cast<std::size_t>(k));
  return rng->SampleWithoutReplacement(n, static_cast<std::size_t>(k));
}

std::vector<double> CentroidsFromObjects(
    const uncertain::MomentView& moments,
    const std::vector<std::size_t>& picks) {
  const std::size_t m = moments.dims();
  std::vector<double> centroids;
  centroids.reserve(picks.size() * m);
  for (std::size_t idx : picks) {
    const auto mean = moments.mean(idx);
    centroids.insert(centroids.end(), mean.begin(), mean.end());
  }
  return centroids;
}

namespace {

// Shared D^2-seeding core: `mean_of(i)` serves row i's expected value. Both
// public overloads funnel through here, so the rng consumption and the
// floating-point evaluation order cannot diverge between the MomentView and
// the reduced flat representations — the CK-means bit-identity contract.
template <typename MeanFn>
std::vector<std::size_t> PlusPlusCore(std::size_t n, std::size_t m, int k,
                                      common::Rng* rng,
                                      const MeanFn& mean_of) {
  assert(k > 0 && n >= static_cast<std::size_t>(k));
  std::vector<std::size_t> seeds;
  seeds.reserve(k);
  seeds.push_back(rng->Index(n));
  // The newest seed's mean, gathered once into flat scratch: on a chunked
  // (mapped) view, re-fetching the seed row per object would alternate the
  // per-thread chunk windows between the sweep row and the seed row.
  std::vector<double> seed_mean(m);
  auto gather_seed = [&](std::size_t idx) {
    const auto mean = mean_of(idx);
    std::copy(mean.begin(), mean.end(), seed_mean.begin());
  };
  gather_seed(seeds[0]);
  // dist2[i] = squared distance of mean(i) to the nearest chosen seed.
  std::vector<double> dist2(n);
  for (std::size_t i = 0; i < n; ++i) {
    dist2[i] = common::SquaredDistance(mean_of(i), seed_mean);
  }
  while (seeds.size() < static_cast<std::size_t>(k)) {
    double total = 0.0;
    for (double d : dist2) total += d;
    std::size_t next;
    if (total <= 0.0) {
      // All remaining points coincide with seeds: fall back to uniform.
      next = rng->Index(n);
    } else {
      double target = rng->Uniform() * total;
      next = n - 1;
      for (std::size_t i = 0; i < n; ++i) {
        target -= dist2[i];
        if (target <= 0.0) {
          next = i;
          break;
        }
      }
    }
    seeds.push_back(next);
    gather_seed(next);
    for (std::size_t i = 0; i < n; ++i) {
      dist2[i] =
          std::min(dist2[i], common::SquaredDistance(mean_of(i), seed_mean));
    }
  }
  return seeds;
}

}  // namespace

std::vector<std::size_t> PlusPlusObjects(const uncertain::MomentView& mm,
                                         int k, common::Rng* rng) {
  return PlusPlusCore(mm.size(), mm.dims(), k, rng,
                      [&](std::size_t i) { return mm.mean(i); });
}

std::vector<std::size_t> PlusPlusObjects(std::span<const double> means,
                                         std::size_t n, std::size_t m, int k,
                                         common::Rng* rng) {
  assert(means.size() == n * m);
  return PlusPlusCore(n, m, k, rng, [&](std::size_t i) {
    return std::span<const double>(means.data() + i * m, m);
  });
}

std::vector<int> PartitionFromSeeds(const uncertain::MomentView& mm,
                                    const std::vector<std::size_t>& seeds) {
  assert(!seeds.empty());
  const std::size_t n = mm.size();
  const std::size_t m = mm.dims();
  // Gather every seed mean once (flat k x m scratch): k seeds can span more
  // chunks than a mapped view's per-thread window cache holds, and the
  // [object, seed, object, seed] access pattern would thrash it.
  const std::vector<double> seed_means = CentroidsFromObjects(mm, seeds);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < seeds.size(); ++c) {
      const double d = common::SquaredDistance(
          mm.mean(i),
          std::span<const double>(seed_means.data() + c * m, m));
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(c);
      }
    }
    labels[i] = best;
  }
  // Guarantee non-emptiness: each seed claims its own object (a seed is its
  // own nearest seed unless duplicated; enforce explicitly).
  for (std::size_t c = 0; c < seeds.size(); ++c) {
    labels[seeds[c]] = static_cast<int>(c);
  }
  return labels;
}

}  // namespace uclust::clustering
