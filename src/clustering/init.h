// Initialization strategies shared by the partitional algorithms.
#ifndef UCLUST_CLUSTERING_INIT_H_
#define UCLUST_CLUSTERING_INIT_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "uncertain/moments.h"

namespace uclust::clustering {

/// Uniform random partition of n objects into k non-empty clusters
/// (Algorithm 1, Line 2). Requires n >= k.
std::vector<int> RandomPartition(std::size_t n, int k, common::Rng* rng);

/// k distinct objects drawn uniformly; their expected-value vectors serve as
/// initial centroids (Forgy initialization for the K-means-style methods).
std::vector<std::size_t> RandomDistinctObjects(std::size_t n, int k,
                                               common::Rng* rng);

/// Copies the mean vectors of the selected objects into a flat k x m array.
std::vector<double> CentroidsFromObjects(
    const uncertain::MomentView& moments,
    const std::vector<std::size_t>& picks);

/// D^2-weighted seeding over the expected-value vectors (k-means++ style,
/// Arthur & Vassilvitskii 2007), an optional extension over the paper's
/// random initialization: each next seed is drawn with probability
/// proportional to the squared distance to the nearest chosen seed.
/// Returns k distinct object indices.
std::vector<std::size_t> PlusPlusObjects(const uncertain::MomentView& mm,
                                         int k, common::Rng* rng);

/// PlusPlusObjects over a flat row-major n x m block of expected-value
/// vectors — the reduced representation the CK-means fast path already
/// copied out of the moments in one pass (clustering/ckmeans.h), so seeding
/// never re-touches a chunked (mapped) view per candidate round. Consumes
/// the rng identically and performs the same arithmetic in the same order
/// as the MomentView overload, so the picked seeds are bit-identical.
std::vector<std::size_t> PlusPlusObjects(std::span<const double> means,
                                         std::size_t n, std::size_t m, int k,
                                         common::Rng* rng);

/// Partition induced by assigning every object to its nearest seed's mean —
/// turns seed objects into an initial partition for the relocation local
/// search. Every cluster is non-empty (each seed claims itself).
std::vector<int> PartitionFromSeeds(const uncertain::MomentView& mm,
                                    const std::vector<std::size_t>& seeds);

/// How partitional algorithms pick their starting state.
enum class InitStrategy {
  kRandom,    ///< Random partition / Forgy seeds (the paper's choice).
  kPlusPlus,  ///< D^2-weighted seeding (library extension).
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_INIT_H_
