#include "clustering/kernels.h"

#include <cassert>
#include <limits>

#include "clustering/simd/simd.h"

namespace uclust::clustering::kernels {

namespace {

// Row-block size for the triangular pairwise kernels. Row i costs O(n - i),
// so the linear-sweep block size would dump nearly all work into the first
// block; many small row-blocks let the pool's dynamic task counter balance
// the skew. Per-pair results are computed independently (and counters are
// integers), so the block partition never affects the values produced.
std::size_t TriangularRowBlock(const engine::Engine& eng, std::size_t n) {
  const std::size_t lanes = static_cast<std::size_t>(eng.num_threads());
  return engine::ClampBlock(eng, n / (lanes * 8) + 1);
}

}  // namespace

int NearestCentroid(std::span<const double> point,
                    std::span<const double> centroids, int k, std::size_t m) {
  // Dispatched center scan (same ascending-c strict-< decision sequence);
  // the runner-up distance the kernel also tracks is unused here.
  int best = 0;
  double best_d2 = 0.0;
  double second_d2 = 0.0;
  simd::NearestTwo(point.data(), centroids.data(), k, m, /*reuse_c=*/-1,
                   /*reuse_d2=*/0.0, &best, &best_d2, &second_d2);
  return best;
}

std::size_t AssignNearest(const engine::Engine& eng,
                          const uncertain::MomentView& mm,
                          std::span<const double> centroids, int k,
                          std::span<int> labels) {
  const std::size_t m = mm.dims();
  const std::vector<std::size_t> changed_per_block =
      engine::MapBlocks<std::size_t>(
          eng, mm.size(), [&](const engine::BlockedRange& r) {
            std::size_t changed = 0;
            for (std::size_t i = r.begin; i < r.end; ++i) {
              const int best = NearestCentroid(mm.mean(i), centroids, k, m);
              if (best != labels[i]) {
                labels[i] = best;
                ++changed;
              }
            }
            return changed;
          });
  std::size_t total = 0;
  for (std::size_t c : changed_per_block) total += c;
  return total;
}

void SumMeansByLabel(const engine::Engine& eng,
                     const uncertain::MomentView& mm,
                     std::span<const int> labels, int k,
                     std::vector<double>* sums,
                     std::vector<std::size_t>* counts) {
  const std::size_t m = mm.dims();
  const std::size_t km = static_cast<std::size_t>(k) * m;
  struct Partial {
    std::vector<double> sums;
    std::vector<std::size_t> counts;
  };
  std::vector<Partial> partials = engine::MapBlocks<Partial>(
      eng, mm.size(), [&](const engine::BlockedRange& r) {
        Partial p{std::vector<double>(km, 0.0),
                  std::vector<std::size_t>(k, 0)};
        for (std::size_t i = r.begin; i < r.end; ++i) {
          const auto mean = mm.mean(i);
          double* dst =
              p.sums.data() + static_cast<std::size_t>(labels[i]) * m;
          simd::VectorAdd(dst, mean.data(), m);
          ++p.counts[labels[i]];
        }
        return p;
      });
  sums->assign(km, 0.0);
  counts->assign(k, 0);
  // Combine in block order: the floating-point result is a function of the
  // block partition only, not of the thread count.
  for (const Partial& p : partials) {
    for (std::size_t j = 0; j < km; ++j) (*sums)[j] += p.sums[j];
    for (int c = 0; c < k; ++c) (*counts)[c] += p.counts[c];
  }
}

double AssignmentObjective(const engine::Engine& eng,
                           const uncertain::MomentView& mm,
                           std::span<const int> labels,
                           std::span<const double> centroids) {
  const std::size_t m = mm.dims();
  const std::vector<double> partials = engine::MapBlocks<double>(
      eng, mm.size(), [&](const engine::BlockedRange& r) {
        double acc = 0.0;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          const std::size_t c = static_cast<std::size_t>(labels[i]);
          acc += mm.total_variance(i) +
                 common::SquaredDistance(mm.mean(i),
                                         centroids.subspan(c * m, m));
        }
        return acc;
      });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

int64_t FillDenseTriangular(const engine::Engine& eng,
                            const PairwiseKernel& kernel,
                            std::vector<double>* dist) {
  const std::size_t n = kernel.size();
  dist->assign(n * n, 0.0);
  double* d = dist->data();
  // Block owns rows [begin, end): entries (i, j) and (j, i) for j > i are
  // written by the block owning i, so blocks never write the same cell.
  const std::vector<int64_t> evals_per_block =
      engine::MapBlocksBlocked<int64_t>(
          eng, n, TriangularRowBlock(eng, n),
          [&](const engine::BlockedRange& r) {
        int64_t evals = 0;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          for (std::size_t j = i + 1; j < n; ++j) {
            const double v = kernel.Eval(i, j);
            d[i * n + j] = v;
            d[j * n + i] = v;
            ++evals;
          }
        }
        return evals;
      });
  int64_t total = 0;
  for (int64_t e : evals_per_block) total += e;
  return total;
}

int64_t FillRowTile(const engine::Engine& eng, const PairwiseKernel& kernel,
                    std::size_t row_begin, std::size_t row_end, double* out) {
  const std::size_t n = kernel.size();
  const std::size_t rows = row_end - row_begin;
  // Rows cost uniformly n - 1 evaluations, so the plain linear partition
  // balances; many small blocks still help when the tile is shallow.
  const std::size_t block = engine::ClampBlock(
      eng, rows / (static_cast<std::size_t>(eng.num_threads()) * 4) + 1);
  const std::vector<int64_t> evals_per_block =
      engine::MapBlocksBlocked<int64_t>(
          eng, rows, block, [&](const engine::BlockedRange& r) {
        int64_t evals = 0;
        for (std::size_t t = r.begin; t < r.end; ++t) {
          const std::size_t i = row_begin + t;
          double* row = out + t * n;
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i) {
              row[j] = 0.0;
              continue;
            }
            row[j] = kernel.Eval(i, j);
            ++evals;
          }
        }
        return evals;
      });
  int64_t total = 0;
  for (int64_t e : evals_per_block) total += e;
  return total;
}

int64_t FillUpperRowTilePruned(const engine::Engine& eng,
                               const PairwiseKernel& kernel,
                               std::size_t row_begin, std::size_t row_end,
                               double* out, const PairSkipTest& skip,
                               int64_t* pruned) {
  const std::size_t n = kernel.size();
  const std::size_t rows = row_end - row_begin;
  struct Counts {
    int64_t evals = 0;
    int64_t pruned = 0;
  };
  const std::vector<Counts> per_block = engine::MapBlocksBlocked<Counts>(
      eng, rows, TriangularRowBlock(eng, rows),
      [&](const engine::BlockedRange& r) {
        Counts c;
        for (std::size_t t = r.begin; t < r.end; ++t) {
          const std::size_t i = row_begin + t;
          double* row = out + t * n;
          for (std::size_t j = i + 1; j < n; ++j) {
            if (skip(i, j)) {
              row[j] = 0.0;
              ++c.pruned;
              continue;
            }
            row[j] = kernel.Eval(i, j);
            ++c.evals;
          }
        }
        return c;
      });
  int64_t total = 0;
  for (const Counts& c : per_block) {
    total += c.evals;
    *pruned += c.pruned;
  }
  return total;
}

int64_t FillUpperRowTileFromCandidates(const engine::Engine& eng,
                                       const PairwiseKernel& kernel,
                                       std::size_t row_begin,
                                       std::size_t row_end, double* out,
                                       const CandidateColumns& candidates,
                                       const PairSkipTest& skip,
                                       int64_t* pruned) {
  const std::size_t n = kernel.size();
  const std::size_t rows = row_end - row_begin;
  struct Counts {
    int64_t evals = 0;
    int64_t pruned = 0;
  };
  const std::vector<Counts> per_block = engine::MapBlocksBlocked<Counts>(
      eng, rows, TriangularRowBlock(eng, rows),
      [&](const engine::BlockedRange& r) {
        Counts c;
        for (std::size_t t = r.begin; t < r.end; ++t) {
          const std::size_t i = row_begin + t;
          double* row = out + t * n;
          std::fill(row + i + 1, row + n, 0.0);
          int64_t row_evals = 0;
          for (const std::size_t j : candidates(i)) {
            assert(j > i && j < n);
            if (skip && skip(i, j)) continue;  // stays the exact 0
            row[j] = kernel.Eval(i, j);
            ++row_evals;
          }
          c.evals += row_evals;
          c.pruned += static_cast<int64_t>(n - i - 1) - row_evals;
        }
        return c;
      });
  int64_t total = 0;
  for (const Counts& c : per_block) {
    total += c.evals;
    *pruned += c.pruned;
  }
  return total;
}

int64_t FillGatherTile(const engine::Engine& eng, const PairwiseKernel& kernel,
                       std::span<const std::size_t> rows, double* out,
                       std::span<const std::size_t> out_slots) {
  const std::size_t n = kernel.size();
  const std::size_t count = rows.size();
  // Requested rows cost uniformly n - 1 evaluations, like FillRowTile.
  const std::size_t block = engine::ClampBlock(
      eng, count / (static_cast<std::size_t>(eng.num_threads()) * 4) + 1);
  const std::vector<int64_t> evals_per_block =
      engine::MapBlocksBlocked<int64_t>(
          eng, count, block, [&](const engine::BlockedRange& r) {
        int64_t evals = 0;
        for (std::size_t t = r.begin; t < r.end; ++t) {
          const std::size_t i = rows[t];
          double* row =
              out + (out_slots.empty() ? t : out_slots[t]) * n;
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i) {
              row[j] = 0.0;
              continue;
            }
            row[j] = kernel.Eval(i, j);
            ++evals;
          }
        }
        return evals;
      });
  int64_t total = 0;
  for (int64_t e : evals_per_block) total += e;
  return total;
}

int64_t FillSymmetricBlock(const engine::Engine& eng,
                           const PairwiseKernel& kernel,
                           std::span<const std::size_t> ids,
                           std::span<const std::size_t> missing_slots,
                           double* out) {
  const std::size_t s = ids.size();
  const std::size_t count = missing_slots.size();
  // Missing slot t pairs with the |missing| - 1 - t slots after it, the same
  // triangular skew as the whole-table fill; cells (a, b) and (b, a) belong
  // to the block owning the lower missing index, so no cell is written twice.
  const std::vector<int64_t> evals_per_block =
      engine::MapBlocksBlocked<int64_t>(
          eng, count, TriangularRowBlock(eng, count),
          [&](const engine::BlockedRange& r) {
        int64_t evals = 0;
        for (std::size_t t = r.begin; t < r.end; ++t) {
          const std::size_t a = missing_slots[t];
          out[a * s + a] = 0.0;
          for (std::size_t u = t + 1; u < count; ++u) {
            const std::size_t b = missing_slots[u];
            const double v = kernel.Eval(ids[a], ids[b]);
            out[a * s + b] = v;
            out[b * s + a] = v;
            ++evals;
          }
        }
        return evals;
      });
  int64_t total = 0;
  for (int64_t e : evals_per_block) total += e;
  return total;
}

int64_t FillBlockRows(const engine::Engine& eng, const PairwiseKernel& kernel,
                      std::span<const std::size_t> ids,
                      std::span<const std::size_t> row_slots,
                      std::span<const std::size_t> out_slots, double* out) {
  const std::size_t s = ids.size();
  const std::size_t count = row_slots.size();
  // Listed rows cost uniformly |ids| - 1 evaluations, like FillRowTile.
  const std::size_t block = engine::ClampBlock(
      eng, count / (static_cast<std::size_t>(eng.num_threads()) * 4) + 1);
  const std::vector<int64_t> evals_per_block =
      engine::MapBlocksBlocked<int64_t>(
          eng, count, block, [&](const engine::BlockedRange& r) {
        int64_t evals = 0;
        for (std::size_t t = r.begin; t < r.end; ++t) {
          const std::size_t a = row_slots[t];
          double* row = out + out_slots[t] * s;
          for (std::size_t b = 0; b < s; ++b) {
            if (b == a) {
              row[b] = 0.0;
              continue;
            }
            row[b] = kernel.Eval(ids[a], ids[b]);
            ++evals;
          }
        }
        return evals;
      });
  int64_t total = 0;
  for (int64_t e : evals_per_block) total += e;
  return total;
}

int64_t FillUpperRowTile(const engine::Engine& eng,
                         const PairwiseKernel& kernel, std::size_t row_begin,
                         std::size_t row_end, double* out) {
  const std::size_t n = kernel.size();
  const std::size_t rows = row_end - row_begin;
  // Row i costs n - 1 - i, so reuse the skew-aware triangular row blocking.
  const std::vector<int64_t> evals_per_block =
      engine::MapBlocksBlocked<int64_t>(
          eng, rows, TriangularRowBlock(eng, rows),
          [&](const engine::BlockedRange& r) {
        int64_t evals = 0;
        for (std::size_t t = r.begin; t < r.end; ++t) {
          const std::size_t i = row_begin + t;
          double* row = out + t * n;
          for (std::size_t j = i + 1; j < n; ++j) {
            row[j] = kernel.Eval(i, j);
            ++evals;
          }
        }
        return evals;
      });
  int64_t total = 0;
  for (int64_t e : evals_per_block) total += e;
  return total;
}

}  // namespace uclust::clustering::kernels
