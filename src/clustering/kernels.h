// Shared blocked compute kernels of the clustering stack.
//
// The nearest-centroid / expected-distance inner loops used to be duplicated
// across ukmeans.cc, basic_ukmeans.cc, and pruning call sites; they live
// here once, formulated over MomentView / SampleView blocks and
// dispatched through the execution engine. Every kernel is bit-identical
// for any Engine thread count (fixed block partition + ordered reduction;
// see engine/parallel_for.h).
//
// The CK-means fast path (clustering/ckmeans.h) does not call AssignNearest
// or SumMeansByLabel directly, but its bound-pruned sweeps and mini-batch
// accumulators replicate their comparison order and partial-sum fold
// structure exactly — that replication, not these entry points, is what
// makes its labels bit-identical to the direct sweeps. Change the blocked
// reduction structure here and the mirrored code there must follow.
//
// The pairwise kernels are tile producers: they fill row tiles (or the
// ragged upper-triangle rows) of a symmetric pairwise table for a
// PairwiseKernel, so the PairwiseStore backends can materialize the table
// fully, in LRU-cached tiles, or not at all. Every producer evaluates a
// pair as (min(i, j), max(i, j)), which makes a given entry bit-identical
// no matter which producer (or backend) computed it.
#ifndef UCLUST_CLUSTERING_KERNELS_H_
#define UCLUST_CLUSTERING_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/math_utils.h"
#include "engine/parallel_for.h"
#include "uncertain/expected_distance.h"
#include "uncertain/moments.h"
#include "uncertain/sample_store.h"
#include "uncertain/uncertain_object.h"

namespace uclust::clustering::kernels {

/// Index of the centroid (flat k x m array) nearest to `point` by squared
/// Euclidean distance; ties break toward the lower index.
int NearestCentroid(std::span<const double> point,
                    std::span<const double> centroids, int k, std::size_t m);

/// Assigns every object's expected value to its nearest centroid (the
/// UK-means assignment step, Eq. 8). Writes labels[i] and returns the number
/// of labels that changed.
std::size_t AssignNearest(const engine::Engine& eng,
                          const uncertain::MomentView& mm,
                          std::span<const double> centroids, int k,
                          std::span<int> labels);

/// Accumulates per-cluster sums of member means and member counts
/// (the centroid-update numerators of Eq. 7). sums is resized to k*m and
/// counts to k. Deterministic for any thread count.
void SumMeansByLabel(const engine::Engine& eng,
                     const uncertain::MomentView& mm,
                     std::span<const int> labels, int k,
                     std::vector<double>* sums,
                     std::vector<std::size_t>* counts);

/// Closed-form UK-means objective of a labeling:
/// sum_i [ sigma^2(o_i) + ||mu(o_i) - c_{label(i)}||^2 ].
double AssignmentObjective(const engine::Engine& eng,
                           const uncertain::MomentView& mm,
                           std::span<const int> labels,
                           std::span<const double> centroids);

/// A pure symmetric pairwise function over an indexed object set — the
/// numeric basis every PairwiseStore backend materializes. Variants:
/// the closed-form expected squared distance ED^ (Lemma 3), the matched-pair
/// sample estimate of ED^ (optionally under a square root, the FOPTICS fuzzy
/// distance), and the FDBSCAN distance probability Pr[dist <= eps].
/// The referenced objects / sample-view backing store must outlive the
/// kernel. The sampled kinds read through uncertain::SampleView, so both
/// the Resident and the Mapped (out-of-core .usmp) SampleStore backends
/// serve them — with bit-identical values, since the bytes behind the view
/// are identical by the sample-store contract. Each sampled evaluation
/// holds exactly two object rows at once, within the chunked view's
/// span-validity window.
struct PairwiseKernel {
  enum class Kind {
    kClosedFormED2,        ///< ED^ from moments (Lemma 3); no integration.
    kSampleED2,            ///< Matched-pair sampled ED^.
    kSampleED,             ///< sqrt of the sampled ED^ (fuzzy distance).
    kDistanceProbability,  ///< Pr[dist(o_i, o_j) <= eps] over sample pairs.
  };

  /// Closed-form ED^ over uncertain objects.
  static PairwiseKernel ClosedFormED2(
      std::span<const uncertain::UncertainObject> objects) {
    PairwiseKernel k;
    k.kind = Kind::kClosedFormED2;
    k.objects = objects;
    return k;
  }
  /// Matched-pair sample estimate of ED^ over a sample view.
  static PairwiseKernel SampleED2(const uncertain::SampleView& view) {
    PairwiseKernel k;
    k.kind = Kind::kSampleED2;
    k.samples = view;
    return k;
  }
  /// sqrt of the sampled ED^ (the FOPTICS fuzzy distance).
  static PairwiseKernel SampleED(const uncertain::SampleView& view) {
    PairwiseKernel k;
    k.kind = Kind::kSampleED;
    k.samples = view;
    return k;
  }
  /// FDBSCAN distance probability at radius `eps`.
  static PairwiseKernel DistanceProbability(const uncertain::SampleView& view,
                                            double eps) {
    PairwiseKernel k;
    k.kind = Kind::kDistanceProbability;
    k.samples = view;
    k.eps = eps;
    return k;
  }

  /// Number of objects the kernel is defined over.
  std::size_t size() const {
    return kind == Kind::kClosedFormED2 ? objects.size() : samples.size();
  }

  /// True when an evaluation is a sample-integrated ED computation (the
  /// quantity ClusteringResult::ed_evaluations counts; the closed form
  /// counts no integrations).
  bool counts_ed_evaluations() const { return kind != Kind::kClosedFormED2; }

  /// Evaluates the pair. Arguments are canonicalized to (lo, hi), so
  /// Eval(i, j) and Eval(j, i) are the same floating-point value.
  double Eval(std::size_t i, std::size_t j) const {
    const std::size_t lo = std::min(i, j);
    const std::size_t hi = std::max(i, j);
    switch (kind) {
      case Kind::kClosedFormED2:
        return uncertain::ExpectedSquaredDistance(objects[lo], objects[hi]);
      case Kind::kSampleED2:
      case Kind::kSampleED: {
        // Fetch each object's row once (two chunk lookups per pair, not two
        // per sample) and walk matched realizations within the spans.
        const std::span<const double> a = samples.ObjectSamples(lo);
        const std::span<const double> b = samples.ObjectSamples(hi);
        const int s_count = samples.samples_per_object();
        const std::size_t m = samples.dims();
        double acc = 0.0;
        for (int s = 0; s < s_count; ++s) {
          const std::size_t off = static_cast<std::size_t>(s) * m;
          acc += common::SquaredDistance(a.subspan(off, m),
                                         b.subspan(off, m));
        }
        const double ed = acc / s_count;
        return kind == Kind::kSampleED ? std::sqrt(ed) : ed;
      }
      case Kind::kDistanceProbability:
        return samples.DistanceProbability(lo, hi, eps);
    }
    return 0.0;  // unreachable
  }

  Kind kind = Kind::kClosedFormED2;
  std::span<const uncertain::UncertainObject> objects{};
  uncertain::SampleView samples{};
  double eps = 0.0;
};

/// Fills the full symmetric n x n table for `kernel` (each pair evaluated
/// once on the upper triangle and mirrored, diagonal 0) — the Dense-backend
/// producer, preserving the classic offline-table parallel schedule and
/// evaluation count. dist is resized to n*n. Returns n*(n-1)/2 evaluations.
int64_t FillDenseTriangular(const engine::Engine& eng,
                            const PairwiseKernel& kernel,
                            std::vector<double>* dist);

/// Fills the row tile [row_begin, row_end) x [0, n) for `kernel` into `out`
/// (row-major, (row_end - row_begin) x n, diagonal entries 0). Every entry
/// of the tile is evaluated, so a row costs n - 1 evaluations. Parallel over
/// rows; returns the number of evaluations.
int64_t FillRowTile(const engine::Engine& eng, const PairwiseKernel& kernel,
                    std::size_t row_begin, std::size_t row_end, double* out);

/// Fills the ragged upper-triangle rows [row_begin, row_end): entry (i, j)
/// for j > i lands at out[(i - row_begin) * n + j]; entries j <= i are left
/// untouched. Evaluates only the upper triangle, so a full sweep costs
/// n*(n-1)/2 evaluations. Parallel over rows; returns the evaluation count.
int64_t FillUpperRowTile(const engine::Engine& eng,
                         const PairwiseKernel& kernel, std::size_t row_begin,
                         std::size_t row_end, double* out);

/// Cheap pure predicate over a pair (i, j): true means the pair's exact
/// kernel value is provably 0 and the evaluation may be skipped. Must be
/// safe to call concurrently.
using PairSkipTest = std::function<bool(std::size_t, std::size_t)>;

/// FillUpperRowTile with bound-based pair pruning: pairs for which `skip`
/// returns true are written as exactly 0.0 without a kernel evaluation
/// (which is the value the kernel would have produced — the caller's
/// contract). Returns the evaluation count and adds the number of skipped
/// pairs to *pruned. The skip decision is a pure function of the pair, so
/// the filled tile is bit-identical for any thread count.
int64_t FillUpperRowTilePruned(const engine::Engine& eng,
                               const PairwiseKernel& kernel,
                               std::size_t row_begin, std::size_t row_end,
                               double* out, const PairSkipTest& skip,
                               int64_t* pruned);

/// Per-row candidate columns for a candidate-driven upper-triangle sweep:
/// candidates(i) returns the ascending column indices j > i that may have a
/// nonzero kernel value (e.g. spatial-index range-query hits). Must be pure
/// and safe to call concurrently; the returned span must stay valid for the
/// duration of the sweep.
using CandidateColumns =
    std::function<std::span<const std::size_t>(std::size_t)>;

/// FillUpperRowTilePruned driven by candidate sets instead of all-pairs
/// predicate tests: row i's upper entries are zero-initialized, and only
/// the columns in candidates(i) are considered — evaluated unless `skip`
/// (optional) still rules them out. The caller's contract is that every
/// non-candidate pair's exact kernel value is provably 0, so the filled
/// tile is bit-identical to the predicate-driven sweep whenever the
/// candidate set is a superset of the non-skipped pairs. Returns the
/// evaluation count; non-candidates and skipped candidates both add to
/// *pruned (preserving evals + pruned = pairs swept).
int64_t FillUpperRowTileFromCandidates(const engine::Engine& eng,
                                       const PairwiseKernel& kernel,
                                       std::size_t row_begin,
                                       std::size_t row_end, double* out,
                                       const CandidateColumns& candidates,
                                       const PairSkipTest& skip,
                                       int64_t* pruned);

/// Fills an asymmetric "gather tile": full length-n rows for exactly the
/// requested row indices, in one parallel pass. Row r of the request lands
/// at out + r * n (or at out + out_slots[r] * n when `out_slots` is given,
/// letting callers scatter computed rows between rows served from cache).
/// Costs n - 1 evaluations per requested row (diagonal entries are 0).
int64_t FillGatherTile(const engine::Engine& eng, const PairwiseKernel& kernel,
                       std::span<const std::size_t> rows, double* out,
                       std::span<const std::size_t> out_slots = {});

/// Fills the missing part of a symmetric |ids| x |ids| block (row-major over
/// `ids`): for missing slots a < b (entries of `missing_slots`, ascending)
/// writes Eval(ids[a], ids[b]) into (a, b) AND (b, a) of `out`, and zeroes
/// the missing diagonals. Slots not listed are assumed already filled by the
/// caller (rows served from cache). Costs |missing| * (|missing| - 1) / 2
/// evaluations — the candidate x member slab of the UK-medoids swap sweep.
/// Parallel over missing slots; each cell is written exactly once.
int64_t FillSymmetricBlock(const engine::Engine& eng,
                           const PairwiseKernel& kernel,
                           std::span<const std::size_t> ids,
                           std::span<const std::size_t> missing_slots,
                           double* out);

/// Fills individual rows of the symmetric |ids| x |ids| block: for each t,
/// row a = row_slots[t] lands at out + out_slots[t] * ids.size(), holding
/// Eval(ids[a], ids[b]) for every b (0 when a == b). Costs |ids| - 1
/// evaluations per listed row. Parallel over the listed rows — the striped
/// producer for blocks too large to materialize whole.
int64_t FillBlockRows(const engine::Engine& eng, const PairwiseKernel& kernel,
                      std::span<const std::size_t> ids,
                      std::span<const std::size_t> row_slots,
                      std::span<const std::size_t> out_slots, double* out);

}  // namespace uclust::clustering::kernels

#endif  // UCLUST_CLUSTERING_KERNELS_H_
