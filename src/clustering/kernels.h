// Shared blocked compute kernels of the clustering stack.
//
// The nearest-centroid / expected-distance inner loops used to be duplicated
// across ukmeans.cc, basic_ukmeans.cc, and pruning call sites; they live
// here once, formulated over MomentMatrix / SampleCache blocks and
// dispatched through the execution engine. Every kernel is bit-identical
// for any Engine thread count (fixed block partition + ordered reduction;
// see engine/parallel_for.h).
#ifndef UCLUST_CLUSTERING_KERNELS_H_
#define UCLUST_CLUSTERING_KERNELS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "engine/parallel_for.h"
#include "uncertain/moments.h"
#include "uncertain/sample_cache.h"
#include "uncertain/uncertain_object.h"

namespace uclust::clustering::kernels {

/// Index of the centroid (flat k x m array) nearest to `point` by squared
/// Euclidean distance; ties break toward the lower index.
int NearestCentroid(std::span<const double> point,
                    std::span<const double> centroids, int k, std::size_t m);

/// Assigns every object's expected value to its nearest centroid (the
/// UK-means assignment step, Eq. 8). Writes labels[i] and returns the number
/// of labels that changed.
std::size_t AssignNearest(const engine::Engine& eng,
                          const uncertain::MomentMatrix& mm,
                          std::span<const double> centroids, int k,
                          std::span<int> labels);

/// Accumulates per-cluster sums of member means and member counts
/// (the centroid-update numerators of Eq. 7). sums is resized to k*m and
/// counts to k. Deterministic for any thread count.
void SumMeansByLabel(const engine::Engine& eng,
                     const uncertain::MomentMatrix& mm,
                     std::span<const int> labels, int k,
                     std::vector<double>* sums,
                     std::vector<std::size_t>* counts);

/// Closed-form UK-means objective of a labeling:
/// sum_i [ sigma^2(o_i) + ||mu(o_i) - c_{label(i)}||^2 ].
double AssignmentObjective(const engine::Engine& eng,
                           const uncertain::MomentMatrix& mm,
                           std::span<const int> labels,
                           std::span<const double> centroids);

/// Fills the symmetric n x n expected-squared-distance table from the
/// closed form (Lemma 3). dist is resized to n*n.
void PairwiseClosedFormED(const engine::Engine& eng,
                          std::span<const uncertain::UncertainObject> objects,
                          std::vector<double>* dist);

/// Fills the symmetric n x n table of matched-pair sample estimates of the
/// expected squared distance (take_sqrt = false) or its square root
/// (take_sqrt = true, the FOPTICS fuzzy distance). Returns the number of
/// sample-integrated evaluations performed (the upper triangle).
int64_t PairwiseSampleED(const engine::Engine& eng,
                         const uncertain::SampleCache& cache, bool take_sqrt,
                         std::vector<double>* dist);

/// Upper-triangle distance-probability rows: rows[i] holds (j, p) for every
/// j > i with p = Pr[dist(o_i, o_j) <= eps] > 0 (FDBSCAN edge weights).
/// Returns the number of probability evaluations (n*(n-1)/2).
int64_t DistanceProbabilityRows(
    const engine::Engine& eng, const uncertain::SampleCache& cache, double eps,
    std::vector<std::vector<std::pair<std::size_t, double>>>* rows);

}  // namespace uclust::clustering::kernels

#endif  // UCLUST_CLUSTERING_KERNELS_H_
