#include "clustering/local_search.h"

#include <cassert>
#include <cmath>

#include "clustering/init.h"
#include "engine/parallel_for.h"

namespace uclust::clustering {

LocalSearchOutcome RunLocalSearch(const uncertain::MomentView& moments,
                                  int k, const LocalSearchParams& params,
                                  common::Rng* rng,
                                  const engine::Engine& eng) {
  std::vector<int> initial =
      params.init == InitStrategy::kPlusPlus
          ? PartitionFromSeeds(moments, PlusPlusObjects(moments, k, rng))
          : RandomPartition(moments.size(), k, rng);
  return RunLocalSearchFrom(moments, k, params, std::move(initial), eng);
}

LocalSearchOutcome RunLocalSearchFrom(const uncertain::MomentView& moments,
                                      int k, const LocalSearchParams& params,
                                      std::vector<int> initial_labels,
                                      const engine::Engine& eng) {
  const std::size_t n = moments.size();
  assert(k >= 1 && n >= static_cast<std::size_t>(k));
  assert(initial_labels.size() == n);

  LocalSearchOutcome out;
  out.labels = std::move(initial_labels);

  // Line 3 of Algorithm 1: per-cluster aggregates and cached objectives.
  std::vector<ClusterMoments> stats(k, ClusterMoments(moments.dims()));
  for (std::size_t i = 0; i < n; ++i) {
    assert(out.labels[i] >= 0 && out.labels[i] < k);
    stats[out.labels[i]].Add(moments, i);
  }
  std::vector<double> obj(k);
  double total = 0.0;
  for (int c = 0; c < k; ++c) {
    obj[c] = Objective(params.objective, stats[c]);
    total += obj[c];
  }

  // Lines 4-16: relocation passes, restructured for parallel gain
  // evaluation. Phase 1 proposes every object's best move against the
  // aggregates frozen at pass start (embarrassingly parallel, O(n k m));
  // phase 2 applies proposals serially in object index order, revalidating
  // each move against the live aggregates so the objective stays monotone.
  // At a fixed point no move is applied, hence the aggregates never drifted
  // during the pass and the proposals prove one-move optimality — the same
  // termination guarantee as the sequential Algorithm 1 (Proposition 4).
  std::vector<int> proposal(n);
  for (out.passes = 0; out.passes < params.max_passes; ++out.passes) {
    const double tolerance =
        params.min_relative_gain * (1.0 + std::fabs(total));

    engine::ParallelFor(eng, n, [&](const engine::BlockedRange& r) {
      for (std::size_t i = r.begin; i < r.end; ++i) {
        const int source = out.labels[i];
        proposal[i] = source;
        if (stats[source].size() <= 1) continue;  // keep exactly k clusters
        const double source_after =
            ObjectiveAfterRemove(params.objective, stats[source], moments, i);
        // Line 8: best target by total-objective change.
        int best = source;
        double best_delta = -tolerance;
        for (int c = 0; c < k; ++c) {
          if (c == source) continue;
          const double target_after =
              ObjectiveAfterAdd(params.objective, stats[c], moments, i);
          const double delta =
              (source_after + target_after) - (obj[source] + obj[c]);
          if (delta < best_delta) {
            best_delta = delta;
            best = c;
          }
        }
        proposal[i] = best;
      }
    });

    bool moved = false;
    for (std::size_t i = 0; i < n; ++i) {
      const int best = proposal[i];
      const int source = out.labels[i];
      if (best == source) continue;
      if (stats[source].size() <= 1) continue;
      const double source_after =
          ObjectiveAfterRemove(params.objective, stats[source], moments, i);
      const double target_after =
          ObjectiveAfterAdd(params.objective, stats[best], moments, i);
      const double delta =
          (source_after + target_after) - (obj[source] + obj[best]);
      if (delta >= -tolerance) continue;
      // Lines 10-13: apply the move and refresh the affected aggregates.
      stats[source].Remove(moments, i);
      stats[best].Add(moments, i);
      out.labels[i] = best;
      obj[source] = Objective(params.objective, stats[source]);
      obj[best] = Objective(params.objective, stats[best]);
      total += delta;
      ++out.moves;
      moved = true;
    }
    if (!moved) break;
  }

  // Recompute the total exactly to shed accumulated floating-point drift.
  total = 0.0;
  for (int c = 0; c < k; ++c) total += Objective(params.objective, stats[c]);
  out.objective = total;
  return out;
}

}  // namespace uclust::clustering
