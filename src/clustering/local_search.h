// The relocation local search of Algorithm 1, shared by UCPC and MMVar (and
// usable with the UK-means objective for ablations): repeatedly move each
// object to the cluster yielding the largest decrease of the global
// objective, exploiting the O(m) add/remove evaluations of Corollary 1.
#ifndef UCLUST_CLUSTERING_LOCAL_SEARCH_H_
#define UCLUST_CLUSTERING_LOCAL_SEARCH_H_

#include <cstdint>
#include <vector>

#include "clustering/cluster_stats.h"
#include "clustering/init.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "uncertain/moments.h"

namespace uclust::clustering {

/// Tuning knobs of the relocation local search.
struct LocalSearchParams {
  ObjectiveKind objective = ObjectiveKind::kUcpc;
  /// Upper bound on full passes over the data (convergence usually takes
  /// far fewer; Proposition 4 guarantees termination).
  int max_passes = 100;
  /// Relative improvement below which a move is considered numerical noise.
  double min_relative_gain = 1e-12;
  /// Starting partition: random (the paper's Algorithm 1) or induced by
  /// D^2-weighted seeds (library extension; see init.h).
  InitStrategy init = InitStrategy::kRandom;
};

/// Result of a local-search run.
struct LocalSearchOutcome {
  std::vector<int> labels;  ///< Cluster per object, in [0, k).
  double objective = 0.0;   ///< Final total objective sum_C J(C).
  int passes = 0;           ///< Passes executed (the paper's iterations I).
  int64_t moves = 0;        ///< Total object relocations performed.
};

/// Runs Algorithm 1 from a random initial partition. Requires n >= k >= 1.
/// Clusters never become empty (a relocation that would empty its source
/// cluster is skipped), so exactly k clusters are returned.
///
/// Each pass proposes the best move of every object in parallel against the
/// pass-start aggregates, then applies the proposals serially in object
/// order, revalidating each against the current aggregates (first-improving-
/// move tie-breaking). Proposals depend only on the pass-start state and the
/// application order is fixed, so labels, objective, and pass counts are
/// bit-identical for any engine thread count.
LocalSearchOutcome RunLocalSearch(const uncertain::MomentView& moments,
                                  int k, const LocalSearchParams& params,
                                  common::Rng* rng,
                                  const engine::Engine& eng =
                                      engine::Engine::Serial());

/// Same as RunLocalSearch but starting from a caller-provided partition
/// (labels in [0, k), every cluster non-empty).
LocalSearchOutcome RunLocalSearchFrom(const uncertain::MomentView& moments,
                                      int k, const LocalSearchParams& params,
                                      std::vector<int> initial_labels,
                                      const engine::Engine& eng =
                                          engine::Engine::Serial());

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_LOCAL_SEARCH_H_
