// MMVar (Gullo, Ponti & Tagarelli, ICDM 2010): partitional clustering that
// minimizes the variance of cluster mixture-model centroids (Eq. 11),
// implemented as the same relocation local search as UCPC but driven by
// J_MM(C) = sigma^2(C_MM). Complexity O(I k n m).
#ifndef UCLUST_CLUSTERING_MMVAR_H_
#define UCLUST_CLUSTERING_MMVAR_H_

#include "clustering/clusterer.h"
#include "clustering/local_search.h"

namespace uclust::clustering {

/// The MMVar algorithm.
class Mmvar final : public Clusterer {
 public:
  /// Tuning knobs.
  struct Params {
    int max_passes = 100;  ///< Cap on relocation passes.
    /// Initial partition strategy (random, per the paper, by default).
    InitStrategy init = InitStrategy::kRandom;
  };

  Mmvar() = default;
  explicit Mmvar(const Params& params) : params_(params) {}

  std::string name() const override { return "MMVar"; }
  ClusteringResult Cluster(const data::UncertainDataset& data, int k,
                           uint64_t seed) const override;

  /// Kernel entry point for pre-packed moment statistics. Results are
  /// bit-identical for any engine thread count.
  static LocalSearchOutcome RunOnMoments(const uncertain::MomentView& mm,
                                         int k, uint64_t seed,
                                         const Params& params,
                                         const engine::Engine& eng =
                                             engine::Engine::Serial());
  /// Kernel entry point with default parameters.
  static LocalSearchOutcome RunOnMoments(const uncertain::MomentView& mm,
                                         int k, uint64_t seed) {
    return RunOnMoments(mm, k, seed, Params());
  }

 private:
  Params params_;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_MMVAR_H_
