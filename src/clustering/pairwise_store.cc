#include "clustering/pairwise_store.h"

#include <algorithm>
#include <cstring>

namespace uclust::clustering {

namespace {

// Scratch target of streaming sweeps on backends without a configured tile
// shape (dense-backend upper sweeps, on-the-fly sweeps): one bounded block,
// independent of the thread count so evaluation counts stay deterministic.
constexpr std::size_t kStreamScratchBytes = std::size_t{1} << 20;  // 1 MiB

// Warm-cache target when a tiled store has no finite budget to carve from
// (explicitly forced tiled backends): mirrors the stream scratch bound.
constexpr std::size_t kDefaultWarmBytes = std::size_t{1} << 20;  // 1 MiB

// Row-block size for the parallel visitor passes over an already-filled
// buffer of `rows` rows. Purely a load-balancing choice; visitors own
// row-indexed output, so the partition never affects results.
std::size_t VisitRowBlock(const engine::Engine& eng, std::size_t rows) {
  const std::size_t lanes = static_cast<std::size_t>(eng.num_threads());
  return engine::ClampBlock(eng, rows / (lanes * 4) + 1);
}

}  // namespace

std::string PairwiseBackendName(PairwiseBackend backend) {
  switch (backend) {
    case PairwiseBackend::kDense:
      return "dense";
    case PairwiseBackend::kTiled:
      return "tiled";
    case PairwiseBackend::kOnTheFly:
      return "onthefly";
  }
  return "unknown";
}

namespace {

// The one place tile geometry is derived from a budget: ~4 tiles should fit
// it, and the LRU capacity never exceeds it. Used by the kTiled derivation
// below after the warm-cache carve-out.
void DeriveTileGeometry(std::size_t budget_bytes, std::size_t n,
                        std::size_t* tile_rows,
                        std::size_t* max_cached_tiles) {
  const std::size_t row_bytes = std::max<std::size_t>(n, 1) * sizeof(double);
  if (*tile_rows == 0) {
    *tile_rows = budget_bytes > 0 ? budget_bytes / (4 * row_bytes)
                                  : (std::size_t{1} << 20) / row_bytes;
  }
  *tile_rows = std::clamp<std::size_t>(*tile_rows, 1,
                                       std::max<std::size_t>(n, 1));
  if (*max_cached_tiles == 0) {
    *max_cached_tiles =
        budget_bytes > 0
            ? std::max<std::size_t>(1,
                                    budget_bytes / (*tile_rows * row_bytes))
            : 4;
  }
}

// Derives the kTiled warm-cache capacity and tile geometry so that the tile
// LRU plus the warm cache fit the budget: warm rows get a quarter of the
// budget when at least one row fits without pushing the tile side below two
// rows; otherwise the warm policy is disabled and tiles get everything.
void DeriveTiledPolicies(PairwiseStoreOptions* o, std::size_t n) {
  const std::size_t row_bytes = std::max<std::size_t>(n, 1) * sizeof(double);
  const std::size_t budget = o->memory_budget_bytes;
  // A disabled warm cache must not keep a carve-out the tile LRU could use.
  if (!o->warm_rows) o->warm_capacity_bytes = 0;
  if (o->warm_rows && o->warm_capacity_bytes == 0) {
    std::size_t warm = budget > 0 ? budget / 4 : kDefaultWarmBytes;
    if (budget > 0 && budget - warm < 2 * row_bytes) {
      warm = budget > 2 * row_bytes ? budget - 2 * row_bytes : 0;
    }
    o->warm_capacity_bytes = warm;
  }
  if (o->warm_capacity_bytes < row_bytes) {
    o->warm_rows = false;
    o->warm_capacity_bytes = 0;
  }
  const std::size_t tile_budget =
      budget > o->warm_capacity_bytes ? budget - o->warm_capacity_bytes
                                      : budget;
  DeriveTileGeometry(tile_budget, n, &o->tile_rows, &o->max_cached_tiles);
}

}  // namespace

PairwiseStoreOptions PairwiseStoreOptions::FromBudget(std::size_t budget_bytes,
                                                      std::size_t n) {
  PairwiseStoreOptions o;
  o.memory_budget_bytes = budget_bytes;
  const std::size_t row_bytes = n * sizeof(double);
  // Overflow-safe "n * n * sizeof(double) <= budget" (up to one row of
  // rounding slack, which only shifts the dense/tiled boundary by < 1 row).
  const bool dense_fits =
      budget_bytes == 0 || n == 0 ||
      (budget_bytes / n) / sizeof(double) >= n;
  if (dense_fits) {
    o.backend = PairwiseBackend::kDense;
    o.warm_rows = false;
    return o;
  }
  if (budget_bytes >= 2 * row_bytes) {
    o.backend = PairwiseBackend::kTiled;
    DeriveTiledPolicies(&o, n);
    return o;
  }
  o.backend = PairwiseBackend::kOnTheFly;
  o.tile_rows = 1;
  o.max_cached_tiles = 1;
  o.warm_rows = false;
  return o;
}

PairwiseStore::PairwiseStore(const engine::Engine& eng,
                             const kernels::PairwiseKernel& kernel,
                             const PairwiseStoreOptions& options)
    : eng_(eng), kernel_(kernel), options_(options), n_(kernel.size()) {
  switch (options_.backend) {
    case PairwiseBackend::kDense:
      options_.warm_rows = false;
      options_.warm_capacity_bytes = 0;
      break;
    case PairwiseBackend::kOnTheFly:
      options_.tile_rows = 1;
      options_.max_cached_tiles = 1;
      options_.warm_rows = false;
      options_.warm_capacity_bytes = 0;
      break;
    case PairwiseBackend::kTiled:
      DeriveTiledPolicies(&options_, n_);
      break;
  }
}

namespace {

PairwiseStoreOptions OptionsFromEngine(const engine::Engine& eng,
                                       std::size_t n) {
  PairwiseStoreOptions o =
      PairwiseStoreOptions::FromBudget(eng.memory_budget_bytes(), n);
  if (!eng.pairwise_warm_rows()) {
    o.warm_rows = false;
    o.warm_capacity_bytes = 0;
    // Re-derive so the tile LRU reclaims the warm carve-out.
    if (o.backend == PairwiseBackend::kTiled) {
      o.tile_rows = 0;
      o.max_cached_tiles = 0;
      DeriveTileGeometry(o.memory_budget_bytes, n, &o.tile_rows,
                         &o.max_cached_tiles);
    }
  }
  return o;
}

}  // namespace

PairwiseStore::PairwiseStore(const engine::Engine& eng,
                             const kernels::PairwiseKernel& kernel)
    : PairwiseStore(eng, kernel, OptionsFromEngine(eng, kernel.size())) {}

void PairwiseStore::NoteTableBytes(std::size_t extra_scratch_bytes) {
  const std::size_t live = dense_.size() * sizeof(double) + cache_bytes_ +
                           warm_bytes_ + extra_scratch_bytes;
  table_bytes_peak_ = std::max(table_bytes_peak_, live);
}

void PairwiseStore::EnsureDense() {
  if (dense_ready_) return;
  evaluations_ += kernels::FillDenseTriangular(eng_, kernel_, &dense_);
  dense_ready_ = true;
  NoteTableBytes(0);
}

std::size_t PairwiseStore::TileBegin(std::size_t tile_index) const {
  return tile_index * options_.tile_rows;
}

std::size_t PairwiseStore::TileEnd(std::size_t tile_index) const {
  return std::min(n_, TileBegin(tile_index) + options_.tile_rows);
}

const PairwiseStore::Tile& PairwiseStore::EnsureTile(std::size_t row) {
  const std::size_t t = row / options_.tile_rows;
  const auto it = tile_index_.find(t);
  if (it != tile_index_.end()) {
    tiles_.splice(tiles_.begin(), tiles_, it->second);
    return tiles_.front();
  }
  // Evict before filling so resident bytes never exceed the capacity.
  while (tiles_.size() >= options_.max_cached_tiles) {
    cache_bytes_ -= tiles_.back().data.size() * sizeof(double);
    tile_index_.erase(tiles_.back().index);
    tiles_.pop_back();
  }
  Tile tile;
  tile.index = t;
  const std::size_t r0 = TileBegin(t);
  const std::size_t r1 = TileEnd(t);
  tile.data.resize((r1 - r0) * n_);
  evaluations_ += kernels::FillRowTile(eng_, kernel_, r0, r1,
                                       tile.data.data());
  cache_bytes_ += tile.data.size() * sizeof(double);
  tiles_.push_front(std::move(tile));
  tile_index_[t] = tiles_.begin();
  NoteTableBytes(0);
  return tiles_.front();
}

std::size_t PairwiseStore::StreamScratchTarget() const {
  // A finite budget caps streaming scratch (never below one row, the hard
  // floor of row-granular access — enforced by the callers' clamps).
  std::size_t target = kStreamScratchBytes;
  if (options_.memory_budget_bytes > 0) {
    target = std::min(target, options_.memory_budget_bytes);
  }
  return target;
}

std::size_t PairwiseStore::StreamRows() const {
  if (options_.backend == PairwiseBackend::kTiled) return options_.tile_rows;
  const std::size_t row_bytes = std::max<std::size_t>(n_, 1) * sizeof(double);
  return std::clamp<std::size_t>(StreamScratchTarget() / row_bytes, 1,
                                 std::max<std::size_t>(n_, 1));
}

void PairwiseStore::Warm() {
  if (options_.backend == PairwiseBackend::kDense) EnsureDense();
}

std::span<const double> PairwiseStore::Row(std::size_t i) {
  if (options_.backend == PairwiseBackend::kDense) {
    EnsureDense();
    return {dense_.data() + i * n_, n_};
  }
  const Tile& tile = EnsureTile(i);
  return {tile.data.data() + (i - TileBegin(tile.index)) * n_, n_};
}

double PairwiseStore::Value(std::size_t i, std::size_t j) {
  return Row(i)[j];
}

std::span<const double> PairwiseStore::ResidentRow(std::size_t i) const {
  if (dense_ready_) return {dense_.data() + i * n_, n_};
  if (options_.backend != PairwiseBackend::kDense) {
    const auto it = tile_index_.find(i / options_.tile_rows);
    if (it != tile_index_.end()) {
      const Tile& tile = *it->second;
      return {tile.data.data() + (i - TileBegin(tile.index)) * n_, n_};
    }
  }
  return {};
}

const double* PairwiseStore::WarmRowData(std::size_t i) {
  if (!options_.warm_rows) return nullptr;
  const auto it = warm_index_.find(i);
  if (it == warm_index_.end()) return nullptr;
  warm_rows_.splice(warm_rows_.begin(), warm_rows_, it->second);
  warm_rows_.front().generation = generation_;
  return warm_rows_.front().data.data();
}

void PairwiseStore::MaybeRetainWarmRow(std::size_t i, const double* src) {
  if (!options_.warm_rows) return;
  if (warm_index_.contains(i)) return;
  const std::size_t row_bytes = n_ * sizeof(double);
  if (row_bytes == 0 || row_bytes > options_.warm_capacity_bytes) return;
  while (warm_bytes_ + row_bytes > options_.warm_capacity_bytes) {
    warm_bytes_ -= warm_rows_.back().data.size() * sizeof(double);
    warm_index_.erase(warm_rows_.back().row);
    warm_rows_.pop_back();
  }
  WarmRow row;
  row.row = i;
  row.generation = generation_;
  row.data.assign(src, src + n_);
  warm_bytes_ += row_bytes;
  warm_rows_.push_front(std::move(row));
  warm_index_[i] = warm_rows_.begin();
  NoteTableBytes(0);
}

void PairwiseStore::BeginGeneration() {
  ++generation_;
  if (!options_.warm_rows) return;
  // Invalidate rows last touched more than warm_retain_generations ago —
  // the explicit staleness bound of the warm-row protocol.
  const uint64_t keep_from =
      generation_ > options_.warm_retain_generations
          ? generation_ - options_.warm_retain_generations
          : 0;
  for (auto it = warm_rows_.begin(); it != warm_rows_.end();) {
    if (it->generation < keep_from) {
      warm_bytes_ -= it->data.size() * sizeof(double);
      warm_index_.erase(it->row);
      it = warm_rows_.erase(it);
    } else {
      ++it;
    }
  }
}

void PairwiseStore::InvalidateWarmRows() {
  warm_rows_.clear();
  warm_index_.clear();
  warm_bytes_ = 0;
}

const double* PairwiseStore::ServeRow(std::size_t i) {
  const std::span<const double> resident = ResidentRow(i);
  const double* src = !resident.empty() ? resident.data() : WarmRowData(i);
  if (src != nullptr) ++warm_hits_;
  return src;
}

void PairwiseStore::CopyRowInto(std::size_t i, double* dst) {
  if (options_.backend == PairwiseBackend::kDense) EnsureDense();
  if (const double* src = ServeRow(i)) {
    std::memcpy(dst, src, n_ * sizeof(double));
    return;
  }
  // Fills the caller's buffer directly; only the optional warm copy is
  // store-materialized (and accounted).
  evaluations_ += kernels::FillRowTile(eng_, kernel_, i, i + 1, dst);
  ++warm_misses_;
  MaybeRetainWarmRow(i, dst);
}

void PairwiseStore::GatherRow(std::size_t i, std::vector<double>* out) {
  out->resize(n_);
  CopyRowInto(i, out->data());
}

void PairwiseStore::GatherRows(std::span<const std::size_t> rows,
                               std::vector<double>* out) {
  out->resize(rows.size() * n_);
  if (options_.backend == PairwiseBackend::kDense) EnsureDense();
  gather_missing_.clear();
  gather_slots_.clear();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (const double* src = ServeRow(rows[r])) {
      std::memcpy(out->data() + r * n_, src, n_ * sizeof(double));
      continue;
    }
    gather_missing_.push_back(rows[r]);
    gather_slots_.push_back(r);
  }
  if (gather_missing_.empty()) return;
  // One asymmetric gather tile for every missing row, computed directly
  // into the caller's buffer in a single parallel pass.
  evaluations_ += kernels::FillGatherTile(eng_, kernel_, gather_missing_,
                                          out->data(), gather_slots_);
  warm_misses_ += static_cast<int64_t>(gather_missing_.size());
  for (std::size_t t = 0; t < gather_missing_.size(); ++t) {
    MaybeRetainWarmRow(gather_missing_[t],
                       out->data() + gather_slots_[t] * n_);
  }
}

void PairwiseStore::VisitSymmetricBlock(
    std::span<const std::size_t> ids,
    const std::function<void(std::size_t, std::span<const double>)>& fn) {
  const std::size_t s = ids.size();
  if (s == 0) return;
  if (options_.backend == PairwiseBackend::kDense) EnsureDense();
  const std::size_t row_bytes = s * sizeof(double);
  // Scratch bound for the block: up to a quarter of a finite budget (the
  // symmetric-halving fast path is worth more scratch than a plain stream
  // sweep), but never past what the tile LRU and warm cache leave of the
  // budget right now — live bytes plus scratch stay within it, down to the
  // one-block-row floor. On the dense backend the table is the
  // budget-approved artifact, so only the stream target applies.
  std::size_t scratch_budget = StreamScratchTarget();
  if (options_.memory_budget_bytes > 0 &&
      options_.backend != PairwiseBackend::kDense) {
    const std::size_t live = cache_bytes_ + warm_bytes_;
    scratch_budget =
        std::min(std::max(scratch_budget, options_.memory_budget_bytes / 4),
                 options_.memory_budget_bytes > live
                     ? options_.memory_budget_bytes - live
                     : 0);
  }
  const std::size_t stripe_rows = std::clamp<std::size_t>(
      scratch_budget / row_bytes, 1, s);

  if (stripe_rows >= s) {
    // The whole block fits the scratch bound: served rows are read back and
    // mirrored into missing rows' columns — d(ids[b], ids[a]) ==
    // d(ids[a], ids[b]) bit-for-bit — and the (missing, missing) cells are
    // one symmetric kernel pass, each pair evaluated once.
    std::vector<double> block(s * s);
    double* d = block.data();
    gather_missing_.clear();  // reused here as the missing SLOT list
    std::vector<char> served(s, 0);
    for (std::size_t a = 0; a < s; ++a) {
      if (const double* src = ServeRow(ids[a])) {
        for (std::size_t b = 0; b < s; ++b) d[a * s + b] = src[ids[b]];
        served[a] = 1;
      } else {
        gather_missing_.push_back(a);
      }
    }
    if (!gather_missing_.empty()) {
      warm_misses_ += static_cast<int64_t>(gather_missing_.size());
      for (const std::size_t a : gather_missing_) {
        for (std::size_t b = 0; b < s; ++b) {
          if (served[b]) d[a * s + b] = d[b * s + a];
        }
      }
      evaluations_ +=
          kernels::FillSymmetricBlock(eng_, kernel_, ids, gather_missing_, d);
    }
    NoteTableBytes(block.size() * sizeof(double));
    engine::ParallelForBlocked(
        eng_, s, VisitRowBlock(eng_, s), [&](const engine::BlockedRange& r) {
          for (std::size_t a = r.begin; a < r.end; ++a) {
            fn(a, {d + a * s, s});
          }
        });
    return;
  }

  // Striped fallback for blocks larger than the scratch bound (a skewed
  // cluster under a tight budget): bounded row stripes, nothing
  // materialized beyond stripe_rows x |ids|. The symmetric halving is
  // unavailable across stripes, so non-served rows cost |ids| - 1
  // evaluations each — still a member-column slab, never a full tile.
  std::vector<double> scratch(stripe_rows * s);
  for (std::size_t r0 = 0; r0 < s; r0 += stripe_rows) {
    const std::size_t r1 = std::min(s, r0 + stripe_rows);
    gather_missing_.clear();
    gather_slots_.clear();
    for (std::size_t a = r0; a < r1; ++a) {
      double* dst = scratch.data() + (a - r0) * s;
      if (const double* src = ServeRow(ids[a])) {
        for (std::size_t b = 0; b < s; ++b) dst[b] = src[ids[b]];
      } else {
        gather_missing_.push_back(a);
        gather_slots_.push_back(a - r0);
      }
    }
    if (!gather_missing_.empty()) {
      warm_misses_ += static_cast<int64_t>(gather_missing_.size());
      evaluations_ += kernels::FillBlockRows(
          eng_, kernel_, ids, gather_missing_, gather_slots_, scratch.data());
    }
    NoteTableBytes(scratch.size() * sizeof(double));
    engine::ParallelForBlocked(
        eng_, r1 - r0, VisitRowBlock(eng_, r1 - r0),
        [&](const engine::BlockedRange& r) {
          for (std::size_t tr = r.begin; tr < r.end; ++tr) {
            fn(r0 + tr, {scratch.data() + tr * s, s});
          }
        });
  }
}

void PairwiseStore::VisitAllRows(const RowVisitor& fn) {
  if (n_ == 0) return;
  if (options_.backend == PairwiseBackend::kDense) {
    EnsureDense();
    const double* d = dense_.data();
    engine::ParallelForBlocked(
        eng_, n_, VisitRowBlock(eng_, n_), [&](const engine::BlockedRange& r) {
          for (std::size_t i = r.begin; i < r.end; ++i) {
            fn(i, {d + i * n_, n_});
          }
        });
    return;
  }
  if (options_.backend == PairwiseBackend::kTiled) {
    // Stream through the LRU cache: resident tiles are served for free, the
    // rest fault in (and age out) in tile order.
    const std::size_t tiles = (n_ + options_.tile_rows - 1) /
                              options_.tile_rows;
    for (std::size_t t = 0; t < tiles; ++t) {
      const Tile& tile = EnsureTile(TileBegin(t));
      const std::size_t r0 = TileBegin(t);
      const std::size_t rows = TileEnd(t) - r0;
      const double* d = tile.data.data();
      engine::ParallelForBlocked(
          eng_, rows, VisitRowBlock(eng_, rows),
          [&](const engine::BlockedRange& r) {
            for (std::size_t tr = r.begin; tr < r.end; ++tr) {
              fn(r0 + tr, {d + tr * n_, n_});
            }
          });
    }
    return;
  }
  // kOnTheFly: bounded scratch blocks, nothing retained.
  const std::size_t chunk = StreamRows();
  std::vector<double> scratch(chunk * n_);
  for (std::size_t r0 = 0; r0 < n_; r0 += chunk) {
    const std::size_t r1 = std::min(n_, r0 + chunk);
    evaluations_ += kernels::FillRowTile(eng_, kernel_, r0, r1,
                                         scratch.data());
    NoteTableBytes(scratch.size() * sizeof(double));
    engine::ParallelForBlocked(
        eng_, r1 - r0, VisitRowBlock(eng_, r1 - r0),
        [&](const engine::BlockedRange& r) {
          for (std::size_t tr = r.begin; tr < r.end; ++tr) {
            fn(r0 + tr, {scratch.data() + tr * n_, n_});
          }
        });
  }
}

void PairwiseStore::VisitUpperTriangle(const UpperVisitor& fn,
                                       const kernels::PairSkipTest& skip) {
  if (n_ == 0) return;
  if (dense_ready_) {
    const double* d = dense_.data();
    engine::ParallelForBlocked(
        eng_, n_, VisitRowBlock(eng_, n_), [&](const engine::BlockedRange& r) {
          for (std::size_t i = r.begin; i < r.end; ++i) {
            fn(i, {d + i * n_ + i + 1, n_ - i - 1});
          }
        });
    return;
  }
  // Stream ragged row blocks; each pair is evaluated (or skipped under the
  // predicate) exactly once and nothing enters the tile cache (a one-shot
  // sweep must not evict tiles a caller is still iterating against).
  const std::size_t chunk = StreamRows();
  std::vector<double> scratch(chunk * n_);
  for (std::size_t r0 = 0; r0 < n_; r0 += chunk) {
    const std::size_t r1 = std::min(n_, r0 + chunk);
    if (skip) {
      evaluations_ += kernels::FillUpperRowTilePruned(
          eng_, kernel_, r0, r1, scratch.data(), skip, &pruned_pairs_);
    } else {
      evaluations_ += kernels::FillUpperRowTile(eng_, kernel_, r0, r1,
                                                scratch.data());
    }
    NoteTableBytes(scratch.size() * sizeof(double));
    engine::ParallelForBlocked(
        eng_, r1 - r0, VisitRowBlock(eng_, r1 - r0),
        [&](const engine::BlockedRange& r) {
          for (std::size_t tr = r.begin; tr < r.end; ++tr) {
            const std::size_t i = r0 + tr;
            fn(i, {scratch.data() + tr * n_ + i + 1, n_ - i - 1});
          }
        });
  }
}

void PairwiseStore::VisitUpperTriangleCandidates(
    const UpperVisitor& fn, const kernels::CandidateColumns& candidates,
    const kernels::PairSkipTest& skip) {
  if (n_ == 0) return;
  if (dense_ready_) {
    const double* d = dense_.data();
    engine::ParallelForBlocked(
        eng_, n_, VisitRowBlock(eng_, n_), [&](const engine::BlockedRange& r) {
          for (std::size_t i = r.begin; i < r.end; ++i) {
            fn(i, {d + i * n_ + i + 1, n_ - i - 1});
          }
        });
    return;
  }
  // Same streaming shape as VisitUpperTriangle, but the producer touches
  // only the candidate columns of each ragged row.
  const std::size_t chunk = StreamRows();
  std::vector<double> scratch(chunk * n_);
  for (std::size_t r0 = 0; r0 < n_; r0 += chunk) {
    const std::size_t r1 = std::min(n_, r0 + chunk);
    evaluations_ += kernels::FillUpperRowTileFromCandidates(
        eng_, kernel_, r0, r1, scratch.data(), candidates, skip,
        &pruned_pairs_);
    NoteTableBytes(scratch.size() * sizeof(double));
    engine::ParallelForBlocked(
        eng_, r1 - r0, VisitRowBlock(eng_, r1 - r0),
        [&](const engine::BlockedRange& r) {
          for (std::size_t tr = r.begin; tr < r.end; ++tr) {
            const std::size_t i = r0 + tr;
            fn(i, {scratch.data() + tr * n_ + i + 1, n_ - i - 1});
          }
        });
  }
}

}  // namespace uclust::clustering
