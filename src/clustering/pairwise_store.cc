#include "clustering/pairwise_store.h"

#include <algorithm>
#include <cstring>

namespace uclust::clustering {

namespace {

// Scratch target of streaming sweeps on backends without a configured tile
// shape (dense-backend upper sweeps, on-the-fly sweeps): one bounded block,
// independent of the thread count so evaluation counts stay deterministic.
constexpr std::size_t kStreamScratchBytes = std::size_t{1} << 20;  // 1 MiB

// Row-block size for the parallel visitor passes over an already-filled
// buffer of `rows` rows. Purely a load-balancing choice; visitors own
// row-indexed output, so the partition never affects results.
std::size_t VisitRowBlock(const engine::Engine& eng, std::size_t rows) {
  const std::size_t lanes = static_cast<std::size_t>(eng.num_threads());
  const std::size_t block = rows / (lanes * 4) + 1;
  return std::min(block, eng.block_size());
}

}  // namespace

std::string PairwiseBackendName(PairwiseBackend backend) {
  switch (backend) {
    case PairwiseBackend::kDense:
      return "dense";
    case PairwiseBackend::kTiled:
      return "tiled";
    case PairwiseBackend::kOnTheFly:
      return "onthefly";
  }
  return "unknown";
}

namespace {

// The one place tile geometry is derived from a budget: ~4 tiles should fit
// it, and the LRU capacity never exceeds it. Used by FromBudget and by the
// constructor's zero-value fallback.
void DeriveTileGeometry(std::size_t budget_bytes, std::size_t n,
                        std::size_t* tile_rows,
                        std::size_t* max_cached_tiles) {
  const std::size_t row_bytes = std::max<std::size_t>(n, 1) * sizeof(double);
  if (*tile_rows == 0) {
    *tile_rows = budget_bytes > 0 ? budget_bytes / (4 * row_bytes)
                                  : (std::size_t{1} << 20) / row_bytes;
  }
  *tile_rows = std::clamp<std::size_t>(*tile_rows, 1,
                                       std::max<std::size_t>(n, 1));
  if (*max_cached_tiles == 0) {
    *max_cached_tiles =
        budget_bytes > 0
            ? std::max<std::size_t>(1,
                                    budget_bytes / (*tile_rows * row_bytes))
            : 4;
  }
}

}  // namespace

PairwiseStoreOptions PairwiseStoreOptions::FromBudget(std::size_t budget_bytes,
                                                      std::size_t n) {
  PairwiseStoreOptions o;
  o.memory_budget_bytes = budget_bytes;
  const std::size_t row_bytes = n * sizeof(double);
  // Overflow-safe "n * n * sizeof(double) <= budget" (up to one row of
  // rounding slack, which only shifts the dense/tiled boundary by < 1 row).
  const bool dense_fits =
      budget_bytes == 0 || n == 0 ||
      (budget_bytes / n) / sizeof(double) >= n;
  if (dense_fits) {
    o.backend = PairwiseBackend::kDense;
    return o;
  }
  if (budget_bytes >= 2 * row_bytes) {
    o.backend = PairwiseBackend::kTiled;
    DeriveTileGeometry(budget_bytes, n, &o.tile_rows, &o.max_cached_tiles);
    return o;
  }
  o.backend = PairwiseBackend::kOnTheFly;
  o.tile_rows = 1;
  o.max_cached_tiles = 1;
  return o;
}

PairwiseStore::PairwiseStore(const engine::Engine& eng,
                             const kernels::PairwiseKernel& kernel,
                             const PairwiseStoreOptions& options)
    : eng_(eng), kernel_(kernel), options_(options), n_(kernel.size()) {
  switch (options_.backend) {
    case PairwiseBackend::kDense:
      break;
    case PairwiseBackend::kOnTheFly:
      options_.tile_rows = 1;
      options_.max_cached_tiles = 1;
      break;
    case PairwiseBackend::kTiled:
      DeriveTileGeometry(options_.memory_budget_bytes, n_,
                         &options_.tile_rows, &options_.max_cached_tiles);
      break;
  }
}

PairwiseStore::PairwiseStore(const engine::Engine& eng,
                             const kernels::PairwiseKernel& kernel)
    : PairwiseStore(eng, kernel,
                    PairwiseStoreOptions::FromBudget(
                        eng.memory_budget_bytes(), kernel.size())) {}

void PairwiseStore::NoteTableBytes(std::size_t extra_scratch_bytes) {
  const std::size_t live = dense_.size() * sizeof(double) + cache_bytes_ +
                           extra_scratch_bytes;
  table_bytes_peak_ = std::max(table_bytes_peak_, live);
}

void PairwiseStore::EnsureDense() {
  if (dense_ready_) return;
  evaluations_ += kernels::FillDenseTriangular(eng_, kernel_, &dense_);
  dense_ready_ = true;
  NoteTableBytes(0);
}

std::size_t PairwiseStore::TileBegin(std::size_t tile_index) const {
  return tile_index * options_.tile_rows;
}

std::size_t PairwiseStore::TileEnd(std::size_t tile_index) const {
  return std::min(n_, TileBegin(tile_index) + options_.tile_rows);
}

const PairwiseStore::Tile& PairwiseStore::EnsureTile(std::size_t row) {
  const std::size_t t = row / options_.tile_rows;
  const auto it = tile_index_.find(t);
  if (it != tile_index_.end()) {
    tiles_.splice(tiles_.begin(), tiles_, it->second);
    return tiles_.front();
  }
  // Evict before filling so resident bytes never exceed the capacity.
  while (tiles_.size() >= options_.max_cached_tiles) {
    cache_bytes_ -= tiles_.back().data.size() * sizeof(double);
    tile_index_.erase(tiles_.back().index);
    tiles_.pop_back();
  }
  Tile tile;
  tile.index = t;
  const std::size_t r0 = TileBegin(t);
  const std::size_t r1 = TileEnd(t);
  tile.data.resize((r1 - r0) * n_);
  evaluations_ += kernels::FillRowTile(eng_, kernel_, r0, r1,
                                       tile.data.data());
  cache_bytes_ += tile.data.size() * sizeof(double);
  tiles_.push_front(std::move(tile));
  tile_index_[t] = tiles_.begin();
  NoteTableBytes(0);
  return tiles_.front();
}

std::size_t PairwiseStore::StreamRows() const {
  if (options_.backend == PairwiseBackend::kTiled) return options_.tile_rows;
  const std::size_t row_bytes = std::max<std::size_t>(n_, 1) * sizeof(double);
  // A finite budget caps the scratch block too (never below one row, the
  // hard floor of row-granular access).
  std::size_t target = kStreamScratchBytes;
  if (options_.memory_budget_bytes > 0) {
    target = std::min(target, options_.memory_budget_bytes);
  }
  return std::clamp<std::size_t>(target / row_bytes, 1,
                                 std::max<std::size_t>(n_, 1));
}

void PairwiseStore::Warm() {
  if (options_.backend == PairwiseBackend::kDense) EnsureDense();
}

std::span<const double> PairwiseStore::Row(std::size_t i) {
  if (options_.backend == PairwiseBackend::kDense) {
    EnsureDense();
    return {dense_.data() + i * n_, n_};
  }
  const Tile& tile = EnsureTile(i);
  return {tile.data.data() + (i - TileBegin(tile.index)) * n_, n_};
}

double PairwiseStore::Value(std::size_t i, std::size_t j) {
  return Row(i)[j];
}

std::span<const double> PairwiseStore::ResidentRow(std::size_t i) const {
  if (dense_ready_) return {dense_.data() + i * n_, n_};
  if (options_.backend != PairwiseBackend::kDense) {
    const auto it = tile_index_.find(i / options_.tile_rows);
    if (it != tile_index_.end()) {
      const Tile& tile = *it->second;
      return {tile.data.data() + (i - TileBegin(tile.index)) * n_, n_};
    }
  }
  return {};
}

void PairwiseStore::CopyRowInto(std::size_t i, double* dst) {
  if (options_.backend == PairwiseBackend::kDense) EnsureDense();
  const std::span<const double> resident = ResidentRow(i);
  if (!resident.empty()) {
    std::memcpy(dst, resident.data(), n_ * sizeof(double));
    return;
  }
  // Fills the caller's buffer directly; the store itself materializes
  // nothing here, so no table bytes are recorded.
  evaluations_ += kernels::FillRowTile(eng_, kernel_, i, i + 1, dst);
}

void PairwiseStore::GatherRow(std::size_t i, std::vector<double>* out) {
  out->resize(n_);
  CopyRowInto(i, out->data());
}

void PairwiseStore::GatherRows(std::span<const std::size_t> rows,
                               std::vector<double>* out) {
  out->resize(rows.size() * n_);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    CopyRowInto(rows[r], out->data() + r * n_);
  }
}

void PairwiseStore::VisitAllRows(const RowVisitor& fn) {
  if (n_ == 0) return;
  if (options_.backend == PairwiseBackend::kDense) {
    EnsureDense();
    const double* d = dense_.data();
    engine::ParallelForBlocked(
        eng_, n_, VisitRowBlock(eng_, n_), [&](const engine::BlockedRange& r) {
          for (std::size_t i = r.begin; i < r.end; ++i) {
            fn(i, {d + i * n_, n_});
          }
        });
    return;
  }
  if (options_.backend == PairwiseBackend::kTiled) {
    // Stream through the LRU cache: resident tiles are served for free, the
    // rest fault in (and age out) in tile order.
    const std::size_t tiles = (n_ + options_.tile_rows - 1) /
                              options_.tile_rows;
    for (std::size_t t = 0; t < tiles; ++t) {
      const Tile& tile = EnsureTile(TileBegin(t));
      const std::size_t r0 = TileBegin(t);
      const std::size_t rows = TileEnd(t) - r0;
      const double* d = tile.data.data();
      engine::ParallelForBlocked(
          eng_, rows, VisitRowBlock(eng_, rows),
          [&](const engine::BlockedRange& r) {
            for (std::size_t tr = r.begin; tr < r.end; ++tr) {
              fn(r0 + tr, {d + tr * n_, n_});
            }
          });
    }
    return;
  }
  // kOnTheFly: bounded scratch blocks, nothing retained.
  const std::size_t chunk = StreamRows();
  std::vector<double> scratch(chunk * n_);
  for (std::size_t r0 = 0; r0 < n_; r0 += chunk) {
    const std::size_t r1 = std::min(n_, r0 + chunk);
    evaluations_ += kernels::FillRowTile(eng_, kernel_, r0, r1,
                                         scratch.data());
    NoteTableBytes(scratch.size() * sizeof(double));
    engine::ParallelForBlocked(
        eng_, r1 - r0, VisitRowBlock(eng_, r1 - r0),
        [&](const engine::BlockedRange& r) {
          for (std::size_t tr = r.begin; tr < r.end; ++tr) {
            fn(r0 + tr, {scratch.data() + tr * n_, n_});
          }
        });
  }
}

void PairwiseStore::VisitUpperTriangle(const UpperVisitor& fn) {
  if (n_ == 0) return;
  if (dense_ready_) {
    const double* d = dense_.data();
    engine::ParallelForBlocked(
        eng_, n_, VisitRowBlock(eng_, n_), [&](const engine::BlockedRange& r) {
          for (std::size_t i = r.begin; i < r.end; ++i) {
            fn(i, {d + i * n_ + i + 1, n_ - i - 1});
          }
        });
    return;
  }
  // Stream ragged row blocks; each pair is evaluated exactly once and
  // nothing enters the tile cache (a one-shot sweep must not evict tiles a
  // caller is still iterating against).
  const std::size_t chunk = StreamRows();
  std::vector<double> scratch(chunk * n_);
  for (std::size_t r0 = 0; r0 < n_; r0 += chunk) {
    const std::size_t r1 = std::min(n_, r0 + chunk);
    evaluations_ += kernels::FillUpperRowTile(eng_, kernel_, r0, r1,
                                              scratch.data());
    NoteTableBytes(scratch.size() * sizeof(double));
    engine::ParallelForBlocked(
        eng_, r1 - r0, VisitRowBlock(eng_, r1 - r0),
        [&](const engine::BlockedRange& r) {
          for (std::size_t tr = r.begin; tr < r.end; ++tr) {
            const std::size_t i = r0 + tr;
            fn(i, {scratch.data() + tr * n_ + i + 1, n_ - i - 1});
          }
        });
  }
}

}  // namespace uclust::clustering
