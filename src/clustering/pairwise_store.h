// Memory-budgeted, workload-aware access to symmetric pairwise tables
// (ED^, fuzzy distance, distance probability) behind one interface.
//
// The paper's O(n^2)-class baselines (UK-medoids, UAHC, FOPTICS, FDBSCAN)
// precompute a dense n x n pairwise table, which caps every such workload at
// whatever n^2 doubles fit in RAM. PairwiseStore decouples the access
// pattern from the storage policy with three interchangeable backends:
//
//   kDense    — the classic full table, built once by the triangular kernel
//               (bit-identical values, parallel schedule, and evaluation
//               count of the original offline phase);
//   kTiled    — row-block tiles computed on demand through the engine's
//               blocked kernels and held in a capacity-bounded LRU cache,
//               plus (policy-gated) a warm-row cache for gathered rows;
//   kOnTheFly — a single-row cache: every query recomputes its row, no
//               table is retained.
//
// On top of the backends sit three workload-aware tile policies (see
// EngineConfig::pairwise_gather_tiles / pairwise_warm_rows /
// pairwise_pruned_sweeps, all default-on):
//
//   gather tiles  — GatherRows/VisitSymmetricBlock compute asymmetric
//                   candidate x n (or candidate x candidate) slabs: exactly
//                   the entries a medoid gather or swap sweep reads, in one
//                   parallel kernel pass, instead of faulting full square
//                   row tiles;
//   warm rows     — gathered rows are retained across consumer iterations
//                   (PAM rounds, Lance-Williams merges) in a budget-bounded
//                   warm cache with an explicit generation/invalidation
//                   protocol (BeginGeneration/InvalidateWarmRows) and
//                   hit/miss counters;
//   pruned sweeps — VisitUpperTriangle accepts a cheap pair predicate that
//                   skips pairs whose exact value is provably 0 (e.g. the
//                   FDBSCAN distance probability of two objects whose
//                   regions are farther apart than eps) before any kernel
//                   evaluation.
//
// The backend is normally selected from EngineConfig::memory_budget_bytes
// (0 = unlimited = dense); tests and benches can force one explicitly.
// Invariant: because every producer evaluates a pair as (min(i, j),
// max(i, j)), each entry is a pure function of that pair, and a pruned pair
// is skipped only when its exact value is proven, all backends and all
// policy combinations serve bit-identical values — so every clustering
// built on the store is identical across backends, tile policies, and
// thread counts; only memory and recompute cost change.
//
// Thread-safety: the random-access API (Value/Row/GatherRows) is for the
// algorithm's serial control thread; the Visit* sweeps parallelize
// internally and invoke the visitor concurrently (one call per row — the
// visitor owns row-indexed output slots).
#ifndef UCLUST_CLUSTERING_PAIRWISE_STORE_H_
#define UCLUST_CLUSTERING_PAIRWISE_STORE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "clustering/kernels.h"
#include "engine/engine.h"

namespace uclust::clustering {

/// Storage policy of a PairwiseStore.
enum class PairwiseBackend { kDense, kTiled, kOnTheFly };

/// Lower-case display name ("dense", "tiled", "onthefly").
std::string PairwiseBackendName(PairwiseBackend backend);

/// Tuning of a PairwiseStore instance.
struct PairwiseStoreOptions {
  PairwiseBackend backend = PairwiseBackend::kDense;
  /// The budget the backend was derived from (informational; 0 = unlimited).
  std::size_t memory_budget_bytes = 0;
  /// Rows per tile (kTiled; kOnTheFly pins this to 1). 0 = derive.
  std::size_t tile_rows = 0;
  /// LRU capacity in tiles (kTiled; kOnTheFly pins this to 1). 0 = derive.
  std::size_t max_cached_tiles = 0;
  /// Retain gathered rows across iterations in the warm cache (kTiled only;
  /// kDense reads are already free and kOnTheFly retains nothing).
  bool warm_rows = true;
  /// Warm-cache capacity in bytes, carved out of memory_budget_bytes so the
  /// tile LRU plus the warm cache never exceed the budget. 0 = derive
  /// (a quarter of the budget, at least one row or the policy is disabled).
  std::size_t warm_capacity_bytes = 0;
  /// Warm rows last touched more than this many generations ago are
  /// invalidated at the next BeginGeneration().
  std::size_t warm_retain_generations = 2;

  /// Backend selection rule for an n-object table under `budget_bytes`:
  /// unlimited or a budget the dense table fits in -> kDense; room for at
  /// least two rows -> kTiled sized so the tile LRU plus the warm-row cache
  /// fit the budget (cache bytes never exceed it); anything smaller ->
  /// kOnTheFly.
  static PairwiseStoreOptions FromBudget(std::size_t budget_bytes,
                                         std::size_t n);
};

/// One symmetric pairwise table served through a storage backend.
class PairwiseStore {
 public:
  /// Store over `kernel` with explicit options. The kernel's referenced
  /// objects / sample cache must outlive the store.
  PairwiseStore(const engine::Engine& eng, const kernels::PairwiseKernel& kernel,
                const PairwiseStoreOptions& options);
  /// Store with options derived from eng.memory_budget_bytes() and the
  /// engine's tile-policy knobs.
  PairwiseStore(const engine::Engine& eng,
                const kernels::PairwiseKernel& kernel);

  /// Number of objects n (the table is n x n).
  std::size_t size() const { return n_; }
  /// The storage policy in effect.
  PairwiseBackend backend() const { return options_.backend; }
  /// The options in effect (after derivation).
  const PairwiseStoreOptions& options() const { return options_; }
  /// Kernel evaluations performed so far (tile recomputation included).
  int64_t evaluations() const { return evaluations_; }
  /// Same, but 0 when the kernel is closed-form — the exact quantity
  /// ClusteringResult::ed_evaluations accounts for.
  int64_t ed_evaluations() const {
    return kernel_.counts_ed_evaluations() ? evaluations_ : 0;
  }
  /// Peak bytes of materialized table storage (dense table, cached tiles,
  /// warm rows, and streaming scratch) held at any one time.
  std::size_t table_bytes_peak() const { return table_bytes_peak_; }

  /// Builds whatever the backend precomputes (kDense: the full table;
  /// kTiled/kOnTheFly: nothing). Call inside the offline timing phase to
  /// keep the paper's offline/online accounting for the dense path.
  void Warm();

  /// Entry (i, j). Serial API; may fault in a tile.
  double Value(std::size_t i, std::size_t j);
  /// Row i as a length-n span. Serial API; the span is invalidated by the
  /// next non-const call on the store.
  std::span<const double> Row(std::size_t i);
  /// Row i as a zero-copy span when it is already materialized (dense table
  /// or resident tile); an empty span otherwise. Never computes, never
  /// touches the LRU order; the span is invalidated by the next tile fault
  /// or eviction.
  std::span<const double> ResidentRow(std::size_t i) const;
  /// Copies row i into `out` (resized to n) WITHOUT faulting a tile:
  /// a dense table, resident tile, or warm row is read back; anything else
  /// computes only row i (and retains it in the warm cache under the warm
  /// policy). The right primitive for random-access row walks (the OPTICS
  /// ordering, NN-chain tips, medoid gathers) whose locality would
  /// otherwise multiply kernel work by tile_rows on the tiled backend.
  void GatherRow(std::size_t i, std::vector<double>* out);
  /// Materializes the given rows into `out`, row-major rows.size() x n,
  /// without tile faults: rows already materialized (dense / resident tile /
  /// warm) are copied, the rest are computed as one asymmetric gather tile
  /// in a single parallel kernel pass (and retained under the warm policy).
  void GatherRows(std::span<const std::size_t> rows, std::vector<double>* out);
  /// Visits each row of the symmetric |ids| x |ids| sub-block (diagonal 0)
  /// — the candidate x member slab of the UK-medoids swap sweep. The
  /// visitor receives (slot a, length-|ids| span) with span[b] =
  /// value(ids[a], ids[b]), invoked concurrently for different rows. The
  /// block is never materialized whole beyond the streaming scratch bound:
  /// when it fits, rows already materialized (dense / resident tile / warm)
  /// are read back and mirrored into missing rows' columns and the rest is
  /// computed pairwise-symmetrically (|missing| * (|missing| - 1) / 2
  /// evaluations); larger blocks stream budget-bounded row stripes
  /// (|ids| - 1 evaluations per non-served row). `ids` must be distinct.
  void VisitSymmetricBlock(std::span<const std::size_t> ids,
                           const std::function<void(
                               std::size_t, std::span<const double>)>& fn);

  /// Iteration-scoped warm-row protocol: marks the start of a new consumer
  /// iteration (a PAM round, a Lance-Williams merge round). Warm rows stay
  /// servable across generations; rows last touched more than
  /// options().warm_retain_generations generations ago are invalidated
  /// here, bounding staleness without a full flush.
  void BeginGeneration();
  /// Drops every warm row immediately (explicit invalidation).
  void InvalidateWarmRows();
  /// Generation counter (starts at 0, incremented by BeginGeneration).
  uint64_t generation() const { return generation_; }
  /// Gathered rows served without kernel work (warm cache, dense table, or
  /// resident tile).
  int64_t warm_hits() const { return warm_hits_; }
  /// Gathered rows that required kernel computation.
  int64_t warm_misses() const { return warm_misses_; }
  /// Bytes currently held by the warm-row cache.
  std::size_t warm_bytes() const { return warm_bytes_; }
  /// Pairs skipped by the sweep predicate instead of evaluated.
  int64_t pruned_pairs() const { return pruned_pairs_; }

  /// Visitor for one full row: (row index, length-n span).
  using RowVisitor = std::function<void(std::size_t, std::span<const double>)>;
  /// Visits every row 0..n-1 exactly once. Parallel: the visitor is invoked
  /// concurrently for different rows. kDense reads the table; kTiled streams
  /// through the LRU cache (reusing resident tiles); kOnTheFly streams
  /// bounded scratch blocks.
  void VisitAllRows(const RowVisitor& fn);

  /// Visitor for the strict upper-triangle tail of row i: the span covers
  /// entries (i, i+1..n-1), i.e. tail[t] = value(i, i + 1 + t).
  using UpperVisitor = RowVisitor;
  /// Visits every upper-triangle row exactly once. Without `skip`, each pair
  /// is evaluated once (n*(n-1)/2 evaluations on a cold store). With `skip`,
  /// pairs for which the predicate returns true are served as exactly 0.0
  /// with no kernel evaluation — the caller asserts that 0 is the pair's
  /// exact value (see kernels::PairSkipTest) — and counted in
  /// pruned_pairs(). Streams bounded scratch blocks on every backend —
  /// nothing is retained — unless a dense table is already materialized, in
  /// which case it is read back directly.
  void VisitUpperTriangle(const UpperVisitor& fn,
                          const kernels::PairSkipTest& skip = {});

  /// VisitUpperTriangle driven by per-row candidate columns (spatial-index
  /// range-query hits): only candidates(i) — ascending j > i — are
  /// considered for evaluation; the rest of each tail is served as exactly
  /// 0.0 and counted in pruned_pairs(), as are candidates the optional
  /// `skip` predicate rules out. The caller asserts that every
  /// non-candidate pair's exact value is 0 (the index contract), so the
  /// visited tails are bit-identical to VisitUpperTriangle(fn, skip)
  /// whenever candidates(i) covers every pair `skip` would not have
  /// skipped. An already-materialized dense table is read back directly
  /// (same as VisitUpperTriangle — the values exist; no pruning counters
  /// move).
  void VisitUpperTriangleCandidates(const UpperVisitor& fn,
                                    const kernels::CandidateColumns& candidates,
                                    const kernels::PairSkipTest& skip = {});

 private:
  struct Tile {
    std::size_t index = 0;
    std::vector<double> data;
  };
  struct WarmRow {
    std::size_t row = 0;
    uint64_t generation = 0;
    std::vector<double> data;
  };

  void EnsureDense();
  /// Returns the cached tile holding `row`, faulting + evicting as needed.
  const Tile& EnsureTile(std::size_t row);
  /// GatherRow into a raw length-n destination.
  void CopyRowInto(std::size_t i, double* dst);
  /// Warm-cache lookup; touches recency + generation on hit.
  const double* WarmRowData(std::size_t i);
  /// The one serving chain of the gather APIs: resident storage (dense
  /// table or tile) first, then the warm cache. Returns the length-n row
  /// and counts a warm hit, or nullptr (the caller computes and counts the
  /// miss). The pointer is invalidated by the next non-const store call.
  const double* ServeRow(std::size_t i);
  /// Inserts a copy of row i (length n) into the warm cache when the warm
  /// policy is on and the row fits after LRU eviction.
  void MaybeRetainWarmRow(std::size_t i, const double* src);
  std::size_t TileBegin(std::size_t tile_index) const;
  std::size_t TileEnd(std::size_t tile_index) const;
  /// Rows per streaming scratch block (bounded, >= 1).
  std::size_t StreamRows() const;
  /// Bytes the streaming scratch of a sweep may occupy (budget-capped).
  std::size_t StreamScratchTarget() const;
  void NoteTableBytes(std::size_t live_bytes);

  engine::Engine eng_;
  kernels::PairwiseKernel kernel_;
  PairwiseStoreOptions options_;
  std::size_t n_ = 0;
  int64_t evaluations_ = 0;
  std::size_t table_bytes_peak_ = 0;

  // kDense state.
  std::vector<double> dense_;
  bool dense_ready_ = false;

  // kTiled / kOnTheFly state: most-recently-used tile first.
  std::list<Tile> tiles_;
  std::unordered_map<std::size_t, std::list<Tile>::iterator> tile_index_;
  std::size_t cache_bytes_ = 0;

  // Warm-row cache (kTiled + warm policy): most-recently-used first.
  std::list<WarmRow> warm_rows_;
  std::unordered_map<std::size_t, std::list<WarmRow>::iterator> warm_index_;
  std::size_t warm_bytes_ = 0;
  uint64_t generation_ = 0;
  int64_t warm_hits_ = 0;
  int64_t warm_misses_ = 0;
  int64_t pruned_pairs_ = 0;

  // Scratch for gather passes (reused across calls).
  std::vector<std::size_t> gather_missing_;
  std::vector<std::size_t> gather_slots_;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_PAIRWISE_STORE_H_
