// Memory-budgeted access to symmetric pairwise tables (ED^, fuzzy distance,
// distance probability) behind one interface.
//
// The paper's O(n^2)-class baselines (UK-medoids, UAHC, FOPTICS) precompute
// a dense n x n pairwise table, which caps every such workload at whatever
// n^2 doubles fit in RAM. PairwiseStore decouples the access pattern from
// the storage policy with three interchangeable backends:
//
//   kDense    — the classic full table, built once by the triangular kernel
//               (bit-identical values, parallel schedule, and evaluation
//               count of the original offline phase);
//   kTiled    — row-block tiles computed on demand through the engine's
//               blocked kernels and held in a capacity-bounded LRU cache;
//   kOnTheFly — a single-row cache: every query recomputes its row, no
//               table is retained.
//
// The backend is normally selected from EngineConfig::memory_budget_bytes
// (0 = unlimited = dense); tests and benches can force one explicitly.
// Invariant: because every producer evaluates a pair as (min(i, j),
// max(i, j)) and each entry is a pure function of that pair, all three
// backends serve bit-identical values — so every clustering built on the
// store is identical across backends and thread counts, only memory and
// recompute cost change.
//
// Thread-safety: the random-access API (Value/Row/GatherRows) is for the
// algorithm's serial control thread; the Visit* sweeps parallelize
// internally and invoke the visitor concurrently (one call per row — the
// visitor owns row-indexed output slots).
#ifndef UCLUST_CLUSTERING_PAIRWISE_STORE_H_
#define UCLUST_CLUSTERING_PAIRWISE_STORE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "clustering/kernels.h"
#include "engine/engine.h"

namespace uclust::clustering {

/// Storage policy of a PairwiseStore.
enum class PairwiseBackend { kDense, kTiled, kOnTheFly };

/// Lower-case display name ("dense", "tiled", "onthefly").
std::string PairwiseBackendName(PairwiseBackend backend);

/// Tuning of a PairwiseStore instance.
struct PairwiseStoreOptions {
  PairwiseBackend backend = PairwiseBackend::kDense;
  /// The budget the backend was derived from (informational; 0 = unlimited).
  std::size_t memory_budget_bytes = 0;
  /// Rows per tile (kTiled; kOnTheFly pins this to 1). 0 = derive.
  std::size_t tile_rows = 0;
  /// LRU capacity in tiles (kTiled; kOnTheFly pins this to 1). 0 = derive.
  std::size_t max_cached_tiles = 0;

  /// Backend selection rule for an n-object table under `budget_bytes`:
  /// unlimited or a budget the dense table fits in -> kDense; room for at
  /// least two rows -> kTiled sized so ~4 tiles fit the budget (cache bytes
  /// never exceed it); anything smaller -> kOnTheFly.
  static PairwiseStoreOptions FromBudget(std::size_t budget_bytes,
                                         std::size_t n);
};

/// One symmetric pairwise table served through a storage backend.
class PairwiseStore {
 public:
  /// Store over `kernel` with explicit options. The kernel's referenced
  /// objects / sample cache must outlive the store.
  PairwiseStore(const engine::Engine& eng, const kernels::PairwiseKernel& kernel,
                const PairwiseStoreOptions& options);
  /// Store with options derived from eng.memory_budget_bytes().
  PairwiseStore(const engine::Engine& eng,
                const kernels::PairwiseKernel& kernel);

  /// Number of objects n (the table is n x n).
  std::size_t size() const { return n_; }
  /// The storage policy in effect.
  PairwiseBackend backend() const { return options_.backend; }
  /// The options in effect (after derivation).
  const PairwiseStoreOptions& options() const { return options_; }
  /// Kernel evaluations performed so far (tile recomputation included).
  int64_t evaluations() const { return evaluations_; }
  /// Same, but 0 when the kernel is closed-form — the exact quantity
  /// ClusteringResult::ed_evaluations accounts for.
  int64_t ed_evaluations() const {
    return kernel_.counts_ed_evaluations() ? evaluations_ : 0;
  }
  /// Peak bytes of materialized table storage (dense table, cached tiles,
  /// and streaming scratch) held at any one time.
  std::size_t table_bytes_peak() const { return table_bytes_peak_; }

  /// Builds whatever the backend precomputes (kDense: the full table;
  /// kTiled/kOnTheFly: nothing). Call inside the offline timing phase to
  /// keep the paper's offline/online accounting for the dense path.
  void Warm();

  /// Entry (i, j). Serial API; may fault in a tile.
  double Value(std::size_t i, std::size_t j);
  /// Row i as a length-n span. Serial API; the span is invalidated by the
  /// next non-const call on the store.
  std::span<const double> Row(std::size_t i);
  /// Row i as a zero-copy span when it is already materialized (dense table
  /// or resident tile); an empty span otherwise. Never computes, never
  /// touches the LRU order; the span is invalidated by the next tile fault
  /// or eviction.
  std::span<const double> ResidentRow(std::size_t i) const;
  /// Copies row i into `out` (resized to n) WITHOUT faulting a tile:
  /// a dense table or resident tile is read back, anything else computes
  /// only row i and leaves the cache untouched. The right primitive for
  /// random-access row walks (the OPTICS ordering, NN-chain tips, medoid
  /// gathers) whose locality would otherwise multiply kernel work by
  /// tile_rows on the tiled backend.
  void GatherRow(std::size_t i, std::vector<double>* out);
  /// Materializes the given rows (in order) into `out`, row-major
  /// rows.size() x n, via GatherRow (no tile faults).
  void GatherRows(std::span<const std::size_t> rows, std::vector<double>* out);

  /// Visitor for one full row: (row index, length-n span).
  using RowVisitor = std::function<void(std::size_t, std::span<const double>)>;
  /// Visits every row 0..n-1 exactly once. Parallel: the visitor is invoked
  /// concurrently for different rows. kDense reads the table; kTiled streams
  /// through the LRU cache (reusing resident tiles); kOnTheFly streams
  /// bounded scratch blocks.
  void VisitAllRows(const RowVisitor& fn);

  /// Visitor for the strict upper-triangle tail of row i: the span covers
  /// entries (i, i+1..n-1), i.e. tail[t] = value(i, i + 1 + t).
  using UpperVisitor = RowVisitor;
  /// Visits every upper-triangle row exactly once, evaluating each pair once
  /// (n*(n-1)/2 evaluations on a cold store). Streams bounded scratch blocks
  /// on every backend — nothing is retained — unless a dense table is
  /// already materialized, in which case it is read back directly.
  void VisitUpperTriangle(const UpperVisitor& fn);

 private:
  struct Tile {
    std::size_t index = 0;
    std::vector<double> data;
  };

  void EnsureDense();
  /// Returns the cached tile holding `row`, faulting + evicting as needed.
  const Tile& EnsureTile(std::size_t row);
  /// GatherRow into a raw length-n destination.
  void CopyRowInto(std::size_t i, double* dst);
  std::size_t TileBegin(std::size_t tile_index) const;
  std::size_t TileEnd(std::size_t tile_index) const;
  /// Rows per streaming scratch block (bounded, >= 1).
  std::size_t StreamRows() const;
  void NoteTableBytes(std::size_t live_bytes);

  engine::Engine eng_;
  kernels::PairwiseKernel kernel_;
  PairwiseStoreOptions options_;
  std::size_t n_ = 0;
  int64_t evaluations_ = 0;
  std::size_t table_bytes_peak_ = 0;

  // kDense state.
  std::vector<double> dense_;
  bool dense_ready_ = false;

  // kTiled / kOnTheFly state: most-recently-used tile first.
  std::list<Tile> tiles_;
  std::unordered_map<std::size_t, std::list<Tile>::iterator> tile_index_;
  std::size_t cache_bytes_ = 0;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_PAIRWISE_STORE_H_
