#include "clustering/pruning.h"

#include <algorithm>
#include <cmath>

namespace uclust::clustering {

const char* PruningStrategyName(PruningStrategy strategy) {
  switch (strategy) {
    case PruningStrategy::kNone:
      return "none";
    case PruningStrategy::kMinMaxBB:
      return "MinMax-BB";
    case PruningStrategy::kVoronoi:
      return "VDBiP";
  }
  return "unknown";
}

EdBounds MinMaxBounds(const uncertain::Box& box,
                      std::span<const double> centroid) {
  return {box.MinSquaredDistanceTo(centroid),
          box.MaxSquaredDistanceTo(centroid)};
}

EdBounds ShiftBounds(double prev_ed, double shift) {
  const double r = std::sqrt(std::max(prev_ed, 0.0));
  const double lo = std::max(0.0, r - shift);
  const double hi = r + shift;
  return {lo * lo, hi * hi};
}

void VoronoiFilter(const uncertain::Box& box,
                   const std::vector<double>& centroids, std::size_t m,
                   std::vector<int>* candidates) {
  auto centroid = [&](int c) {
    return std::span<const double>(
        centroids.data() + static_cast<std::size_t>(c) * m, m);
  };
  std::vector<int>& cand = *candidates;
  std::vector<bool> dead(cand.size(), false);
  for (std::size_t a = 0; a < cand.size(); ++a) {
    if (dead[a]) continue;
    for (std::size_t b = 0; b < cand.size(); ++b) {
      if (a == b || dead[b]) continue;
      if (box.EntirelyCloserTo(centroid(cand[a]), centroid(cand[b]))) {
        dead[b] = true;
      }
    }
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < cand.size(); ++i) {
    if (!dead[i]) cand[out++] = cand[i];
  }
  cand.resize(out);
}

}  // namespace uclust::clustering
