#include "clustering/pruning.h"

#include <algorithm>
#include <cmath>

namespace uclust::clustering {

const char* PruningStrategyName(PruningStrategy strategy) {
  switch (strategy) {
    case PruningStrategy::kNone:
      return "none";
    case PruningStrategy::kMinMaxBB:
      return "MinMax-BB";
    case PruningStrategy::kVoronoi:
      return "VDBiP";
  }
  return "unknown";
}

EdBounds MinMaxBounds(const uncertain::Box& box,
                      std::span<const double> centroid) {
  return {box.MinSquaredDistanceTo(centroid),
          box.MaxSquaredDistanceTo(centroid)};
}

EdBounds ShiftBounds(double prev_ed, double shift) {
  const double r = std::sqrt(std::max(prev_ed, 0.0));
  const double lo = std::max(0.0, r - shift);
  const double hi = r + shift;
  return {lo * lo, hi * hi};
}

void VoronoiFilter(const uncertain::Box& box,
                   const std::vector<double>& centroids, std::size_t m,
                   std::vector<int>* candidates) {
  auto centroid = [&](int c) {
    return std::span<const double>(
        centroids.data() + static_cast<std::size_t>(c) * m, m);
  };
  std::vector<int>& cand = *candidates;
  std::vector<bool> dead(cand.size(), false);
  for (std::size_t a = 0; a < cand.size(); ++a) {
    if (dead[a]) continue;
    for (std::size_t b = 0; b < cand.size(); ++b) {
      if (a == b || dead[b]) continue;
      if (box.EntirelyCloserTo(centroid(cand[a]), centroid(cand[b]))) {
        dead[b] = true;
      }
    }
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < cand.size(); ++i) {
    if (!dead[i]) cand[out++] = cand[i];
  }
  cand.resize(out);
}

PairwiseBoundIndex::PairwiseBoundIndex(
    std::span<const uncertain::UncertainObject> objects)
    : objects_(objects) {
  if (objects_.empty()) return;
  dims_ = objects_.front().dims();
  centers_.resize(objects_.size() * dims_);
  radii_.resize(objects_.size());
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    const uncertain::Box& box = objects_[i].region();
    double r2 = 0.0;
    for (std::size_t j = 0; j < dims_; ++j) {
      const double c = 0.5 * (box.lower()[j] + box.upper()[j]);
      centers_[i * dims_ + j] = c;
      const double half = box.upper()[j] - c;
      r2 += half * half;
    }
    radii_[i] = std::sqrt(r2);
  }
}

double PairwiseBoundIndex::CenterSquaredDistance(std::size_t i,
                                                 std::size_t j) const {
  double center_d2 = 0.0;
  for (std::size_t d = 0; d < dims_; ++d) {
    const double diff = centers_[i * dims_ + d] - centers_[j * dims_ + d];
    center_d2 += diff * diff;
  }
  return center_d2;
}

double PairwiseBoundIndex::RadiusGap(std::size_t i, std::size_t j) const {
  return std::sqrt(CenterSquaredDistance(i, j)) - radii_[i] - radii_[j];
}

double PairwiseBoundIndex::MinSquaredDistance(std::size_t i,
                                              std::size_t j) const {
  if (radii_[i] == 0.0 && radii_[j] == 0.0) {
    // Both regions are points (point-mass pdfs / zero-extent boxes): the
    // squared center distance is the exact pair distance. The generic path
    // would take sqrt(center_d2) and re-square it, which can exceed the
    // true value by ulps — not a valid lower bound.
    return CenterSquaredDistance(i, j);
  }
  const double gap = RadiusGap(i, j);
  const double radius_bound = gap > 0.0 ? gap * gap : 0.0;
  // The box-box separation dominates the radius bound (the circumball
  // contains the box), so it can only tighten it.
  const double box_bound =
      objects_[i].region().MinSquaredDistanceTo(objects_[j].region());
  return box_bound > radius_bound ? box_bound : radius_bound;
}

bool PairwiseBoundIndex::ProvablyBeyond(std::size_t i, std::size_t j,
                                        double eps) const {
  // Relative slack: realizations are confined to the region boxes up to
  // rounding of the samplers' inverse CDFs, and computed sample distances
  // round too; requiring the bound to clear eps^2 by a margin far above
  // ulp-level noise keeps "provably" honest in floating point.
  const double threshold = SlackedSquaredThreshold(eps * eps);
  if (radii_[i] == 0.0 && radii_[j] == 0.0) {
    // Point-mass pair: decide on the exact squared center distance.
    return CenterSquaredDistance(i, j) > threshold;
  }
  // Cheap-first: the center-distance-minus-radii test alone often decides;
  // the exact box-box separation is consulted only when it does not.
  const double gap = RadiusGap(i, j);
  if (gap > 0.0 && gap * gap > threshold) return true;
  return objects_[i].region().MinSquaredDistanceTo(objects_[j].region()) >
         threshold;
}

}  // namespace uclust::clustering
