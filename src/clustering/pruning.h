// Pruning rules for sample-based UK-means (Section 2.2 of the paper):
//
//  * MinMax-BB (Ngai et al., 2006/2011): bound ED(o, c) by the min/max
//    squared distance from o's bounding region to c; prune candidates whose
//    lower bound exceeds the smallest upper bound.
//  * Voronoi bisector pruning, the core of VDBiP (Kao et al., TKDE 2010):
//    prune candidate c_b when o's region lies entirely on c_a's side of the
//    (c_a, c_b) perpendicular bisector.
//  * Cluster shift (Ngai et al., ICDM 2006): tighten bounds across
//    iterations from a previously computed exact ED and the distance the
//    centroid has moved since, via the Minkowski inequality on sqrt(ED).
#ifndef UCLUST_CLUSTERING_PRUNING_H_
#define UCLUST_CLUSTERING_PRUNING_H_

#include <span>
#include <vector>

#include "uncertain/box.h"

namespace uclust::clustering {

/// Candidate-pruning strategy of the basic UK-means inner loop.
enum class PruningStrategy {
  kNone,      ///< Exact ED for every (object, centroid) pair.
  kMinMaxBB,  ///< MBR min/max distance bounds.
  kVoronoi,   ///< Perpendicular-bisector (Voronoi) half-space tests.
};

/// Display name ("none", "MinMax-BB", "VDBiP").
const char* PruningStrategyName(PruningStrategy strategy);

/// Lower/upper bounds on an expected squared distance.
struct EdBounds {
  double lb = 0.0;
  double ub = 0.0;
};

/// MBR bounds: for a pdf supported inside `box`,
/// min_x ||x-c||^2 <= ED(o, c) <= max_x ||x-c||^2.
EdBounds MinMaxBounds(const uncertain::Box& box,
                      std::span<const double> centroid);

/// Cluster-shift bounds: if ED(o, c_then) = prev_ed and the centroid has
/// moved by at most `shift` since, then
/// (max(0, sqrt(prev_ed) - shift))^2 <= ED(o, c_now) <= (sqrt(prev_ed)+shift)^2.
EdBounds ShiftBounds(double prev_ed, double shift);

/// Intersection of two bound intervals (both must be valid bounds on the
/// same quantity).
inline EdBounds TightestOf(const EdBounds& a, const EdBounds& b) {
  return {a.lb > b.lb ? a.lb : b.lb, a.ub < b.ub ? a.ub : b.ub};
}

/// Removes from `candidates` every centroid b dominated by another candidate
/// a, i.e. `box` lies entirely in a's bisector half-space. `centroids` is a
/// flat k x m array; `candidates` holds centroid indices.
void VoronoiFilter(const uncertain::Box& box,
                   const std::vector<double>& centroids, std::size_t m,
                   std::vector<int>* candidates);

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_PRUNING_H_
