// Pruning rules for sample-based UK-means (Section 2.2 of the paper):
//
//  * MinMax-BB (Ngai et al., 2006/2011): bound ED(o, c) by the min/max
//    squared distance from o's bounding region to c; prune candidates whose
//    lower bound exceeds the smallest upper bound.
//  * Voronoi bisector pruning, the core of VDBiP (Kao et al., TKDE 2010):
//    prune candidate c_b when o's region lies entirely on c_a's side of the
//    (c_a, c_b) perpendicular bisector.
//  * Cluster shift (Ngai et al., ICDM 2006): tighten bounds across
//    iterations from a previously computed exact ED and the distance the
//    centroid has moved since, via the Minkowski inequality on sqrt(ED).
//  * Pair-level sweep pruning (PairwiseBoundIndex): per-object region
//    centers and spread radii, plus the exact box-box separation, give a
//    cheap lower bound on the distance between ANY realizations of two
//    objects — the bound the column-pruned FDBSCAN sweep consults to skip
//    pairs whose distance probability is provably 0.
#ifndef UCLUST_CLUSTERING_PRUNING_H_
#define UCLUST_CLUSTERING_PRUNING_H_

#include <span>
#include <vector>

#include "uncertain/box.h"
#include "uncertain/uncertain_object.h"

namespace uclust::clustering {

/// Candidate-pruning strategy of the basic UK-means inner loop.
enum class PruningStrategy {
  kNone,      ///< Exact ED for every (object, centroid) pair.
  kMinMaxBB,  ///< MBR min/max distance bounds.
  kVoronoi,   ///< Perpendicular-bisector (Voronoi) half-space tests.
};

/// Display name ("none", "MinMax-BB", "VDBiP").
const char* PruningStrategyName(PruningStrategy strategy);

/// Lower/upper bounds on an expected squared distance.
struct EdBounds {
  double lb = 0.0;
  double ub = 0.0;
};

/// MBR bounds: for a pdf supported inside `box`,
/// min_x ||x-c||^2 <= ED(o, c) <= max_x ||x-c||^2.
EdBounds MinMaxBounds(const uncertain::Box& box,
                      std::span<const double> centroid);

/// Cluster-shift bounds: if ED(o, c_then) = prev_ed and the centroid has
/// moved by at most `shift` since, then
/// (max(0, sqrt(prev_ed) - shift))^2 <= ED(o, c_now) <= (sqrt(prev_ed)+shift)^2.
EdBounds ShiftBounds(double prev_ed, double shift);

/// Intersection of two bound intervals (both must be valid bounds on the
/// same quantity).
inline EdBounds TightestOf(const EdBounds& a, const EdBounds& b) {
  return {a.lb > b.lb ? a.lb : b.lb, a.ub < b.ub ? a.ub : b.ub};
}

/// The slacked squared threshold shared by every "provably beyond" test
/// (ProvablyBeyond, the spatial-index candidate queries): a computed
/// squared-distance lower bound exceeding SlackedSquaredThreshold(d2)
/// proves the true distance exceeds sqrt(d2) even under floating-point
/// rounding of bounds, samplers, and sample distances — the relative slack
/// sits far above ulp-level noise, the absolute term covers d2 == 0.
/// Conversely every pair whose true distance could be within sqrt(d2) has
/// a computed lower bound at or below it, which is what makes index
/// candidate sets supersets of the non-pruned pairs.
inline double SlackedSquaredThreshold(double d2) {
  return d2 * (1.0 + 1e-9) + 1e-300;
}

/// Removes from `candidates` every centroid b dominated by another candidate
/// a, i.e. `box` lies entirely in a's bisector half-space. `centroids` is a
/// flat k x m array; `candidates` holds centroid indices.
void VoronoiFilter(const uncertain::Box& box,
                   const std::vector<double>& centroids, std::size_t m,
                   std::vector<int>* candidates);

/// Per-object spatial summaries for pair-level sweep pruning. Every pdf in
/// the library has bounded support, so each object's realizations lie inside
/// its domain region; the index precomputes each region's center and
/// circumradius ("centroid distance minus spread radii") and keeps the boxes
/// for the exact box-box separation test.
///
/// The referenced objects must outlive the index.
class PairwiseBoundIndex {
 public:
  explicit PairwiseBoundIndex(
      std::span<const uncertain::UncertainObject> objects);

  std::size_t size() const { return objects_.size(); }

  /// Lower bound on the squared distance between ANY realization pair of
  /// objects i and j (0 when the regions overlap). Cheap-first: the
  /// center-distance-minus-radii bound, tightened by the exact box-box
  /// separation when the radius test alone cannot decide. When both regions
  /// are degenerate (zero-extent boxes — point-mass pdfs), the bound is the
  /// exact squared center distance: the sqrt/re-square round trip of the
  /// radius bound is skipped, as it can overshoot the true value by ulps.
  double MinSquaredDistance(std::size_t i, std::size_t j) const;

  /// True when every realization pair of (i, j) is provably farther apart
  /// than `eps`, i.e. Pr[dist(o_i, o_j) <= eps] is exactly 0 and a kernel
  /// evaluation of the pair can be skipped. A tiny relative slack absorbs
  /// floating-point rounding at the boundary so the proof also holds for
  /// computed (rounded) sample distances.
  bool ProvablyBeyond(std::size_t i, std::size_t j, double eps) const;

 private:
  /// Exact sum of squared center differences (no sqrt involved).
  double CenterSquaredDistance(std::size_t i, std::size_t j) const;
  /// Center distance minus both circumradii — the shared radius-bound core
  /// of MinSquaredDistance and ProvablyBeyond (may be negative).
  double RadiusGap(std::size_t i, std::size_t j) const;

  std::span<const uncertain::UncertainObject> objects_;
  std::size_t dims_ = 0;
  std::vector<double> centers_;  // n x m region centers
  std::vector<double> radii_;    // n region circumradii
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_PRUNING_H_
