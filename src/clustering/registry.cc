#include "clustering/registry.h"

#include <cstdio>
#include <cstdlib>

#include "clustering/basic_ukmeans.h"
#include "clustering/ckmeans.h"
#include "clustering/fdbscan.h"
#include "clustering/foptics.h"
#include "clustering/mmvar.h"
#include "clustering/uahc.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "clustering/ukmedoids.h"

namespace uclust::clustering {

namespace {

std::unique_ptr<Clusterer> MakePruned(PruningStrategy strategy, bool shift) {
  BasicUkmeans::Params p;
  p.pruning = strategy;
  p.cluster_shift = shift;
  return std::make_unique<BasicUkmeans>(p);
}

}  // namespace

std::vector<std::string> RegisteredClusterers() {
  return {"UCPC",      "UK-means",        "CK-means",    "MMVar",
          "bUK-means", "MinMax-BB",       "MinMax-BB+shift",
          "VDBiP",     "VDBiP+shift",     "UK-medoids",  "UAHC",
          "FDBSCAN",   "FOPTICS"};
}

common::Result<std::unique_ptr<Clusterer>> MakeClusterer(
    std::string_view name) {
  if (name == "UCPC") return std::unique_ptr<Clusterer>(new Ucpc());
  if (name == "UK-means") return std::unique_ptr<Clusterer>(new Ukmeans());
  if (name == "CK-means") return std::unique_ptr<Clusterer>(new CkMeans());
  if (name == "MMVar") return std::unique_ptr<Clusterer>(new Mmvar());
  if (name == "bUK-means") {
    return std::unique_ptr<Clusterer>(new BasicUkmeans());
  }
  if (name == "MinMax-BB") {
    return common::Result<std::unique_ptr<Clusterer>>(
        MakePruned(PruningStrategy::kMinMaxBB, false));
  }
  if (name == "MinMax-BB+shift") {
    return common::Result<std::unique_ptr<Clusterer>>(
        MakePruned(PruningStrategy::kMinMaxBB, true));
  }
  if (name == "VDBiP") {
    return common::Result<std::unique_ptr<Clusterer>>(
        MakePruned(PruningStrategy::kVoronoi, false));
  }
  if (name == "VDBiP+shift") {
    return common::Result<std::unique_ptr<Clusterer>>(
        MakePruned(PruningStrategy::kVoronoi, true));
  }
  if (name == "UK-medoids") {
    return std::unique_ptr<Clusterer>(new UkMedoids());
  }
  if (name == "UAHC") return std::unique_ptr<Clusterer>(new Uahc());
  if (name == "FDBSCAN") return std::unique_ptr<Clusterer>(new Fdbscan());
  if (name == "FOPTICS") return std::unique_ptr<Clusterer>(new Foptics());
  return common::Status::NotFound("unknown clusterer: " + std::string(name));
}

common::Result<std::unique_ptr<Clusterer>> MakeClusterer(
    std::string_view name, const engine::Engine& eng) {
  auto result = MakeClusterer(name);
  if (result.ok()) result.ValueOrDie()->set_engine(eng);
  return result;
}

std::unique_ptr<Clusterer> MakeClustererOrDie(std::string_view name) {
  auto result = MakeClusterer(name);
  if (!result.ok()) {
    std::string names;
    for (const std::string& registered : RegisteredClusterers()) {
      if (!names.empty()) names += ", ";
      names += registered;
    }
    std::fprintf(stderr, "registry: %s\nregistered clusterers: %s\n",
                 result.status().ToString().c_str(), names.c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

std::unique_ptr<Clusterer> MakeClustererOrDie(std::string_view name,
                                              const engine::Engine& eng) {
  auto clusterer = MakeClustererOrDie(name);
  clusterer->set_engine(eng);
  return clusterer;
}

std::vector<std::unique_ptr<Clusterer>> MakeAllClusterers() {
  std::vector<std::unique_ptr<Clusterer>> out;
  for (const std::string& name : RegisteredClusterers()) {
    out.push_back(std::move(MakeClusterer(name)).ValueOrDie());
  }
  return out;
}

std::vector<std::unique_ptr<Clusterer>> MakeAllClusterers(
    const engine::EngineConfig& config) {
  const engine::Engine eng(config);
  std::vector<std::unique_ptr<Clusterer>> out;
  for (const std::string& name : RegisteredClusterers()) {
    out.push_back(std::move(MakeClusterer(name, eng)).ValueOrDie());
  }
  return out;
}

}  // namespace uclust::clustering
