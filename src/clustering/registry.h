// Name-based factory for every clustering algorithm in the library, so
// benches, examples, and downstream tools can select algorithms from
// configuration ("UCPC", "UK-means", "MinMax-BB", ...) without linking
// against each header.
#ifndef UCLUST_CLUSTERING_REGISTRY_H_
#define UCLUST_CLUSTERING_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "clustering/clusterer.h"
#include "common/status.h"

namespace uclust::clustering {

/// Names accepted by MakeClusterer, in the paper's presentation order.
std::vector<std::string> RegisteredClusterers();

/// Creates an algorithm by name. Accepted names (case-sensitive):
/// "UCPC", "UK-means", "MMVar", "bUK-means", "MinMax-BB", "VDBiP",
/// "MinMax-BB+shift", "VDBiP+shift", "UK-medoids", "UAHC", "FDBSCAN",
/// "FOPTICS".
common::Result<std::unique_ptr<Clusterer>> MakeClusterer(
    std::string_view name);

/// Creates an algorithm by name and installs `eng` as its execution engine.
/// Pass copies of one Engine to run a whole fleet of algorithms on a single
/// shared thread pool.
common::Result<std::unique_ptr<Clusterer>> MakeClusterer(
    std::string_view name, const engine::Engine& eng);

/// MakeClusterer for binaries that cannot proceed without the algorithm:
/// on an unknown name it prints the uniform one-line diagnostic
/// "registry: NotFound: unknown clusterer: <name>" (plus the registered
/// names) to stderr and exits with status 1. Library code — the service in
/// particular — uses the Result-returning MakeClusterer and reports the
/// Status instead.
std::unique_ptr<Clusterer> MakeClustererOrDie(std::string_view name);

/// MakeClustererOrDie with an execution engine installed.
std::unique_ptr<Clusterer> MakeClustererOrDie(std::string_view name,
                                              const engine::Engine& eng);

/// Creates one instance of every registered algorithm.
std::vector<std::unique_ptr<Clusterer>> MakeAllClusterers();

/// Creates one instance of every registered algorithm, all sharing one
/// engine built from `config`.
std::vector<std::unique_ptr<Clusterer>> MakeAllClusterers(
    const engine::EngineConfig& config);

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_REGISTRY_H_
