#include "clustering/result_json.h"

#include <cstdio>
#include <cstring>

namespace uclust::clustering {

uint64_t ResultFingerprint(std::span<const int> labels, double objective) {
  uint64_t h = 1469598103934665603ull;
  auto mix_byte = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (int label : labels) {
    for (int b = 0; b < 32; b += 8) {
      mix_byte(static_cast<unsigned char>(
          (static_cast<uint32_t>(label) >> b) & 0xff));
    }
  }
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(objective));
  std::memcpy(&bits, &objective, sizeof(bits));
  for (int b = 0; b < 64; b += 8) {
    mix_byte(static_cast<unsigned char>((bits >> b) & 0xff));
  }
  return h;
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

void AppendResultJson(common::JsonWriter* json, const ClusteringResult& r,
                      bool include_labels) {
  json->BeginObject();
  json->KV("k_requested", r.k_requested);
  json->KV("clusters_found", r.clusters_found);
  json->KV("iterations", r.iterations);
  json->KVExact("objective", r.objective);
  json->KV("fingerprint", FingerprintHex(ResultFingerprint(
                              r.labels, r.objective)));
  json->KV("online_ms", r.online_ms);
  json->KV("offline_ms", r.offline_ms);
  json->KV("ed_evaluations", r.ed_evaluations);
  json->KV("noise_objects", r.noise_objects);
  json->KV("pairwise_backend", r.pairwise_backend);
  json->KV("table_bytes_peak", r.table_bytes_peak);
  json->KV("pair_evaluations", r.pair_evaluations);
  json->KV("tile_warm_hits", r.tile_warm_hits);
  json->KV("tile_warm_misses", r.tile_warm_misses);
  json->KV("pairs_pruned", r.pairs_pruned);
  json->KV("center_distance_evals", r.center_distance_evals);
  json->KV("bounds_skipped", r.bounds_skipped);
  json->KV("index_candidates", r.index_candidates);
  json->KV("pairs_pruned_by_index", r.pairs_pruned_by_index);
  json->KV("index_bound_tests", r.index_bound_tests);
  if (include_labels) {
    json->Key("labels");
    json->BeginArray();
    for (int label : r.labels) json->Value(label);
    json->EndArray();
  }
  json->EndObject();
}

std::string ResultToJson(const ClusteringResult& r, bool include_labels) {
  common::JsonWriter json;
  AppendResultJson(&json, r, include_labels);
  return std::move(json.str());
}

}  // namespace uclust::clustering
