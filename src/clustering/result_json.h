// Canonical serialization of a ClusteringResult, plus the timing-free
// results fingerprint. This is the ONE place a result becomes JSON: the
// service's GET /v1/jobs/{id}/result route, the fig5 bench axes, and the
// golden-file test all emit through AppendResultJson, so a field added to
// ClusteringResult shows up everywhere (or nowhere) at once.
#ifndef UCLUST_CLUSTERING_RESULT_JSON_H_
#define UCLUST_CLUSTERING_RESULT_JSON_H_

#include <cstdint>
#include <span>
#include <string>

#include "clustering/clusterer.h"
#include "common/json.h"

namespace uclust::clustering {

/// FNV-1a over the label vector plus the objective's exact bits: a
/// timing-free results fingerprint. Two runs that cluster identically
/// produce the same value regardless of how fast they ran — the handle CI
/// uses to diff a service job against a direct in-process run, and
/// forced-scalar against auto SIMD dispatch.
uint64_t ResultFingerprint(std::span<const int> labels, double objective);

/// The fingerprint as the fixed-width lowercase hex string every marker
/// line and JSON document carries ("%016llx").
std::string FingerprintHex(uint64_t fingerprint);

/// Appends the canonical result object to an open JsonWriter document.
/// Counters and timings are always emitted; `labels` (potentially huge) are
/// opt-in. The objective is written round-trippable (%.17g) and the
/// "fingerprint" field carries FingerprintHex(ResultFingerprint(...)), so
/// two documents describe bit-identical clusterings iff their fingerprints
/// match. Field order is fixed — the golden-file test pins it.
void AppendResultJson(common::JsonWriter* json, const ClusteringResult& r,
                      bool include_labels);

/// The canonical result object as a standalone JSON document.
std::string ResultToJson(const ClusteringResult& r, bool include_labels);

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_RESULT_JSON_H_
