// SIMD kernel layer: compile-time multi-versioned, runtime-dispatched
// inner-loop primitives for the dense arithmetic sweeps of the clustering
// stack (closed-form ED^ accumulation, moment-column packing, CK-means
// center-distance scans, per-cluster sum accumulators).
//
// Bit-exactness contract. Every primitive produces BIT-IDENTICAL doubles on
// every ISA path (scalar reference, AVX2, NEON). The mechanism is a
// fixed-width lane-blocked accumulation order: reductions always run over
// kLanes = 16 independent lane accumulators (lane l owns elements l, l+16,
// l+32, ...; the tail element `full + t` lands in lane t) and the lanes are
// folded in one fixed tree (FoldLanes in simd_lanes.h). AVX2 implements the
// 16-lane block as four 4-wide registers, NEON as eight 2-wide registers,
// and the scalar reference as sixteen plain accumulators — the same
// additions in the same order, so the rounding is the same everywhere. The
// width is 16 (not one hardware register) so the vector paths run several
// independent add chains: one 4-lane accumulator would pin AVX2 to the
// same elements-per-FP-add-latency ceiling the multi-chain scalar code
// reaches, hiding the vector units entirely. Fused multiply-add is
// deliberately never used (its single rounding would diverge from the
// mul-then-add paths), and the simd TUs are compiled with -ffp-contract=off
// so a compiler cannot introduce it behind our back. This is the same
// block-grid-aligned carry discipline the engine uses for thread-count and
// mini-batch independence, reapplied to lane width.
//
// Dispatch. A process-global table pointer selects the active path: the
// best compiled-and-supported ISA by default (cpuid on x86, __aarch64__ for
// NEON), overridable via ForceIsa / EngineConfig::simd_isa / --simd_isa.
// Because every path produces identical bits, switching the active table
// mid-process changes throughput, never values. Tests that want a specific
// path without touching the global can call TableFor(isa) directly.
//
// Layering: this header is a dependency leaf (stdlib only), so the lowest
// layers (common/math_utils, uncertain/moments) can route their hot loops
// through it without inverting the include graph.
#ifndef UCLUST_CLUSTERING_SIMD_SIMD_H_
#define UCLUST_CLUSTERING_SIMD_SIMD_H_

#include <cstddef>
#include <string>

namespace uclust::clustering::simd {

/// Fixed accumulation width of the lane-blocked contract. Independent of
/// the hardware vector width: AVX2 packs four 4-lane registers, NEON eight
/// 2-lane registers, a scalar build sixteen plain accumulators. Changing
/// this changes rounding on every path at once (it can never diverge a
/// single path).
inline constexpr std::size_t kLanes = 16;

/// Instruction-set paths. kAuto is a request (resolve to the best compiled
/// and hardware-supported path), never an active state.
enum class Isa { kScalar = 0, kAvx2 = 1, kNeon = 2, kAuto = 3 };

/// One ISA path's implementations of the inner-loop primitives. All
/// functions follow the lane-blocked accumulation order above, so any two
/// tables produce bit-identical outputs for the same inputs.
struct KernelTable {
  /// sum_j (a[j] - b[j])^2 over j in [0, m).
  double (*squared_distance)(const double* a, const double* b, std::size_t m);
  /// sum_j v[j] over j in [0, n).
  double (*sum)(const double* v, std::size_t n);
  /// Closed-form ED^ (Lemma 3): (||mu_lo - mu_hi||^2 + tv_lo) + tv_hi.
  /// The tv fold order matches the historical ExpectedSquaredDistance.
  double (*ed2)(const double* mean_lo, const double* mean_hi, std::size_t m,
                double tv_lo, double tv_hi);
  /// dst[j] += src[j] for j in [0, n) — the per-cluster sum accumulator.
  /// Element-wise, so it is bit-identical across ISAs trivially.
  void (*vector_add)(double* dst, const double* src, std::size_t n);
  /// The canonical moment-row packing: copies the three length-m columns
  /// and writes total_var = lane-blocked sum of var (MomentMatrix::PackRow).
  void (*pack_row)(const double* mean, const double* mu2, const double* var,
                   std::size_t m, double* mean_dst, double* mu2_dst,
                   double* var_dst, double* total_var_dst);
  /// Best / runner-up center scan of one point over a flat k x m centroid
  /// array — the CK-means reduced-moment sweep. Ascending c, strict <, ties
  /// to the lower index (the kernels::NearestCentroid comparison order).
  /// reuse_c >= 0 substitutes reuse_d2 for that center's distance without
  /// changing the decision sequence.
  void (*nearest_two)(const double* point, const double* centroids, int k,
                      std::size_t m, int reuse_c, double reuse_d2, int* best,
                      double* best_d2, double* second_d2);
};

/// Table of a specific path, or nullptr when that path is not compiled in
/// or the running CPU cannot execute it. TableFor(Isa::kAuto) resolves to
/// the best available path and is never nullptr (scalar always exists).
const KernelTable* TableFor(Isa isa);

/// Best compiled-and-supported path on this machine (cpuid probe on x86).
Isa DetectBestIsa();

/// Forces the active dispatch path. kAuto re-resolves to DetectBestIsa().
/// Returns false (leaving the active path unchanged) when the requested
/// path is unavailable. Process-global: the last call wins, which is safe
/// precisely because all paths are bit-identical — concurrent kernels see
/// either table and produce the same values.
bool ForceIsa(Isa isa);

/// The currently active path (resolves lazily to DetectBestIsa()).
Isa ActiveIsa();

/// The active table (never null; lazily initialized, lock-free).
const KernelTable& Active();

/// "scalar" / "avx2" / "neon" / "auto".
std::string IsaName(Isa isa);

/// Parses IsaName spellings; returns false (and leaves *isa untouched) on
/// unknown input.
bool IsaFromString(const std::string& name, Isa* isa);

// ---- dispatched conveniences (the hot-path entry points) ------------------

inline double SquaredDistance(const double* a, const double* b,
                              std::size_t m) {
  return Active().squared_distance(a, b, m);
}

inline double Sum(const double* v, std::size_t n) { return Active().sum(v, n); }

inline double Ed2(const double* mean_lo, const double* mean_hi, std::size_t m,
                  double tv_lo, double tv_hi) {
  return Active().ed2(mean_lo, mean_hi, m, tv_lo, tv_hi);
}

inline void VectorAdd(double* dst, const double* src, std::size_t n) {
  Active().vector_add(dst, src, n);
}

inline void PackRow(const double* mean, const double* mu2, const double* var,
                    std::size_t m, double* mean_dst, double* mu2_dst,
                    double* var_dst, double* total_var_dst) {
  Active().pack_row(mean, mu2, var, m, mean_dst, mu2_dst, var_dst,
                    total_var_dst);
}

inline void NearestTwo(const double* point, const double* centroids, int k,
                       std::size_t m, int reuse_c, double reuse_d2, int* best,
                       double* best_d2, double* second_d2) {
  Active().nearest_two(point, centroids, k, m, reuse_c, reuse_d2, best,
                       best_d2, second_d2);
}

// Per-ISA table factories (defined in their own TUs so target-specific
// compile flags stay contained). Return nullptr when not compiled in.
const KernelTable* ScalarTable();
const KernelTable* Avx2Table();
const KernelTable* NeonTable();

}  // namespace uclust::clustering::simd

#endif  // UCLUST_CLUSTERING_SIMD_SIMD_H_
