// AVX2 path: the 16-lane block is four 4-wide __m256d registers, giving
// the reduction four independent vector add chains (the scalar reference
// runs the same sixteen lanes as scalar chains). Only this TU is compiled
// with -mavx2 (when the compiler supports it); the guard below turns the
// factory into a nullptr stub otherwise, and runtime dispatch additionally
// gates on cpuid so the path never executes on hardware without AVX2. No
// fused multiply-add anywhere: _mm256_mul_pd followed by _mm256_add_pd
// rounds twice, exactly like the scalar reference.
#include "clustering/simd/simd_lanes.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace uclust::clustering::simd {

namespace {

struct Avx2Ops {
  static constexpr int kRegs = static_cast<int>(kLanes / 4);
  struct V {
    __m256d r[kRegs];  // r[q] holds lanes 4q .. 4q+3
  };
  static V Zero() {
    V v;
    for (int q = 0; q < kRegs; ++q) v.r[q] = _mm256_setzero_pd();
    return v;
  }
  static V Load(const double* p) {
    V v;
    for (int q = 0; q < kRegs; ++q) v.r[q] = _mm256_loadu_pd(p + 4 * q);
    return v;
  }
  static V Sub(const V& a, const V& b) {
    V v;
    for (int q = 0; q < kRegs; ++q) v.r[q] = _mm256_sub_pd(a.r[q], b.r[q]);
    return v;
  }
  static V Mul(const V& a, const V& b) {
    V v;
    for (int q = 0; q < kRegs; ++q) v.r[q] = _mm256_mul_pd(a.r[q], b.r[q]);
    return v;
  }
  static V Add(const V& a, const V& b) {
    V v;
    for (int q = 0; q < kRegs; ++q) v.r[q] = _mm256_add_pd(a.r[q], b.r[q]);
    return v;
  }
  static void Store(double* p, const V& a) {
    for (int q = 0; q < kRegs; ++q) _mm256_storeu_pd(p + 4 * q, a.r[q]);
  }
};

const KernelTable kTable = MakeTable<Avx2Ops>();

}  // namespace

const KernelTable* Avx2Table() { return &kTable; }

}  // namespace uclust::clustering::simd

#else  // !defined(__AVX2__)

namespace uclust::clustering::simd {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace uclust::clustering::simd

#endif
