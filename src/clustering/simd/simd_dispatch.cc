// Runtime dispatch for the SIMD kernel layer. The active table is one
// process-global atomic pointer, resolved lazily to the best compiled-and-
// supported path; ForceIsa repoints it. Lock-free on the hot path: Active()
// is a relaxed load plus one branch that only ever takes the slow path on
// first use.
#include "clustering/simd/simd.h"

#include <atomic>

namespace uclust::clustering::simd {

namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<Isa> g_active_isa{Isa::kScalar};

const KernelTable* ResolveAuto(Isa* isa) {
  const Isa best = DetectBestIsa();
  *isa = best;
  return TableFor(best);
}

}  // namespace

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return ScalarTable();
    case Isa::kAvx2:
      // Compiled in AND executable here: a table whose code the CPU cannot
      // run must be unreachable, even for tests poking paths directly.
      return CpuHasAvx2() ? Avx2Table() : nullptr;
    case Isa::kNeon:
      return NeonTable();
    case Isa::kAuto: {
      Isa resolved;
      return ResolveAuto(&resolved);
    }
  }
  return nullptr;
}

Isa DetectBestIsa() {
  if (CpuHasAvx2() && Avx2Table() != nullptr) return Isa::kAvx2;
  if (NeonTable() != nullptr) return Isa::kNeon;
  return Isa::kScalar;
}

bool ForceIsa(Isa isa) {
  Isa resolved = isa;
  const KernelTable* table =
      isa == Isa::kAuto ? ResolveAuto(&resolved) : TableFor(isa);
  if (table == nullptr) return false;
  // Table first, then the name: a racing Active() sees a valid table either
  // way, and ActiveIsa is informational (all tables agree on values).
  g_active.store(table, std::memory_order_release);
  g_active_isa.store(resolved, std::memory_order_release);
  return true;
}

Isa ActiveIsa() {
  if (g_active.load(std::memory_order_acquire) == nullptr) ForceIsa(Isa::kAuto);
  return g_active_isa.load(std::memory_order_acquire);
}

const KernelTable& Active() {
  const KernelTable* t = g_active.load(std::memory_order_relaxed);
  if (t == nullptr) {
    ForceIsa(Isa::kAuto);
    t = g_active.load(std::memory_order_relaxed);
  }
  return *t;
}

std::string IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    case Isa::kAuto:
      return "auto";
  }
  return "scalar";
}

bool IsaFromString(const std::string& name, Isa* isa) {
  if (name == "scalar") {
    *isa = Isa::kScalar;
  } else if (name == "avx2") {
    *isa = Isa::kAvx2;
  } else if (name == "neon") {
    *isa = Isa::kNeon;
  } else if (name == "auto") {
    *isa = Isa::kAuto;
  } else {
    return false;
  }
  return true;
}

}  // namespace uclust::clustering::simd
