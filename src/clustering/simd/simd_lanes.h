// Shared lane-blocked kernel bodies, templated over a per-ISA `Ops` type.
//
// Every ISA TU instantiates the SAME templates below with its own Ops
// (vector type + Zero/Load/Sub/Mul/Add/Store), so the accumulation order —
// and therefore the rounding — is identical by construction: the bit-
// exactness contract is structural, not something each path re-implements
// and can drift on. An Ops vector always models exactly kLanes = 16 doubles
// (AVX2 packs four 4-wide registers, NEON eight 2-wide registers, scalar a
// double[16]).
//
// Shape of every reduction:
//   1. vector body over the full groups [0, m - m % 16),
//   2. spill the vector accumulator to double lanes[16],
//   3. scalar tail: element full + t accumulates into lanes[t],
//   4. fixed fold tree (FoldLanes below).
// Steps 2–4 are plain scalar code shared verbatim across ISAs; step 1 is
// where the vector speedup lives and is rounding-equivalent to sixteen
// independent scalar accumulators as long as Ops never fuses mul+add
// (see the -ffp-contract=off note in simd.h).
#ifndef UCLUST_CLUSTERING_SIMD_SIMD_LANES_H_
#define UCLUST_CLUSTERING_SIMD_SIMD_LANES_H_

#include <algorithm>
#include <cstddef>
#include <limits>

#include "clustering/simd/simd.h"

namespace uclust::clustering::simd {

// The fixed fold tree of the lane block: halve lane-wise (lane j absorbs
// lane j + width/2) down to 4 survivors, then (t0 + t2) + (t1 + t3). The
// halving steps are exactly the pairwise register adds the vector paths
// perform before their one horizontal fold, so the tree is the same
// additions in the same order on every ISA. Written fully unrolled: the
// loop form made GCC materialize the intermediate array on the stack,
// which for short rows cost as much as the reduction body itself.
inline double FoldLanes(const double lanes[kLanes]) {
  // width 16 -> 8
  const double a0 = lanes[0] + lanes[8];
  const double a1 = lanes[1] + lanes[9];
  const double a2 = lanes[2] + lanes[10];
  const double a3 = lanes[3] + lanes[11];
  const double a4 = lanes[4] + lanes[12];
  const double a5 = lanes[5] + lanes[13];
  const double a6 = lanes[6] + lanes[14];
  const double a7 = lanes[7] + lanes[15];
  // width 8 -> 4
  const double b0 = a0 + a4;
  const double b1 = a1 + a5;
  const double b2 = a2 + a6;
  const double b3 = a3 + a7;
  return (b0 + b2) + (b1 + b3);
}

template <class Ops>
double SquaredDistanceT(const double* a, const double* b, std::size_t m) {
  // Deliberately uninitialized: the full-group path overwrites every lane
  // via Ops::Store; only the all-tail path (m < kLanes) zero-fills. A
  // blanket `= {}` would put a kLanes-wide memset on every call, which for
  // hot mid-size m costs as much as the reduction itself.
  double lanes[kLanes];
  const std::size_t full = m - (m % kLanes);
  if (full > 0) {
    typename Ops::V acc = Ops::Zero();
    for (std::size_t j = 0; j < full; j += kLanes) {
      const typename Ops::V d = Ops::Sub(Ops::Load(a + j), Ops::Load(b + j));
      acc = Ops::Add(acc, Ops::Mul(d, d));
    }
    Ops::Store(lanes, acc);
  } else {
    for (std::size_t t = 0; t < kLanes; ++t) lanes[t] = 0.0;
  }
  for (std::size_t t = 0; full + t < m; ++t) {
    const double d = a[full + t] - b[full + t];
    lanes[t] += d * d;
  }
  return FoldLanes(lanes);
}

template <class Ops>
double SumT(const double* v, std::size_t n) {
  double lanes[kLanes];
  const std::size_t full = n - (n % kLanes);
  if (full > 0) {
    typename Ops::V acc = Ops::Zero();
    for (std::size_t j = 0; j < full; j += kLanes) {
      acc = Ops::Add(acc, Ops::Load(v + j));
    }
    Ops::Store(lanes, acc);
  } else {
    for (std::size_t t = 0; t < kLanes; ++t) lanes[t] = 0.0;
  }
  for (std::size_t t = 0; full + t < n; ++t) {
    lanes[t] += v[full + t];
  }
  return FoldLanes(lanes);
}

template <class Ops>
double Ed2T(const double* mean_lo, const double* mean_hi, std::size_t m,
            double tv_lo, double tv_hi) {
  return (SquaredDistanceT<Ops>(mean_lo, mean_hi, m) + tv_lo) + tv_hi;
}

template <class Ops>
void VectorAddT(double* dst, const double* src, std::size_t n) {
  const std::size_t full = n - (n % kLanes);
  for (std::size_t j = 0; j < full; j += kLanes) {
    Ops::Store(dst + j, Ops::Add(Ops::Load(dst + j), Ops::Load(src + j)));
  }
  for (std::size_t j = full; j < n; ++j) {
    dst[j] += src[j];
  }
}

template <class Ops>
void PackRowT(const double* mean, const double* mu2, const double* var,
              std::size_t m, double* mean_dst, double* mu2_dst,
              double* var_dst, double* total_var_dst) {
  std::copy(mean, mean + m, mean_dst);
  std::copy(mu2, mu2 + m, mu2_dst);
  std::copy(var, var + m, var_dst);
  *total_var_dst = SumT<Ops>(var, m);
}

// The CK-means reduced-moment scan: best and runner-up centers of one point
// over a flat k x m centroid array. Mirrors the historical ScanCenters /
// NearestCentroid decision sequence exactly — ascending c, strict <, ties
// to the lower index — so routing through it changes no assignment and no
// Hamerly/Elkan bound.
template <class Ops>
void NearestTwoT(const double* point, const double* centroids, int k,
                 std::size_t m, int reuse_c, double reuse_d2, int* best,
                 double* best_d2, double* second_d2) {
  int b = 0;
  double bd = std::numeric_limits<double>::infinity();
  double sd = std::numeric_limits<double>::infinity();
  for (int c = 0; c < k; ++c) {
    const double d =
        c == reuse_c
            ? reuse_d2
            : SquaredDistanceT<Ops>(
                  point, centroids + static_cast<std::size_t>(c) * m, m);
    if (d < bd) {
      sd = bd;
      bd = d;
      b = c;
    } else if (d < sd) {
      sd = d;
    }
  }
  *best = b;
  *best_d2 = bd;
  *second_d2 = sd;  // inf when k == 1, matching the historical scan
}

template <class Ops>
constexpr KernelTable MakeTable() {
  return KernelTable{
      &SquaredDistanceT<Ops>, &SumT<Ops>,     &Ed2T<Ops>,
      &VectorAddT<Ops>,       &PackRowT<Ops>, &NearestTwoT<Ops>,
  };
}

}  // namespace uclust::clustering::simd

#endif  // UCLUST_CLUSTERING_SIMD_SIMD_LANES_H_
