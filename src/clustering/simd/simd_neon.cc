// NEON path (aarch64): the 16-lane block is eight 2-wide float64x2_t
// registers (register q holds lanes 2q, 2q+1), giving eight independent
// vector add chains. Each lane still accumulates the same elements in the
// same order as the scalar reference and AVX2, and the final fold in
// FoldLanes is shared, so the bits match. NEON is baseline on aarch64 — no
// runtime cpuid gate needed, just the compile-time guard. vmulq_f64 +
// vaddq_f64 are kept unfused for the same reason as AVX2.
#include "clustering/simd/simd_lanes.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace uclust::clustering::simd {

namespace {

struct NeonOps {
  static constexpr int kRegs = static_cast<int>(kLanes / 2);
  struct V {
    float64x2_t r[kRegs];  // r[q] holds lanes 2q, 2q+1
  };
  static V Zero() {
    V v;
    for (int q = 0; q < kRegs; ++q) v.r[q] = vdupq_n_f64(0.0);
    return v;
  }
  static V Load(const double* p) {
    V v;
    for (int q = 0; q < kRegs; ++q) v.r[q] = vld1q_f64(p + 2 * q);
    return v;
  }
  static V Sub(const V& a, const V& b) {
    V v;
    for (int q = 0; q < kRegs; ++q) v.r[q] = vsubq_f64(a.r[q], b.r[q]);
    return v;
  }
  static V Mul(const V& a, const V& b) {
    V v;
    for (int q = 0; q < kRegs; ++q) v.r[q] = vmulq_f64(a.r[q], b.r[q]);
    return v;
  }
  static V Add(const V& a, const V& b) {
    V v;
    for (int q = 0; q < kRegs; ++q) v.r[q] = vaddq_f64(a.r[q], b.r[q]);
    return v;
  }
  static void Store(double* p, const V& a) {
    for (int q = 0; q < kRegs; ++q) vst1q_f64(p + 2 * q, a.r[q]);
  }
};

const KernelTable kTable = MakeTable<NeonOps>();

}  // namespace

const KernelTable* NeonTable() { return &kTable; }

}  // namespace uclust::clustering::simd

#else  // !defined(__aarch64__)

namespace uclust::clustering::simd {

const KernelTable* NeonTable() { return nullptr; }

}  // namespace uclust::clustering::simd

#endif
