// Scalar reference path: the lane-blocked templates instantiated with a
// plain double[4] "vector". This TU is the ground truth the vector paths
// are checked against, and the forced-scalar bench baseline — so the build
// disables auto-vectorization for it (see CMakeLists.txt), keeping the
// baseline honestly scalar instead of silently SSE2.
#include "clustering/simd/simd_lanes.h"

namespace uclust::clustering::simd {

namespace {

struct ScalarOps {
  struct V {
    double v[kLanes];
  };
  static V Zero() {
    V r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = 0.0;
    return r;
  }
  static V Load(const double* p) {
    V r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = p[i];
    return r;
  }
  static V Sub(const V& a, const V& b) {
    V r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  static V Mul(const V& a, const V& b) {
    V r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  static V Add(const V& a, const V& b) {
    V r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  static void Store(double* p, const V& a) {
    for (std::size_t i = 0; i < kLanes; ++i) p[i] = a.v[i];
  }
};

constexpr KernelTable kTable = MakeTable<ScalarOps>();

}  // namespace

const KernelTable* ScalarTable() { return &kTable; }

}  // namespace uclust::clustering::simd
