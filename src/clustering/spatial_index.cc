#include "clustering/spatial_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

namespace uclust::clustering {
namespace {

// Leaf capacity / internal fanout of the STR packing. Small leaves keep the
// per-node MBR tight; a modest fanout keeps the tree shallow. Both are cold
// build-time constants — queries only see the resulting node layout.
constexpr std::size_t kLeafCap = 16;
constexpr std::size_t kFanout = 8;

// Hard cap on grid cells, so a forced --spatial_index=grid in high
// dimensions degrades to coarser cells instead of an exponential allocation.
constexpr std::size_t kMaxGridCells = std::size_t{1} << 20;

// Relative slack applied to the smallest max-distance bound in
// NearestCandidates. The exact argmin winner satisfies
// min_bound <= value <= best_upper_bound in exact arithmetic; the computed
// bounds agree with the exact ones to a few ulps per dimension
// (<= ~1e-13 relative for any realistic dimensionality), so a 4e-9 margin
// keeps every potential winner in the candidate set while excluded ids
// remain provably strictly farther. The 1e-300 absolute floor covers
// best_upper_bound == 0 (coincident point boxes).
constexpr double kArgminSlack = 4e-9;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

bool SpatialIndexChoiceFromString(const std::string& name,
                                  SpatialIndexChoice* out) {
  if (name == "auto") {
    *out = SpatialIndexChoice::kAuto;
  } else if (name == "rtree") {
    *out = SpatialIndexChoice::kRTree;
  } else if (name == "grid") {
    *out = SpatialIndexChoice::kGrid;
  } else if (name == "off") {
    *out = SpatialIndexChoice::kOff;
  } else {
    return false;
  }
  return true;
}

const char* SpatialIndexChoiceName(SpatialIndexChoice choice) {
  switch (choice) {
    case SpatialIndexChoice::kAuto:
      return "auto";
    case SpatialIndexChoice::kRTree:
      return "rtree";
    case SpatialIndexChoice::kGrid:
      return "grid";
    case SpatialIndexChoice::kOff:
      return "off";
  }
  return "off";
}

SpatialIndexKind ResolveSpatialIndexKind(SpatialIndexChoice choice,
                                         std::size_t dims) {
  assert(choice != SpatialIndexChoice::kOff);
  switch (choice) {
    case SpatialIndexChoice::kRTree:
      return SpatialIndexKind::kRTree;
    case SpatialIndexChoice::kGrid:
      return SpatialIndexKind::kGrid;
    default:
      return dims <= 3 ? SpatialIndexKind::kGrid : SpatialIndexKind::kRTree;
  }
}

SpatialIndex::SpatialIndex(std::span<const uncertain::UncertainObject> objects,
                           SpatialIndexKind kind)
    : kind_(kind) {
  boxes_.reserve(objects.size());
  for (const auto& obj : objects) boxes_.push_back(&obj.region());
  Build();
}

SpatialIndex::SpatialIndex(std::vector<uncertain::Box> boxes,
                           SpatialIndexKind kind)
    : kind_(kind), owned_(std::move(boxes)) {
  boxes_.reserve(owned_.size());
  for (const auto& b : owned_) boxes_.push_back(&b);
  Build();
}

const char* SpatialIndex::kind_name() const {
  return kind_ == SpatialIndexKind::kRTree ? "rtree" : "grid";
}

void SpatialIndex::Build() {
  const std::size_t n = boxes_.size();
  dims_ = n == 0 ? 0 : boxes_[0]->dims();
  centers_.resize(n * dims_);
  for (std::size_t i = 0; i < n; ++i) {
    assert(boxes_[i]->dims() == dims_);
    const auto c = boxes_[i]->Center();
    std::copy(c.begin(), c.end(), centers_.begin() + i * dims_);
  }
  if (kind_ == SpatialIndexKind::kRTree) {
    BuildRTree();
  } else {
    BuildGrid();
  }
}

uncertain::Box SpatialIndex::MbrOfItems(std::size_t lo, std::size_t hi) const {
  std::vector<double> lower(box(item_order_[lo]).lower());
  std::vector<double> upper(box(item_order_[lo]).upper());
  for (std::size_t p = lo + 1; p < hi; ++p) {
    const uncertain::Box& b = box(item_order_[p]);
    for (std::size_t j = 0; j < dims_; ++j) {
      lower[j] = std::min(lower[j], b.lower()[j]);
      upper[j] = std::max(upper[j], b.upper()[j]);
    }
  }
  return uncertain::Box(std::move(lower), std::move(upper));
}

uncertain::Box SpatialIndex::MbrOfNodes(std::size_t lo, std::size_t hi) const {
  std::vector<double> lower(nodes_[lo].mbr.lower());
  std::vector<double> upper(nodes_[lo].mbr.upper());
  for (std::size_t p = lo + 1; p < hi; ++p) {
    const uncertain::Box& b = nodes_[p].mbr;
    for (std::size_t j = 0; j < dims_; ++j) {
      lower[j] = std::min(lower[j], b.lower()[j]);
      upper[j] = std::max(upper[j], b.upper()[j]);
    }
  }
  return uncertain::Box(std::move(lower), std::move(upper));
}

void SpatialIndex::StrPartition(std::size_t lo, std::size_t hi,
                                std::size_t dim) {
  const std::size_t count = hi - lo;
  if (count <= kLeafCap || dims_ == 0) return;
  // Sort the range by region center along this dimension (object id breaks
  // ties, so the packing is deterministic).
  std::sort(item_order_.begin() + static_cast<std::ptrdiff_t>(lo),
            item_order_.begin() + static_cast<std::ptrdiff_t>(hi),
            [&](std::size_t a, std::size_t b) {
              const double ca = centers_[a * dims_ + dim];
              const double cb = centers_[b * dims_ + dim];
              if (ca != cb) return ca < cb;
              return a < b;
            });
  const std::size_t remaining = dims_ - std::min(dim, dims_ - 1);
  if (remaining <= 1) return;  // last dimension: sorted chunks become leaves
  // STR slab count: the (remaining)-th root of the leaf count, so each slab
  // recursively tiles the next dimension with the same leaf budget.
  const std::size_t leaves = (count + kLeafCap - 1) / kLeafCap;
  std::size_t slabs = static_cast<std::size_t>(std::ceil(
      std::pow(static_cast<double>(leaves), 1.0 / static_cast<double>(remaining))));
  slabs = std::clamp<std::size_t>(slabs, 1, leaves);
  // Slab sizes are multiples of the leaf capacity so leaves never straddle
  // slab boundaries.
  std::size_t per_slab = (count + slabs - 1) / slabs;
  per_slab = ((per_slab + kLeafCap - 1) / kLeafCap) * kLeafCap;
  for (std::size_t s = lo; s < hi; s += per_slab) {
    StrPartition(s, std::min(hi, s + per_slab), dim + 1);
  }
}

void SpatialIndex::BuildRTree() {
  const std::size_t n = boxes_.size();
  item_order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) item_order_[i] = i;
  if (n == 0) return;
  StrPartition(0, n, 0);
  // Pack leaves over consecutive runs of the STR order.
  for (std::size_t lo = 0; lo < n; lo += kLeafCap) {
    Node nd;
    nd.leaf = true;
    nd.begin = lo;
    nd.end = std::min(n, lo + kLeafCap);
    nd.mbr = MbrOfItems(nd.begin, nd.end);
    nodes_.push_back(std::move(nd));
  }
  // Build internal levels bottom-up; each groups a consecutive run of the
  // level below, so child ranges are plain index intervals.
  std::size_t level_begin = 0;
  std::size_t level_end = nodes_.size();
  while (level_end - level_begin > 1) {
    for (std::size_t lo = level_begin; lo < level_end; lo += kFanout) {
      Node nd;
      nd.leaf = false;
      nd.begin = lo;
      nd.end = std::min(level_end, lo + kFanout);
      nd.mbr = MbrOfNodes(nd.begin, nd.end);
      nodes_.push_back(std::move(nd));
    }
    level_begin = level_end;
    level_end = nodes_.size();
  }
  root_ = nodes_.size() - 1;
}

void SpatialIndex::BuildGrid() {
  const std::size_t n = boxes_.size();
  cell_offsets_.assign(1, 0);
  if (n == 0 || dims_ == 0) return;
  // Resolution: ~2 * n^(1/m) cells per dimension, clamped per dimension and
  // capped in total. Oversampling the one-item-per-cell density by 2x keeps
  // the mandatory +-1-cell window margin (the floating-point safety border
  // in ForEachWindowCell) small relative to the query radius — at exactly
  // n^(1/m) the margin cells dominate every narrow range query.
  std::size_t res = static_cast<std::size_t>(std::llround(
      2.0 *
      std::pow(static_cast<double>(n), 1.0 / static_cast<double>(dims_))));
  res = std::clamp<std::size_t>(res, 1, 64);
  grid_res_.assign(dims_, res);
  for (;;) {
    std::size_t cells = 1;
    bool all_one = true;
    for (std::size_t r : grid_res_) {
      cells *= r;
      all_one = all_one && r == 1;
    }
    if (cells <= kMaxGridCells || all_one) break;
    for (auto& r : grid_res_) r = std::max<std::size_t>(1, r / 2);
  }
  grid_origin_.assign(dims_, 0.0);
  grid_width_.assign(dims_, 1.0);
  grid_max_half_.assign(dims_, 0.0);
  for (std::size_t j = 0; j < dims_; ++j) {
    double lo = kInf;
    double hi = -kInf;
    double max_half = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double c = centers_[i * dims_ + j];
      lo = std::min(lo, c);
      hi = std::max(hi, c);
      max_half = std::max(
          max_half, 0.5 * (boxes_[i]->upper()[j] - boxes_[i]->lower()[j]));
    }
    grid_origin_[j] = lo;
    grid_max_half_[j] = max_half;
    const double width = (hi - lo) / static_cast<double>(grid_res_[j]);
    grid_width_[j] = width > 0.0 && std::isfinite(width) ? width : 1.0;
  }
  std::size_t cells = 1;
  for (std::size_t r : grid_res_) cells *= r;
  // CSR bucketing by center cell (counts, prefix sum, fill in id order so
  // each cell's items are ascending).
  std::vector<std::size_t> counts(cells, 0);
  std::vector<std::size_t> item_cell(n);
  for (std::size_t i = 0; i < n; ++i) {
    item_cell[i] = CellOf(i);
    ++counts[item_cell[i]];
  }
  cell_offsets_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) {
    cell_offsets_[c + 1] = cell_offsets_[c] + counts[c];
  }
  cell_items_.resize(n);
  std::vector<std::size_t> cursor(cell_offsets_.begin(),
                                  cell_offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    cell_items_[cursor[item_cell[i]]++] = i;
  }
}

std::size_t SpatialIndex::CellOf(std::size_t item) const {
  std::size_t flat = 0;
  std::size_t stride = 1;
  for (std::size_t j = 0; j < dims_; ++j) {
    const double v =
        (centers_[item * dims_ + j] - grid_origin_[j]) / grid_width_[j];
    auto idx = static_cast<std::ptrdiff_t>(std::floor(v));
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(grid_res_[j]) - 1);
    flat += static_cast<std::size_t>(idx) * stride;
    stride *= grid_res_[j];
  }
  return flat;
}

void SpatialIndex::ForEachWindowCell(
    const uncertain::Box& query, double radius,
    const std::function<void(std::size_t)>& fn) const {
  // Any item whose region is within `radius` of the query box has, per
  // dimension, its center within radius + its own half-extent of the query
  // interval. Expanding by the dataset-wide max half-extent plus one cell
  // of margin (absorbing floor/rounding) therefore over-covers the exact
  // match set; the caller still applies the exact per-item test.
  std::vector<std::ptrdiff_t> lo_cell(dims_);
  std::vector<std::ptrdiff_t> hi_cell(dims_);
  for (std::size_t j = 0; j < dims_; ++j) {
    const double expand = radius + grid_max_half_[j];
    const double lo_v = query.lower()[j] - expand;
    const double hi_v = query.upper()[j] + expand;
    const auto last = static_cast<std::ptrdiff_t>(grid_res_[j]) - 1;
    lo_cell[j] = std::clamp<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(
            std::floor((lo_v - grid_origin_[j]) / grid_width_[j])) -
            1,
        0, last);
    hi_cell[j] = std::clamp<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(
            std::floor((hi_v - grid_origin_[j]) / grid_width_[j])) +
            1,
        0, last);
  }
  // Odometer walk over the cell window.
  std::vector<std::ptrdiff_t> idx(lo_cell);
  for (;;) {
    std::size_t flat = 0;
    std::size_t stride = 1;
    for (std::size_t j = 0; j < dims_; ++j) {
      flat += static_cast<std::size_t>(idx[j]) * stride;
      stride *= grid_res_[j];
    }
    fn(flat);
    std::size_t j = 0;
    for (; j < dims_; ++j) {
      if (++idx[j] <= hi_cell[j]) break;
      idx[j] = lo_cell[j];
    }
    if (j == dims_) break;
  }
}

void SpatialIndex::QueryWithin(const uncertain::Box& query, double threshold2,
                               std::size_t exclude_id,
                               std::vector<std::size_t>* out) const {
  out->clear();
  if (boxes_.empty()) return;
  int64_t tests = 0;
  if (kind_ == SpatialIndexKind::kRTree) {
    std::vector<std::size_t> stack;
    stack.push_back(root_);
    while (!stack.empty()) {
      const Node& nd = nodes_[stack.back()];
      stack.pop_back();
      ++tests;
      if (nd.mbr.MinSquaredDistanceTo(query) > threshold2) continue;
      if (nd.leaf) {
        for (std::size_t p = nd.begin; p < nd.end; ++p) {
          const std::size_t id = item_order_[p];
          if (id == exclude_id) continue;
          ++tests;
          if (box(id).MinSquaredDistanceTo(query) <= threshold2) {
            out->push_back(id);
          }
        }
      } else {
        for (std::size_t c = nd.begin; c < nd.end; ++c) stack.push_back(c);
      }
    }
  } else {
    const double radius = threshold2 > 0.0 ? std::sqrt(threshold2) : 0.0;
    ForEachWindowCell(query, radius, [&](std::size_t cell) {
      for (std::size_t p = cell_offsets_[cell]; p < cell_offsets_[cell + 1];
           ++p) {
        const std::size_t id = cell_items_[p];
        if (id == exclude_id) continue;
        ++tests;
        if (box(id).MinSquaredDistanceTo(query) <= threshold2) {
          out->push_back(id);
        }
      }
    });
  }
  std::sort(out->begin(), out->end());
  bound_tests_.fetch_add(tests, std::memory_order_relaxed);
}

double SpatialIndex::KthMaxSquaredDistance(const uncertain::Box& query,
                                           std::size_t rank,
                                           std::size_t exclude_id) const {
  if (rank == 0) return 0.0;
  int64_t tests = 0;
  // Max-heap of the `rank` smallest max-distance bounds seen so far; its
  // top converges to the answer.
  std::priority_queue<double> worst;
  if (kind_ == SpatialIndexKind::kRTree && !nodes_.empty()) {
    // Best-first by node MBR min distance: a node farther than the current
    // rank-th bound cannot contain an improving item (every item's max
    // distance dominates its node's min distance).
    using Entry = std::pair<double, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
    ++tests;
    pq.push({nodes_[root_].mbr.MinSquaredDistanceTo(query), root_});
    while (!pq.empty()) {
      const auto [d2, ni] = pq.top();
      pq.pop();
      if (worst.size() == rank && d2 > worst.top()) break;
      const Node& nd = nodes_[ni];
      if (nd.leaf) {
        for (std::size_t p = nd.begin; p < nd.end; ++p) {
          const std::size_t id = item_order_[p];
          if (id == exclude_id) continue;
          ++tests;
          const double mx = box(id).MaxSquaredDistanceTo(query);
          if (worst.size() < rank) {
            worst.push(mx);
          } else if (mx < worst.top()) {
            worst.pop();
            worst.push(mx);
          }
        }
      } else {
        for (std::size_t c = nd.begin; c < nd.end; ++c) {
          ++tests;
          const double cd = nodes_[c].mbr.MinSquaredDistanceTo(query);
          if (worst.size() < rank || cd <= worst.top()) pq.push({cd, c});
        }
      }
    }
  } else {
    // Grid cells give no useful max-distance bound, so rank queries scan
    // flat (still one O(m) bound per item, no kernel work).
    for (std::size_t id = 0; id < boxes_.size(); ++id) {
      if (id == exclude_id) continue;
      ++tests;
      const double mx = box(id).MaxSquaredDistanceTo(query);
      if (worst.size() < rank) {
        worst.push(mx);
      } else if (mx < worst.top()) {
        worst.pop();
        worst.push(mx);
      }
    }
  }
  bound_tests_.fetch_add(tests, std::memory_order_relaxed);
  return worst.size() == rank ? worst.top() : kInf;
}

void SpatialIndex::NearestCandidates(const uncertain::Box& query,
                                     std::vector<std::size_t>* out) const {
  out->clear();
  if (boxes_.empty()) return;
  int64_t tests = 0;
  double best_ub = kInf;  // smallest max squared distance over all boxes
  if (kind_ == SpatialIndexKind::kRTree) {
    using Entry = std::pair<double, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
    ++tests;
    pq.push({nodes_[root_].mbr.MinSquaredDistanceTo(query), root_});
    while (!pq.empty()) {
      const auto [d2, ni] = pq.top();
      pq.pop();
      if (d2 > best_ub) break;
      const Node& nd = nodes_[ni];
      if (nd.leaf) {
        for (std::size_t p = nd.begin; p < nd.end; ++p) {
          ++tests;
          best_ub =
              std::min(best_ub, box(item_order_[p]).MaxSquaredDistanceTo(query));
        }
      } else {
        for (std::size_t c = nd.begin; c < nd.end; ++c) {
          ++tests;
          const double cd = nodes_[c].mbr.MinSquaredDistanceTo(query);
          if (cd <= best_ub) pq.push({cd, c});
        }
      }
    }
  } else {
    for (std::size_t id = 0; id < boxes_.size(); ++id) {
      ++tests;
      best_ub = std::min(best_ub, box(id).MaxSquaredDistanceTo(query));
    }
  }
  bound_tests_.fetch_add(tests, std::memory_order_relaxed);
  const double threshold2 = best_ub * (1.0 + kArgminSlack) + 1e-300;
  QueryWithin(query, threshold2, boxes_.size(), out);
}

void SpatialIndex::QueryNearest(std::span<const double> point, std::size_t k,
                                std::vector<std::size_t>* out) const {
  out->clear();
  if (k == 0 || boxes_.empty()) return;
  int64_t tests = 0;
  using Entry = std::pair<double, std::size_t>;
  // Max-heap of the k best (distance, id) pairs; lexicographic order makes
  // ties deterministic toward the lower id.
  std::priority_queue<Entry> best;
  if (kind_ == SpatialIndexKind::kRTree) {
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
    ++tests;
    pq.push({nodes_[root_].mbr.MinSquaredDistanceTo(point), root_});
    while (!pq.empty()) {
      const auto [d2, ni] = pq.top();
      pq.pop();
      if (best.size() == k && d2 > best.top().first) break;
      const Node& nd = nodes_[ni];
      if (nd.leaf) {
        for (std::size_t p = nd.begin; p < nd.end; ++p) {
          const std::size_t id = item_order_[p];
          ++tests;
          const Entry e{box(id).MinSquaredDistanceTo(point), id};
          if (best.size() < k) {
            best.push(e);
          } else if (e < best.top()) {
            best.pop();
            best.push(e);
          }
        }
      } else {
        for (std::size_t c = nd.begin; c < nd.end; ++c) {
          ++tests;
          const double cd = nodes_[c].mbr.MinSquaredDistanceTo(point);
          if (best.size() < k || cd <= best.top().first) pq.push({cd, c});
        }
      }
    }
  } else {
    for (std::size_t id = 0; id < boxes_.size(); ++id) {
      ++tests;
      const Entry e{box(id).MinSquaredDistanceTo(point), id};
      if (best.size() < k) {
        best.push(e);
      } else if (e < best.top()) {
        best.pop();
        best.push(e);
      }
    }
  }
  bound_tests_.fetch_add(tests, std::memory_order_relaxed);
  out->resize(best.size());
  for (std::size_t p = best.size(); p-- > 0;) {
    (*out)[p] = best.top().second;
    best.pop();
  }
}

}  // namespace uclust::clustering
