// Spatial index over uncertain-region boxes: candidate-SET pruning for the
// pairwise sweeps.
//
// PairwiseBoundIndex (pruning.h) skips a pair only after testing its bound,
// so a pruned FDBSCAN sweep still costs O(n^2) bound tests. The structures
// here answer the same question — "which objects' regions could possibly be
// within eps of this one?" — as a range query over the per-object domain
// boxes, touching O(log n + output) boxes instead of all n:
//
//   kRTree — a bulk-loaded STR-packed R-tree: items are sorted by region
//            center with the Sort-Tile-Recursive sweep (cycling split
//            dimensions), packed into fixed-capacity leaves, and the
//            internal levels are built bottom-up over consecutive node
//            runs. Queries descend only into nodes whose MBR could contain
//            a match.
//   kGrid  — a uniform grid over region centers (low dimensions): items are
//            bucketed by center cell, and a query scans the cell window
//            covering the query box expanded by the search radius plus the
//            largest region half-extent, then applies the exact per-item
//            test. The window over-covers by construction (plus one cell of
//            margin for floating-point safety), so no match is ever missed.
//
// Exactness contract: every query applies the exact Box bound
// (Box::MinSquaredDistanceTo / MaxSquaredDistanceTo) to each surviving
// item, and tree/grid traversal only ever discards items whose bound
// provably exceeds the query threshold — node MBRs contain their leaves'
// boxes, so the computed node lower bound never exceeds a computed leaf
// bound (min/max coordinate folding is exact and the per-dimension
// gap/square/sum chain is monotone under rounding). The result of
// QueryWithin is therefore EXACTLY the brute-force set
// { j : boxes[j].MinSquaredDistanceTo(query) <= threshold2 }, independent
// of the structure, which is what lets the indexed sweeps stay bit-identical
// to the all-pairs ones (see docs/spatial-index.md).
//
// Thread-safety: building is serial; all queries are const and safe to call
// concurrently (the bound-test counter is atomic).
#ifndef UCLUST_CLUSTERING_SPATIAL_INDEX_H_
#define UCLUST_CLUSTERING_SPATIAL_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "uncertain/box.h"
#include "uncertain/uncertain_object.h"

namespace uclust::clustering {

/// Concrete index structure (what a built SpatialIndex runs on).
enum class SpatialIndexKind { kRTree, kGrid };

/// The EngineConfig::spatial_index knob values: a structure request plus
/// "auto" (pick by dimensionality) and "off" (all-pairs bound sweeps).
enum class SpatialIndexChoice { kAuto, kRTree, kGrid, kOff };

/// Parses "auto" / "rtree" / "grid" / "off". Returns false (out untouched)
/// for anything else — the grammar ApplyEngineKnob validates.
bool SpatialIndexChoiceFromString(const std::string& name,
                                  SpatialIndexChoice* out);

/// Canonical knob spelling of a choice.
const char* SpatialIndexChoiceName(SpatialIndexChoice choice);

/// Resolves a buildable structure from a non-"off" choice: "auto" picks the
/// grid for low dimensions (m <= 3, where cell windows stay compact) and
/// the R-tree otherwise (cell counts explode exponentially with m; the
/// measured crossover is in docs/spatial-index.md).
SpatialIndexKind ResolveSpatialIndexKind(SpatialIndexChoice choice,
                                         std::size_t dims);

/// A bulk-loaded spatial index over a fixed set of axis-aligned boxes.
class SpatialIndex {
 public:
  /// Index over the objects' domain regions (ids = object indices). The
  /// objects must outlive the index.
  SpatialIndex(std::span<const uncertain::UncertainObject> objects,
               SpatialIndexKind kind);
  /// Index over an owned box list (ids = positions in `boxes`) — the
  /// per-iteration medoid index.
  SpatialIndex(std::vector<uncertain::Box> boxes, SpatialIndexKind kind);

  SpatialIndex(const SpatialIndex&) = delete;
  SpatialIndex& operator=(const SpatialIndex&) = delete;

  /// Number of indexed boxes.
  std::size_t size() const { return boxes_.size(); }
  /// The structure in effect.
  SpatialIndexKind kind() const { return kind_; }
  /// Lower-case display name ("rtree", "grid").
  const char* kind_name() const;

  /// Ascending ids j != exclude_id with
  /// boxes[j].MinSquaredDistanceTo(query) <= threshold2 — exactly the
  /// brute-force set (callers pass the slacked eps^2 threshold, e.g.
  /// SlackedSquaredThreshold in pruning.h). Pass exclude_id >= size() to
  /// exclude nothing. `out` is cleared first.
  void QueryWithin(const uncertain::Box& query, double threshold2,
                   std::size_t exclude_id,
                   std::vector<std::size_t>* out) const;

  /// The `rank`-th smallest (1-based) value of
  /// boxes[j].MaxSquaredDistanceTo(query) over j != exclude_id: the squared
  /// radius that provably captures at least `rank` indexed boxes entirely.
  /// Returns +infinity when fewer than `rank` boxes qualify. The FOPTICS
  /// core-distance sweeps pair this with QueryWithin to bound the MinPts-th
  /// neighbor search.
  double KthMaxSquaredDistance(const uncertain::Box& query, std::size_t rank,
                               std::size_t exclude_id) const;

  /// Candidate set for "which indexed box minimizes a distance bounded by
  /// [min, max] box distance" (the UK-medoids assignment argmin): ascending
  /// ids whose min squared distance to `query` is within a slacked margin
  /// of the smallest max squared distance. Every id whose exact distance
  /// could equal the minimum is included; excluded ids are provably
  /// strictly farther. Never empty for a non-empty index.
  void NearestCandidates(const uncertain::Box& query,
                         std::vector<std::size_t>* out) const;

  /// The k indexed boxes nearest to `point` by Box::MinSquaredDistanceTo
  /// (ties toward the lower id), ordered by (distance, id) — the candidate
  /// query of a future uncertain k-center pass. Returns all ids when
  /// k >= size().
  void QueryNearest(std::span<const double> point, std::size_t k,
                    std::vector<std::size_t>* out) const;

  /// Box-distance bound computations performed by queries so far (node MBR
  /// tests plus per-item tests) — the cost an indexed sweep pays where the
  /// all-pairs sweep pays n*(n-1)/2 pair bounds. Monotone; exact across
  /// concurrent queries.
  int64_t bound_tests() const {
    return bound_tests_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    uncertain::Box mbr;
    std::size_t begin = 0;  // leaf: item_order_ range; else child node range
    std::size_t end = 0;
    bool leaf = true;
  };

  void Build();
  void BuildRTree();
  void BuildGrid();
  void StrPartition(std::size_t lo, std::size_t hi, std::size_t dim);
  uncertain::Box MbrOfItems(std::size_t lo, std::size_t hi) const;
  uncertain::Box MbrOfNodes(std::size_t lo, std::size_t hi) const;
  std::size_t CellOf(std::size_t item) const;
  void ForEachWindowCell(const uncertain::Box& query, double radius,
                         const std::function<void(std::size_t)>& fn) const;

  const uncertain::Box& box(std::size_t id) const { return *boxes_[id]; }

  SpatialIndexKind kind_ = SpatialIndexKind::kRTree;
  std::vector<uncertain::Box> owned_;      // set by the box-list constructor
  std::vector<const uncertain::Box*> boxes_;
  std::size_t dims_ = 0;
  std::vector<double> centers_;  // n x m region centers (build + bucketing)
  mutable std::atomic<int64_t> bound_tests_{0};

  // kRTree state: items permuted into leaf order; nodes stored level by
  // level (leaves first, root last), children of an internal node are a
  // consecutive run of the level below.
  std::vector<std::size_t> item_order_;
  std::vector<Node> nodes_;
  std::size_t root_ = 0;

  // kGrid state: per-dimension geometry plus CSR cell buckets.
  std::vector<std::size_t> grid_res_;     // cells per dimension
  std::vector<double> grid_origin_;       // lowest center per dimension
  std::vector<double> grid_width_;        // cell width per dimension (> 0)
  std::vector<double> grid_max_half_;     // largest region half-extent
  std::vector<std::size_t> cell_offsets_; // CSR offsets, cells + 1
  std::vector<std::size_t> cell_items_;   // item ids bucketed by cell
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_SPATIAL_INDEX_H_
