#include "clustering/uahc.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "clustering/pairwise_store.h"
#include "common/stopwatch.h"

namespace uclust::clustering {

ClusteringResult Uahc::Cluster(const data::UncertainDataset& data, int k,
                               uint64_t /*seed*/) const {
  const std::size_t n = data.size();
  assert(k >= 1 && n >= static_cast<std::size_t>(k));
  ClusteringResult result;
  result.k_requested = k;

  // Offline: the pairwise ED^ store (closed form, Lemma 3). The dense
  // backend materializes the classic full table here; budgeted backends
  // recompute singleton-singleton rows on demand during the merge loop.
  common::Stopwatch offline;
  const kernels::PairwiseKernel kernel =
      kernels::PairwiseKernel::ClosedFormED2(data.objects());
  PairwiseStore store(engine(), kernel);
  store.Warm();
  const double offline_ms = offline.ElapsedMs();

  common::Stopwatch online;
  // NN-chain agglomeration with the UPGMA Lance-Williams update:
  // d(u, i+j) = (|i| d(u,i) + |j| d(u,j)) / (|i| + |j|).
  //
  // NN-chain performs merges in a different (non-monotone-height) order than
  // the classic greedy algorithm, but produces the same dendrogram. The full
  // dendrogram is therefore built first (n - 1 recorded merges), and the
  // k-cluster partition is obtained by replaying the n - k lowest-height
  // merges — exactly the greedy UPGMA cut.
  //
  // Distance bookkeeping: base (singleton-singleton) ED^ values are read
  // straight from the store; only clusters that are merge products carry an
  // explicit distance row, kept in the `merged` overlay and updated by the
  // Lance-Williams recurrence exactly as the classic in-place table was.
  // The value sequence is therefore bit-identical to the dense-table
  // algorithm on every backend, while table memory stays at one overlay row
  // per alive non-singleton cluster.
  struct Merge {
    std::size_t a;
    std::size_t b;
    double height;
  };
  std::vector<Merge> merges;
  merges.reserve(n - 1);
  std::vector<bool> alive(n, true);
  std::vector<std::size_t> sizes(n, 1);
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t remaining = n;

  // Overlay rows of merge-product clusters. mrow[u] points at u's row (the
  // vector buffers are heap-stable); nullptr marks a singleton whose row is
  // the store's base row. Symmetry invariant: whenever u and v both carry
  // overlay rows, mrow[u][v] == mrow[v][u] — exactly the mirrored writes of
  // the classic in-place table.
  std::unordered_map<std::size_t, std::vector<double>> merged;
  std::vector<double*> mrow(n, nullptr);

  std::vector<double> near_row;
  auto nearest = [&](std::size_t u) {
    std::size_t best = n;
    double best_d = std::numeric_limits<double>::infinity();
    const double* row_u = mrow[u];
    if (row_u == nullptr) {
      // Zero-copy when materialized; otherwise a single-row fetch (NN-chain
      // tips have no tile locality, so faulting whole tiles would multiply
      // kernel work by tile_rows). Chain tips are revisited as the chain
      // grows, so under the warm-row policy the fetch is retained and the
      // revisits become warm hits. The span stays valid through this scan:
      // nothing below touches the store.
      const std::span<const double> resident = store.ResidentRow(u);
      if (!resident.empty()) {
        row_u = resident.data();
      } else {
        store.GatherRow(u, &near_row);
        row_u = near_row.data();
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u || !alive[v]) continue;
      const double d = !mrow[u] && mrow[v] ? mrow[v][u] : row_u[v];
      if (d < best_d) {
        best_d = d;
        best = v;
      }
    }
    return std::pair<std::size_t, double>(best, best_d);
  };

  std::vector<double> row_a(n, 0.0);
  std::vector<double> row_b(n, 0.0);
  while (remaining > 1) {
    // One merge round = one warm-row generation: rows of clusters still on
    // the chain stay warm (base singleton rows never change — merges only
    // retire indices), rows untouched for a while age out.
    store.BeginGeneration();
    if (chain.empty()) {
      for (std::size_t u = 0; u < n; ++u) {
        if (alive[u]) {
          chain.push_back(u);
          break;
        }
      }
    }
    // Grow the chain until a reciprocal nearest-neighbor pair appears.
    for (;;) {
      const std::size_t tip = chain.back();
      const auto [nn, nn_d] = nearest(tip);
      assert(nn != n);
      if (chain.size() >= 2 && nn == chain[chain.size() - 2]) {
        // Reciprocal pair (tip, nn): merge into `nn` (the earlier element).
        const std::size_t a = nn;
        const std::size_t b = tip;
        chain.pop_back();
        chain.pop_back();
        merges.push_back({a, b, nn_d});
        const double sa = static_cast<double>(sizes[a]);
        const double sb = static_cast<double>(sizes[b]);
        // Snapshot both operand rows before touching the overlay (b's
        // overlay row is about to be dropped). A snapshot of a singleton
        // operand is its base row; entries against merged u are patched
        // from u's overlay row below.
        const bool a_was_merged = mrow[a] != nullptr;
        const bool b_was_merged = mrow[b] != nullptr;
        if (a_was_merged) {
          std::copy_n(mrow[a], n, row_a.begin());
        } else {
          store.GatherRow(a, &row_a);
        }
        if (b_was_merged) {
          std::copy_n(mrow[b], n, row_b.begin());
        } else {
          store.GatherRow(b, &row_b);
        }
        if (!a_was_merged) {
          mrow[a] = merged.emplace(a, std::vector<double>(n, 0.0))
                        .first->second.data();
        }
        for (std::size_t u = 0; u < n; ++u) {
          if (!alive[u] || u == a || u == b) continue;
          const double dua =
              mrow[u] && !a_was_merged ? mrow[u][a] : row_a[u];
          const double dub =
              mrow[u] && !b_was_merged ? mrow[u][b] : row_b[u];
          const double d = (sa * dua + sb * dub) / (sa + sb);
          mrow[a][u] = d;
          if (mrow[u]) mrow[u][a] = d;
        }
        merged.erase(b);
        mrow[b] = nullptr;
        sizes[a] += sizes[b];
        alive[b] = false;
        --remaining;
        break;
      }
      chain.push_back(nn);
    }
  }

  // Cut: apply the n - k lowest merges through a union-find.
  std::stable_sort(merges.begin(), merges.end(),
                   [](const Merge& x, const Merge& y) {
                     return x.height < y.height;
                   });
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const std::size_t cut = n - static_cast<std::size_t>(k);
  for (std::size_t i = 0; i < cut; ++i) {
    parent[find(merges[i].a)] = find(merges[i].b);
  }
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(find(i));
  }
  result.labels = RelabelConsecutive(labels);
  result.clusters_found = CountClusters(result.labels);
  result.iterations = static_cast<int>(cut);
  result.objective = std::numeric_limits<double>::quiet_NaN();
  result.online_ms = online.ElapsedMs();
  result.offline_ms = offline_ms;
  result.pairwise_backend = PairwiseBackendName(store.backend());
  result.table_bytes_peak = store.table_bytes_peak();
  result.pair_evaluations = store.evaluations();
  result.tile_warm_hits = store.warm_hits();
  result.tile_warm_misses = store.warm_misses();
  return result;
}

}  // namespace uclust::clustering
