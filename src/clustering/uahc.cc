#include "clustering/uahc.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <numeric>

#include "clustering/kernels.h"
#include "common/stopwatch.h"

namespace uclust::clustering {

ClusteringResult Uahc::Cluster(const data::UncertainDataset& data, int k,
                               uint64_t /*seed*/) const {
  const std::size_t n = data.size();
  assert(k >= 1 && n >= static_cast<std::size_t>(k));
  ClusteringResult result;
  result.k_requested = k;

  // Offline: pairwise ED^ table (closed form, Lemma 3), computed in
  // parallel over row blocks through the shared kernel.
  common::Stopwatch offline;
  std::vector<double> dist;
  kernels::PairwiseClosedFormED(engine(), data.objects(), &dist);
  const double offline_ms = offline.ElapsedMs();

  common::Stopwatch online;
  // NN-chain agglomeration with the UPGMA Lance-Williams update:
  // d(u, i+j) = (|i| d(u,i) + |j| d(u,j)) / (|i| + |j|).
  //
  // NN-chain performs merges in a different (non-monotone-height) order than
  // the classic greedy algorithm, but produces the same dendrogram. The full
  // dendrogram is therefore built first (n - 1 recorded merges), and the
  // k-cluster partition is obtained by replaying the n - k lowest-height
  // merges — exactly the greedy UPGMA cut.
  struct Merge {
    std::size_t a;
    std::size_t b;
    double height;
  };
  std::vector<Merge> merges;
  merges.reserve(n - 1);
  std::vector<bool> alive(n, true);
  std::vector<std::size_t> sizes(n, 1);
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t remaining = n;

  auto nearest = [&](std::size_t u) {
    std::size_t best = n;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u || !alive[v]) continue;
      const double d = dist[u * n + v];
      if (d < best_d) {
        best_d = d;
        best = v;
      }
    }
    return std::pair<std::size_t, double>(best, best_d);
  };

  while (remaining > 1) {
    if (chain.empty()) {
      for (std::size_t u = 0; u < n; ++u) {
        if (alive[u]) {
          chain.push_back(u);
          break;
        }
      }
    }
    // Grow the chain until a reciprocal nearest-neighbor pair appears.
    for (;;) {
      const std::size_t tip = chain.back();
      const auto [nn, nn_d] = nearest(tip);
      assert(nn != n);
      if (chain.size() >= 2 && nn == chain[chain.size() - 2]) {
        // Reciprocal pair (tip, nn): merge into `nn` (the earlier element).
        const std::size_t a = nn;
        const std::size_t b = tip;
        chain.pop_back();
        chain.pop_back();
        merges.push_back({a, b, nn_d});
        const double sa = static_cast<double>(sizes[a]);
        const double sb = static_cast<double>(sizes[b]);
        for (std::size_t u = 0; u < n; ++u) {
          if (!alive[u] || u == a || u == b) continue;
          const double d =
              (sa * dist[u * n + a] + sb * dist[u * n + b]) / (sa + sb);
          dist[u * n + a] = d;
          dist[a * n + u] = d;
        }
        sizes[a] += sizes[b];
        alive[b] = false;
        --remaining;
        break;
      }
      chain.push_back(nn);
    }
  }

  // Cut: apply the n - k lowest merges through a union-find.
  std::stable_sort(merges.begin(), merges.end(),
                   [](const Merge& x, const Merge& y) {
                     return x.height < y.height;
                   });
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const std::size_t cut = n - static_cast<std::size_t>(k);
  for (std::size_t i = 0; i < cut; ++i) {
    parent[find(merges[i].a)] = find(merges[i].b);
  }
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(find(i));
  }
  result.labels = RelabelConsecutive(labels);
  result.clusters_found = CountClusters(result.labels);
  result.iterations = static_cast<int>(cut);
  result.objective = std::numeric_limits<double>::quiet_NaN();
  result.online_ms = online.ElapsedMs();
  result.offline_ms = offline_ms;
  return result;
}

}  // namespace uclust::clustering
