// U-AHC (Gullo, Ponti, Tagarelli & Greco, ICDM 2008): agglomerative
// hierarchical clustering of uncertain objects.
//
// This implementation uses group-average (UPGMA) linkage over the closed-
// form expected squared distance ED^ (Lemma 3) with the NN-chain algorithm,
// preserving the O(n^2 m)-time cost class and the merge behaviour the
// paper's efficiency study exercises; the original's information-theoretic
// dissimilarity is approximated by ED^ (see docs/algorithms.md).
// The dendrogram is cut when k clusters remain.
//
// Memory model: base ED^ values are read through clustering::PairwiseStore
// (dense / tiled / on-the-fly, selected by EngineConfig::
// memory_budget_bytes), and Lance-Williams updates live in an overlay that
// holds one distance row per alive merge-product cluster — the classic
// dense working table exists only under the dense backend. NN-chain tip
// rows fetched on budgeted backends are retained across merge rounds by
// the store's warm-row cache (one BeginGeneration per merge). Clusterings
// are bit-identical across backends, tile policies, and thread counts.
#ifndef UCLUST_CLUSTERING_UAHC_H_
#define UCLUST_CLUSTERING_UAHC_H_

#include "clustering/clusterer.h"

namespace uclust::clustering {

/// The U-AHC algorithm (group-average over ED^).
class Uahc final : public Clusterer {
 public:
  Uahc() = default;

  std::string name() const override { return "UAHC"; }
  ClusteringResult Cluster(const data::UncertainDataset& data, int k,
                           uint64_t seed) const override;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_UAHC_H_
