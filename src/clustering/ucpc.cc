#include "clustering/ucpc.h"

#include "common/stopwatch.h"

namespace uclust::clustering {

LocalSearchOutcome Ucpc::RunOnMoments(const uncertain::MomentView& mm,
                                      int k, uint64_t seed,
                                      const Params& params,
                                      const engine::Engine& eng) {
  common::Rng rng(seed);
  LocalSearchParams ls;
  ls.objective = ObjectiveKind::kUcpc;
  ls.max_passes = params.max_passes;
  ls.init = params.init;
  return RunLocalSearch(mm, k, ls, &rng, eng);
}

ClusteringResult Ucpc::Cluster(const data::UncertainDataset& data, int k,
                               uint64_t seed) const {
  // Line 1 of Algorithm 1 (moment precomputation) is the offline phase.
  common::Stopwatch offline;
  const uncertain::MomentView mm = data.moments().view();
  const double offline_ms = offline.ElapsedMs();

  common::Stopwatch online;
  LocalSearchOutcome outcome = RunOnMoments(mm, k, seed, params_, engine());
  ClusteringResult result;
  result.online_ms = online.ElapsedMs();
  result.offline_ms = offline_ms;
  result.labels = std::move(outcome.labels);
  result.k_requested = k;
  result.clusters_found = CountClusters(result.labels);
  result.iterations = outcome.passes;
  result.objective = outcome.objective;
  return result;
}

}  // namespace uclust::clustering
