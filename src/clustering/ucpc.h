// UCPC — U-Centroid-based Partitional Clustering (Algorithm 1; the paper's
// primary contribution). Minimizes sum_C J(C) where J(C) is the sum of
// expected distances between cluster members and the cluster's U-centroid,
// computed in closed form (Theorem 3) with O(m) relocation updates
// (Corollary 1). Complexity O(I k n m) (Proposition 5).
#ifndef UCLUST_CLUSTERING_UCPC_H_
#define UCLUST_CLUSTERING_UCPC_H_

#include "clustering/clusterer.h"
#include "clustering/local_search.h"

namespace uclust::clustering {

/// The UCPC algorithm.
class Ucpc final : public Clusterer {
 public:
  /// Tuning knobs.
  struct Params {
    int max_passes = 100;  ///< Cap on relocation passes.
    /// Initial partition strategy (random, per the paper, by default).
    InitStrategy init = InitStrategy::kRandom;
  };

  Ucpc() = default;
  explicit Ucpc(const Params& params) : params_(params) {}

  std::string name() const override { return "UCPC"; }
  ClusteringResult Cluster(const data::UncertainDataset& data, int k,
                           uint64_t seed) const override;

  /// Kernel entry point for pre-packed moment statistics (used by the
  /// scalability benches; numerically identical to Cluster()). Results are
  /// bit-identical for any engine thread count.
  static LocalSearchOutcome RunOnMoments(const uncertain::MomentView& mm,
                                         int k, uint64_t seed,
                                         const Params& params,
                                         const engine::Engine& eng =
                                             engine::Engine::Serial());
  /// Kernel entry point with default parameters.
  static LocalSearchOutcome RunOnMoments(const uncertain::MomentView& mm,
                                         int k, uint64_t seed) {
    return RunOnMoments(mm, k, seed, Params());
  }

 private:
  Params params_;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_UCPC_H_
