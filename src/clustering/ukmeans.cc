#include "clustering/ukmeans.h"

#include <cassert>
#include <limits>

#include "clustering/init.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"

namespace uclust::clustering {

namespace {

// Index of the centroid (flat k x m array) nearest to `point`.
int NearestCentroid(std::span<const double> point,
                    const std::vector<double>& centroids, int k,
                    std::size_t m) {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (int c = 0; c < k; ++c) {
    const double d = common::SquaredDistance(
        point, std::span<const double>(centroids.data() + c * m, m));
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

Ukmeans::Outcome Ukmeans::RunOnMoments(const uncertain::MomentMatrix& mm,
                                       int k, uint64_t seed,
                                       const Params& params) {
  const std::size_t n = mm.size();
  const std::size_t m = mm.dims();
  assert(k >= 1 && n >= static_cast<std::size_t>(k));
  common::Rng rng(seed);

  // Seeding: k distinct objects' expected values (Forgy by default,
  // D^2-weighted when requested).
  std::vector<double> centroids = CentroidsFromObjects(
      mm, params.init == InitStrategy::kPlusPlus
              ? PlusPlusObjects(mm, k, &rng)
              : RandomDistinctObjects(n, k, &rng));

  Outcome out;
  out.labels.assign(n, -1);
  std::vector<double> sums(static_cast<std::size_t>(k) * m);
  std::vector<std::size_t> counts(k);

  for (out.iterations = 0; out.iterations < params.max_iters;
       ++out.iterations) {
    // Assignment: argmin_c ED(o, c) = argmin_c ||mu(o) - c||^2 (Eq. 8).
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const int best = NearestCentroid(mm.mean(i), centroids, k, m);
      if (best != out.labels[i]) {
        out.labels[i] = best;
        changed = true;
      }
    }
    if (!changed) break;

    // Update: centroid = average of member expected values (Eq. 7).
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      const auto mean = mm.mean(i);
      double* dst = sums.data() + static_cast<std::size_t>(out.labels[i]) * m;
      for (std::size_t j = 0; j < m; ++j) dst[j] += mean[j];
      ++counts[out.labels[i]];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with a random object's mean.
        const auto mean = mm.mean(rng.Index(n));
        std::copy(mean.begin(), mean.end(), centroids.begin() + c * m);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t j = 0; j < m; ++j) {
        centroids[static_cast<std::size_t>(c) * m + j] =
            sums[static_cast<std::size_t>(c) * m + j] * inv;
      }
    }
  }

  // Final objective: sum_o [ sigma^2(o) + ||mu(o) - c_l(o)||^2 ].
  out.objective = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = static_cast<std::size_t>(out.labels[i]);
    out.objective +=
        mm.total_variance(i) +
        common::SquaredDistance(
            mm.mean(i), std::span<const double>(centroids.data() + c * m, m));
  }
  return out;
}

ClusteringResult Ukmeans::Cluster(const data::UncertainDataset& data, int k,
                                  uint64_t seed) const {
  common::Stopwatch offline;
  const uncertain::MomentMatrix& mm = data.moments();
  const double offline_ms = offline.ElapsedMs();

  common::Stopwatch online;
  Outcome outcome = RunOnMoments(mm, k, seed, params_);
  ClusteringResult result;
  result.online_ms = online.ElapsedMs();
  result.offline_ms = offline_ms;
  result.labels = std::move(outcome.labels);
  result.k_requested = k;
  result.clusters_found = CountClusters(result.labels);
  result.iterations = outcome.iterations;
  result.objective = outcome.objective;
  return result;
}

}  // namespace uclust::clustering
