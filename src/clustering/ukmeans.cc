#include "clustering/ukmeans.h"

#include <cassert>

#include "clustering/ckmeans.h"
#include "clustering/init.h"
#include "clustering/kernels.h"
#include "common/stopwatch.h"

namespace uclust::clustering {

Ukmeans::Outcome Ukmeans::RunOnMoments(const uncertain::MomentView& mm,
                                       int k, uint64_t seed,
                                       const Params& params,
                                       const engine::Engine& eng) {
  const std::size_t n = mm.size();
  const std::size_t m = mm.dims();
  assert(k >= 1 && n >= static_cast<std::size_t>(k));
  common::Rng rng(seed);

  // Seeding: k distinct objects' expected values (Forgy by default,
  // D^2-weighted when requested).
  std::vector<double> centroids = CentroidsFromObjects(
      mm, params.init == InitStrategy::kPlusPlus
              ? PlusPlusObjects(mm, k, &rng)
              : RandomDistinctObjects(n, k, &rng));

  Outcome out;
  out.labels.assign(n, -1);
  std::vector<double> sums;
  std::vector<std::size_t> counts;

  for (out.iterations = 0; out.iterations < params.max_iters;
       ++out.iterations) {
    // Assignment: argmin_c ED(o, c) = argmin_c ||mu(o) - c||^2 (Eq. 8).
    // The direct sweep evaluates every (object, center) pair.
    out.center_distance_evals += static_cast<int64_t>(n) * k;
    if (kernels::AssignNearest(eng, mm, centroids, k, out.labels) == 0) {
      break;
    }

    // Update: centroid = average of member expected values (Eq. 7).
    kernels::SumMeansByLabel(eng, mm, out.labels, k, &sums, &counts);
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with a random object's mean.
        const auto mean = mm.mean(rng.Index(n));
        std::copy(mean.begin(), mean.end(), centroids.begin() + c * m);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t j = 0; j < m; ++j) {
        centroids[static_cast<std::size_t>(c) * m + j] =
            sums[static_cast<std::size_t>(c) * m + j] * inv;
      }
    }
  }

  // Final objective: sum_o [ sigma^2(o) + ||mu(o) - c_l(o)||^2 ].
  out.objective = kernels::AssignmentObjective(eng, mm, out.labels, centroids);
  return out;
}

ClusteringResult Ukmeans::Cluster(const data::UncertainDataset& data, int k,
                                  uint64_t seed) const {
  common::Stopwatch offline;
  const uncertain::MomentView mm = data.moments().view();
  const double offline_ms = offline.ElapsedMs();

  // Route through the CK-means fast path when either engine knob is on
  // (the default): same seeding, tie-breaking, and update order, so the
  // labels, objective, and iteration count are bit-identical to the direct
  // sweeps — only the evaluation counters differ.
  const engine::Engine& eng = engine();
  if (eng.ukmeans_ckmeans_reduction() || eng.ukmeans_bound_pruning()) {
    CkMeans::Params p;
    p.max_iters = params_.max_iters;
    p.init = params_.init;
    p.reduction = eng.ukmeans_ckmeans_reduction();
    p.bound_pruning = eng.ukmeans_bound_pruning();
    common::Stopwatch online;
    CkMeans::Outcome outcome = CkMeans::RunOnMoments(mm, k, seed, p, eng);
    ClusteringResult result;
    result.online_ms = online.ElapsedMs();
    result.offline_ms = offline_ms;
    result.labels = std::move(outcome.labels);
    result.k_requested = k;
    result.clusters_found = CountClusters(result.labels);
    result.iterations = outcome.iterations;
    result.objective = outcome.objective;
    result.center_distance_evals = outcome.center_distance_evals;
    result.bounds_skipped = outcome.bounds_skipped;
    return result;
  }

  common::Stopwatch online;
  Outcome outcome = RunOnMoments(mm, k, seed, params_, eng);
  ClusteringResult result;
  result.online_ms = online.ElapsedMs();
  result.offline_ms = offline_ms;
  result.labels = std::move(outcome.labels);
  result.k_requested = k;
  result.clusters_found = CountClusters(result.labels);
  result.iterations = outcome.iterations;
  result.objective = outcome.objective;
  result.center_distance_evals = outcome.center_distance_evals;
  return result;
}

}  // namespace uclust::clustering
