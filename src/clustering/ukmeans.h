// UK-means in the efficient formulation of Lee, Kao & Cheng (ICDM-W 2007):
// because ED(o, c) = ED(o, mu(o)) + ||c - mu(o)||^2 (Eq. 8) and the first
// term is constant per object, the algorithm reduces to Lloyd's K-means on
// the objects' expected-value vectors. Online complexity O(I k n m).
#ifndef UCLUST_CLUSTERING_UKMEANS_H_
#define UCLUST_CLUSTERING_UKMEANS_H_

#include "clustering/clusterer.h"
#include "clustering/init.h"
#include "uncertain/moments.h"

namespace uclust::clustering {

/// The (fast) UK-means algorithm.
class Ukmeans final : public Clusterer {
 public:
  /// Tuning knobs.
  struct Params {
    int max_iters = 100;  ///< Cap on Lloyd iterations.
    /// Seeding: Forgy (random distinct objects, the paper's choice) or
    /// D^2-weighted (library extension).
    InitStrategy init = InitStrategy::kRandom;
  };

  /// Outcome of the kernel (mirrors LocalSearchOutcome for uniformity).
  struct Outcome {
    std::vector<int> labels;
    double objective = 0.0;  ///< sum_C J_UK(C) = sum_o ED(o, C_UK(o)).
    int iterations = 0;
  };

  Ukmeans() = default;
  explicit Ukmeans(const Params& params) : params_(params) {}

  std::string name() const override { return "UK-means"; }
  ClusteringResult Cluster(const data::UncertainDataset& data, int k,
                           uint64_t seed) const override;

  /// Kernel entry point for pre-packed moment statistics. `eng` dispatches
  /// the assignment/update sweeps; the labels and objective are bit-identical
  /// for any engine thread count.
  static Outcome RunOnMoments(const uncertain::MomentView& mm, int k,
                              uint64_t seed, const Params& params,
                              const engine::Engine& eng =
                                  engine::Engine::Serial());
  /// Kernel entry point with default parameters.
  static Outcome RunOnMoments(const uncertain::MomentView& mm, int k,
                              uint64_t seed) {
    return RunOnMoments(mm, k, seed, Params());
  }

 private:
  Params params_;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_UKMEANS_H_
