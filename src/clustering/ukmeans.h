// UK-means in the efficient formulation of Lee, Kao & Cheng (ICDM-W 2007):
// because ED(o, c) = ED(o, mu(o)) + ||c - mu(o)||^2 (Eq. 8) and the first
// term is constant per object, the algorithm reduces to Lloyd's K-means on
// the objects' expected-value vectors.
//
// Cost model: the direct sweeps here are O(I k n m) — every (object,
// center) pair is evaluated every iteration. By default Cluster() routes
// through the CK-means fast path (clustering/ckmeans.h), which copies the
// reduced representation out of the moments once and prunes most of those
// evaluations with Hamerly/Elkan bounds, making late iterations O(n m);
// the engine knobs ukmeans_ckmeans_reduction / ukmeans_bound_pruning fall
// back to the direct sweeps below, bit for bit the same labels either way.
// RunOnMoments always runs the direct sweeps — it is the reference the
// CK-means bit-identity tests compare against.
#ifndef UCLUST_CLUSTERING_UKMEANS_H_
#define UCLUST_CLUSTERING_UKMEANS_H_

#include "clustering/clusterer.h"
#include "clustering/init.h"
#include "uncertain/moments.h"

namespace uclust::clustering {

/// The (fast) UK-means algorithm.
class Ukmeans final : public Clusterer {
 public:
  /// Tuning knobs.
  struct Params {
    int max_iters = 100;  ///< Cap on Lloyd iterations.
    /// Seeding: Forgy (random distinct objects, the paper's choice) or
    /// D^2-weighted (library extension).
    InitStrategy init = InitStrategy::kRandom;
  };

  /// Outcome of the kernel (mirrors LocalSearchOutcome for uniformity).
  struct Outcome {
    std::vector<int> labels;
    double objective = 0.0;  ///< sum_C J_UK(C) = sum_o ED(o, C_UK(o)).
    int iterations = 0;
    /// ||mu(o) - c||^2 evaluations of the assignment sweeps — exactly
    /// sweeps * n * k on this direct path, where sweeps = iterations + 1
    /// on a converged run (the final no-change sweep executes before the
    /// loop breaks) and = iterations at the max_iters cap. The baseline the
    /// CK-means bound pruning is measured against.
    int64_t center_distance_evals = 0;
  };

  Ukmeans() = default;
  explicit Ukmeans(const Params& params) : params_(params) {}

  std::string name() const override { return "UK-means"; }
  ClusteringResult Cluster(const data::UncertainDataset& data, int k,
                           uint64_t seed) const override;

  /// Kernel entry point for pre-packed moment statistics. `eng` dispatches
  /// the assignment/update sweeps; the labels and objective are bit-identical
  /// for any engine thread count.
  static Outcome RunOnMoments(const uncertain::MomentView& mm, int k,
                              uint64_t seed, const Params& params,
                              const engine::Engine& eng =
                                  engine::Engine::Serial());
  /// Kernel entry point with default parameters.
  static Outcome RunOnMoments(const uncertain::MomentView& mm, int k,
                              uint64_t seed) {
    return RunOnMoments(mm, k, seed, Params());
  }

 private:
  Params params_;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_UKMEANS_H_
