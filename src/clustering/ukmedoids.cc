#include "clustering/ukmedoids.h"

#include <cassert>
#include <limits>

#include "clustering/init.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "uncertain/expected_distance.h"
#include "uncertain/sample_cache.h"

namespace uclust::clustering {

ClusteringResult UkMedoids::Cluster(const data::UncertainDataset& data, int k,
                                    uint64_t seed) const {
  const std::size_t n = data.size();
  assert(k >= 1 && n >= static_cast<std::size_t>(k));
  common::Rng rng(seed);

  ClusteringResult result;
  result.k_requested = k;

  // Offline phase: the full pairwise ED^ table.
  common::Stopwatch offline;
  std::vector<double> dist(n * n, 0.0);
  if (params_.use_closed_form) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d =
            uncertain::ExpectedSquaredDistance(data.object(i), data.object(j));
        dist[i * n + j] = d;
        dist[j * n + i] = d;
      }
    }
  } else {
    const uncertain::SampleCache cache(data.objects(), params_.samples,
                                       params_.sample_seed);
    const int s_count = cache.samples_per_object();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double acc = 0.0;
        for (int s = 0; s < s_count; ++s) {
          acc += common::SquaredDistance(cache.SampleOf(i, s),
                                         cache.SampleOf(j, s));
        }
        const double d = acc / s_count;
        dist[i * n + j] = d;
        dist[j * n + i] = d;
        ++result.ed_evaluations;
      }
    }
  }
  result.offline_ms = offline.ElapsedMs();

  // Online phase: PAM-style alternation.
  common::Stopwatch online;
  std::vector<std::size_t> medoids = RandomDistinctObjects(n, k, &rng);
  result.labels.assign(n, -1);
  std::vector<std::vector<std::size_t>> members(k);

  for (result.iterations = 0; result.iterations < params_.max_iters;
       ++result.iterations) {
    // Assignment to the nearest medoid.
    bool changed = false;
    for (auto& mlist : members) mlist.clear();
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d = dist[i * n + medoids[c]];
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (best != result.labels[i]) {
        result.labels[i] = best;
        changed = true;
      }
      members[best].push_back(i);
    }
    if (!changed && result.iterations > 0) break;

    // Update: each cluster's medoid minimizes the total ED^ to its members.
    bool medoid_moved = false;
    for (int c = 0; c < k; ++c) {
      if (members[c].empty()) {
        medoids[c] = rng.Index(n);  // re-seed an empty cluster
        medoid_moved = true;
        continue;
      }
      std::size_t best = medoids[c];
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::size_t cand : members[c]) {
        double cost = 0.0;
        for (std::size_t other : members[c]) cost += dist[cand * n + other];
        if (cost < best_cost) {
          best_cost = cost;
          best = cand;
        }
      }
      if (best != medoids[c]) {
        medoids[c] = best;
        medoid_moved = true;
      }
    }
    if (!medoid_moved) break;
  }

  // Objective: total ED^ between objects and their medoids.
  result.objective = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.objective += dist[i * n + medoids[result.labels[i]]];
  }
  result.online_ms = online.ElapsedMs();
  result.clusters_found = CountClusters(result.labels);
  return result;
}

}  // namespace uclust::clustering
