#include "clustering/ukmedoids.h"

#include <cassert>
#include <limits>

#include "clustering/init.h"
#include "clustering/pairwise_store.h"
#include "clustering/spatial_index.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "engine/parallel_for.h"
#include "io/sample_file.h"
#include "uncertain/sample_store.h"

namespace uclust::clustering {

ClusteringResult UkMedoids::Cluster(const data::UncertainDataset& data, int k,
                                    uint64_t seed) const {
  const std::size_t n = data.size();
  assert(k >= 1 && n >= static_cast<std::size_t>(k));
  common::Rng rng(seed);
  const engine::Engine& eng = engine();

  ClusteringResult result;
  result.k_requested = k;

  // Offline phase: the pairwise ED^ store. The dense backend precomputes the
  // classic full table here; the budgeted backends defer (re)computation to
  // the per-iteration sweeps below.
  common::Stopwatch offline;
  uncertain::SampleStorePtr samples;
  if (!params_.use_closed_form) {
    samples = io::MakeSampleStoreOrResident(data, params_.samples,
                                            params_.sample_seed, eng);
  }
  const kernels::PairwiseKernel kernel =
      params_.use_closed_form
          ? kernels::PairwiseKernel::ClosedFormED2(data.objects())
          : kernels::PairwiseKernel::SampleED2(samples->view());
  PairwiseStore store(eng, kernel);
  store.Warm();
  result.offline_ms = offline.ElapsedMs();

  // Online phase: PAM-style alternation.
  common::Stopwatch online;
  std::vector<std::size_t> medoids = RandomDistinctObjects(n, k, &rng);
  result.labels.assign(n, -1);
  std::vector<std::vector<std::size_t>> members(k);
  std::vector<std::size_t> best_medoid(k);
  std::vector<double> med_rows;  // k x n: row c = d(medoids[c], .)
  std::vector<double> cand_cost(n, 0.0);
  // The gather sweep only pays off when rows would otherwise be recomputed;
  // on the dense backend the legacy sweep reads the resident table
  // zero-copy, so the block gather would be pure copy overhead.
  const bool gather_tiles = eng.pairwise_gather_tiles() &&
                            store.backend() != PairwiseBackend::kDense;
  // Indexed assignment (recompute backends only — dense rows are free after
  // Warm()): a per-iteration spatial index over the k medoid region boxes
  // answers, per object, which medoids could be nearest. The true nearest
  // medoid's ED^ is bracketed by its box min/max distance, so the candidate
  // set (min distance within a slacked margin of the smallest max distance)
  // always contains the argmin winner, and excluded medoids are provably
  // strictly farther. The ascending-slot strict-< scan over candidates
  // therefore picks the bit-identical label the k-row scan picks, without
  // gathering k full medoid rows per iteration.
  SpatialIndexChoice index_choice = SpatialIndexChoice::kOff;
  SpatialIndexChoiceFromString(eng.spatial_index(), &index_choice);
  const bool index_assign = index_choice != SpatialIndexChoice::kOff &&
                            store.backend() != PairwiseBackend::kDense;
  int64_t assign_evals = 0;

  for (result.iterations = 0; result.iterations < params_.max_iters;
       ++result.iterations) {
    // One PAM round = one warm-row generation: medoid rows gathered last
    // round stay servable (medoids rarely all move), stale rows age out.
    store.BeginGeneration();
    std::size_t changed = 0;
    if (index_assign) {
      std::vector<uncertain::Box> mboxes;
      mboxes.reserve(medoids.size());
      for (const std::size_t m : medoids) {
        mboxes.push_back(data.object(m).region());
      }
      const SpatialIndex midx(
          std::move(mboxes),
          ResolveSpatialIndexKind(index_choice, data.dims()));
      struct AssignCounts {
        std::size_t changed = 0;
        int64_t evals = 0;
        int64_t cands = 0;
      };
      const std::vector<AssignCounts> per_block =
          engine::MapBlocks<AssignCounts>(
              eng, n, [&](const engine::BlockedRange& r) {
                AssignCounts ac;
                std::vector<std::size_t> cand;
                for (std::size_t i = r.begin; i < r.end; ++i) {
                  midx.NearestCandidates(data.object(i).region(), &cand);
                  int best = 0;
                  double best_d = std::numeric_limits<double>::infinity();
                  for (const std::size_t slot : cand) {
                    const std::size_t mid = medoids[slot];
                    // The gather path serves the table diagonal (exactly 0)
                    // when an object is its own medoid; Eval(i, i) would
                    // return the nonzero self ED^, so match the diagonal.
                    double d = 0.0;
                    if (mid != i) {
                      d = kernel.Eval(i, mid);
                      ++ac.evals;
                    }
                    if (d < best_d) {
                      best_d = d;
                      best = static_cast<int>(slot);
                    }
                  }
                  ac.cands += static_cast<int64_t>(cand.size());
                  if (best != result.labels[i]) {
                    result.labels[i] = best;
                    ++ac.changed;
                  }
                }
                return ac;
              });
      int64_t iter_cands = 0;
      for (const AssignCounts& ac : per_block) {
        changed += ac.changed;
        assign_evals += ac.evals;
        iter_cands += ac.cands;
      }
      result.index_candidates += iter_cands;
      result.pairs_pruned_by_index +=
          static_cast<int64_t>(n) * k - iter_cands;
      result.index_bound_tests += midx.bound_tests();
    } else {
      // Assignment to the nearest medoid: materialize the k medoid rows
      // through the store, then sweep objects in parallel blocks (the
      // change counter reduces over blocks in order).
      store.GatherRows(medoids, &med_rows);
      const std::vector<std::size_t> changed_per_block =
          engine::MapBlocks<std::size_t>(
              eng, n, [&](const engine::BlockedRange& r) {
                std::size_t block_changed = 0;
                for (std::size_t i = r.begin; i < r.end; ++i) {
                  int best = 0;
                  double best_d = std::numeric_limits<double>::infinity();
                  for (int c = 0; c < k; ++c) {
                    const double d =
                        med_rows[static_cast<std::size_t>(c) * n + i];
                    if (d < best_d) {
                      best_d = d;
                      best = c;
                    }
                  }
                  if (best != result.labels[i]) {
                    result.labels[i] = best;
                    ++block_changed;
                  }
                }
                return block_changed;
              });
      for (std::size_t c : changed_per_block) changed += c;
    }
    for (auto& mlist : members) mlist.clear();
    for (std::size_t i = 0; i < n; ++i) {
      members[result.labels[i]].push_back(i);
    }
    if (changed == 0 && result.iterations > 0) break;

    // Update: each cluster's medoid minimizes the total ED^ to its members.
    // An object's candidate cost reads only its own cluster's member
    // columns, so the sweep needs the per-cluster member x member blocks —
    // never the full table.
    if (gather_tiles) {
      // Gather-tile policy: one asymmetric member x member slab per cluster
      // (resident/warm rows read back, the rest evaluated symmetrically;
      // budget-bounded stripes when the slab is too large to materialize),
      // with row sums in the visitor. Summation order over a block row is
      // ascending members — exactly the full-row sweep's order restricted
      // to the member columns, so cand_cost is bit-identical.
      for (int c = 0; c < k; ++c) {
        const std::vector<std::size_t>& mem = members[c];
        if (mem.empty()) continue;
        store.VisitSymmetricBlock(
            mem, [&](std::size_t a, std::span<const double> row) {
              double cost = 0.0;
              for (const double v : row) cost += v;
              cand_cost[mem[a]] = cost;
            });
      }
    } else {
      // Legacy full sweep: every row visited (tile faults included), each
      // object summed over its own cluster's member columns.
      store.VisitAllRows([&](std::size_t i, std::span<const double> row) {
        double cost = 0.0;
        for (std::size_t other : members[result.labels[i]]) {
          cost += row[other];
        }
        cand_cost[i] = cost;
      });
    }
    for (int c = 0; c < k; ++c) {
      best_medoid[c] = medoids[c];
      if (members[c].empty()) continue;
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::size_t cand : members[c]) {
        if (cand_cost[cand] < best_cost) {
          best_cost = cand_cost[cand];
          best_medoid[c] = cand;
        }
      }
    }
    bool medoid_moved = false;
    for (int c = 0; c < k; ++c) {
      if (members[c].empty()) {
        medoids[c] = rng.Index(n);  // re-seed an empty cluster
        medoid_moved = true;
        continue;
      }
      if (best_medoid[c] != medoids[c]) {
        medoids[c] = best_medoid[c];
        medoid_moved = true;
      }
    }
    if (!medoid_moved) break;
  }

  // Objective: total ED^ between objects and their medoids.
  store.GatherRows(medoids, &med_rows);
  result.objective = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = static_cast<std::size_t>(result.labels[i]);
    result.objective += med_rows[c * n + i];
  }
  result.online_ms = online.ElapsedMs();
  // Indexed assignment evaluates the kernel outside the store; fold those
  // evaluations into the same totals the gathered rows would have produced
  // them under (sampled kernels integrate per evaluation, the closed form
  // does not).
  result.ed_evaluations += store.ed_evaluations() +
                           (kernel.counts_ed_evaluations() ? assign_evals : 0);
  result.pairwise_backend = PairwiseBackendName(store.backend());
  result.table_bytes_peak = store.table_bytes_peak();
  result.pair_evaluations = store.evaluations() + assign_evals;
  result.tile_warm_hits = store.warm_hits();
  result.tile_warm_misses = store.warm_misses();
  result.clusters_found = CountClusters(result.labels);
  return result;
}

}  // namespace uclust::clustering
