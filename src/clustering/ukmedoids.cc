#include "clustering/ukmedoids.h"

#include <cassert>
#include <limits>

#include "clustering/init.h"
#include "clustering/kernels.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "engine/parallel_for.h"
#include "uncertain/expected_distance.h"
#include "uncertain/sample_cache.h"

namespace uclust::clustering {

ClusteringResult UkMedoids::Cluster(const data::UncertainDataset& data, int k,
                                    uint64_t seed) const {
  const std::size_t n = data.size();
  assert(k >= 1 && n >= static_cast<std::size_t>(k));
  common::Rng rng(seed);
  const engine::Engine& eng = engine();

  ClusteringResult result;
  result.k_requested = k;

  // Offline phase: the full pairwise ED^ table.
  common::Stopwatch offline;
  std::vector<double> dist;
  if (params_.use_closed_form) {
    kernels::PairwiseClosedFormED(eng, data.objects(), &dist);
  } else {
    const uncertain::SampleCache cache(data.objects(), params_.samples,
                                       params_.sample_seed, eng);
    result.ed_evaluations +=
        kernels::PairwiseSampleED(eng, cache, /*take_sqrt=*/false, &dist);
  }
  result.offline_ms = offline.ElapsedMs();

  // Online phase: PAM-style alternation.
  common::Stopwatch online;
  std::vector<std::size_t> medoids = RandomDistinctObjects(n, k, &rng);
  result.labels.assign(n, -1);
  std::vector<std::vector<std::size_t>> members(k);
  std::vector<std::size_t> best_medoid(k);

  for (result.iterations = 0; result.iterations < params_.max_iters;
       ++result.iterations) {
    // Assignment to the nearest medoid (parallel over object blocks; the
    // change counter reduces over blocks in order).
    const std::vector<std::size_t> changed_per_block =
        engine::MapBlocks<std::size_t>(
            eng, n, [&](const engine::BlockedRange& r) {
              std::size_t changed = 0;
              for (std::size_t i = r.begin; i < r.end; ++i) {
                int best = 0;
                double best_d = std::numeric_limits<double>::infinity();
                for (int c = 0; c < k; ++c) {
                  const double d = dist[i * n + medoids[c]];
                  if (d < best_d) {
                    best_d = d;
                    best = c;
                  }
                }
                if (best != result.labels[i]) {
                  result.labels[i] = best;
                  ++changed;
                }
              }
              return changed;
            });
    std::size_t changed = 0;
    for (std::size_t c : changed_per_block) changed += c;
    for (auto& mlist : members) mlist.clear();
    for (std::size_t i = 0; i < n; ++i) {
      members[result.labels[i]].push_back(i);
    }
    if (changed == 0 && result.iterations > 0) break;

    // Update: each cluster's medoid minimizes the total ED^ to its members.
    // Non-empty clusters are independent (parallel over clusters); empty
    // clusters re-seed serially afterwards so the rng draw order does not
    // depend on the thread count.
    engine::ParallelForBlocked(
        eng, static_cast<std::size_t>(k), 1, [&](const engine::BlockedRange& r) {
          for (std::size_t c = r.begin; c < r.end; ++c) {
            best_medoid[c] = medoids[c];
            if (members[c].empty()) continue;
            double best_cost = std::numeric_limits<double>::infinity();
            for (std::size_t cand : members[c]) {
              double cost = 0.0;
              for (std::size_t other : members[c]) {
                cost += dist[cand * n + other];
              }
              if (cost < best_cost) {
                best_cost = cost;
                best_medoid[c] = cand;
              }
            }
          }
        });
    bool medoid_moved = false;
    for (int c = 0; c < k; ++c) {
      if (members[c].empty()) {
        medoids[c] = rng.Index(n);  // re-seed an empty cluster
        medoid_moved = true;
        continue;
      }
      if (best_medoid[c] != medoids[c]) {
        medoids[c] = best_medoid[c];
        medoid_moved = true;
      }
    }
    if (!medoid_moved) break;
  }

  // Objective: total ED^ between objects and their medoids.
  result.objective = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.objective += dist[i * n + medoids[result.labels[i]]];
  }
  result.online_ms = online.ElapsedMs();
  result.clusters_found = CountClusters(result.labels);
  return result;
}

}  // namespace uclust::clustering
