// UK-medoids (Gullo, Ponti & Tagarelli, SUM 2008): K-medoids (PAM-style)
// over pairwise expected distances between uncertain objects. By default the
// EDs are integrated numerically over Monte-Carlo samples, reproducing the
// published cost profile, with an optional closed-form mode (Lemma 3) this
// library adds on top.
//
// Pairwise access goes through clustering::PairwiseStore. Under the default
// unlimited memory budget the full ED table is precomputed in the offline
// phase exactly as in the original (the paper excludes it from the timed
// online phase); under a finite EngineConfig::memory_budget_bytes the
// sweeps run workload-aware instead: the assignment step gathers the k
// medoid rows as one asymmetric gather tile (retained across PAM
// iterations by the warm-row cache — see PairwiseStore::BeginGeneration),
// and the swap sweep reads per-cluster member x member slabs rather than
// faulting full row tiles. Table memory stays bounded at any n and
// clusterings are bit-identical across backends, tile policies
// (EngineConfig::pairwise_gather_tiles / pairwise_warm_rows), and thread
// counts; see docs/memory-backends.md.
#ifndef UCLUST_CLUSTERING_UKMEDOIDS_H_
#define UCLUST_CLUSTERING_UKMEDOIDS_H_

#include "clustering/clusterer.h"

namespace uclust::clustering {

/// The UK-medoids algorithm.
class UkMedoids final : public Clusterer {
 public:
  /// Tuning knobs.
  struct Params {
    int max_iters = 100;  ///< Cap on assignment/update rounds.
    int samples = 32;     ///< Monte-Carlo samples per object (sampled mode).
    /// Use the exact closed-form ED^ (Lemma 3) instead of sample
    /// integration. Faster and exact; off by default to mirror the paper.
    bool use_closed_form = false;
    uint64_t sample_seed = 0x5eedbeefULL;  ///< Seed for the sample cache.
  };

  UkMedoids() = default;
  explicit UkMedoids(const Params& params) : params_(params) {}

  std::string name() const override { return "UK-medoids"; }
  ClusteringResult Cluster(const data::UncertainDataset& data, int k,
                           uint64_t seed) const override;

 private:
  Params params_;
};

}  // namespace uclust::clustering

#endif  // UCLUST_CLUSTERING_UKMEDOIDS_H_
