#include "common/cli.h"

#include <cstdlib>

#include "engine/engine.h"

namespace uclust::common {

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool ArgParser::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ArgParser::GetString(const std::string& key,
                                 const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t ArgParser::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return def;
  return static_cast<int64_t>(v);
}

double ArgParser::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return def;
  return v;
}

bool ArgParser::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

Status ParseEngineFlags(const ArgParser& args, engine::EngineConfig* config) {
  for (const std::string& key : engine::EngineKnobNames()) {
    if (!args.Has(key)) continue;
    UCLUST_RETURN_NOT_OK(
        engine::ApplyEngineKnob(key, args.GetString(key, ""), config));
  }
  return Status::Ok();
}

Status ParseEngineFlags(int argc, char** argv, engine::EngineConfig* config) {
  return ParseEngineFlags(ArgParser(argc, argv), config);
}

}  // namespace uclust::common
