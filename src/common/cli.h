// Tiny --key=value command-line parser for bench/example binaries, plus the
// shared engine-flag entry point every binary routes through.
#ifndef UCLUST_COMMON_CLI_H_
#define UCLUST_COMMON_CLI_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace uclust::engine {
struct EngineConfig;
}  // namespace uclust::engine

namespace uclust::common {

/// Parses flags of the form `--key=value` or bare `--flag` (value "true").
/// Non-flag arguments are ignored. Unknown flags are permitted; callers query
/// only what they understand.
class ArgParser {
 public:
  /// Parses argv; safe on empty argv.
  ArgParser(int argc, char** argv);

  /// True iff `--key[=...]` was passed.
  bool Has(const std::string& key) const;
  /// String value of `--key=`, or `def` when absent.
  std::string GetString(const std::string& key, const std::string& def) const;
  /// Integer value of `--key=`, or `def` when absent/unparsable.
  int64_t GetInt(const std::string& key, int64_t def) const;
  /// Double value of `--key=`, or `def` when absent/unparsable.
  double GetDouble(const std::string& key, double def) const;
  /// Boolean value: bare `--key` or `--key=true/1` is true.
  bool GetBool(const std::string& key, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Parses every canonical engine knob present in `args` into `config`
/// (see engine::ApplyEngineKnob in engine/engine.h for the key table).
/// Flags the engine does not own are ignored — callers keep parsing their
/// own flags from the same ArgParser. Unlike the legacy
/// engine::EngineConfigFromArgs, a malformed value is a returned error,
/// not a silent default: every binary fails loudly on the same message.
/// `config` keeps its pre-call values for knobs that are absent, so
/// callers may pre-seed defaults.
Status ParseEngineFlags(const ArgParser& args, engine::EngineConfig* config);

/// Convenience overload parsing straight from argv.
Status ParseEngineFlags(int argc, char** argv, engine::EngineConfig* config);

}  // namespace uclust::common

#endif  // UCLUST_COMMON_CLI_H_
