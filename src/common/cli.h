// Tiny --key=value command-line parser for bench/example binaries.
#ifndef UCLUST_COMMON_CLI_H_
#define UCLUST_COMMON_CLI_H_

#include <cstdint>
#include <map>
#include <string>

namespace uclust::common {

/// Parses flags of the form `--key=value` or bare `--flag` (value "true").
/// Non-flag arguments are ignored. Unknown flags are permitted; callers query
/// only what they understand.
class ArgParser {
 public:
  /// Parses argv; safe on empty argv.
  ArgParser(int argc, char** argv);

  /// True iff `--key[=...]` was passed.
  bool Has(const std::string& key) const;
  /// String value of `--key=`, or `def` when absent.
  std::string GetString(const std::string& key, const std::string& def) const;
  /// Integer value of `--key=`, or `def` when absent/unparsable.
  int64_t GetInt(const std::string& key, int64_t def) const;
  /// Double value of `--key=`, or `def` when absent/unparsable.
  double GetDouble(const std::string& key, double def) const;
  /// Boolean value: bare `--key` or `--key=true/1` is true.
  bool GetBool(const std::string& key, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace uclust::common

#endif  // UCLUST_COMMON_CLI_H_
