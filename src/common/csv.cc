#include "common/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace uclust::common {

std::vector<std::string> SplitString(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, sep)) out.push_back(field);
  // Trailing separator yields an empty final field.
  if (!line.empty() && line.back() == sep) out.emplace_back();
  return out;
}

Result<CsvTable> ReadCsv(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  CsvTable table;
  std::string line;
  bool first = true;
  std::size_t expected_cols = 0;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.back() == '\r') line.pop_back();
    const std::vector<std::string> fields = SplitString(line, ',');
    if (first && has_header) {
      table.header = fields;
      expected_cols = fields.size();
      first = false;
      continue;
    }
    first = false;
    if (expected_cols == 0) expected_cols = fields.size();
    if (fields.size() != expected_cols) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": ragged row");
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const std::string& f : fields) {
      char* end = nullptr;
      const double v = std::strtod(f.c_str(), &end);
      if (end == f.c_str() || *end != '\0') {
        return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                       ": non-numeric cell '" + f + "'");
      }
      row.push_back(v);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  if (!header.empty()) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (i) out << ',';
      out << header[i];
    }
    out << '\n';
  }
  out.precision(17);
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::Ok();
}

}  // namespace uclust::common
