// Minimal CSV reading/writing used by dataset IO and bench result dumps.
// Supports numeric tables with an optional header row; no quoting/escaping
// (fields never contain commas in this library).
#ifndef UCLUST_COMMON_CSV_H_
#define UCLUST_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace uclust::common {

/// A parsed CSV file: optional header plus numeric rows.
struct CsvTable {
  std::vector<std::string> header;        ///< Empty when the file had none.
  std::vector<std::vector<double>> rows;  ///< Row-major numeric cells.
};

/// Reads a numeric CSV file. When `has_header` is true the first line is
/// stored in CsvTable::header. All remaining cells must parse as doubles.
Result<CsvTable> ReadCsv(const std::string& path, bool has_header);

/// Writes a numeric CSV file with the given header (header may be empty).
Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<double>>& rows);

/// Splits `line` on `sep` (no escaping).
std::vector<std::string> SplitString(const std::string& line, char sep);

}  // namespace uclust::common

#endif  // UCLUST_COMMON_CSV_H_
