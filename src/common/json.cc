#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace uclust::common {

void JsonWriter::Escape(const std::string& s) {
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
}

namespace {

constexpr int kMaxDepth = 64;

// Local Status-propagation shim usable from functions returning either
// Status or Result<T> (Status converts into an error Result).
#define UCLUST_JSON_TRY(expr)             \
  do {                                    \
    Status _st = (expr);                  \
    if (!_st.ok()) return _st;            \
  } while (false)

// Recursive-descent parser over a string_view with a byte cursor. Every
// error includes the offset, so a malformed REST body is diagnosable from
// the 400 response alone.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    UCLUST_JSON_TRY(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return v;
  }

 private:

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("json: " + msg + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        UCLUST_JSON_TRY(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::Ok();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view word, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    // JSON forbids leading zeros ("01"); strtod would accept them.
    const std::size_t first = token[0] == '-' ? 1 : 0;
    if (token.size() > first + 1 && token[first] == '0' &&
        token[first + 1] != '.' && token[first + 1] != 'e' &&
        token[first + 1] != 'E') {
      pos_ = start;
      return Error("malformed number");
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return Error("malformed number");
    }
    *out = JsonValue::Number(v);
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          UCLUST_JSON_TRY(ParseHex4(&code));
          // Combine a surrogate pair when a high surrogate is followed by
          // \uDC00-\uDFFF; a lone surrogate is replaced by U+FFFD.
          if (code >= 0xD800 && code <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            unsigned low = 0;
            UCLUST_JSON_TRY(ParseHex4(&low));
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              code = 0xFFFD;
            }
          } else if (code >= 0xD800 && code <= 0xDFFF) {
            code = 0xFFFD;
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::Ok();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::Array(std::move(items));
      return Status::Ok();
    }
    while (true) {
      JsonValue item;
      UCLUST_JSON_TRY(ParseValue(&item, depth + 1));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
    *out = JsonValue::Array(std::move(items));
    return Status::Ok();
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::Object(std::move(members));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      UCLUST_JSON_TRY(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      UCLUST_JSON_TRY(ParseValue(&value, depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
    *out = JsonValue::Object(std::move(members));
    return Status::Ok();
  }

#undef UCLUST_JSON_TRY

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace uclust::common
