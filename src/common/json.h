// Minimal JSON support shared by the benches and the service layer: an
// incremental writer (formerly bench/bench_json.h) and a strict
// recursive-descent parser. Both are stdlib-only — the service's REST
// bodies, the bench BENCH_*.json artifacts, and the canonical
// ClusteringResult serialization (clustering/result_json.h) all go through
// this one file, so there is exactly one JSON dialect in the repo.
#ifndef UCLUST_COMMON_JSON_H_
#define UCLUST_COMMON_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace uclust::common {

/// Incremental writer producing one JSON document. Values are emitted in
/// call order; the caller is responsible for balanced Begin/End pairs.
class JsonWriter {
 public:
  std::string& str() { return out_; }

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  /// Starts `"key": ` inside an object; follow with a value call.
  void Key(const std::string& key) {
    Comma();
    out_ += '"';
    Escape(key);
    out_ += "\": ";
    pending_value_ = true;
  }

  void Value(const std::string& v) {
    Comma();
    out_ += '"';
    Escape(v);
    out_ += '"';
  }
  void Value(const char* v) { Value(std::string(v)); }
  /// Compact double formatting (%.6g) — the bench-artifact default, where
  /// timings dominate and six significant digits read well.
  void Value(double v) { Number(v, "%.6g"); }
  void Value(int64_t v) {
    Comma();
    out_ += std::to_string(v);
  }
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(std::size_t v) { Value(static_cast<int64_t>(v)); }
  void Value(bool v) {
    Comma();
    out_ += v ? "true" : "false";
  }
  /// Round-trippable double formatting (%.17g) — for quantities whose exact
  /// bits matter downstream (the clustering objective a fingerprint hashes).
  void ValueExact(double v) { Number(v, "%.17g"); }
  /// Splices a pre-rendered JSON value verbatim (e.g. the output of
  /// clustering::ResultToJson) as the next value. The caller guarantees
  /// `json` is itself well formed.
  void Raw(const std::string& json) {
    Comma();
    out_ += json;
  }

  /// Convenience: Key + Value.
  template <typename T>
  void KV(const std::string& key, const T& v) {
    Key(key);
    Value(v);
  }
  /// Convenience: Key + ValueExact.
  void KVExact(const std::string& key, double v) {
    Key(key);
    ValueExact(v);
  }

  /// Writes the document to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
    std::fclose(f);
    return ok;
  }

 private:
  void Comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (need_comma_) out_ += ", ";
    need_comma_ = true;
  }
  void Open(char c) {
    Comma();
    out_ += c;
    need_comma_ = false;
  }
  void Close(char c) {
    out_ += c;
    need_comma_ = true;
    pending_value_ = false;
  }
  void Number(double v, const char* fmt) {
    Comma();
    if (std::isfinite(v)) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), fmt, v);
      out_ += buf;
    } else {
      out_ += "null";
    }
  }
  void Escape(const std::string& s);

  std::string out_;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

/// One parsed JSON value. Object member order is preserved (the service's
/// JobSpec applies engine knobs in document order, later keys winning).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// The boolean (or `def` for non-booleans).
  bool AsBool(bool def = false) const {
    return is_bool() ? bool_ : def;
  }
  /// The number (or `def` for non-numbers).
  double AsDouble(double def = 0.0) const {
    return is_number() ? number_ : def;
  }
  /// The number truncated to int64 (or `def` for non-numbers).
  int64_t AsInt(int64_t def = 0) const {
    return is_number() ? static_cast<int64_t>(number_) : def;
  }
  /// The string ("" for non-strings).
  const std::string& AsString() const { return string_; }

  /// Array elements (empty for non-arrays).
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in document order (empty for non-objects).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// Object member lookup; nullptr when absent or not an object. The LAST
  /// occurrence wins when a key repeats, matching "later keys override".
  const JsonValue* Find(const std::string& key) const {
    const JsonValue* found = nullptr;
    for (const auto& [k, v] : members_) {
      if (k == key) found = &v;
    }
    return found;
  }

  // Construction (used by the parser and by tests).
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v) {
    JsonValue j;
    j.type_ = Type::kBool;
    j.bool_ = v;
    return j;
  }
  static JsonValue Number(double v) {
    JsonValue j;
    j.type_ = Type::kNumber;
    j.number_ = v;
    return j;
  }
  static JsonValue String(std::string v) {
    JsonValue j;
    j.type_ = Type::kString;
    j.string_ = std::move(v);
    return j;
  }
  static JsonValue Array(std::vector<JsonValue> items) {
    JsonValue j;
    j.type_ = Type::kArray;
    j.items_ = std::move(items);
    return j;
  }
  static JsonValue Object(
      std::vector<std::pair<std::string, JsonValue>> members) {
    JsonValue j;
    j.type_ = Type::kObject;
    j.members_ = std::move(members);
    return j;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one complete JSON document. Strict: the whole input must be
/// consumed (trailing garbage is an error), nesting is capped at 64 levels,
/// and only valid escape sequences are accepted (\uXXXX decodes to UTF-8;
/// surrogate pairs are combined). Errors carry a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace uclust::common

#endif  // UCLUST_COMMON_JSON_H_
