#include "common/math_utils.h"

#include <algorithm>
#include <limits>

// The simd layer is a dependency leaf (stdlib-only header), so the lowest
// common layer may route its reductions through it without a cycle.
#include "clustering/simd/simd.h"

namespace uclust::common {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;  // 1 / sqrt(2*pi)
constexpr double kInvSqrt2 = 0.7071067811865476;    // 1 / sqrt(2)
}  // namespace

double NormalPdf(double z) { return kInvSqrt2Pi * std::exp(-0.5 * z * z); }

double NormalCdf(double z) { return 0.5 * std::erfc(-z * kInvSqrt2); }

// SquaredDistance and Sum dispatch to the SIMD kernel layer. All ISA paths
// use the same lane-blocked accumulation order (see clustering/simd/simd.h),
// so the values are identical whichever path the dispatcher picks.

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  return clustering::simd::SquaredDistance(a.data(), b.data(), a.size());
}

double Distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredDistance(a, b));
}

double Sum(std::span<const double> v) {
  return clustering::simd::Sum(v.data(), v.size());
}

double Mean(std::span<const double> v) {
  assert(!v.empty());
  return Sum(v) / static_cast<double>(v.size());
}

bool CloseTo(double a, double b, double rtol, double atol) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= atol + rtol * scale;
}

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::population_variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

}  // namespace uclust::common
