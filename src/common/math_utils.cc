#include "common/math_utils.h"

#include <algorithm>
#include <limits>

namespace uclust::common {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;  // 1 / sqrt(2*pi)
constexpr double kInvSqrt2 = 0.7071067811865476;    // 1 / sqrt(2)
}  // namespace

double NormalPdf(double z) { return kInvSqrt2Pi * std::exp(-0.5 * z * z); }

double NormalCdf(double z) { return 0.5 * std::erfc(-z * kInvSqrt2); }

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double Distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredDistance(a, b));
}

double Sum(std::span<const double> v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

double Mean(std::span<const double> v) {
  assert(!v.empty());
  return Sum(v) / static_cast<double>(v.size());
}

bool CloseTo(double a, double b, double rtol, double atol) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= atol + rtol * scale;
}

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::population_variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

}  // namespace uclust::common
