// Small numeric helpers shared across modules: Gaussian pdf/cdf, squared
// distances, vector reductions. Header-only where trivial.
#ifndef UCLUST_COMMON_MATH_UTILS_H_
#define UCLUST_COMMON_MATH_UTILS_H_

#include <cassert>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace uclust::common {

/// z-score such that the central interval [-z, z] of a standard Normal holds
/// 95% of the probability mass.
inline constexpr double kNormal95 = 1.959963984540054;

/// 95th percentile of the unit-rate Exponential distribution (-ln 0.05).
inline constexpr double kExp95 = 2.9957322735539909;

/// Standard Normal density at z.
double NormalPdf(double z);

/// Standard Normal CDF at z (via erfc for accuracy in the tails).
double NormalCdf(double z);

/// Squared Euclidean distance between two equal-length vectors.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

/// Euclidean distance between two equal-length vectors.
double Distance(std::span<const double> a, std::span<const double> b);

/// Sum of all elements.
double Sum(std::span<const double> v);

/// Arithmetic mean; v must be non-empty.
double Mean(std::span<const double> v);

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// True iff |a - b| <= atol + rtol * max(|a|, |b|).
bool CloseTo(double a, double b, double rtol = 1e-9, double atol = 1e-12);

/// Online mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Adds an observation.
  void Add(double x);
  /// Number of observations added.
  std::size_t count() const { return count_; }
  /// Sample mean (0 when empty).
  double mean() const { return mean_; }
  /// Unbiased sample variance (0 when count < 2).
  double variance() const;
  /// Population variance (0 when empty).
  double population_variance() const;
  /// Standard deviation (sqrt of unbiased variance).
  double stddev() const { return std::sqrt(variance()); }
  /// Smallest observation (+inf when empty).
  double min() const { return min_; }
  /// Largest observation (-inf when empty).
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace uclust::common

#endif  // UCLUST_COMMON_MATH_UTILS_H_
