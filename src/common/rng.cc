#include "common/rng.h"

#include <cassert>

namespace uclust::common {

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  assert(stddev >= 0.0);
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

int Rng::UniformInt(int lo, int hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

std::size_t Rng::Index(std::size_t n) {
  assert(n > 0);
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

bool Rng::Bernoulli(double p) {
  assert(p >= 0.0 && p <= 1.0);
  return Uniform() < p;
}

uint64_t Rng::NextSeed() { return engine_(); }

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t count) {
  assert(count <= n);
  // Partial Fisher-Yates over an index vector: O(n) setup, O(count) swaps.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t j = i + Index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(count);
  return idx;
}

uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  // splitmix64 finalizer over the (seed, stream) pair; the odd constant
  // decorrelates consecutive stream indices.
  uint64_t z = seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace uclust::common
