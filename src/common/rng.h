// Seeded random number generation. Every stochastic component in the library
// takes an explicit Rng (or a 64-bit seed) so that all experiments are
// reproducible run-to-run.
#ifndef UCLUST_COMMON_RNG_H_
#define UCLUST_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace uclust::common {

/// Deterministic pseudo-random generator wrapping std::mt19937_64.
///
/// All distribution draws go through this class so call sites never touch
/// <random> distribution objects directly.
class Rng {
 public:
  /// Creates a generator with the given seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev);
  /// Exponential draw with the given rate (mean 1/rate).
  double Exponential(double rate);
  /// Uniform integer in the inclusive range [lo, hi].
  int UniformInt(int lo, int hi);
  /// Uniform index in [0, n); n must be > 0.
  std::size_t Index(std::size_t n);
  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Derives a fresh independent seed (useful to fan out child generators).
  uint64_t NextSeed();

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      std::size_t j = Index(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Draws `count` distinct indices from [0, n) (count <= n).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t count);

  /// Access to the underlying engine (for std::discrete_distribution etc.).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Deterministically derives the seed of an independent sub-stream from a
/// master seed and a stream index (splitmix64 finalizer over the pair).
/// Parallel code uses one sub-stream per object so that the draws are
/// reproducible for any thread count and any processing order.
uint64_t DeriveSeed(uint64_t seed, uint64_t stream);

}  // namespace uclust::common

#endif  // UCLUST_COMMON_RNG_H_
