// Lightweight Status / Result error handling for fallible, non-hot-path APIs
// (dataset construction, parsing, configuration). Numeric kernels stay
// exception-free and report programming errors via assertions instead.
#ifndef UCLUST_COMMON_STATUS_H_
#define UCLUST_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace uclust::common {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kIOError,
  kNotFound,
  kInternal,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Value-semantic success/error indicator, in the spirit of arrow::Status.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Status is cheap to copy for the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for the OK status.
  static Status Ok() { return Status(); }
  /// Factory for an invalid-argument error.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Factory for an out-of-range error.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Factory for an I/O error.
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Factory for a not-found error.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Factory for an internal-invariant violation.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message ("" for OK).
  const std::string& message() const { return message_; }
  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T, in the spirit of arrow::Result.
///
/// Access the value only after checking ok(); ValueOrDie() asserts in debug
/// builds.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie() on error Result");
    return *value_;
  }
  /// Moves the contained value out; must only be called when ok().
  T ValueOrDie() && {
    assert(ok() && "ValueOrDie() on error Result");
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace uclust::common

/// Propagates a non-OK Status from the current function.
#define UCLUST_RETURN_NOT_OK(expr)                    \
  do {                                                \
    ::uclust::common::Status _st = (expr);            \
    if (!_st.ok()) return _st;                        \
  } while (false)

#endif  // UCLUST_COMMON_STATUS_H_
