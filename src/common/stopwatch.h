// Wall-clock stopwatch used by the bench harness and per-run diagnostics.
#ifndef UCLUST_COMMON_STOPWATCH_H_
#define UCLUST_COMMON_STOPWATCH_H_

#include <chrono>

namespace uclust::common {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or the last Reset().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace uclust::common

#endif  // UCLUST_COMMON_STOPWATCH_H_
