#include "data/benchmark_gen.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"

namespace uclust::data {

namespace {

// Draws `classes` centers in the unit cube with pairwise distance at least
// `min_sep`, relaxing the separation constraint geometrically if rejection
// sampling stalls (high class counts in low dimensions).
std::vector<std::vector<double>> DrawCenters(std::size_t dims, int classes,
                                             double min_sep,
                                             common::Rng* rng) {
  std::vector<std::vector<double>> centers;
  double sep = min_sep;
  int stall = 0;
  while (static_cast<int>(centers.size()) < classes) {
    std::vector<double> c(dims);
    for (auto& x : c) x = rng->Uniform();
    bool ok = true;
    for (const auto& other : centers) {
      if (common::Distance(c, other) < sep) {
        ok = false;
        break;
      }
    }
    if (ok) {
      centers.push_back(std::move(c));
      stall = 0;
    } else if (++stall > 200) {
      sep *= 0.8;  // relax; guaranteed to terminate
      stall = 0;
    }
  }
  return centers;
}

}  // namespace

DeterministicDataset MakeGaussianMixture(const MixtureParams& params,
                                         uint64_t seed, std::string name) {
  assert(params.n > 0 && params.dims > 0 && params.classes > 0);
  assert(params.n >= static_cast<std::size_t>(params.classes));
  common::Rng rng(seed);

  const auto centers =
      DrawCenters(params.dims, params.classes, params.min_separation, &rng);

  // Per-class, per-dimension standard deviations.
  std::vector<std::vector<double>> sigmas(params.classes);
  for (auto& s : sigmas) {
    s.resize(params.dims);
    for (auto& x : s) x = rng.Uniform(params.sigma_min, params.sigma_max);
  }

  // Class sizes: weight_c = 1 + imbalance * U(0,1), then proportional split
  // with at least one point per class.
  std::vector<double> weights(params.classes);
  double wsum = 0.0;
  for (auto& w : weights) {
    w = 1.0 + params.imbalance * rng.Uniform();
    wsum += w;
  }
  std::vector<std::size_t> sizes(params.classes, 1);
  std::size_t assigned = static_cast<std::size_t>(params.classes);
  for (int c = 0; c < params.classes - 1 && assigned < params.n; ++c) {
    const std::size_t extra = std::min(
        params.n - assigned,
        static_cast<std::size_t>(
            std::floor(weights[c] / wsum * static_cast<double>(params.n))));
    sizes[c] += extra;
    assigned += extra;
  }
  sizes[static_cast<std::size_t>(params.classes) - 1] += params.n - assigned;

  DeterministicDataset out;
  out.name = std::move(name);
  out.num_classes = params.classes;
  out.points.reserve(params.n);
  out.labels.reserve(params.n);
  for (int c = 0; c < params.classes; ++c) {
    for (std::size_t i = 0; i < sizes[c]; ++i) {
      std::vector<double> p(params.dims);
      for (std::size_t j = 0; j < params.dims; ++j) {
        p[j] = rng.Normal(centers[c][j], sigmas[c][j]);
      }
      out.points.push_back(std::move(p));
      out.labels.push_back(c);
    }
  }
  out.NormalizeToUnitCube();
  return out;
}

std::span<const BenchmarkSpec> PaperBenchmarkSpecs() {
  // Table 1a of the paper (KDDCup99 excluded; see kdd_gen.h).
  static constexpr std::array<BenchmarkSpec, 8> kSpecs = {{
      {"Iris", 150, 4, 3},
      {"Wine", 178, 13, 3},
      {"Glass", 214, 10, 6},
      {"Ecoli", 327, 7, 5},
      {"Yeast", 1484, 8, 10},
      {"Image", 2310, 19, 7},
      {"Abalone", 4124, 7, 17},
      {"Letter", 7648, 16, 10},
  }};
  return kSpecs;
}

common::Result<BenchmarkSpec> FindBenchmarkSpec(std::string_view name) {
  for (const BenchmarkSpec& spec : PaperBenchmarkSpecs()) {
    if (name == spec.name) return spec;
  }
  return common::Status::NotFound("unknown benchmark dataset: " +
                                  std::string(name));
}

common::Result<DeterministicDataset> MakeBenchmarkDataset(
    std::string_view name, uint64_t seed, double scale) {
  auto spec_result = FindBenchmarkSpec(name);
  if (!spec_result.ok()) return spec_result.status();
  const BenchmarkSpec spec = spec_result.ValueOrDie();
  if (scale <= 0.0 || scale > 1.0) {
    return common::Status::InvalidArgument("scale must be in (0, 1]");
  }
  MixtureParams params;
  params.n = std::max<std::size_t>(
      static_cast<std::size_t>(spec.classes),
      static_cast<std::size_t>(std::llround(static_cast<double>(spec.n) *
                                            scale)));
  params.dims = spec.dims;
  params.classes = spec.classes;
  // Calibrated to UCI-like difficulty: classes overlap noticeably, so
  // external scores have headroom and the evaluation protocol can
  // differentiate algorithms (see EXPERIMENTS.md, calibration notes).
  params.sigma_min = 0.07;
  params.sigma_max = 0.16;
  params.min_separation = 0.12;
  // Many classes in few dimensions need tighter clusters to stay clusterable
  // at all.
  const double crowding =
      static_cast<double>(spec.classes) / static_cast<double>(spec.dims);
  if (crowding > 1.5) {
    params.sigma_min = 0.04;
    params.sigma_max = 0.09;
    params.min_separation = 0.12;
  }
  return MakeGaussianMixture(params, seed, std::string(spec.name));
}

}  // namespace uclust::data
