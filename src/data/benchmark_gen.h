// Synthetic stand-ins for the paper's UCI benchmark datasets.
//
// The original experiments (Table 2) use eight UCI datasets whose role is
// purely to provide a labeled deterministic point cloud on which uncertainty
// is then synthesized. We reproduce each dataset's shape (n, m, #classes)
// with a Gaussian-mixture generator: what the evaluation protocol measures
// is recovery of a known labeling under synthesized uncertainty, which the
// mixture's labeled clusters provide with the same shape parameters.
#ifndef UCLUST_DATA_BENCHMARK_GEN_H_
#define UCLUST_DATA_BENCHMARK_GEN_H_

#include <span>
#include <string>
#include <string_view>

#include "common/status.h"
#include "data/dataset.h"

namespace uclust::data {

/// Parameters of the labeled Gaussian-mixture generator. Points live in the
/// unit cube after generation (min-max normalized per dimension).
struct MixtureParams {
  std::size_t n = 1000;          ///< Number of points.
  std::size_t dims = 2;          ///< Dimensionality.
  int classes = 3;               ///< Number of mixture components / classes.
  double sigma_min = 0.04;       ///< Min per-dim class stddev (unit cube).
  double sigma_max = 0.09;       ///< Max per-dim class stddev.
  double imbalance = 0.6;        ///< 0 = equal class sizes; higher = skewed.
  double min_separation = 0.25;  ///< Min pairwise center distance.
};

/// Generates a labeled Gaussian mixture; deterministic given the seed.
DeterministicDataset MakeGaussianMixture(const MixtureParams& params,
                                         uint64_t seed, std::string name);

/// Shape of one paper benchmark dataset (Table 1a).
struct BenchmarkSpec {
  const char* name;
  std::size_t n;
  std::size_t dims;
  int classes;
};

/// The eight benchmark datasets of Table 1a (KDDCup99 is handled by the
/// dedicated scalability generator in kdd_gen.h).
std::span<const BenchmarkSpec> PaperBenchmarkSpecs();

/// Finds a spec by name ("Iris", "Wine", ...).
common::Result<BenchmarkSpec> FindBenchmarkSpec(std::string_view name);

/// Generates the named benchmark stand-in. `scale` in (0, 1] shrinks n
/// proportionally (at least one point per class is kept).
common::Result<DeterministicDataset> MakeBenchmarkDataset(
    std::string_view name, uint64_t seed, double scale = 1.0);

}  // namespace uclust::data

#endif  // UCLUST_DATA_BENCHMARK_GEN_H_
