#include "data/csv_io.h"

#include <algorithm>
#include <cmath>

#include "common/csv.h"

namespace uclust::data {

common::Status SaveDeterministic(const std::string& path,
                                 const DeterministicDataset& dataset) {
  UCLUST_RETURN_NOT_OK(dataset.Validate());
  std::vector<std::string> header;
  for (std::size_t j = 0; j < dataset.dims(); ++j) {
    header.push_back("x" + std::to_string(j));
  }
  const bool labeled = !dataset.labels.empty();
  if (labeled) header.push_back("label");
  std::vector<std::vector<double>> rows;
  rows.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    std::vector<double> row = dataset.points[i];
    if (labeled) row.push_back(static_cast<double>(dataset.labels[i]));
    rows.push_back(std::move(row));
  }
  return common::WriteCsv(path, header, rows);
}

common::Result<DeterministicDataset> LoadDeterministic(const std::string& path,
                                                       bool has_labels) {
  auto table_result = common::ReadCsv(path, /*has_header=*/true);
  if (!table_result.ok()) return table_result.status();
  const common::CsvTable table = std::move(table_result).ValueOrDie();

  DeterministicDataset out;
  out.name = path;
  int max_label = -1;
  for (const auto& row : table.rows) {
    if (has_labels && row.empty()) {
      return common::Status::InvalidArgument(path + ": empty row");
    }
    std::vector<double> point = row;
    if (has_labels) {
      const double raw = point.back();
      point.pop_back();
      const int label = static_cast<int>(std::llround(raw));
      if (label < 0 || std::fabs(raw - label) > 1e-9) {
        return common::Status::InvalidArgument(path +
                                               ": non-integer label cell");
      }
      out.labels.push_back(label);
      max_label = std::max(max_label, label);
    }
    out.points.push_back(std::move(point));
  }
  out.num_classes = max_label + 1;
  UCLUST_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace uclust::data
