// CSV persistence for deterministic datasets (points + optional label
// column), so generated workloads can be exported/reimported and inspected.
#ifndef UCLUST_DATA_CSV_IO_H_
#define UCLUST_DATA_CSV_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace uclust::data {

/// Writes points (and, when present, a final integer "label" column).
common::Status SaveDeterministic(const std::string& path,
                                 const DeterministicDataset& dataset);

/// Reads a dataset written by SaveDeterministic. When `has_labels` is true
/// the last column is interpreted as integer class labels.
common::Result<DeterministicDataset> LoadDeterministic(
    const std::string& path, bool has_labels);

}  // namespace uclust::data

#endif  // UCLUST_DATA_CSV_IO_H_
