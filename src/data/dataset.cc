#include "data/dataset.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/rng.h"
#include "uncertain/dataset_builder.h"

namespace uclust::data {

common::Status DeterministicDataset::Validate() const {
  const std::size_t m = dims();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].size() != m) {
      return common::Status::InvalidArgument(
          name + ": point " + std::to_string(i) + " has " +
          std::to_string(points[i].size()) + " dims, expected " +
          std::to_string(m));
    }
  }
  if (!labels.empty()) {
    if (labels.size() != points.size()) {
      return common::Status::InvalidArgument(name +
                                             ": labels/points size mismatch");
    }
    for (int label : labels) {
      if (label < 0 || label >= num_classes) {
        return common::Status::OutOfRange(name + ": label " +
                                          std::to_string(label) +
                                          " outside [0, num_classes)");
      }
    }
  }
  return common::Status::Ok();
}

std::vector<std::pair<double, double>> DeterministicDataset::DimensionRanges()
    const {
  const std::size_t m = dims();
  std::vector<std::pair<double, double>> ranges(
      m, {std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()});
  for (const auto& p : points) {
    for (std::size_t j = 0; j < m; ++j) {
      ranges[j].first = std::min(ranges[j].first, p[j]);
      ranges[j].second = std::max(ranges[j].second, p[j]);
    }
  }
  return ranges;
}

void DeterministicDataset::NormalizeToUnitCube() {
  const auto ranges = DimensionRanges();
  for (auto& p : points) {
    for (std::size_t j = 0; j < p.size(); ++j) {
      const double span = ranges[j].second - ranges[j].first;
      p[j] = span > 0.0 ? (p[j] - ranges[j].first) / span : 0.5;
    }
  }
}

DeterministicDataset Subsample(const DeterministicDataset& dataset,
                               std::size_t max_n, uint64_t seed) {
  if (dataset.size() <= max_n) return dataset;
  common::Rng rng(seed);
  auto picks = rng.SampleWithoutReplacement(dataset.size(), max_n);
  std::sort(picks.begin(), picks.end());
  DeterministicDataset out;
  out.name = dataset.name;
  out.num_classes = dataset.num_classes;
  out.points.reserve(max_n);
  for (std::size_t i : picks) {
    out.points.push_back(dataset.points[i]);
    if (!dataset.labels.empty()) out.labels.push_back(dataset.labels[i]);
  }
  return out;
}

UncertainDataset::UncertainDataset(
    std::string name, std::vector<uncertain::UncertainObject> objects,
    std::vector<int> labels, int num_classes)
    : name_(std::move(name)),
      objects_(std::move(objects)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  assert(labels_.empty() || labels_.size() == objects_.size());
}

UncertainDataset UncertainDataset::FromDeterministic(
    const DeterministicDataset& d) {
  std::vector<uncertain::UncertainObject> objects;
  objects.reserve(d.size());
  for (const auto& p : d.points) {
    objects.push_back(uncertain::UncertainObject::Deterministic(p));
  }
  return UncertainDataset(d.name, std::move(objects), d.labels,
                          d.num_classes);
}

UncertainDataset UncertainDataset::Subsampled(std::size_t max_n,
                                              uint64_t seed) const {
  if (size() <= max_n) return *this;
  common::Rng rng(seed);
  auto picks = rng.SampleWithoutReplacement(size(), max_n);
  std::sort(picks.begin(), picks.end());
  std::vector<uncertain::UncertainObject> objects;
  objects.reserve(max_n);
  std::vector<int> new_labels;
  for (std::size_t i : picks) {
    objects.push_back(objects_[i]);
    if (!labels_.empty()) new_labels.push_back(labels_[i]);
  }
  return UncertainDataset(name_ + "-sub", std::move(objects),
                          std::move(new_labels), num_classes_);
}

const uncertain::MomentMatrix& UncertainDataset::moments() const {
  if (!moments_ready_) {
    // The resident objects are just one ObjectSource behind the shared
    // streaming builder; file-backed datasets take the same path through
    // io::FileObjectSource without ever materializing all objects.
    uncertain::VectorObjectSource source(objects_);
    moments_ = uncertain::DatasetBuilder::BuildMoments(&source);
    moments_ready_ = true;
  }
  return moments_;
}

}  // namespace uclust::data
