// Dataset containers: deterministic labeled point sets and their uncertain
// counterparts.
#ifndef UCLUST_DATA_DATASET_H_
#define UCLUST_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "uncertain/moments.h"
#include "uncertain/uncertain_object.h"

namespace uclust::data {

/// A deterministic dataset: n points in R^m with an optional reference
/// classification (class labels in [0, num_classes)).
struct DeterministicDataset {
  std::string name;
  std::vector<std::vector<double>> points;
  std::vector<int> labels;  ///< Empty when no reference classes exist.
  int num_classes = 0;      ///< 0 when unlabeled.

  /// Number of points.
  std::size_t size() const { return points.size(); }
  /// Dimensionality (0 for an empty dataset).
  std::size_t dims() const { return points.empty() ? 0 : points[0].size(); }
  /// Checks shape invariants (rectangular points, labels in range).
  common::Status Validate() const;
  /// Per-dimension [min, max] ranges; max - min of each dimension is the
  /// scale the uncertainty protocol multiplies its relative widths by.
  std::vector<std::pair<double, double>> DimensionRanges() const;
  /// Rescales all coordinates into the unit cube (in place, per dimension).
  void NormalizeToUnitCube();
};

/// Uniform subsample without replacement of at most `max_n` points
/// (keeps labels; returns a copy when the dataset is already small enough).
/// Used by the bench harness to keep O(n^2)-time baselines within a time
/// budget and to mirror the paper's evaluation sizes. It is no longer a
/// memory necessity for the table itself: the pairwise consumers access
/// ED^ through clustering::PairwiseStore, whose tiled / on-the-fly
/// backends (selected via EngineConfig::memory_budget_bytes) bound the
/// table memory at any n (UAHC additionally keeps a merge overlay of one
/// row per alive merge-product cluster; see uahc.h).
DeterministicDataset Subsample(const DeterministicDataset& dataset,
                               std::size_t max_n, uint64_t seed);

/// An uncertain dataset: n uncertain objects with an optional reference
/// classification carried over from the deterministic source.
class UncertainDataset {
 public:
  UncertainDataset() = default;
  /// Creates a dataset; labels may be empty.
  UncertainDataset(std::string name,
                   std::vector<uncertain::UncertainObject> objects,
                   std::vector<int> labels, int num_classes);

  /// Wraps deterministic points as Dirac uncertain objects (the paper's
  /// "Case 1": clustering observed representations only).
  static UncertainDataset FromDeterministic(const DeterministicDataset& d);

  /// Dataset name (for reports).
  const std::string& name() const { return name_; }
  /// Number of objects n.
  std::size_t size() const { return objects_.size(); }
  /// Dimensionality m.
  std::size_t dims() const {
    return objects_.empty() ? 0 : objects_[0].dims();
  }
  /// All objects.
  const std::vector<uncertain::UncertainObject>& objects() const {
    return objects_;
  }
  /// The i-th object.
  const uncertain::UncertainObject& object(std::size_t i) const {
    return objects_[i];
  }
  /// Reference labels (empty when unlabeled).
  const std::vector<int>& labels() const { return labels_; }
  /// Number of reference classes (0 when unlabeled).
  int num_classes() const { return num_classes_; }

  /// Packs (and caches) the moment statistics of all objects. Internally the
  /// resident objects are fed through uncertain::DatasetBuilder — the same
  /// bounded-memory ingestion path file-backed datasets use (see
  /// io/ingest.h) — so both paths produce bit-identical matrices.
  const uncertain::MomentMatrix& moments() const;

  /// Uniform subsample without replacement of at most `max_n` objects.
  UncertainDataset Subsampled(std::size_t max_n, uint64_t seed) const;

  /// Annotations linking a resident dataset back to its on-disk artifacts.
  /// `source_path` is the .ubin file the objects were read from (set by
  /// io::ReadUncertainDataset; empty for purely in-memory data) — it keys
  /// the default .usmp sidecar location and its staleness guard.
  /// `samples_sidecar_path` pins a specific .usmp sidecar (set from the
  /// service dataset registry). Neither annotation survives Subsampled():
  /// a subsample is a different object set than the file's.
  void set_source_path(std::string path) { source_path_ = std::move(path); }
  const std::string& source_path() const { return source_path_; }
  void set_samples_sidecar_path(std::string path) {
    samples_sidecar_path_ = std::move(path);
  }
  const std::string& samples_sidecar_path() const {
    return samples_sidecar_path_;
  }

 private:
  std::string name_;
  std::vector<uncertain::UncertainObject> objects_;
  std::vector<int> labels_;
  int num_classes_ = 0;
  std::string source_path_;
  std::string samples_sidecar_path_;
  mutable uncertain::MomentMatrix moments_;  // lazily packed
  mutable bool moments_ready_ = false;
};

}  // namespace uclust::data

#endif  // UCLUST_DATA_DATASET_H_
