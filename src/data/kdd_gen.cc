#include "data/kdd_gen.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace uclust::data {

namespace {

// Zipf-weighted class sizes, each class non-empty.
std::vector<std::size_t> ZipfSizes(std::size_t n, int classes,
                                   double exponent) {
  std::vector<double> weights(classes);
  double wsum = 0.0;
  for (int c = 0; c < classes; ++c) {
    weights[c] = 1.0 / std::pow(static_cast<double>(c + 1), exponent);
    wsum += weights[c];
  }
  std::vector<std::size_t> sizes(classes, 1);
  std::size_t assigned = static_cast<std::size_t>(classes);
  assert(n >= assigned);
  for (int c = 0; c < classes && assigned < n; ++c) {
    const std::size_t extra = std::min(
        n - assigned, static_cast<std::size_t>(std::floor(
                          weights[c] / wsum * static_cast<double>(n))));
    sizes[c] += extra;
    assigned += extra;
  }
  sizes[0] += n - assigned;  // dump the remainder on the largest class
  return sizes;
}

std::vector<std::vector<double>> DrawCenters(std::size_t dims, int classes,
                                             common::Rng* rng) {
  std::vector<std::vector<double>> centers(classes);
  for (auto& c : centers) {
    c.resize(dims);
    for (auto& x : c) x = rng->Uniform();
  }
  return centers;
}

}  // namespace

double VarianceFactor(PdfFamily family) {
  // Construct a unit-scale pdf once and read its (truncated) variance.
  static const double kUniform =
      MakeUncertainPdf(PdfFamily::kUniform, 0.0, 1.0)->variance();
  static const double kNormal =
      MakeUncertainPdf(PdfFamily::kNormal, 0.0, 1.0)->variance();
  static const double kExponential =
      MakeUncertainPdf(PdfFamily::kExponential, 0.0, 1.0)->variance();
  switch (family) {
    case PdfFamily::kUniform:
      return kUniform;
    case PdfFamily::kNormal:
      return kNormal;
    case PdfFamily::kExponential:
      return kExponential;
  }
  return 1.0;
}

DeterministicDataset MakeKddLikeDataset(const KddLikeParams& params,
                                        uint64_t seed) {
  assert(params.n >= static_cast<std::size_t>(params.classes));
  common::Rng rng(seed);
  const auto centers = DrawCenters(params.dims, params.classes, &rng);
  const auto sizes = ZipfSizes(params.n, params.classes, params.zipf_exponent);

  DeterministicDataset out;
  out.name = "KDDCup99-like";
  out.num_classes = params.classes;
  out.points.reserve(params.n);
  out.labels.reserve(params.n);
  for (int c = 0; c < params.classes; ++c) {
    for (std::size_t i = 0; i < sizes[c]; ++i) {
      std::vector<double> p(params.dims);
      for (std::size_t j = 0; j < params.dims; ++j) {
        p[j] = rng.Normal(centers[c][j], params.sigma);
      }
      out.points.push_back(std::move(p));
      out.labels.push_back(c);
    }
  }
  return out;
}

uncertain::MomentMatrix MakeKddLikeMoments(const KddLikeParams& params,
                                           const UncertaintyParams& uparams,
                                           uint64_t seed,
                                           std::vector<int>* labels) {
  assert(params.n >= static_cast<std::size_t>(params.classes));
  common::Rng rng(seed);
  const auto centers = DrawCenters(params.dims, params.classes, &rng);
  const auto sizes = ZipfSizes(params.n, params.classes, params.zipf_exponent);
  const double factor = VarianceFactor(uparams.family);
  // Centers live in the unit cube, so the per-dimension data range the
  // uncertainty protocol scales by is ~1.
  const double range = 1.0;

  uncertain::MomentMatrix mm(params.n, params.dims);
  if (labels != nullptr) {
    labels->clear();
    labels->reserve(params.n);
  }
  std::vector<double> mean(params.dims), mu2(params.dims), var(params.dims);
  for (int c = 0; c < params.classes; ++c) {
    for (std::size_t i = 0; i < sizes[c]; ++i) {
      for (std::size_t j = 0; j < params.dims; ++j) {
        const double w = rng.Normal(centers[c][j], params.sigma);
        const double scale =
            range *
            rng.Uniform(uparams.min_scale_frac, uparams.max_scale_frac);
        mean[j] = w;
        var[j] = factor * scale * scale;
        mu2[j] = var[j] + w * w;
      }
      mm.AppendRow(mean, mu2, var);
      if (labels != nullptr) labels->push_back(c);
    }
  }
  return mm;
}

}  // namespace uclust::data
