// KDD-Cup-'99-like scalability workload (Table 1a, last row; Figure 5).
//
// The scalability study only exercises the linear-scan cost structure of the
// fast algorithms, which consume per-object moment statistics. Besides a
// regular point generator, this module can therefore stream moment rows
// directly (MakeKddLikeMoments) — numerically identical to building the
// uncertain objects and packing their moments, without holding pdf objects
// for millions of points.
#ifndef UCLUST_DATA_KDD_GEN_H_
#define UCLUST_DATA_KDD_GEN_H_

#include <vector>

#include "data/dataset.h"
#include "data/uncertainty_model.h"
#include "uncertain/moments.h"

namespace uclust::data {

/// Parameters of the KDD-like generator: many heavily imbalanced classes in
/// a 42-dimensional space, matching the paper's scalability dataset shape.
struct KddLikeParams {
  std::size_t n = 100000;
  std::size_t dims = 42;
  int classes = 23;
  /// Zipf exponent for class sizes (KDD Cup '99 is dominated by few classes).
  double zipf_exponent = 1.2;
  /// Per-dim class stddev in the unit cube.
  double sigma = 0.05;
};

/// Generates a labeled deterministic KDD-like dataset (moderate n).
DeterministicDataset MakeKddLikeDataset(const KddLikeParams& params,
                                        uint64_t seed);

/// Streams a KDD-like uncertain dataset directly into moment statistics
/// under the given uncertainty protocol. Every class is guaranteed at least
/// one object (the paper fixes k = 23 and ensures all classes are covered).
uncertain::MomentMatrix MakeKddLikeMoments(const KddLikeParams& params,
                                           const UncertaintyParams& uparams,
                                           uint64_t seed,
                                           std::vector<int>* labels);

/// Variance of MakeUncertainPdf(family, w, scale) divided by scale^2; used
/// for streaming moment generation and exposed for tests.
double VarianceFactor(PdfFamily family);

}  // namespace uclust::data

#endif  // UCLUST_DATA_KDD_GEN_H_
