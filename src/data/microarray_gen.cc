#include "data/microarray_gen.h"

#include <array>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "uncertain/normal_pdf.h"

namespace uclust::data {

std::span<const MicroarraySpec> PaperMicroarraySpecs() {
  static constexpr std::array<MicroarraySpec, 2> kSpecs = {{
      {"Neuroblastoma", 22282, 14},
      {"Leukaemia", 22690, 21},
  }};
  return kSpecs;
}

UncertainDataset MakeMicroarrayDataset(const MicroarrayParams& params,
                                       uint64_t seed, std::string name) {
  assert(params.genes >= static_cast<std::size_t>(params.modules));
  assert(params.modules > 0 && params.conditions > 0);
  common::Rng rng(seed);

  // Latent module profiles across conditions. Module 0 is the background:
  // flat, near the detection floor, where probe-level sigma is largest.
  std::vector<std::vector<double>> profiles(params.modules);
  for (int c = 0; c < params.modules; ++c) {
    auto& profile = profiles[c];
    profile.resize(params.conditions);
    const double base =
        c == 0 ? params.background_level
               : rng.Uniform(params.base_level_min, params.base_level_max);
    const double amplitude = c == 0 ? 0.2 : params.module_amplitude;
    for (auto& x : profile) {
      x = base + rng.Normal(0.0, amplitude);
    }
  }

  const auto background_genes = static_cast<std::size_t>(
      params.background_frac * static_cast<double>(params.genes));
  std::vector<uncertain::UncertainObject> objects;
  objects.reserve(params.genes);
  std::vector<int> labels;
  labels.reserve(params.genes);
  for (std::size_t g = 0; g < params.genes; ++g) {
    const int module =
        g < background_genes
            ? 0
            : 1 + static_cast<int>(g % (params.modules > 1
                                            ? static_cast<std::size_t>(
                                                  params.modules - 1)
                                            : 1));
    std::vector<uncertain::PdfPtr> dims;
    dims.reserve(params.conditions);
    for (std::size_t j = 0; j < params.conditions; ++j) {
      const double expr =
          profiles[module][j] + rng.Normal(0.0, params.gene_noise);
      // multi-mgMOS-like heteroscedasticity: probe-level sigma explodes as
      // the signal approaches the background level and flattens to a floor
      // at high expression.
      const double sigma =
          params.sigma_floor +
          params.sigma_low_expr * std::exp(-std::max(expr, 0.0) / 3.0);
      dims.push_back(uncertain::TruncatedNormalPdf::Make(expr, sigma));
    }
    objects.emplace_back(std::move(dims));
    labels.push_back(module);
  }
  return UncertainDataset(std::move(name), std::move(objects),
                          std::move(labels), params.modules);
}

common::Result<UncertainDataset> MakeMicroarrayByName(std::string_view name,
                                                      uint64_t seed,
                                                      double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    return common::Status::InvalidArgument("scale must be in (0, 1]");
  }
  for (const MicroarraySpec& spec : PaperMicroarraySpecs()) {
    if (name != spec.name) continue;
    MicroarrayParams params;
    params.conditions = spec.conditions;
    params.genes = std::max<std::size_t>(
        static_cast<std::size_t>(params.modules),
        static_cast<std::size_t>(
            std::llround(static_cast<double>(spec.genes) * scale)));
    return MakeMicroarrayDataset(params, seed, std::string(spec.name));
  }
  return common::Status::NotFound("unknown microarray dataset: " +
                                  std::string(name));
}

}  // namespace uclust::data
