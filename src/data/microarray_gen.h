// Simulated gene-expression microarray datasets with inherent probe-level
// uncertainty (Table 1b: Neuroblastoma 22282x14, Leukaemia 22690x21).
//
// The paper models probe-level uncertainty as per-probe Normal pdfs produced
// by multi-mgMOS (PUMA). We simulate the salient property of that model —
// heteroscedastic Normal uncertainty whose sigma grows as expression falls —
// on top of a latent gene-module structure, so the evaluated behaviour
// (class-correlated signal under realistic per-probe noise) is preserved
// without the proprietary source data.
#ifndef UCLUST_DATA_MICROARRAY_GEN_H_
#define UCLUST_DATA_MICROARRAY_GEN_H_

#include <span>
#include <string>
#include <string_view>

#include "common/status.h"
#include "data/dataset.h"

namespace uclust::data {

/// Parameters of the microarray simulator. Expression values are on a
/// log2-intensity-like scale.
///
/// Real expression arrays are dominated by a background of non-differential
/// genes sitting near the detection floor, where probe-level uncertainty is
/// largest (the multi-mgMOS signature); the informative co-expression
/// modules are a minority. `background_frac` controls that mass.
struct MicroarrayParams {
  std::size_t genes = 1000;       ///< Number of genes (= objects).
  std::size_t conditions = 14;    ///< Number of arrays (= dimensions).
  int modules = 20;               ///< Latent co-expression modules.
  double background_frac = 0.5;   ///< Fraction of genes near the floor.
  double background_level = 3.0;  ///< Background expression baseline.
  double base_level_min = 5.0;    ///< Min module baseline expression.
  double base_level_max = 12.0;   ///< Max module baseline expression.
  double module_amplitude = 1.5;  ///< Profile variation across conditions.
  double gene_noise = 0.4;        ///< Residual per-gene noise.
  double sigma_floor = 0.15;      ///< Probe-level sigma at high expression.
  double sigma_low_expr = 3.0;    ///< Extra sigma at very low expression.
};

/// Shape of one paper microarray dataset (Table 1b).
struct MicroarraySpec {
  const char* name;
  std::size_t genes;
  std::size_t conditions;
};

/// The two microarray datasets of Table 1b.
std::span<const MicroarraySpec> PaperMicroarraySpecs();

/// Generates a microarray-like uncertain dataset: one uncertain object per
/// gene with truncated-Normal probe-level pdfs. Module ids are stored as
/// reference labels (used only for diagnostics; Table 3 evaluates Q).
UncertainDataset MakeMicroarrayDataset(const MicroarrayParams& params,
                                       uint64_t seed, std::string name);

/// Generates "Neuroblastoma" or "Leukaemia" at `scale` in (0, 1] of the
/// paper's gene count.
common::Result<UncertainDataset> MakeMicroarrayByName(std::string_view name,
                                                      uint64_t seed,
                                                      double scale = 1.0);

}  // namespace uclust::data

#endif  // UCLUST_DATA_MICROARRAY_GEN_H_
