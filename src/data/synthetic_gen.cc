#include "data/synthetic_gen.h"

#include <cmath>
#include <utility>

#include "common/math_utils.h"
#include "data/uncertainty_model.h"
#include "io/dataset_writer.h"
#include "uncertain/discrete_pdf.h"

namespace uclust::data {

namespace {

// Discrete stand-in for MakeUncertainPdf: five point masses centered on w
// with half-spread sqrt(3)*scale (matching the uniform family's support).
uncertain::PdfPtr MakeDiscretePdf(double w, double scale, common::Rng* rng) {
  const double half = scale * std::sqrt(3.0);
  std::vector<double> values(5);
  for (double& v : values) v = w + rng->Uniform(-half, half);
  return uncertain::DiscretePdf::Uniformly(std::move(values));
}

// Mixture centers in the unit cube with pairwise distance >= min_sep,
// geometrically relaxed when rejection stalls (same scheme as
// data::MakeGaussianMixture).
std::vector<std::vector<double>> DrawCenters(std::size_t dims, int classes,
                                             double min_sep,
                                             common::Rng* rng) {
  std::vector<std::vector<double>> centers;
  double sep = min_sep;
  int stall = 0;
  while (static_cast<int>(centers.size()) < classes) {
    std::vector<double> c(dims);
    for (auto& x : c) x = rng->Uniform();
    bool ok = true;
    for (const auto& other : centers) {
      if (common::Distance(c, other) < sep) {
        ok = false;
        break;
      }
    }
    if (ok) {
      centers.push_back(std::move(c));
      stall = 0;
    } else if (++stall > 200) {
      sep *= 0.8;
      stall = 0;
    }
  }
  return centers;
}

}  // namespace

bool ParseGenFamily(const std::string& text, GenFamily* out) {
  if (text == "uniform") *out = GenFamily::kUniform;
  else if (text == "normal") *out = GenFamily::kNormal;
  else if (text == "exponential") *out = GenFamily::kExponential;
  else if (text == "discrete") *out = GenFamily::kDiscrete;
  else if (text == "mix") *out = GenFamily::kMix;
  else return false;
  return true;
}

const char* GenFamilyName(GenFamily family) {
  switch (family) {
    case GenFamily::kUniform: return "uniform";
    case GenFamily::kNormal: return "normal";
    case GenFamily::kExponential: return "exponential";
    case GenFamily::kDiscrete: return "discrete";
    case GenFamily::kMix: return "mix";
  }
  return "?";
}

common::Status ValidateSyntheticGenParams(const SyntheticGenParams& p) {
  if (p.n == 0 || p.m == 0 || p.classes < 1 ||
      p.n < static_cast<std::size_t>(p.classes) || p.min_scale_frac <= 0.0 ||
      p.min_scale_frac > p.max_scale_frac) {
    return common::Status::InvalidArgument(
        "synthetic_gen: invalid shape/scale parameters");
  }
  return common::Status::Ok();
}

SyntheticGenerator::SyntheticGenerator(const SyntheticGenParams& params)
    : params_(params) {
  // Master stream: centers and per-class spreads only (O(classes * m)).
  common::Rng master(params_.seed);
  centers_ = DrawCenters(params_.m, params_.classes, params_.min_separation,
                         &master);
  sigmas_.resize(params_.classes);
  for (auto& s : sigmas_) {
    s.resize(params_.m);
    for (auto& x : s) x = master.Uniform(params_.sigma_min, params_.sigma_max);
  }
}

uncertain::UncertainObject SyntheticGenerator::MakeObject(std::size_t i,
                                                          int* label) const {
  static constexpr GenFamily kCycle[] = {
      GenFamily::kUniform, GenFamily::kNormal, GenFamily::kExponential,
      GenFamily::kDiscrete};
  // Per-object sub-stream: the content is independent of generation order
  // or batching.
  common::Rng rng(common::DeriveSeed(params_.seed, i));
  const int c =
      static_cast<int>(rng.Index(static_cast<std::size_t>(params_.classes)));
  const GenFamily fam =
      params_.family == GenFamily::kMix ? kCycle[i % 4] : params_.family;
  std::vector<uncertain::PdfPtr> pdfs;
  pdfs.reserve(params_.m);
  for (std::size_t j = 0; j < params_.m; ++j) {
    const double w = rng.Normal(centers_[c][j], sigmas_[c][j]);
    const double scale = rng.Uniform(params_.min_scale_frac,
                                     params_.max_scale_frac);
    switch (fam) {
      case GenFamily::kUniform:
        pdfs.push_back(MakeUncertainPdf(PdfFamily::kUniform, w, scale));
        break;
      case GenFamily::kNormal:
        pdfs.push_back(MakeUncertainPdf(PdfFamily::kNormal, w, scale));
        break;
      case GenFamily::kExponential:
        pdfs.push_back(MakeUncertainPdf(PdfFamily::kExponential, w, scale));
        break;
      case GenFamily::kDiscrete:
        pdfs.push_back(MakeDiscretePdf(w, scale, &rng));
        break;
      case GenFamily::kMix:
        break;  // unreachable: fam is resolved above
    }
  }
  if (label != nullptr) *label = c;
  return uncertain::UncertainObject(std::move(pdfs));
}

common::Status WriteSyntheticDataset(const SyntheticGenParams& params,
                                     const std::string& out_path,
                                     const std::string& name) {
  common::Status st = ValidateSyntheticGenParams(params);
  if (!st.ok()) return st;
  const SyntheticGenerator gen(params);

  io::BinaryDatasetWriter writer;
  st = writer.Open(out_path, params.m, name, params.classes,
                   /*with_labels=*/true);
  if (!st.ok()) return st;
  for (std::size_t i = 0; i < params.n; ++i) {
    int label = -1;
    // Two statements: argument evaluation order must not decide whether
    // `label` is read before MakeObject stores it.
    const uncertain::UncertainObject object = gen.MakeObject(i, &label);
    st = writer.Append(object, label);
    if (!st.ok()) return st;
  }
  return writer.Finish();
}

}  // namespace uclust::data
