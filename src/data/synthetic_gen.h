// Synthetic uncertain-dataset generator (the paper's Section 5.1 protocol),
// extracted from tools/dataset_gen so tests and benches can produce the
// exact bytes the tool produces without shelling out.
//
// A labeled Gaussian mixture in the unit cube provides the deterministic
// class centers w; each (object, dimension) gets a pdf with expected value w
// and a randomly drawn scale. The master rng stream draws only the centers
// and per-class spreads (O(classes * m) state); every object then draws from
// its own sub-stream seeded with DeriveSeed(seed, i), so the generated
// content is a pure function of (params, i) — independent of generation
// order, batching, or how many objects are materialized.
//
// Determinism contract: for equal params, MakeObject(i) performs the exact
// same rng call sequence (class index, then per-dimension location / scale /
// discrete support draws) on every run, so WriteSyntheticDataset produces
// byte-identical files across runs and platforms with the same rng
// implementation. tests/test_dataset_gen.cc pins this.
#ifndef UCLUST_DATA_SYNTHETIC_GEN_H_
#define UCLUST_DATA_SYNTHETIC_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "uncertain/uncertain_object.h"

namespace uclust::data {

/// Pdf family selector: the paper's three continuous families, a discrete
/// stand-in (five weighted point masses), or a deterministic per-object
/// cycle through all four.
enum class GenFamily { kUniform, kNormal, kExponential, kDiscrete, kMix };

/// Parses "uniform" / "normal" / "exponential" / "discrete" / "mix".
/// Returns false (leaving *out untouched) on anything else.
bool ParseGenFamily(const std::string& text, GenFamily* out);

/// Display name matching ParseGenFamily's spellings.
const char* GenFamilyName(GenFamily family);

/// Generation parameters; defaults mirror tools/dataset_gen's flags.
struct SyntheticGenParams {
  std::size_t n = 10000;          ///< Objects.
  std::size_t m = 8;              ///< Dimensions.
  int classes = 4;                ///< Mixture components / class labels.
  GenFamily family = GenFamily::kNormal;
  double min_scale_frac = 0.02;   ///< Min pdf scale (fraction of unit range).
  double max_scale_frac = 0.10;   ///< Max pdf scale.
  double sigma_min = 0.04;        ///< Min per-dimension class stddev.
  double sigma_max = 0.09;        ///< Max per-dimension class stddev.
  double min_separation = 0.25;   ///< Min pairwise center distance.
  uint64_t seed = 1;              ///< Master seed.
};

/// Rejects empty shapes, n < classes, and non-positive / inverted scale
/// ranges — the same guard tools/dataset_gen applies to its flags.
common::Status ValidateSyntheticGenParams(const SyntheticGenParams& params);

/// The generator core. Construction consumes the master stream (centers +
/// per-class spreads); MakeObject(i) is then const and order-independent.
class SyntheticGenerator {
 public:
  /// `params` must satisfy ValidateSyntheticGenParams.
  explicit SyntheticGenerator(const SyntheticGenParams& params);

  const SyntheticGenParams& params() const { return params_; }
  /// Mixture centers actually drawn (pairwise separation may have been
  /// geometrically relaxed if rejection stalled).
  const std::vector<std::vector<double>>& centers() const { return centers_; }

  /// Generates object i from its own sub-stream. Stores the drawn class
  /// label in *label (always in [0, classes)).
  uncertain::UncertainObject MakeObject(std::size_t i, int* label) const;

 private:
  SyntheticGenParams params_;
  std::vector<std::vector<double>> centers_;
  std::vector<std::vector<double>> sigmas_;
};

/// One bounded-memory pass: generates all n objects and streams them to
/// `out_path` in the binary dataset format with labels (O(classes * m)
/// working memory plus the writer's label column). `name` is the dataset
/// name stored in the file header.
common::Status WriteSyntheticDataset(const SyntheticGenParams& params,
                                     const std::string& out_path,
                                     const std::string& name);

}  // namespace uclust::data

#endif  // UCLUST_DATA_SYNTHETIC_GEN_H_
