#include "data/uncertainty_model.h"

#include <cassert>
#include <cmath>

#include "uncertain/exponential_pdf.h"
#include "uncertain/normal_pdf.h"
#include "uncertain/uniform_pdf.h"

namespace uclust::data {

const char* PdfFamilyName(PdfFamily family) {
  switch (family) {
    case PdfFamily::kUniform:
      return "uniform";
    case PdfFamily::kNormal:
      return "normal";
    case PdfFamily::kExponential:
      return "exponential";
  }
  return "unknown";
}

common::Result<PdfFamily> ParsePdfFamily(std::string_view text) {
  if (text == "uniform" || text == "U") return PdfFamily::kUniform;
  if (text == "normal" || text == "N") return PdfFamily::kNormal;
  if (text == "exponential" || text == "E") return PdfFamily::kExponential;
  return common::Status::InvalidArgument("unknown pdf family: " +
                                         std::string(text));
}

uncertain::PdfPtr MakeUncertainPdf(PdfFamily family, double w, double scale) {
  assert(scale > 0.0);
  switch (family) {
    case PdfFamily::kUniform:
      // Half-width sqrt(3)*scale gives variance exactly scale^2.
      return uncertain::UniformPdf::Centered(w, scale * std::sqrt(3.0));
    case PdfFamily::kNormal:
      return uncertain::TruncatedNormalPdf::Make(w, scale);
    case PdfFamily::kExponential:
      return uncertain::TruncatedExponentialPdf::Make(w, 1.0 / scale);
  }
  return nullptr;
}

UncertaintyModel::UncertaintyModel(const DeterministicDataset& source,
                                   const UncertaintyParams& params,
                                   uint64_t seed)
    : name_(source.name),
      size_(source.size()),
      dims_(source.dims()),
      labels_(source.labels),
      num_classes_(source.num_classes) {
  assert(size_ > 0);
  assert(params.min_scale_frac > 0.0 &&
         params.min_scale_frac <= params.max_scale_frac);
  common::Rng rng(seed);
  const auto ranges = source.DimensionRanges();
  pdfs_.reserve(size_ * dims_);
  for (std::size_t i = 0; i < size_; ++i) {
    for (std::size_t j = 0; j < dims_; ++j) {
      const double span = ranges[j].second - ranges[j].first;
      const double range = span > 0.0 ? span : 1.0;
      const double scale =
          range * rng.Uniform(params.min_scale_frac, params.max_scale_frac);
      pdfs_.push_back(
          MakeUncertainPdf(params.family, source.points[i][j], scale));
    }
  }
}

DeterministicDataset UncertaintyModel::Perturbed(uint64_t seed) const {
  common::Rng rng(seed);
  DeterministicDataset out;
  out.name = name_ + "-perturbed";
  out.labels = labels_;
  out.num_classes = num_classes_;
  out.points.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    std::vector<double> p(dims_);
    for (std::size_t j = 0; j < dims_; ++j) {
      p[j] = pdfs_[i * dims_ + j]->Sample(&rng);
    }
    out.points.push_back(std::move(p));
  }
  return out;
}

UncertainDataset UncertaintyModel::Uncertain() const {
  std::vector<uncertain::UncertainObject> objects;
  objects.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    std::vector<uncertain::PdfPtr> dims(pdfs_.begin() + i * dims_,
                                        pdfs_.begin() + (i + 1) * dims_);
    objects.emplace_back(std::move(dims));
  }
  return UncertainDataset(name_ + "-uncertain", std::move(objects), labels_,
                          num_classes_);
}

}  // namespace uclust::data
