// The paper's uncertainty-generation protocol (Section 5.1).
//
// Given a deterministic dataset D, a pdf f_w is assigned to every point w so
// that E[f_w] = w while all other parameters are drawn at random. Two derived
// datasets drive the Theta evaluation:
//   Case 1: D'  — a perturbed deterministic dataset (one draw from each f_w);
//   Case 2: D'' — the uncertain dataset whose objects are (R_w, f_w) with
//                 R_w the region holding ~95% of the mass of f_w.
#ifndef UCLUST_DATA_UNCERTAINTY_MODEL_H_
#define UCLUST_DATA_UNCERTAINTY_MODEL_H_

#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "uncertain/pdf.h"

namespace uclust::data {

/// Families of generated pdfs used in the paper's experiments.
enum class PdfFamily { kUniform, kNormal, kExponential };

/// Short display name ("uniform" / "normal" / "exponential").
const char* PdfFamilyName(PdfFamily family);

/// Parses a family name (case-sensitive, accepts "U"/"N"/"E" shorthands).
common::Result<PdfFamily> ParsePdfFamily(std::string_view text);

/// Controls the randomly drawn per-point/per-dimension uncertainty scales.
///
/// `scale` below means "standard-deviation magnitude": for Uniform the
/// half-width is scale*sqrt(3) (variance = scale^2), for Normal sigma = scale
/// (the 95% truncation shrinks it slightly), for Exponential 1/rate = scale.
struct UncertaintyParams {
  PdfFamily family = PdfFamily::kNormal;
  /// Minimum relative scale (fraction of the per-dimension data range).
  double min_scale_frac = 0.02;
  /// Maximum relative scale (fraction of the per-dimension data range).
  double max_scale_frac = 0.10;
};

/// Creates a pdf with truncated mean exactly `w` and the given absolute
/// standard-deviation-magnitude `scale` (> 0).
uncertain::PdfPtr MakeUncertainPdf(PdfFamily family, double w, double scale);

/// A fully instantiated uncertainty assignment over a deterministic dataset:
/// one pdf per (point, dimension), drawn deterministically from a seed.
class UncertaintyModel {
 public:
  /// Assigns pdfs to every point of `source`; the pdf parameters (scales)
  /// are drawn once using `seed`. `source` must be valid and non-empty.
  UncertaintyModel(const DeterministicDataset& source,
                   const UncertaintyParams& params, uint64_t seed);

  /// Case 1: a perturbed deterministic dataset D' (fresh draws from the
  /// assigned pdfs using `seed`). Labels are carried over.
  DeterministicDataset Perturbed(uint64_t seed) const;

  /// Case 2: the uncertain dataset D'' whose objects share the assigned
  /// pdfs. Labels are carried over.
  UncertainDataset Uncertain() const;

  /// The pdf assigned to point i, dimension j.
  const uncertain::Pdf& pdf(std::size_t i, std::size_t j) const {
    return *pdfs_[i * dims_ + j];
  }

 private:
  std::string name_;
  std::size_t size_;
  std::size_t dims_;
  std::vector<int> labels_;
  int num_classes_;
  std::vector<uncertain::PdfPtr> pdfs_;  // row-major size_ x dims_
};

}  // namespace uclust::data

#endif  // UCLUST_DATA_UNCERTAINTY_MODEL_H_
