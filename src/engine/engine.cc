#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "clustering/simd/simd.h"
#include "common/cli.h"

namespace uclust::engine {

namespace {

// Applies EngineConfig::simd_isa to the process-global kernel dispatcher.
// Unknown or unavailable requests fall back to auto (with a stderr warning)
// rather than failing construction: the fallback is value-identical, only
// slower/faster.
void ApplySimdIsa(const std::string& name) {
  clustering::simd::Isa isa;
  if (!clustering::simd::IsaFromString(name, &isa)) {
    std::fprintf(stderr,
                 "engine: unknown simd_isa '%s', using auto (%s)\n",
                 name.c_str(),
                 clustering::simd::IsaName(
                     clustering::simd::DetectBestIsa()).c_str());
    clustering::simd::ForceIsa(clustering::simd::Isa::kAuto);
    return;
  }
  if (!clustering::simd::ForceIsa(isa)) {
    std::fprintf(stderr,
                 "engine: simd_isa '%s' not available on this "
                 "build/cpu, using auto (%s)\n",
                 name.c_str(),
                 clustering::simd::IsaName(
                     clustering::simd::DetectBestIsa()).c_str());
    clustering::simd::ForceIsa(clustering::simd::Isa::kAuto);
  }
}

}  // namespace

Engine::Engine(const EngineConfig& config) {
  block_size_ = std::max<std::size_t>(config.block_size, 1);
  memory_budget_bytes_ = config.memory_budget_bytes;
  moment_chunk_rows_ = config.moment_chunk_rows;
  sample_chunk_rows_ = config.sample_chunk_rows;
  pairwise_gather_tiles_ = config.pairwise_gather_tiles;
  pairwise_warm_rows_ = config.pairwise_warm_rows;
  pairwise_pruned_sweeps_ = config.pairwise_pruned_sweeps;
  ukmeans_ckmeans_reduction_ = config.ukmeans_ckmeans_reduction;
  ukmeans_bound_pruning_ = config.ukmeans_bound_pruning;
  ukmeans_minibatch_size_ = config.ukmeans_minibatch_size;
  spatial_index_ = config.spatial_index;
  ApplySimdIsa(config.simd_isa);
  int threads = config.num_threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(threads, 1);
  if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads - 1);
}

const Engine& Engine::Serial() {
  static const Engine* serial = new Engine();
  return *serial;
}

std::string Engine::simd_isa() const {
  return clustering::simd::IsaName(clustering::simd::ActiveIsa());
}

namespace {

// Strict value grammars shared by every knob. Unlike ArgParser's lenient
// getters, a malformed value is an error, not a silent default.
common::Status ParseKnobInt(const std::string& key, const std::string& value,
                            int64_t min, int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || v < min) {
    return common::Status::InvalidArgument(
        "engine knob '" + key + "': expected an integer >= " +
        std::to_string(min) + ", got '" + value + "'");
  }
  *out = static_cast<int64_t>(v);
  return common::Status::Ok();
}

common::Status ParseKnobBool(const std::string& key, const std::string& value,
                             bool* out) {
  if (value == "true" || value == "1" || value == "yes") {
    *out = true;
    return common::Status::Ok();
  }
  if (value == "false" || value == "0" || value == "no") {
    *out = false;
    return common::Status::Ok();
  }
  return common::Status::InvalidArgument(
      "engine knob '" + key + "': expected true/1/yes or false/0/no, got '" +
      value + "'");
}

}  // namespace

common::Status ApplyEngineKnob(const std::string& key,
                               const std::string& value, EngineConfig* cfg) {
  int64_t n = 0;
  bool b = false;
  if (key == "threads") {
    UCLUST_RETURN_NOT_OK(ParseKnobInt(key, value, 0, &n));
    cfg->num_threads = static_cast<int>(n);
  } else if (key == "block_size") {
    UCLUST_RETURN_NOT_OK(ParseKnobInt(key, value, 1, &n));
    cfg->block_size = static_cast<std::size_t>(n);
  } else if (key == "memory_budget_bytes") {
    UCLUST_RETURN_NOT_OK(ParseKnobInt(key, value, 0, &n));
    cfg->memory_budget_bytes = static_cast<std::size_t>(n);
  } else if (key == "memory_budget_mb") {
    UCLUST_RETURN_NOT_OK(ParseKnobInt(key, value, 0, &n));
    cfg->memory_budget_bytes =
        static_cast<std::size_t>(n) * (std::size_t{1} << 20);
  } else if (key == "moment_chunk_rows") {
    UCLUST_RETURN_NOT_OK(ParseKnobInt(key, value, 0, &n));
    cfg->moment_chunk_rows = static_cast<std::size_t>(n);
  } else if (key == "sample_chunk_rows") {
    UCLUST_RETURN_NOT_OK(ParseKnobInt(key, value, 0, &n));
    cfg->sample_chunk_rows = static_cast<std::size_t>(n);
  } else if (key == "pairwise_gather_tiles") {
    UCLUST_RETURN_NOT_OK(ParseKnobBool(key, value, &b));
    cfg->pairwise_gather_tiles = b;
  } else if (key == "pairwise_warm_rows") {
    UCLUST_RETURN_NOT_OK(ParseKnobBool(key, value, &b));
    cfg->pairwise_warm_rows = b;
  } else if (key == "pairwise_pruned_sweeps") {
    UCLUST_RETURN_NOT_OK(ParseKnobBool(key, value, &b));
    cfg->pairwise_pruned_sweeps = b;
  } else if (key == "ukmeans_ckmeans_reduction") {
    UCLUST_RETURN_NOT_OK(ParseKnobBool(key, value, &b));
    cfg->ukmeans_ckmeans_reduction = b;
  } else if (key == "ukmeans_bound_pruning") {
    UCLUST_RETURN_NOT_OK(ParseKnobBool(key, value, &b));
    cfg->ukmeans_bound_pruning = b;
  } else if (key == "ukmeans_minibatch_size") {
    UCLUST_RETURN_NOT_OK(ParseKnobInt(key, value, 0, &n));
    cfg->ukmeans_minibatch_size = static_cast<std::size_t>(n);
  } else if (key == "simd_isa") {
    clustering::simd::Isa isa;
    if (!clustering::simd::IsaFromString(value, &isa)) {
      return common::Status::InvalidArgument(
          "engine knob 'simd_isa': expected auto, scalar, avx2, or neon, "
          "got '" + value + "'");
    }
    cfg->simd_isa = value;
  } else if (key == "spatial_index") {
    if (value != "auto" && value != "rtree" && value != "grid" &&
        value != "off") {
      return common::Status::InvalidArgument(
          "engine knob 'spatial_index': expected auto, rtree, grid, or off, "
          "got '" + value + "'");
    }
    cfg->spatial_index = value;
  } else {
    return common::Status::InvalidArgument("unknown engine knob '" + key +
                                           "'");
  }
  return common::Status::Ok();
}

const std::vector<std::string>& EngineKnobNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "threads",
      "block_size",
      "memory_budget_mb",
      "memory_budget_bytes",
      "moment_chunk_rows",
      "sample_chunk_rows",
      "pairwise_gather_tiles",
      "pairwise_warm_rows",
      "pairwise_pruned_sweeps",
      "ukmeans_ckmeans_reduction",
      "ukmeans_bound_pruning",
      "ukmeans_minibatch_size",
      "simd_isa",
      "spatial_index",
  };
  return *names;
}

EngineConfig EngineConfigFromArgs(const common::ArgParser& args) {
  EngineConfig config;
  for (const std::string& key : EngineKnobNames()) {
    if (!args.Has(key)) continue;
    const common::Status st =
        ApplyEngineKnob(key, args.GetString(key, ""), &config);
    if (!st.ok()) {
      std::fprintf(stderr, "engine: %s (keeping the default)\n",
                   st.message().c_str());
    }
  }
  return config;
}

}  // namespace uclust::engine
