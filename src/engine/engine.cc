#include "engine/engine.h"

#include <algorithm>
#include <thread>

#include "common/cli.h"

namespace uclust::engine {

Engine::Engine(const EngineConfig& config) {
  block_size_ = std::max<std::size_t>(config.block_size, 1);
  int threads = config.num_threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(threads, 1);
  if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads - 1);
}

const Engine& Engine::Serial() {
  static const Engine* serial = new Engine();
  return *serial;
}

EngineConfig EngineConfigFromArgs(const common::ArgParser& args) {
  EngineConfig config;
  config.num_threads = static_cast<int>(args.GetInt("threads", 1));
  config.block_size =
      static_cast<std::size_t>(args.GetInt("block_size", 1024));
  return config;
}

}  // namespace uclust::engine
