#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "clustering/simd/simd.h"
#include "common/cli.h"

namespace uclust::engine {

namespace {

// Applies EngineConfig::simd_isa to the process-global kernel dispatcher.
// Unknown or unavailable requests fall back to auto (with a stderr warning)
// rather than failing construction: the fallback is value-identical, only
// slower/faster.
void ApplySimdIsa(const std::string& name) {
  clustering::simd::Isa isa;
  if (!clustering::simd::IsaFromString(name, &isa)) {
    std::fprintf(stderr,
                 "engine: unknown simd_isa '%s', using auto (%s)\n",
                 name.c_str(),
                 clustering::simd::IsaName(
                     clustering::simd::DetectBestIsa()).c_str());
    clustering::simd::ForceIsa(clustering::simd::Isa::kAuto);
    return;
  }
  if (!clustering::simd::ForceIsa(isa)) {
    std::fprintf(stderr,
                 "engine: simd_isa '%s' not available on this "
                 "build/cpu, using auto (%s)\n",
                 name.c_str(),
                 clustering::simd::IsaName(
                     clustering::simd::DetectBestIsa()).c_str());
    clustering::simd::ForceIsa(clustering::simd::Isa::kAuto);
  }
}

}  // namespace

Engine::Engine(const EngineConfig& config) {
  block_size_ = std::max<std::size_t>(config.block_size, 1);
  memory_budget_bytes_ = config.memory_budget_bytes;
  moment_chunk_rows_ = config.moment_chunk_rows;
  pairwise_gather_tiles_ = config.pairwise_gather_tiles;
  pairwise_warm_rows_ = config.pairwise_warm_rows;
  pairwise_pruned_sweeps_ = config.pairwise_pruned_sweeps;
  ukmeans_ckmeans_reduction_ = config.ukmeans_ckmeans_reduction;
  ukmeans_bound_pruning_ = config.ukmeans_bound_pruning;
  ukmeans_minibatch_size_ = config.ukmeans_minibatch_size;
  ApplySimdIsa(config.simd_isa);
  int threads = config.num_threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(threads, 1);
  if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads - 1);
}

const Engine& Engine::Serial() {
  static const Engine* serial = new Engine();
  return *serial;
}

std::string Engine::simd_isa() const {
  return clustering::simd::IsaName(clustering::simd::ActiveIsa());
}

EngineConfig EngineConfigFromArgs(const common::ArgParser& args) {
  EngineConfig config;
  config.num_threads = static_cast<int>(args.GetInt("threads", 1));
  config.block_size =
      static_cast<std::size_t>(args.GetInt("block_size", 1024));
  config.memory_budget_bytes = static_cast<std::size_t>(
      args.GetInt("memory_budget_mb", 0)) * (std::size_t{1} << 20);
  if (args.Has("memory_budget_bytes")) {
    config.memory_budget_bytes =
        static_cast<std::size_t>(args.GetInt("memory_budget_bytes", 0));
  }
  config.moment_chunk_rows =
      static_cast<std::size_t>(args.GetInt("moment_chunk_rows", 0));
  config.pairwise_gather_tiles = args.GetBool("pairwise_gather_tiles", true);
  config.pairwise_warm_rows = args.GetBool("pairwise_warm_rows", true);
  config.pairwise_pruned_sweeps =
      args.GetBool("pairwise_pruned_sweeps", true);
  config.ukmeans_ckmeans_reduction =
      args.GetBool("ukmeans_ckmeans_reduction", true);
  config.ukmeans_bound_pruning = args.GetBool("ukmeans_bound_pruning", true);
  config.ukmeans_minibatch_size =
      static_cast<std::size_t>(args.GetInt("ukmeans_minibatch_size", 0));
  config.simd_isa = args.GetString("simd_isa", "auto");
  return config;
}

}  // namespace uclust::engine
