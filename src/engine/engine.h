// Execution-engine configuration and the shared Engine handle.
//
// Every compute path in the library (assignment sweeps, relocation passes,
// pairwise tables, sample drawing) dispatches through an Engine. An Engine
// is a cheap copyable handle: copies share one ThreadPool, so a whole
// algorithm registry can run on a single pool. The default-constructed
// Engine is serial and allocates no threads, which keeps single-threaded
// call sites (and unit tests) zero-overhead.
//
// Determinism contract: for a fixed EngineConfig::block_size, every kernel
// built on this engine produces bit-identical results for ANY num_threads,
// because reductions always combine per-block partials in block order (see
// parallel_for.h). Changing block_size may change floating-point rounding,
// never correctness.
#ifndef UCLUST_ENGINE_ENGINE_H_
#define UCLUST_ENGINE_ENGINE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/thread_pool.h"

namespace uclust::common {
class ArgParser;
}  // namespace uclust::common

namespace uclust::engine {

/// User-facing execution knobs.
struct EngineConfig {
  /// Total concurrency (pool workers + calling thread). 1 = serial;
  /// 0 = use the hardware concurrency.
  int num_threads = 1;
  /// Objects per block in blocked-range loops. Fixed block boundaries are
  /// what make reductions independent of the thread count.
  std::size_t block_size = 1024;
  /// Upper bound on the bytes a memory-hungry artifact may materialize at
  /// once. 0 = unlimited (dense n x n tables, fully resident moment columns
  /// — the classic behavior). A finite budget makes every PairwiseStore
  /// consumer (UK-medoids, UAHC, FOPTICS, FDBSCAN) switch to tiled or
  /// on-the-fly ED^ access, and makes file-backed moment ingestion
  /// (io::StreamMomentStoreFromFile) spill moment columns whose resident
  /// size exceeds the budget to an mmap-backed .umom sidecar; clusterings
  /// are bit-identical either way.
  std::size_t memory_budget_bytes = 0;
  /// Rows per chunk of a Mapped moment store (io::MappedMomentStore).
  /// Rounded up to a power of two by consumers; 0 = the format default
  /// (io::kDefaultMomentChunkRows, 4096). Changes chunk/prefetch
  /// granularity and the span-validity window, never the served values.
  std::size_t moment_chunk_rows = 0;
  /// Objects per chunk of a Mapped sample store (io::MappedSampleStore).
  /// Rounded up to a power of two by consumers; 0 = a budget-derived size,
  /// then the format default (io::kDefaultSampleChunkRows, 512). Changes
  /// chunk/prefetch granularity and the span-validity window, never the
  /// served sample bytes.
  std::size_t sample_chunk_rows = 0;
  /// Workload-aware PairwiseStore tile policies. All three are pure
  /// recompute/memory optimizations: clusterings are bit-identical with any
  /// combination of them, on every backend, at any thread count.
  ///
  /// Gather tiles: candidate x member slabs for the UK-medoids swap sweep
  /// (and batched candidate-row gathers) are computed asymmetrically —
  /// only the entries the sweep reads — instead of faulting full row tiles.
  bool pairwise_gather_tiles = true;
  /// Warm rows: gathered rows are retained across consumer iterations (PAM
  /// rounds, Lance-Williams merges) in a budget-bounded warm cache with a
  /// generation/invalidation protocol (see PairwiseStore::BeginGeneration).
  bool pairwise_warm_rows = true;
  /// Pruned sweeps: streaming pair sweeps (the FDBSCAN distance-probability
  /// sweep) skip pairs whose value is provably 0 under cheap spatial bounds
  /// (clustering::PairwiseBoundIndex) before any kernel evaluation.
  bool pairwise_pruned_sweeps = true;
  /// UK-means fast-path knobs (the CK-means moment reduction; see
  /// clustering/ckmeans.h). Both toggles are pure recompute/memory
  /// optimizations under the library determinism contract: labels,
  /// objective, and iteration count are bit-identical to the direct
  /// UK-means sweeps with any combination, at any thread count.
  ///
  /// Reduction: run the Lloyd loop on per-object expected centroids plus an
  /// additive constant (König-Huygens) copied out of the MomentView once —
  /// on a Mapped (out-of-core) store this replaces per-sweep chunk faults
  /// with one sequential pass and ~(m+1)/(3m+1) of the resident bytes.
  bool ukmeans_ckmeans_reduction = true;
  /// Bound pruning: maintain Hamerly-style per-object upper/lower bounds
  /// from per-center drift norms and skip provably unchanged assignments,
  /// making late sweeps O(n) instead of O(n k) distance evaluations
  /// (counted by ClusteringResult::center_distance_evals/bounds_skipped).
  bool ukmeans_bound_pruning = true;
  /// Mini-batch rows per streamed batch for the file-backed CK-means driver
  /// (clustering::CkMeans::ClusterFile). 0 = auto: keep the reduced
  /// representation resident when it fits memory_budget_bytes, otherwise
  /// re-stream the file per iteration at the default batch size. A nonzero
  /// value forces the epoch-streaming driver with that batch size. Pure
  /// memory knob: results are bit-identical for every value.
  std::size_t ukmeans_minibatch_size = 0;
  /// SIMD instruction-set path for the inner-loop kernels
  /// (clustering/simd/): "auto" (best compiled-and-supported path — AVX2 on
  /// capable x86, NEON on aarch64, else scalar), or "scalar"/"avx2"/"neon"
  /// to force one. The selection is process-global (the kernels dispatch
  /// through one table; the last Engine constructed wins) and is a pure
  /// throughput knob: every path uses the same lane-blocked accumulation
  /// order, so results are bit-identical whichever path runs. Forcing an
  /// unavailable path falls back to auto with a warning on stderr.
  std::string simd_isa = "auto";
  /// Spatial index over the per-object region boxes for the pairwise
  /// candidate sweeps (clustering::SpatialIndex): "auto" (grid for low
  /// dimensions, STR R-tree otherwise), "rtree"/"grid" to force a
  /// structure, "off" for the all-pairs bound sweeps. Pure recompute knob
  /// under the determinism contract: the index only narrows which pairs
  /// are *tested*, never which values are served, so clusterings are
  /// bit-identical for every setting.
  std::string spatial_index = "auto";
};

/// Copyable handle bundling an EngineConfig with a (shared) thread pool.
class Engine {
 public:
  /// Serial engine: no pool, every ParallelFor runs inline.
  Engine() = default;

  /// Engine honoring `config`; spawns a pool only when num_threads > 1.
  explicit Engine(const EngineConfig& config);

  /// Shared serial instance for default arguments.
  static const Engine& Serial();

  /// Effective concurrency (>= 1).
  int num_threads() const {
    return pool_ ? pool_->max_concurrency() : 1;
  }
  /// Block size for blocked-range loops (>= 1).
  std::size_t block_size() const { return block_size_; }
  /// Memory budget in bytes for pairwise tables and moment columns
  /// (0 = unlimited).
  std::size_t memory_budget_bytes() const { return memory_budget_bytes_; }
  /// Mapped moment-store chunk-rows hint (0 = format default).
  std::size_t moment_chunk_rows() const { return moment_chunk_rows_; }
  /// Mapped sample-store chunk-rows hint (0 = budget-derived/default).
  std::size_t sample_chunk_rows() const { return sample_chunk_rows_; }
  /// Asymmetric gather-tile policy for PairwiseStore consumers.
  bool pairwise_gather_tiles() const { return pairwise_gather_tiles_; }
  /// Iteration-scoped warm-row reuse policy for PairwiseStore.
  bool pairwise_warm_rows() const { return pairwise_warm_rows_; }
  /// Bound-based pair pruning policy for streaming pairwise sweeps.
  bool pairwise_pruned_sweeps() const { return pairwise_pruned_sweeps_; }
  /// CK-means moment-reduction fast path for UK-means.
  bool ukmeans_ckmeans_reduction() const { return ukmeans_ckmeans_reduction_; }
  /// Hamerly/Elkan bound pruning for the CK-means assignment sweeps.
  bool ukmeans_bound_pruning() const { return ukmeans_bound_pruning_; }
  /// Mini-batch size for the file-backed CK-means driver (0 = auto).
  std::size_t ukmeans_minibatch_size() const {
    return ukmeans_minibatch_size_;
  }
  /// The SIMD path this engine resolved at construction ("scalar"/"avx2"/
  /// "neon" — never "auto"; the default-constructed serial engine reports
  /// whatever the process-global dispatcher currently runs).
  std::string simd_isa() const;
  /// Spatial-index structure request for candidate sweeps
  /// ("auto"/"rtree"/"grid"/"off").
  const std::string& spatial_index() const { return spatial_index_; }
  /// The pool, or nullptr when serial.
  ThreadPool* pool() const { return pool_.get(); }

 private:
  std::size_t block_size_ = 1024;
  std::size_t memory_budget_bytes_ = 0;
  std::size_t moment_chunk_rows_ = 0;
  std::size_t sample_chunk_rows_ = 0;
  bool pairwise_gather_tiles_ = true;
  bool pairwise_warm_rows_ = true;
  bool pairwise_pruned_sweeps_ = true;
  bool ukmeans_ckmeans_reduction_ = true;
  bool ukmeans_bound_pruning_ = true;
  std::size_t ukmeans_minibatch_size_ = 0;
  std::string spatial_index_ = "auto";
  std::shared_ptr<ThreadPool> pool_;
};

/// The canonical string-knob table. Every path from external strings to an
/// EngineConfig — bench/tool flags via common::ParseEngineFlags, the
/// service's JSON JobSpec — applies knobs through this one function, so
/// the accepted keys, value grammar, and defaults cannot drift per binary.
///
/// Keys (the `--key=value` flag spellings without dashes):
///   threads                   int >= 0 (0 = hardware concurrency)
///   block_size                int >= 1
///   memory_budget_bytes       int >= 0 (0 = unlimited)
///   memory_budget_mb          convenience form; sets the bytes field
///   moment_chunk_rows         int >= 0 (0 = format default)
///   sample_chunk_rows         int >= 0 (0 = budget-derived/default)
///   pairwise_gather_tiles     bool (true/1/yes | false/0/no)
///   pairwise_warm_rows        bool
///   pairwise_pruned_sweeps    bool
///   ukmeans_ckmeans_reduction bool
///   ukmeans_bound_pruning     bool
///   ukmeans_minibatch_size    int >= 0 (0 = auto)
///   simd_isa                  auto|scalar|avx2|neon (name validated here;
///                             availability resolves at Engine construction)
///   spatial_index             auto|rtree|grid|off (candidate-sweep index
///                             over region boxes; auto picks by dimension)
///
/// Returns InvalidArgument for an unknown key or an unparsable value;
/// `cfg` is unchanged on error. Later applications override earlier ones
/// (so memory_budget_bytes after memory_budget_mb wins, and vice versa).
common::Status ApplyEngineKnob(const std::string& key,
                               const std::string& value, EngineConfig* cfg);

/// The knob keys ApplyEngineKnob accepts, in canonical order
/// (memory_budget_mb before memory_budget_bytes, so flag parsing preserves
/// the historical "bytes win when both are given" rule).
const std::vector<std::string>& EngineKnobNames();

/// Reads every ApplyEngineKnob key present in `args` (see the key table
/// above). Invalid values keep the default and warn on stderr — the
/// legacy lenient behavior; new code should prefer
/// common::ParseEngineFlags, which surfaces them as errors.
EngineConfig EngineConfigFromArgs(const common::ArgParser& args);

}  // namespace uclust::engine

#endif  // UCLUST_ENGINE_ENGINE_H_
