// Execution-engine configuration and the shared Engine handle.
//
// Every compute path in the library (assignment sweeps, relocation passes,
// pairwise tables, sample drawing) dispatches through an Engine. An Engine
// is a cheap copyable handle: copies share one ThreadPool, so a whole
// algorithm registry can run on a single pool. The default-constructed
// Engine is serial and allocates no threads, which keeps single-threaded
// call sites (and unit tests) zero-overhead.
//
// Determinism contract: for a fixed EngineConfig::block_size, every kernel
// built on this engine produces bit-identical results for ANY num_threads,
// because reductions always combine per-block partials in block order (see
// parallel_for.h). Changing block_size may change floating-point rounding,
// never correctness.
#ifndef UCLUST_ENGINE_ENGINE_H_
#define UCLUST_ENGINE_ENGINE_H_

#include <cstddef>
#include <memory>

#include "engine/thread_pool.h"

namespace uclust::common {
class ArgParser;
}  // namespace uclust::common

namespace uclust::engine {

/// User-facing execution knobs.
struct EngineConfig {
  /// Total concurrency (pool workers + calling thread). 1 = serial;
  /// 0 = use the hardware concurrency.
  int num_threads = 1;
  /// Objects per block in blocked-range loops. Fixed block boundaries are
  /// what make reductions independent of the thread count.
  std::size_t block_size = 1024;
};

/// Copyable handle bundling an EngineConfig with a (shared) thread pool.
class Engine {
 public:
  /// Serial engine: no pool, every ParallelFor runs inline.
  Engine() = default;

  /// Engine honoring `config`; spawns a pool only when num_threads > 1.
  explicit Engine(const EngineConfig& config);

  /// Shared serial instance for default arguments.
  static const Engine& Serial();

  /// Effective concurrency (>= 1).
  int num_threads() const {
    return pool_ ? pool_->max_concurrency() : 1;
  }
  /// Block size for blocked-range loops (>= 1).
  std::size_t block_size() const { return block_size_; }
  /// The pool, or nullptr when serial.
  ThreadPool* pool() const { return pool_.get(); }

 private:
  std::size_t block_size_ = 1024;
  std::shared_ptr<ThreadPool> pool_;
};

/// Reads `--threads=N` (0 = auto) and `--block_size=B` from parsed flags.
EngineConfig EngineConfigFromArgs(const common::ArgParser& args);

}  // namespace uclust::engine

#endif  // UCLUST_ENGINE_ENGINE_H_
