// Blocked-range parallel loops and deterministic reductions over an Engine.
//
// The partition of [0, n) into blocks depends only on block_size — never on
// the thread count — and MapBlocks() hands back the per-block results in
// block order. Reducing those partials sequentially therefore yields the
// same floating-point result for 1 thread and for N threads, which is the
// library-wide determinism contract (see engine.h).
#ifndef UCLUST_ENGINE_PARALLEL_FOR_H_
#define UCLUST_ENGINE_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "engine/engine.h"

namespace uclust::engine {

/// One contiguous chunk of a blocked iteration space.
struct BlockedRange {
  std::size_t begin = 0;  ///< First index of the block.
  std::size_t end = 0;    ///< One past the last index.
  std::size_t index = 0;  ///< Block number in [0, NumBlocks(n, block_size)).
};

/// Number of blocks covering [0, n) at the given block size.
inline std::size_t NumBlocks(std::size_t n, std::size_t block_size) {
  return block_size == 0 ? 0 : (n + block_size - 1) / block_size;
}

/// Clamps a workload-derived block size into [1, eng.block_size()] — the
/// single rule for every kernel that shrinks its blocks for load balance
/// (triangular row skew, shallow tiles) but must never exceed the engine's
/// configured determinism grid.
inline std::size_t ClampBlock(const Engine& eng, std::size_t block) {
  if (block < 1) return 1;
  return block < eng.block_size() ? block : eng.block_size();
}

/// Runs fn(BlockedRange) over every block of [0, n). Blocks run concurrently
/// on the engine's pool (inline, in order, when the engine is serial or the
/// range fits in one block). fn must not touch data of other blocks except
/// through read-only views.
template <typename Fn>
void ParallelForBlocked(const Engine& eng, std::size_t n,
                        std::size_t block_size, Fn&& fn) {
  if (n == 0) return;
  const std::size_t block = block_size < 1 ? 1 : block_size;
  const std::size_t blocks = NumBlocks(n, block);
  auto run_block = [&](std::size_t b) {
    const std::size_t begin = b * block;
    const std::size_t end = begin + block < n ? begin + block : n;
    fn(BlockedRange{begin, end, b});
  };
  ThreadPool* pool = eng.pool();
  if (pool == nullptr || blocks <= 1) {
    for (std::size_t b = 0; b < blocks; ++b) run_block(b);
    return;
  }
  pool->RunTasks(blocks, run_block);
}

/// ParallelForBlocked at the engine's configured block size.
template <typename Fn>
void ParallelFor(const Engine& eng, std::size_t n, Fn&& fn) {
  ParallelForBlocked(eng, n, eng.block_size(), std::forward<Fn>(fn));
}

/// Maps every block of [0, n) through fn(BlockedRange) -> T and returns the
/// results indexed by block number. Fold the vector front-to-back for a
/// thread-count-independent reduction.
template <typename T, typename Fn>
std::vector<T> MapBlocksBlocked(const Engine& eng, std::size_t n,
                                std::size_t block_size, Fn&& fn) {
  std::vector<T> partials(NumBlocks(n, block_size < 1 ? 1 : block_size));
  ParallelForBlocked(eng, n, block_size, [&](const BlockedRange& r) {
    partials[r.index] = fn(r);
  });
  return partials;
}

/// MapBlocksBlocked at the engine's configured block size.
template <typename T, typename Fn>
std::vector<T> MapBlocks(const Engine& eng, std::size_t n, Fn&& fn) {
  return MapBlocksBlocked<T>(eng, n, eng.block_size(), std::forward<Fn>(fn));
}

/// Per-thread scratch storage: one T slot per concurrency lane of the
/// engine. Inside a ParallelFor body, local() returns the slot owned by the
/// executing thread. Scratch contents are unspecified between blocks — use
/// it for temporaries only, never for reduction state (reductions must go
/// through MapBlocks to stay deterministic).
template <typename T>
class PerWorker {
 public:
  /// Creates engine.num_threads() copies of `prototype`.
  explicit PerWorker(const Engine& eng, const T& prototype = T())
      : slots_(static_cast<std::size_t>(eng.num_threads()), prototype) {}

  /// Scratch slot of the calling thread.
  T& local() { return slots_[static_cast<std::size_t>(
      ThreadPool::CurrentWorkerId()) % slots_.size()]; }

  /// All slots (e.g. to release memory once the loop is done).
  std::vector<T>& slots() { return slots_; }

 private:
  std::vector<T> slots_;
};

}  // namespace uclust::engine

#endif  // UCLUST_ENGINE_PARALLEL_FOR_H_
