#include "engine/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace uclust::engine {

namespace {
// 0 on every thread that is not a pool worker; workers overwrite it once.
thread_local int tl_worker_id = 0;
}  // namespace

int ThreadPool::CurrentWorkerId() { return tl_worker_id; }

ThreadPool::ThreadPool(int workers) {
  const int count = std::max(workers, 1);
  threads_.reserve(count);
  for (int w = 0; w < count; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  batch_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Process(Batch* batch) {
  for (;;) {
    const std::size_t t = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (t >= batch->count) return;
    try {
      (*batch->task)(t);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch->error_mu);
      if (!batch->error) batch->error = std::current_exception();
    }
    if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task of the batch: wake the caller blocked in RunTasks. The
      // lock pairs with the caller's wait to avoid a lost notification.
      std::lock_guard<std::mutex> lock(mu_);
      batch_done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop(int worker_id) {
  tl_worker_id = worker_id;
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    batch_ready_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    std::shared_ptr<Batch> batch = batch_;
    lock.unlock();
    if (batch) Process(batch.get());
    lock.lock();
  }
}

void ThreadPool::RunTasks(std::size_t count,
                          const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (tl_worker_id != 0) {
    // Nested call from inside a task: run inline to avoid deadlocking on the
    // pool that is executing us.
    for (std::size_t t = 0; t < count; ++t) task(t);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->task = &task;
  batch->count = count;
  batch->remaining.store(count, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
    ++generation_;
  }
  batch_ready_.notify_all();
  Process(batch.get());
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [&] {
      return batch->remaining.load(std::memory_order_acquire) == 0;
    });
    if (batch_ == batch) batch_.reset();
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace uclust::engine
