// Fixed-size worker pool underlying every parallel loop in the library.
//
// The pool is deliberately minimal: one blocking RunTasks() primitive that
// executes `count` independent tasks across the workers plus the calling
// thread. Determinism of the clustering results is NOT the pool's job — the
// blocked-range helpers in parallel_for.h achieve it by making every
// reduction combine per-block partials in block order, so the pool is free
// to schedule tasks in any order.
#ifndef UCLUST_ENGINE_THREAD_POOL_H_
#define UCLUST_ENGINE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace uclust::engine {

/// A fixed set of worker threads executing batches of independent tasks.
///
/// RunTasks() blocks until the whole batch finished; the calling thread
/// participates, so a pool with W workers gives W + 1 concurrent lanes.
/// The first exception thrown by any task is captured and rethrown to the
/// caller once the batch has drained (remaining tasks still run). Calling
/// RunTasks() from inside a task runs the nested batch inline on the calling
/// worker — nesting never deadlocks, it just does not parallelize further.
class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding callers of RunTasks).
  int workers() const { return static_cast<int>(threads_.size()); }

  /// Maximum number of threads that may execute tasks of one batch
  /// simultaneously (workers + the calling thread).
  int max_concurrency() const { return workers() + 1; }

  /// Runs task(t) for every t in [0, count) and blocks until all completed.
  /// Safe to call repeatedly; the pool is reusable across batches.
  void RunTasks(std::size_t count, const std::function<void(std::size_t)>& task);

  /// Stable id of the current thread within RunTasks execution:
  /// 0 for the calling (non-pool) thread, 1..workers for pool workers.
  /// Valid as a scratch-slot index in [0, max_concurrency()).
  static int CurrentWorkerId();

 private:
  // One batch of tasks; heap-shared so a lagging worker that wakes up after
  // the batch drained only ever sees exhausted counters, never a stale
  // function pointer of the next batch.
  struct Batch {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mu;
    std::exception_ptr error;
  };

  void WorkerLoop(int worker_id);
  void Process(Batch* batch);

  std::mutex mu_;
  std::condition_variable batch_ready_;
  std::condition_variable batch_done_;
  std::shared_ptr<Batch> batch_;
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace uclust::engine

#endif  // UCLUST_ENGINE_THREAD_POOL_H_
