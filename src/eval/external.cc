#include "eval/external.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace uclust::eval {

Contingency BuildContingency(const std::vector<int>& reference,
                             const std::vector<int>& clustering) {
  assert(reference.size() == clustering.size());
  int max_ref = -1;
  int max_clu = -1;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    assert(reference[i] >= 0 && clustering[i] >= 0);
    max_ref = std::max(max_ref, reference[i]);
    max_clu = std::max(max_clu, clustering[i]);
  }
  Contingency table;
  table.n = reference.size();
  const std::size_t rows = static_cast<std::size_t>(max_ref) + 1;
  const std::size_t cols = static_cast<std::size_t>(max_clu) + 1;
  table.counts.assign(rows, std::vector<double>(cols, 0.0));
  table.class_sizes.assign(rows, 0.0);
  table.cluster_sizes.assign(cols, 0.0);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    table.counts[reference[i]][clustering[i]] += 1.0;
    table.class_sizes[reference[i]] += 1.0;
    table.cluster_sizes[clustering[i]] += 1.0;
  }
  return table;
}

double FMeasure(const std::vector<int>& reference,
                const std::vector<int>& clustering) {
  const Contingency t = BuildContingency(reference, clustering);
  if (t.n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t u = 0; u < t.counts.size(); ++u) {
    if (t.class_sizes[u] == 0.0) continue;
    double best = 0.0;
    for (std::size_t v = 0; v < t.counts[u].size(); ++v) {
      const double inter = t.counts[u][v];
      if (inter == 0.0 || t.cluster_sizes[v] == 0.0) continue;
      const double precision = inter / t.cluster_sizes[v];
      const double recall = inter / t.class_sizes[u];
      const double f = 2.0 * precision * recall / (precision + recall);
      best = std::max(best, f);
    }
    acc += t.class_sizes[u] * best;
  }
  return acc / static_cast<double>(t.n);
}

double Purity(const std::vector<int>& reference,
              const std::vector<int>& clustering) {
  const Contingency t = BuildContingency(reference, clustering);
  if (t.n == 0) return 0.0;
  double acc = 0.0;
  const std::size_t cols = t.cluster_sizes.size();
  for (std::size_t v = 0; v < cols; ++v) {
    double best = 0.0;
    for (std::size_t u = 0; u < t.counts.size(); ++u) {
      best = std::max(best, t.counts[u][v]);
    }
    acc += best;
  }
  return acc / static_cast<double>(t.n);
}

double Nmi(const std::vector<int>& reference,
           const std::vector<int>& clustering) {
  const Contingency t = BuildContingency(reference, clustering);
  if (t.n == 0) return 0.0;
  const double n = static_cast<double>(t.n);
  double mi = 0.0;
  double h_ref = 0.0;
  double h_clu = 0.0;
  for (double s : t.class_sizes) {
    if (s > 0.0) h_ref -= s / n * std::log(s / n);
  }
  for (double s : t.cluster_sizes) {
    if (s > 0.0) h_clu -= s / n * std::log(s / n);
  }
  for (std::size_t u = 0; u < t.counts.size(); ++u) {
    for (std::size_t v = 0; v < t.counts[u].size(); ++v) {
      const double c = t.counts[u][v];
      if (c == 0.0) continue;
      mi += c / n *
            std::log(c * n / (t.class_sizes[u] * t.cluster_sizes[v]));
    }
  }
  const double denom = 0.5 * (h_ref + h_clu);
  return denom > 0.0 ? mi / denom : (mi == 0.0 ? 1.0 : 0.0);
}

double AdjustedRand(const std::vector<int>& reference,
                    const std::vector<int>& clustering) {
  const Contingency t = BuildContingency(reference, clustering);
  if (t.n < 2) return 1.0;
  auto choose2 = [](double x) { return x * (x - 1.0) / 2.0; };
  double sum_cells = 0.0;
  for (const auto& row : t.counts) {
    for (double c : row) sum_cells += choose2(c);
  }
  double sum_rows = 0.0;
  for (double s : t.class_sizes) sum_rows += choose2(s);
  double sum_cols = 0.0;
  for (double s : t.cluster_sizes) sum_cols += choose2(s);
  const double total = choose2(static_cast<double>(t.n));
  const double expected = sum_rows * sum_cols / total;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  const double denom = max_index - expected;
  if (denom == 0.0) return 1.0;
  return (sum_cells - expected) / denom;
}

}  // namespace uclust::eval
