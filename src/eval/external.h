// External cluster validity criteria: how well a clustering fits a reference
// classification. Includes the paper's F-measure (Section 5.1) plus the
// standard purity / NMI / adjusted-Rand indices for richer reporting.
#ifndef UCLUST_EVAL_EXTERNAL_H_
#define UCLUST_EVAL_EXTERNAL_H_

#include <vector>

namespace uclust::eval {

/// Cross-tabulation of a reference classification (rows) against a
/// clustering (columns).
struct Contingency {
  std::size_t n = 0;                          ///< Total objects.
  std::vector<std::vector<double>> counts;    ///< [class][cluster].
  std::vector<double> class_sizes;            ///< Row sums.
  std::vector<double> cluster_sizes;          ///< Column sums.
};

/// Builds the contingency table; labels must be non-negative and dense-ish
/// (table size = max label + 1 per side).
Contingency BuildContingency(const std::vector<int>& reference,
                             const std::vector<int>& clustering);

/// The paper's F-measure: F(C, C~) = (1/|D|) * sum_u |C~_u| max_v F_uv with
/// F_uv the harmonic mean of precision and recall of cluster v w.r.t. class
/// u. Range [0, 1], higher is better.
double FMeasure(const std::vector<int>& reference,
                const std::vector<int>& clustering);

/// Purity: fraction of objects in the majority class of their cluster.
double Purity(const std::vector<int>& reference,
              const std::vector<int>& clustering);

/// Normalized mutual information (arithmetic-mean normalization).
double Nmi(const std::vector<int>& reference,
           const std::vector<int>& clustering);

/// Adjusted Rand index (chance-corrected; 1 = identical partitions).
double AdjustedRand(const std::vector<int>& reference,
                    const std::vector<int>& clustering);

}  // namespace uclust::eval

#endif  // UCLUST_EVAL_EXTERNAL_H_
