#include "eval/internal.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/math_utils.h"

namespace uclust::eval {

namespace {

// Per-cluster scalar/vector aggregates sufficient for pairwise ED^ sums:
//   g  = sum_{o in C} sum_j mu2_j(o)        (scalar)
//   sv = sum_{o in C} sigma^2(o)            (scalar)
//   t  = sum_{o in C} mu(o)                 (vector)
struct Agg {
  double g = 0.0;
  double sv = 0.0;
  std::vector<double> t;
  std::size_t size = 0;
};

}  // namespace

double EdNormalizer(const uncertain::MomentView& moments,
                    Normalization normalization) {
  const std::size_t n = moments.size();
  const std::size_t m = moments.dims();
  switch (normalization) {
    case Normalization::kNone:
      return 1.0;
    case Normalization::kExactMax: {
      double best = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          const double d =
              common::SquaredDistance(moments.mean(i), moments.mean(j)) +
              moments.total_variance(i) + moments.total_variance(j);
          best = std::max(best, d);
        }
      }
      return best > 0.0 ? best : 1.0;
    }
    case Normalization::kUpperBound: {
      // ED^(a,b) = ||mu_a - mu_b||^2 + sigma^2(a) + sigma^2(b)
      //         <= (bounding-box diagonal of the means)^2 + 2 max variance.
      std::vector<double> lo(m, std::numeric_limits<double>::infinity());
      std::vector<double> hi(m, -std::numeric_limits<double>::infinity());
      double max_var = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const auto mean = moments.mean(i);
        for (std::size_t j = 0; j < m; ++j) {
          lo[j] = std::min(lo[j], mean[j]);
          hi[j] = std::max(hi[j], mean[j]);
        }
        max_var = std::max(max_var, moments.total_variance(i));
      }
      double diag2 = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        const double d = hi[j] - lo[j];
        diag2 += d * d;
      }
      const double bound = diag2 + 2.0 * max_var;
      return bound > 0.0 ? bound : 1.0;
    }
  }
  return 1.0;
}

InternalQuality EvaluateInternal(const uncertain::MomentView& moments,
                                 const std::vector<int>& labels, int k,
                                 Normalization normalization) {
  const std::size_t n = moments.size();
  const std::size_t m = moments.dims();
  assert(labels.size() == n);
  assert(k >= 1);

  std::vector<Agg> agg(k);
  for (auto& a : agg) a.t.assign(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    assert(labels[i] >= 0 && labels[i] < k);
    Agg& a = agg[labels[i]];
    const auto mu = moments.mean(i);
    const auto mu2 = moments.second_moment(i);
    for (std::size_t j = 0; j < m; ++j) {
      a.t[j] += mu[j];
      a.g += mu2[j];
    }
    a.sv += moments.total_variance(i);
    ++a.size;
  }

  InternalQuality out;
  out.normalizer = EdNormalizer(moments, normalization);

  // intra(C) = (1/|C|) sum_C (1/(|C|(|C|-1))) sum_{o != o'} ED^(o, o').
  // sum_{o != o' in C} ED^ = 2 |C| g - 2 ||t||^2 - 2 sum_o sigma^2(o).
  double intra_sum = 0.0;
  int counted_clusters = 0;
  for (const Agg& a : agg) {
    if (a.size == 0) continue;
    ++counted_clusters;
    if (a.size < 2) continue;  // singleton: no within-cluster pairs
    const double s = static_cast<double>(a.size);
    double t_norm2 = 0.0;
    for (double t : a.t) t_norm2 += t * t;
    const double pair_sum = 2.0 * s * a.g - 2.0 * t_norm2 - 2.0 * a.sv;
    intra_sum += pair_sum / (s * (s - 1.0));
  }
  if (counted_clusters > 0) {
    out.intra = intra_sum / counted_clusters / out.normalizer;
  }

  // inter(C) = (1/(|C|(|C|-1))) sum_{C != C'} (1/(|C||C'|)) sum ED^(o, o').
  // sum_{o in C, o' in C'} ED^ = |C'| g_C + |C| g_C' - 2 t_C . t_C'.
  double inter_sum = 0.0;
  int pair_count = 0;
  for (int a = 0; a < k; ++a) {
    if (agg[a].size == 0) continue;
    for (int b = a + 1; b < k; ++b) {
      if (agg[b].size == 0) continue;
      const double sa = static_cast<double>(agg[a].size);
      const double sb = static_cast<double>(agg[b].size);
      double dot = 0.0;
      for (std::size_t j = 0; j < m; ++j) dot += agg[a].t[j] * agg[b].t[j];
      const double cross = sb * agg[a].g + sa * agg[b].g - 2.0 * dot;
      inter_sum += cross / (sa * sb);
      ++pair_count;
    }
  }
  if (pair_count > 0) {
    out.inter = inter_sum / pair_count / out.normalizer;
  }

  out.q = out.inter - out.intra;
  return out;
}

}  // namespace uclust::eval
