// Internal cluster validity criteria of Section 5.1: average intra-cluster
// and inter-cluster expected distances, normalized into [0, 1], combined as
// Q = inter - intra in [-1, 1].
//
// Both averages are computed exactly in O(n m + k^2 m) from per-cluster
// moment aggregates (the pairwise ED^ of Lemma 3 telescopes over sums of
// means/second moments), so Q is exact even on datasets with tens of
// thousands of objects.
#ifndef UCLUST_EVAL_INTERNAL_H_
#define UCLUST_EVAL_INTERNAL_H_

#include <vector>

#include "uncertain/moments.h"

namespace uclust::eval {

/// How the raw average expected distances are normalized into [0, 1].
enum class Normalization {
  /// Divide by an O(n m) upper bound on the max pairwise ED^:
  /// (diagonal of the bounding box of the means)^2 + 2 max_i sigma^2(o_i).
  kUpperBound,
  /// Divide by the exact max pairwise ED^ (O(n^2 m); small datasets only).
  kExactMax,
  /// No normalization (raw expected distances).
  kNone,
};

/// Internal validity outcome.
struct InternalQuality {
  double intra = 0.0;       ///< Average within-cluster ED^ (normalized).
  double inter = 0.0;       ///< Average between-cluster ED^ (normalized).
  double q = 0.0;           ///< inter - intra.
  double normalizer = 1.0;  ///< The divisor applied to both averages.
};

/// Evaluates intra/inter/Q for `labels` over the objects' moments. Labels
/// must be in [0, k). Singleton clusters contribute 0 to the intra average
/// (the paper's formula is undefined for them); cluster pairs both count
/// toward the inter average.
InternalQuality EvaluateInternal(const uncertain::MomentView& moments,
                                 const std::vector<int>& labels, int k,
                                 Normalization normalization =
                                     Normalization::kUpperBound);

/// The normalizer value for a dataset under the given policy (exposed for
/// tests and for reporting).
double EdNormalizer(const uncertain::MomentView& moments,
                    Normalization normalization);

}  // namespace uclust::eval

#endif  // UCLUST_EVAL_INTERNAL_H_
