#include "eval/model_selection.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "eval/internal.h"
#include "eval/silhouette.h"

namespace uclust::eval {

KSelection SelectK(const data::UncertainDataset& dataset,
                   const clustering::Clusterer& algorithm, int k_min,
                   int k_max, SelectionCriterion criterion, int runs,
                   uint64_t seed) {
  assert(k_min >= 2 && k_min <= k_max);
  assert(static_cast<std::size_t>(k_max) <= dataset.size());
  assert(runs > 0);
  const uncertain::MomentMatrix& mm = dataset.moments();

  KSelection out;
  double best_score = -std::numeric_limits<double>::infinity();
  for (int k = k_min; k <= k_max; ++k) {
    KScore row;
    row.k = k;
    for (int r = 0; r < runs; ++r) {
      const clustering::ClusteringResult result =
          algorithm.Cluster(dataset, k, seed + static_cast<uint64_t>(r) +
                                            31ULL * static_cast<uint64_t>(k));
      const int k_eval = std::max(k, result.clusters_found);
      double score = 0.0;
      switch (criterion) {
        case SelectionCriterion::kQuality:
          score = EvaluateInternal(mm, result.labels, k_eval).q;
          break;
        case SelectionCriterion::kSilhouette:
          score = ExpectedSilhouette(mm, result.labels, k_eval).mean;
          break;
      }
      row.score += score;
      row.objective += result.objective;
    }
    row.score /= runs;
    row.objective /= runs;
    if (row.score > best_score) {
      best_score = row.score;
      out.best_k = k;
    }
    out.scores.push_back(row);
  }
  return out;
}

}  // namespace uclust::eval
