// Model selection for the number of clusters k — a library extension the
// paper leaves open (its experiments fix k to the reference class count).
// Sweeps a k range, runs a clusterer a few times per k, and scores each k
// by an internal criterion evaluated on the uncertain objects.
#ifndef UCLUST_EVAL_MODEL_SELECTION_H_
#define UCLUST_EVAL_MODEL_SELECTION_H_

#include <vector>

#include "clustering/clusterer.h"
#include "data/dataset.h"

namespace uclust::eval {

/// Internal criterion used to score a candidate k.
enum class SelectionCriterion {
  kQuality,     ///< Q = inter - intra (Section 5.1 of the paper).
  kSilhouette,  ///< Expected-distance silhouette (library extension).
};

/// One row of the sweep.
struct KScore {
  int k = 0;
  double score = 0.0;      ///< Mean criterion value over the runs.
  double objective = 0.0;  ///< Mean final algorithm objective.
};

/// Sweep outcome; `scores` is ordered by k ascending.
struct KSelection {
  int best_k = 0;
  std::vector<KScore> scores;
};

/// Runs `algorithm` for every k in [k_min, k_max], `runs` times each, and
/// returns the k maximizing the mean criterion. Requires
/// 2 <= k_min <= k_max <= n.
KSelection SelectK(const data::UncertainDataset& dataset,
                   const clustering::Clusterer& algorithm, int k_min,
                   int k_max, SelectionCriterion criterion, int runs,
                   uint64_t seed);

}  // namespace uclust::eval

#endif  // UCLUST_EVAL_MODEL_SELECTION_H_
