#include "eval/protocol.h"

#include <cassert>

#include "eval/external.h"

namespace uclust::eval {

ThetaSummary RunThetaProtocol(const data::DeterministicDataset& source,
                              const data::UncertaintyParams& uparams,
                              const clustering::Clusterer& algorithm, int k,
                              int runs, uint64_t seed) {
  assert(runs > 0);
  assert(!source.labels.empty() && "Theta protocol needs reference classes");
  common::Rng seeder(seed);

  // One uncertainty assignment per protocol invocation: every algorithm
  // evaluated with the same `seed` sees identical pdfs.
  const data::UncertaintyModel model(source, uparams, seeder.NextSeed());
  const data::UncertainDataset uncertain = model.Uncertain();
  const uncertain::MomentMatrix& mm = uncertain.moments();

  ThetaSummary summary;
  summary.runs = runs;
  for (int r = 0; r < runs; ++r) {
    // Case 1: perturbed observations, deterministic clustering.
    const data::DeterministicDataset perturbed =
        model.Perturbed(seeder.NextSeed());
    const data::UncertainDataset case1 =
        data::UncertainDataset::FromDeterministic(perturbed);
    const clustering::ClusteringResult r1 =
        algorithm.Cluster(case1, k, seeder.NextSeed());
    const double f1 = FMeasure(source.labels, r1.labels);

    // Case 2: the uncertainty-aware clustering.
    const clustering::ClusteringResult r2 =
        algorithm.Cluster(uncertain, k, seeder.NextSeed());
    const double f2 = FMeasure(source.labels, r2.labels);
    const InternalQuality q = EvaluateInternal(
        mm, r2.labels, std::max(k, r2.clusters_found));

    summary.f_case1 += f1;
    summary.f_case2 += f2;
    summary.theta += f2 - f1;
    summary.q_case2 += q.q;
    summary.online_ms += r2.online_ms;
  }
  summary.f_case1 /= runs;
  summary.f_case2 /= runs;
  summary.theta /= runs;
  summary.q_case2 /= runs;
  summary.online_ms /= runs;
  return summary;
}

}  // namespace uclust::eval
