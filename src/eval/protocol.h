// The paper's two-case evaluation protocol (Section 5.1):
//
//   Case 1  cluster the perturbed deterministic dataset D' (objects wrapped
//           as Dirac uncertain objects) -> F(C', C~)
//   Case 2  cluster the uncertain dataset D''               -> F(C'', C~)
//   Theta = F(C'', C~) - F(C', C~), averaged over multiple runs; internal
//   quality Q is evaluated on the Case-2 clusterings.
#ifndef UCLUST_EVAL_PROTOCOL_H_
#define UCLUST_EVAL_PROTOCOL_H_

#include "clustering/clusterer.h"
#include "data/dataset.h"
#include "data/uncertainty_model.h"
#include "eval/internal.h"

namespace uclust::eval {

/// Per-protocol aggregate results (means over runs).
struct ThetaSummary {
  double f_case1 = 0.0;   ///< Mean F-measure clustering D'.
  double f_case2 = 0.0;   ///< Mean F-measure clustering D''.
  double theta = 0.0;     ///< Mean (F_case2 - F_case1).
  double q_case2 = 0.0;   ///< Mean internal quality Q on D''.
  double online_ms = 0.0; ///< Mean Case-2 online clustering time.
  int runs = 0;           ///< Number of runs averaged.
};

/// Runs the full protocol: instantiates the uncertainty model once from
/// `seed`, then averages `runs` repetitions in which the perturbation draw
/// and the clusterer's own randomness vary. `k` is the reference class count
/// in the paper's setup.
ThetaSummary RunThetaProtocol(const data::DeterministicDataset& source,
                              const data::UncertaintyParams& uparams,
                              const clustering::Clusterer& algorithm, int k,
                              int runs, uint64_t seed);

}  // namespace uclust::eval

#endif  // UCLUST_EVAL_PROTOCOL_H_
