#include "eval/silhouette.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace uclust::eval {

SilhouetteResult ExpectedSilhouette(const uncertain::MomentView& moments,
                                    const std::vector<int>& labels, int k) {
  const std::size_t n = moments.size();
  const std::size_t m = moments.dims();
  assert(labels.size() == n);
  assert(k >= 1);

  // Per-cluster aggregates: size, T (sum of means), G (sum over members of
  // ||mu||^2 + sigma^2 = sum_j mu2_j).
  std::vector<std::size_t> sizes(k, 0);
  std::vector<std::vector<double>> t(k, std::vector<double>(m, 0.0));
  std::vector<double> g(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    assert(labels[i] >= 0 && labels[i] < k);
    const int c = labels[i];
    ++sizes[c];
    const auto mu = moments.mean(i);
    const auto mu2 = moments.second_moment(i);
    for (std::size_t j = 0; j < m; ++j) {
      t[c][j] += mu[j];
      g[c] += mu2[j];
    }
  }
  int populated = 0;
  for (int c = 0; c < k; ++c) populated += sizes[c] > 0 ? 1 : 0;

  SilhouetteResult out;
  out.widths.assign(n, 0.0);
  if (populated < 2) return out;

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int own = labels[i];
    const auto mu = moments.mean(i);
    const auto mu2 = moments.second_moment(i);
    double self = 0.0;  // ||mu(o)||^2 + sigma^2(o) = sum_j mu2_j(o)
    for (std::size_t j = 0; j < m; ++j) self += mu2[j];

    // Average ED^ from object i to cluster c (excluding self for own).
    auto avg_to = [&](int c, bool exclude_self) {
      const double s = static_cast<double>(sizes[c]);
      double dot = 0.0;
      for (std::size_t j = 0; j < m; ++j) dot += mu[j] * t[c][j];
      double sum = s * self + g[c] - 2.0 * dot;
      double count = s;
      if (exclude_self) {
        // ED^(o, o) with independent realizations = 2 sigma^2(o).
        sum -= 2.0 * moments.total_variance(i);
        count -= 1.0;
      }
      return count > 0.0 ? sum / count : 0.0;
    };

    if (sizes[own] < 2) {
      out.widths[i] = 0.0;  // silhouette undefined for singletons
      continue;
    }
    const double a = avg_to(own, /*exclude_self=*/true);
    double b = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      if (c == own || sizes[c] == 0) continue;
      b = std::min(b, avg_to(c, /*exclude_self=*/false));
    }
    const double denom = std::max(a, b);
    out.widths[i] = denom > 0.0 ? (b - a) / denom : 0.0;
    total += out.widths[i];
  }
  out.mean = total / static_cast<double>(n);
  return out;
}

}  // namespace uclust::eval
