// Silhouette width generalized to uncertain objects: point-to-point
// dissimilarities are replaced by expected squared distances ED^ (Lemma 3).
// Library extension beyond the paper's criteria; useful for model selection.
//
// Thanks to the aggregate identity sum_{o' in C} ED^(o, o') =
// |C| (||mu(o)||^2 + sigma^2(o)) + G_C - 2 mu(o) . T_C, with
// G_C = sum_{o'} sum_j mu2_j(o') and T_C = sum_{o'} mu(o'), the full
// silhouette evaluates in O(n k m) without any pairwise loop.
#ifndef UCLUST_EVAL_SILHOUETTE_H_
#define UCLUST_EVAL_SILHOUETTE_H_

#include <vector>

#include "uncertain/moments.h"

namespace uclust::eval {

/// Silhouette outcome.
struct SilhouetteResult {
  /// Mean silhouette width over all objects, in [-1, 1].
  double mean = 0.0;
  /// Per-object silhouette widths (0 for members of singleton clusters).
  std::vector<double> widths;
};

/// Computes the expected-distance silhouette of a hard partition. Labels
/// must be in [0, k); requires k >= 2 with at least two non-empty clusters
/// (otherwise mean = 0).
SilhouetteResult ExpectedSilhouette(const uncertain::MomentView& moments,
                                    const std::vector<int>& labels, int k);

}  // namespace uclust::eval

#endif  // UCLUST_EVAL_SILHOUETTE_H_
