// On-disk layout of the uclust binary dataset format (".ubin").
//
// The format stores an uncertain dataset as a fixed header plus one
// variable-length record per object, followed by an optional labels column.
// It is designed for one-pass bounded-memory streaming (fread batch by
// batch; see dataset_reader.h) and is equally mmap-friendly: every object
// record carries its own byte length, so a consumer can skip records without
// parsing pdf payloads.
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     8  magic "uclustds"
//        8     4  u32 endian tag 0x01020304 (readers reject byte-swapped
//                 files instead of silently mis-parsing them)
//       12     4  u32 format version (kFormatVersion; readers reject newer)
//       16     8  u64 n — number of objects (patched on Finish())
//       24     8  u64 m — dimensionality
//       32     4  i32 num_classes (0 when unlabeled)
//       36     4  u32 flags (kFlagHasLabels)
//       40     8  u64 labels_offset — file offset of the labels column
//                 (0 when unlabeled; patched on Finish())
//       48     4  u32 name_len
//       52    12  reserved (zero)
//       64     -  dataset name (name_len bytes, no terminator)
//        -     -  n object records (see below)
//        -     -  labels column: n * i32 (only when kFlagHasLabels)
//
// Object record: u32 payload_bytes, then exactly m pdf records back to back.
// Pdf record: u8 type tag followed by the type's constructor-exact
// parameters as f64 (plus a u32 count for discrete):
//
//   kPdfDirac        x
//   kPdfUniform      lo, hi
//   kPdfNormal       mu, sigma, half_width_sigmas
//   kPdfExponential  mean w, rate
//   kPdfDiscrete     u32 count, count values, count normalized weights
//
// "Constructor-exact" is the format's core guarantee: the stored parameters
// feed straight back into the pdf constructors (TruncatedNormalPdf::
// FromHalfWidth, DiscretePdf::FromNormalized, ...), so a write -> read round
// trip reproduces every moment bit-for-bit and streamed ingestion matches
// the in-memory builder exactly (tests/test_io.cc).
//
// All integers are little-endian; all reals are IEEE-754 binary64. Version
// history: 1 = initial layout.
#ifndef UCLUST_IO_BINARY_FORMAT_H_
#define UCLUST_IO_BINARY_FORMAT_H_

#include <cstdint>

namespace uclust::io {

/// File magic, first 8 bytes of every dataset file.
inline constexpr char kMagic[8] = {'u', 'c', 'l', 'u', 's', 't', 'd', 's'};

/// Endianness canary as written by the producing machine.
inline constexpr uint32_t kEndianTag = 0x01020304u;
/// What kEndianTag reads as on an opposite-endian machine.
inline constexpr uint32_t kEndianTagSwapped = 0x04030201u;

/// Current (and only) format version.
inline constexpr uint32_t kFormatVersion = 1;

/// Total bytes of the fixed header (the name follows immediately after).
inline constexpr std::size_t kHeaderBytes = 64;

/// Header flag: a labels column of n i32 follows the object records.
inline constexpr uint32_t kFlagHasLabels = 1u << 0;

/// Per-dimension pdf record tags.
enum PdfTag : uint8_t {
  kPdfDirac = 0,
  kPdfUniform = 1,
  kPdfNormal = 2,
  kPdfExponential = 3,
  kPdfDiscrete = 4,
};

}  // namespace uclust::io

#endif  // UCLUST_IO_BINARY_FORMAT_H_
