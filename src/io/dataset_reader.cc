#include "io/dataset_reader.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "io/binary_format.h"
#include "uncertain/dirac_pdf.h"
#include "uncertain/discrete_pdf.h"
#include "uncertain/exponential_pdf.h"
#include "uncertain/normal_pdf.h"
#include "uncertain/uniform_pdf.h"

namespace uclust::io {

namespace {

// Bounds-checked cursor over one object record's bytes.
class RecordCursor {
 public:
  RecordCursor(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
  bool Get(T* out) {
    if (pos_ + sizeof(T) > size_) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool exhausted() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Smallest half-width the normal reconstruction accepts: well below it,
// 2*Phi(c) - 1 underflows to exactly 0 and the truncated-variance formula
// would silently produce -inf from a corrupt file.
constexpr double kMinNormalHalfWidth = 1e-12;

// Tolerance on a stored discrete weight sum: the writer persists normalized
// weights, so any legitimate file sums to 1 within a few ulps.
constexpr double kWeightSumTolerance = 1e-6;

// Deserializes one pdf record; returns nullptr on malformed input (truncated
// payload or parameters outside the constructors' domains — non-finite
// values included, so corrupt files are rejected rather than mis-parsed).
uncertain::PdfPtr GetPdf(RecordCursor* cur) {
  uint8_t tag = 0;
  if (!cur->Get(&tag)) return nullptr;
  switch (tag) {
    case kPdfDirac: {
      double x = 0.0;
      if (!cur->Get(&x) || !std::isfinite(x)) return nullptr;
      return uncertain::DiracPdf::Make(x);
    }
    case kPdfUniform: {
      double lo = 0.0, hi = 0.0;
      if (!cur->Get(&lo) || !cur->Get(&hi) || !std::isfinite(lo) ||
          !std::isfinite(hi) || !(lo < hi)) {
        return nullptr;
      }
      return std::make_shared<uncertain::UniformPdf>(lo, hi);
    }
    case kPdfNormal: {
      double mu = 0.0, sigma = 0.0, c = 0.0;
      if (!cur->Get(&mu) || !cur->Get(&sigma) || !cur->Get(&c) ||
          !std::isfinite(mu) || !std::isfinite(sigma) || !std::isfinite(c) ||
          !(sigma > 0.0) || !(c >= kMinNormalHalfWidth)) {
        return nullptr;
      }
      return uncertain::TruncatedNormalPdf::FromHalfWidth(mu, sigma, c);
    }
    case kPdfExponential: {
      double w = 0.0, rate = 0.0;
      if (!cur->Get(&w) || !cur->Get(&rate) || !std::isfinite(w) ||
          !std::isfinite(rate) || !(rate > 0.0)) {
        return nullptr;
      }
      return uncertain::TruncatedExponentialPdf::Make(w, rate);
    }
    case kPdfDiscrete: {
      uint32_t count = 0;
      if (!cur->Get(&count) || count == 0) return nullptr;
      // The record must physically hold count values + count weights;
      // checking before allocating keeps an untrusted count field from
      // triggering a huge allocation (which a CI ulimit run would
      // misreport as the expected OOM).
      if (static_cast<std::size_t>(count) * 2 * sizeof(double) >
          cur->remaining()) {
        return nullptr;
      }
      std::vector<double> values(count), weights(count);
      for (double& v : values) {
        if (!cur->Get(&v) || !std::isfinite(v)) return nullptr;
      }
      double sum = 0.0;
      for (double& w : weights) {
        if (!cur->Get(&w) || !std::isfinite(w) || !(w > 0.0)) return nullptr;
        sum += w;
      }
      if (std::fabs(sum - 1.0) > kWeightSumTolerance) return nullptr;
      return uncertain::DiscretePdf::FromNormalized(std::move(values),
                                                    std::move(weights));
    }
    default:
      return nullptr;
  }
}

}  // namespace

BinaryDatasetReader::~BinaryDatasetReader() {
  if (file_ != nullptr) std::fclose(file_);
}

common::Status BinaryDatasetReader::Corrupt(const std::string& msg) const {
  return common::Status::IOError(path_ + ": " + msg);
}

common::Status BinaryDatasetReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    return common::Status::InvalidArgument("reader is already open");
  }
  path_ = path;
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return common::Status::IOError("cannot open " + path);
  if (std::fseek(file_, 0, SEEK_END) != 0) return Corrupt("cannot seek");
  const long end = std::ftell(file_);
  if (end < 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    return Corrupt("cannot determine file size");
  }
  file_size_ = static_cast<uint64_t>(end);

  unsigned char header[kHeaderBytes];
  if (std::fread(header, 1, sizeof(header), file_) != sizeof(header)) {
    return Corrupt("file too short for a dataset header");
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic (not a uclust binary dataset)");
  }
  uint32_t endian = 0, version = 0, flags = 0, name_len = 0;
  uint64_t n = 0, dims = 0;
  int32_t num_classes = 0;
  std::memcpy(&endian, header + 8, sizeof(endian));
  std::memcpy(&version, header + 12, sizeof(version));
  std::memcpy(&n, header + 16, sizeof(n));
  std::memcpy(&dims, header + 24, sizeof(dims));
  std::memcpy(&num_classes, header + 32, sizeof(num_classes));
  std::memcpy(&flags, header + 36, sizeof(flags));
  std::memcpy(&labels_offset_, header + 40, sizeof(labels_offset_));
  std::memcpy(&name_len, header + 48, sizeof(name_len));
  if (endian == kEndianTagSwapped) {
    return Corrupt("file was written on an opposite-endian machine");
  }
  if (endian != kEndianTag) {
    return Corrupt("bad endianness canary (corrupt header)");
  }
  if (version == 0 || version > kFormatVersion) {
    return Corrupt("unsupported format version " + std::to_string(version) +
                   " (reader supports up to " +
                   std::to_string(kFormatVersion) + ")");
  }
  if (dims == 0) return Corrupt("header declares zero dimensions");
  if (num_classes < 0) return Corrupt("header declares negative num_classes");
  // Every object record occupies at least 4 (length prefix) + 9*dims (the
  // smallest pdf record is a tagged Dirac) bytes, so a header whose n/dims
  // cannot physically fit the file is rejected up front — consumers may
  // then size allocations from these fields without re-validating.
  if (n > file_size_ || dims > file_size_ ||
      static_cast<unsigned __int128>(n) * (4 + 9 * dims) >
          static_cast<unsigned __int128>(file_size_)) {
    return Corrupt("header object count/dims inconsistent with file size");
  }
  has_labels_ = (flags & kFlagHasLabels) != 0;
  if (has_labels_ && labels_offset_ < kHeaderBytes + name_len) {
    return Corrupt("labels offset points into the header");
  }
  if (kHeaderBytes + static_cast<uint64_t>(name_len) > file_size_) {
    return Corrupt("header name length inconsistent with file size");
  }
  n_ = static_cast<std::size_t>(n);
  dims_ = static_cast<std::size_t>(dims);
  num_classes_ = num_classes;
  name_.resize(name_len);
  if (name_len > 0 &&
      std::fread(name_.data(), 1, name_len, file_) != name_len) {
    return Corrupt("file too short for the dataset name");
  }
  cursor_ = 0;
  return common::Status::Ok();
}

common::Status BinaryDatasetReader::ReadBatch(
    std::size_t max, std::vector<uncertain::UncertainObject>* out) {
  if (file_ == nullptr) {
    return common::Status::InvalidArgument("reader is not open");
  }
  if (max == 0) return common::Status::InvalidArgument("max must be > 0");
  out->clear();
  const std::size_t count = std::min(max, remaining());
  out->reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    uint32_t payload = 0;
    if (std::fread(&payload, sizeof(payload), 1, file_) != 1) {
      return Corrupt("truncated file: missing record length for object " +
                     std::to_string(cursor_));
    }
    if (payload > file_size_) {
      // Bounds-check the untrusted length before allocating: a corrupt
      // record must surface as an error, not as an attempted huge alloc.
      return Corrupt("object record " + std::to_string(cursor_) +
                     " declares more bytes than the file holds");
    }
    record_buf_.resize(payload);
    if (payload > 0 &&
        std::fread(record_buf_.data(), 1, payload, file_) != payload) {
      return Corrupt("truncated file: short object record " +
                     std::to_string(cursor_));
    }
    RecordCursor cur(record_buf_.data(), record_buf_.size());
    std::vector<uncertain::PdfPtr> pdfs;
    pdfs.reserve(dims_);
    for (std::size_t j = 0; j < dims_; ++j) {
      uncertain::PdfPtr pdf = GetPdf(&cur);
      if (pdf == nullptr) {
        return Corrupt("malformed pdf record in object " +
                       std::to_string(cursor_));
      }
      pdfs.push_back(std::move(pdf));
    }
    if (!cur.exhausted()) {
      return Corrupt("trailing bytes in object record " +
                     std::to_string(cursor_));
    }
    out->emplace_back(std::move(pdfs));
    ++cursor_;
  }
  return common::Status::Ok();
}

common::Status BinaryDatasetReader::ReadLabels(std::vector<int>* labels) {
  if (file_ == nullptr) {
    return common::Status::InvalidArgument("reader is not open");
  }
  labels->clear();
  if (!has_labels_) return common::Status::Ok();
  const long saved = std::ftell(file_);
  if (saved < 0) return Corrupt("ftell failed");
  if (std::fseek(file_, static_cast<long>(labels_offset_), SEEK_SET) != 0) {
    return Corrupt("cannot seek to labels column");
  }
  std::vector<int32_t> raw(n_);
  if (n_ > 0 && std::fread(raw.data(), sizeof(int32_t), n_, file_) != n_) {
    return Corrupt("truncated labels column");
  }
  labels->assign(raw.begin(), raw.end());
  if (std::fseek(file_, saved, SEEK_SET) != 0) {
    return Corrupt("cannot restore stream position");
  }
  return common::Status::Ok();
}

common::Result<data::UncertainDataset> ReadUncertainDataset(
    const std::string& path) {
  BinaryDatasetReader reader;
  UCLUST_RETURN_NOT_OK(reader.Open(path));
  std::vector<uncertain::UncertainObject> objects;
  // reader.size() is validated against the physical file size on Open, so
  // this reserve is bounded; cap it anyway — growth is geometric beyond.
  objects.reserve(std::min<std::size_t>(reader.size(), 1u << 20));
  std::vector<uncertain::UncertainObject> batch;
  while (reader.remaining() > 0) {
    UCLUST_RETURN_NOT_OK(reader.ReadBatch(4096, &batch));
    for (auto& o : batch) objects.push_back(std::move(o));
  }
  std::vector<int> labels;
  UCLUST_RETURN_NOT_OK(reader.ReadLabels(&labels));
  data::UncertainDataset ds(reader.name(), std::move(objects),
                            std::move(labels), reader.num_classes());
  // Annotate provenance: the sample-store factory keys its sidecar reuse
  // guard (and the default sidecar location) off the source file.
  ds.set_source_path(path);
  return ds;
}

}  // namespace uclust::io
