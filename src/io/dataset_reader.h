// Streaming reader for the binary dataset format (see binary_format.h).
//
// After Open() validates the header (magic, endianness canary, version), the
// object records are consumed strictly forward in batches, so only one batch
// of pdf objects is ever resident — the reader is the file-backed producer
// behind uncertain::DatasetBuilder (see ingest.h). ReadAll() remains for
// moderate sizes where the classic fully-resident UncertainDataset is wanted.
#ifndef UCLUST_IO_DATASET_READER_H_
#define UCLUST_IO_DATASET_READER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "uncertain/uncertain_object.h"

namespace uclust::io {

/// Reads one dataset file. Usage: Open(), then ReadBatch() until it returns
/// an empty batch (and optionally ReadLabels() at any point after Open()).
class BinaryDatasetReader {
 public:
  BinaryDatasetReader() = default;
  ~BinaryDatasetReader();

  BinaryDatasetReader(const BinaryDatasetReader&) = delete;
  BinaryDatasetReader& operator=(const BinaryDatasetReader&) = delete;

  /// Opens `path` and validates the header. Rejects foreign-endian files,
  /// versions newer than kFormatVersion, and malformed headers.
  common::Status Open(const std::string& path);

  /// Number of objects in the file.
  std::size_t size() const { return n_; }
  /// Dimensionality of every object.
  std::size_t dims() const { return dims_; }
  /// Dataset name stored in the file.
  const std::string& name() const { return name_; }
  /// Number of reference classes (0 when unlabeled).
  int num_classes() const { return num_classes_; }
  /// True when the file carries a labels column.
  bool has_labels() const { return has_labels_; }
  /// Objects not yet handed out by ReadBatch().
  std::size_t remaining() const { return n_ - cursor_; }
  /// Physical byte size of the open file — recorded into derived .umom
  /// moment sidecars as a cheap staleness guard for reuse.
  uint64_t file_bytes() const { return file_size_; }

  /// Deserializes the next min(max, remaining()) objects into `*out`
  /// (cleared first; empty at end of stream). `max` must be > 0.
  common::Status ReadBatch(std::size_t max,
                           std::vector<uncertain::UncertainObject>* out);

  /// Reads the labels column (empty when the file is unlabeled). Seeks to
  /// the column and back, so batch streaming is unaffected.
  common::Status ReadLabels(std::vector<int>* labels);

 private:
  common::Status Corrupt(const std::string& msg) const;

  std::FILE* file_ = nullptr;
  std::string path_;
  std::string name_;
  std::size_t n_ = 0;
  std::size_t dims_ = 0;
  int num_classes_ = 0;
  bool has_labels_ = false;
  uint64_t labels_offset_ = 0;
  uint64_t file_size_ = 0;  // bounds-checks untrusted header/record sizes
  std::size_t cursor_ = 0;                 // objects consumed so far
  std::vector<unsigned char> record_buf_;  // reused per-object scratch
};

/// Convenience: reads the whole file into a fully-resident UncertainDataset
/// (labels included). Memory is O(n m) pdf objects — for large files prefer
/// the streaming ingestion in ingest.h.
common::Result<data::UncertainDataset> ReadUncertainDataset(
    const std::string& path);

}  // namespace uclust::io

#endif  // UCLUST_IO_DATASET_READER_H_
