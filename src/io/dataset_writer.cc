#include "io/dataset_writer.h"

#include <cstring>

#include "io/binary_format.h"
#include "uncertain/dirac_pdf.h"
#include "uncertain/discrete_pdf.h"
#include "uncertain/exponential_pdf.h"
#include "uncertain/normal_pdf.h"
#include "uncertain/uniform_pdf.h"

namespace uclust::io {

namespace {

// Appends the native (little-endian; enforced by the header canary) bytes of
// a POD value to `out`.
template <typename T>
void PutRaw(std::vector<unsigned char>* out, T value) {
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->insert(out->end(), bytes, bytes + sizeof(T));
}

// Serializes one per-dimension pdf as a tag + constructor-exact parameters.
common::Status PutPdf(std::vector<unsigned char>* out,
                      const uncertain::Pdf& pdf) {
  if (const auto* p = dynamic_cast<const uncertain::DiracPdf*>(&pdf)) {
    PutRaw<uint8_t>(out, kPdfDirac);
    PutRaw(out, p->mean());
    return common::Status::Ok();
  }
  if (const auto* p = dynamic_cast<const uncertain::UniformPdf*>(&pdf)) {
    PutRaw<uint8_t>(out, kPdfUniform);
    PutRaw(out, p->lower());
    PutRaw(out, p->upper());
    return common::Status::Ok();
  }
  if (const auto* p =
          dynamic_cast<const uncertain::TruncatedNormalPdf*>(&pdf)) {
    PutRaw<uint8_t>(out, kPdfNormal);
    PutRaw(out, p->mu());
    PutRaw(out, p->sigma());
    PutRaw(out, p->half_width_sigmas());
    return common::Status::Ok();
  }
  if (const auto* p =
          dynamic_cast<const uncertain::TruncatedExponentialPdf*>(&pdf)) {
    PutRaw<uint8_t>(out, kPdfExponential);
    PutRaw(out, p->mean());
    PutRaw(out, p->rate());
    return common::Status::Ok();
  }
  if (const auto* p = dynamic_cast<const uncertain::DiscretePdf*>(&pdf)) {
    PutRaw<uint8_t>(out, kPdfDiscrete);
    PutRaw(out, static_cast<uint32_t>(p->values().size()));
    for (double v : p->values()) PutRaw(out, v);
    for (double w : p->weights()) PutRaw(out, w);
    return common::Status::Ok();
  }
  return common::Status::InvalidArgument(
      std::string("pdf type has no binary serialization: ") + pdf.TypeName());
}

}  // namespace

BinaryDatasetWriter::~BinaryDatasetWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

common::Status BinaryDatasetWriter::Fail(const std::string& msg) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  return common::Status::IOError(path_ + ": " + msg);
}

common::Status BinaryDatasetWriter::Open(const std::string& path,
                                         std::size_t dims,
                                         const std::string& name,
                                         int num_classes, bool with_labels) {
  if (file_ != nullptr) {
    return common::Status::InvalidArgument("writer is already open");
  }
  if (dims == 0) {
    return common::Status::InvalidArgument("dims must be > 0");
  }
  if (with_labels != (num_classes > 0)) {
    return common::Status::InvalidArgument(
        "num_classes must be > 0 exactly when labels are written");
  }
  path_ = path;
  dims_ = dims;
  with_labels_ = with_labels;
  written_ = 0;
  labels_.clear();
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return common::Status::IOError("cannot create " + path);

  std::vector<unsigned char> header;
  header.reserve(kHeaderBytes + name.size());
  header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
  PutRaw(&header, kEndianTag);
  PutRaw(&header, kFormatVersion);
  PutRaw<uint64_t>(&header, 0);  // n, patched by Finish()
  PutRaw<uint64_t>(&header, dims);
  PutRaw<int32_t>(&header, num_classes);
  PutRaw<uint32_t>(&header, with_labels ? kFlagHasLabels : 0);
  PutRaw<uint64_t>(&header, 0);  // labels_offset, patched by Finish()
  PutRaw<uint32_t>(&header, static_cast<uint32_t>(name.size()));
  header.resize(kHeaderBytes, 0);  // reserved
  header.insert(header.end(), name.begin(), name.end());
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    return Fail("short write on header");
  }
  return common::Status::Ok();
}

common::Status BinaryDatasetWriter::Append(
    const uncertain::UncertainObject& object, int label) {
  if (file_ == nullptr) {
    return common::Status::InvalidArgument("writer is not open");
  }
  if (object.dims() != dims_) {
    return common::Status::InvalidArgument(
        "object has " + std::to_string(object.dims()) + " dims, file has " +
        std::to_string(dims_));
  }
  if (with_labels_ && label < 0) {
    return common::Status::InvalidArgument(
        "labeled file requires label >= 0 for every object");
  }
  record_buf_.clear();
  for (std::size_t j = 0; j < dims_; ++j) {
    UCLUST_RETURN_NOT_OK(PutPdf(&record_buf_, object.pdf(j)));
  }
  const uint32_t payload = static_cast<uint32_t>(record_buf_.size());
  if (std::fwrite(&payload, sizeof(payload), 1, file_) != 1 ||
      std::fwrite(record_buf_.data(), 1, record_buf_.size(), file_) !=
          record_buf_.size()) {
    return Fail("short write on object record");
  }
  if (with_labels_) labels_.push_back(label);
  ++written_;
  return common::Status::Ok();
}

common::Status BinaryDatasetWriter::Finish() {
  if (file_ == nullptr) {
    return common::Status::InvalidArgument("writer is not open");
  }
  uint64_t labels_offset = 0;
  if (with_labels_) {
    const long pos = std::ftell(file_);
    if (pos < 0) return Fail("ftell failed");
    labels_offset = static_cast<uint64_t>(pos);
    if (!labels_.empty() &&
        std::fwrite(labels_.data(), sizeof(int32_t), labels_.size(), file_) !=
            labels_.size()) {
      return Fail("short write on labels column");
    }
  }
  // Patch n (offset 16) and labels_offset (offset 40); see binary_format.h.
  const uint64_t n = written_;
  if (std::fseek(file_, 16, SEEK_SET) != 0 ||
      std::fwrite(&n, sizeof(n), 1, file_) != 1 ||
      std::fseek(file_, 40, SEEK_SET) != 0 ||
      std::fwrite(&labels_offset, sizeof(labels_offset), 1, file_) != 1) {
    return Fail("failed to patch header");
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return common::Status::IOError(path_ + ": close failed");
  return common::Status::Ok();
}

}  // namespace uclust::io
