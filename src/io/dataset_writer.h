// Streaming writer for the binary dataset format (see binary_format.h).
//
// Objects are appended one at a time and serialized immediately, so the
// writer's memory footprint is O(m) per object plus the O(n) label column it
// retains for the Finish() footer — datasets far larger than RAM can be
// produced in one pass (see tools/dataset_gen.cc).
#ifndef UCLUST_IO_DATASET_WRITER_H_
#define UCLUST_IO_DATASET_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "uncertain/uncertain_object.h"

namespace uclust::io {

/// Writes one dataset file. Usage: Open() once, Append() n times, Finish()
/// (which seals the header; a file without Finish() is invalid).
class BinaryDatasetWriter {
 public:
  BinaryDatasetWriter() = default;
  ~BinaryDatasetWriter();

  BinaryDatasetWriter(const BinaryDatasetWriter&) = delete;
  BinaryDatasetWriter& operator=(const BinaryDatasetWriter&) = delete;

  /// Creates/truncates `path` and writes the provisional header.
  /// `with_labels` fixes whether Append() calls carry labels; `num_classes`
  /// must be > 0 iff labels are written.
  common::Status Open(const std::string& path, std::size_t dims,
                      const std::string& name, int num_classes,
                      bool with_labels);

  /// Serializes one object (dims must match Open()). `label` is required
  /// (>= 0) when the file carries labels and ignored otherwise.
  common::Status Append(const uncertain::UncertainObject& object,
                        int label = -1);

  /// Writes the labels column, patches n and the label offset into the
  /// header, and closes the file.
  common::Status Finish();

  /// Objects appended so far.
  std::size_t written() const { return written_; }

 private:
  common::Status Fail(const std::string& msg);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::size_t dims_ = 0;
  bool with_labels_ = false;
  std::size_t written_ = 0;
  std::vector<int32_t> labels_;
  std::vector<unsigned char> record_buf_;  // reused per-object scratch
};

}  // namespace uclust::io

#endif  // UCLUST_IO_DATASET_WRITER_H_
