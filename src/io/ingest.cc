#include "io/ingest.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <utility>

#include "engine/parallel_for.h"
#include "io/mmap_file.h"
#include "io/moment_file.h"
#include "io/moment_format.h"

namespace uclust::io {

std::span<const uncertain::UncertainObject> FileObjectSource::NextBatch(
    std::size_t max) {
  if (!status_.ok() || reader_->remaining() == 0) return {};
  status_ = reader_->ReadBatch(max, &batch_);
  if (!status_.ok()) return {};
  return batch_;
}

common::Result<uncertain::MomentMatrix> StreamMomentsFromFile(
    const std::string& path, const engine::Engine& eng,
    std::size_t batch_size, std::vector<int>* labels,
    std::string* dataset_name) {
  BinaryDatasetReader reader;
  UCLUST_RETURN_NOT_OK(reader.Open(path));
  FileObjectSource source(&reader);
  uncertain::MomentMatrix mm =
      uncertain::DatasetBuilder::BuildMoments(&source, eng, batch_size);
  UCLUST_RETURN_NOT_OK(source.status());
  if (mm.size() != reader.size()) {
    return common::Status::Internal(
        path + ": ingested " + std::to_string(mm.size()) + " of " +
        std::to_string(reader.size()) + " objects");
  }
  if (labels != nullptr) UCLUST_RETURN_NOT_OK(reader.ReadLabels(labels));
  if (dataset_name != nullptr) *dataset_name = reader.name();
  return mm;
}

common::Status BuildMomentSidecar(const std::string& dataset_path,
                                  const std::string& sidecar_path,
                                  const engine::Engine& eng,
                                  std::size_t chunk_rows,
                                  std::size_t batch_size) {
  BinaryDatasetReader reader;
  UCLUST_RETURN_NOT_OK(reader.Open(dataset_path));
  // Build into a unique temp sibling and rename into place only on success:
  // a rebuild that fails midway (disk full, malformed source record, kill)
  // must never destroy a previously valid — and possibly expensive —
  // sidecar, and a concurrent reader serving windows from the old file
  // keeps its consistent view (the rename unlinks the name, not the open
  // inode). The per-call scratch name keeps concurrent rebuilds of one
  // sidecar (e.g. two service jobs with different chunk shapes) from
  // interleaving writes into a shared tmp inode.
  const std::string tmp_path = UniqueScratchSiblingPath(sidecar_path);
  auto build = [&]() -> common::Status {
    MomentFileWriter writer;
    UCLUST_RETURN_NOT_OK(writer.Open(tmp_path, reader.dims(), chunk_rows,
                                     reader.file_bytes(),
                                     FileMTimeTicks(dataset_path),
                                     FileProbeHash(dataset_path)));
    FileObjectSource source(&reader);
    uncertain::DatasetBuilder builder(eng, &writer);
    builder.Consume(&source, batch_size);
    UCLUST_RETURN_NOT_OK(source.status());
    UCLUST_RETURN_NOT_OK(builder.status());
    if (builder.size() != reader.size()) {
      return common::Status::Internal(
          dataset_path + ": ingested " + std::to_string(builder.size()) +
          " of " + std::to_string(reader.size()) + " objects");
    }
    return writer.Finish();
  };
  const common::Status built = build();
  if (!built.ok()) {
    std::remove(tmp_path.c_str());
    return built;
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, sidecar_path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return common::Status::IOError(sidecar_path +
                                   ": cannot move rebuilt sidecar into "
                                   "place: " + ec.message());
  }
  return common::Status::Ok();
}

common::Status MomentBatchStream::Open(const std::string& path) {
  path_ = path;
  reader_ = std::make_unique<BinaryDatasetReader>();
  UCLUST_RETURN_NOT_OK(reader_->Open(path));
  n_ = reader_->size();
  m_ = reader_->dims();
  name_ = reader_->name();
  base_index_ = 0;
  next_index_ = 0;
  batch_rows_ = 0;
  return common::Status::Ok();
}

common::Status MomentBatchStream::Rewind() {
  // The binary format is strictly forward-only; restarting means reopening
  // the record cursor on a fresh reader (the header re-validates for free).
  reader_ = std::make_unique<BinaryDatasetReader>();
  UCLUST_RETURN_NOT_OK(reader_->Open(path_));
  if (reader_->size() != n_ || reader_->dims() != m_) {
    return common::Status::Internal(
        path_ + ": dataset changed shape between streaming passes");
  }
  base_index_ = 0;
  next_index_ = 0;
  batch_rows_ = 0;
  return common::Status::Ok();
}

common::Result<std::size_t> MomentBatchStream::NextBatch(
    std::size_t max_rows) {
  if (reader_ == nullptr) return common::Status::Internal("stream not open");
  base_index_ = next_index_;
  batch_rows_ = 0;
  if (reader_->remaining() == 0) return std::size_t{0};
  UCLUST_RETURN_NOT_OK(reader_->ReadBatch(max_rows, &objects_));
  batch_rows_ = objects_.size();
  next_index_ = base_index_ + batch_rows_;
  mean_.resize(batch_rows_ * m_);
  mu2_.resize(batch_rows_ * m_);
  var_.resize(batch_rows_ * m_);
  total_var_.resize(batch_rows_);
  engine::ParallelFor(engine_, batch_rows_,
                      [&](const engine::BlockedRange& r) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const uncertain::UncertainObject& o = objects_[i];
      const std::size_t row = i * m_;
      uncertain::MomentMatrix::PackRow(o.mean(), o.second_moment(),
                                       o.variance(), mean_.data() + row,
                                       mu2_.data() + row, var_.data() + row,
                                       total_var_.data() + i);
    }
  });
  return batch_rows_;
}

common::Status MomentBatchStream::ReadMeanAt(std::size_t index,
                                             std::span<double> out) const {
  if (index >= n_ || out.size() != m_) {
    return common::Status::InvalidArgument(
        path_ + ": ReadMeanAt index/shape out of range");
  }
  BinaryDatasetReader reader;
  UCLUST_RETURN_NOT_OK(reader.Open(path_));
  std::vector<uncertain::UncertainObject> batch;
  std::size_t skipped = 0;
  // Forward-skip in whole batches; only the batch holding `index` matters.
  constexpr std::size_t kSkipBatch = 1024;
  while (skipped + kSkipBatch <= index) {
    UCLUST_RETURN_NOT_OK(reader.ReadBatch(kSkipBatch, &batch));
    skipped += batch.size();
  }
  UCLUST_RETURN_NOT_OK(reader.ReadBatch(index - skipped + 1, &batch));
  if (skipped + batch.size() != index + 1) {
    return common::Status::Internal(path_ + ": short read in ReadMeanAt");
  }
  const auto mean = batch.back().mean();
  std::copy(mean.begin(), mean.end(), out.begin());
  return common::Status::Ok();
}

common::Status MomentBatchStream::ReadLabels(std::vector<int>* labels) {
  if (reader_ == nullptr) return common::Status::Internal("stream not open");
  return reader_->ReadLabels(labels);
}

common::Result<uncertain::MomentStorePtr> StreamMomentStoreFromFile(
    const std::string& path, const engine::Engine& eng,
    const MomentStoreOptions& options, std::vector<int>* labels,
    std::string* dataset_name) {
  BinaryDatasetReader reader;
  UCLUST_RETURN_NOT_OK(reader.Open(path));
  const std::size_t n = reader.size();
  const std::size_t m = reader.dims();

  // Backend policy (mirrors PairwiseStoreOptions::FromBudget): unlimited
  // budget, or columns that fit it, stay resident; anything larger spills to
  // the mmap-backed sidecar. The header gives n and m before ingestion, so
  // the decision never requires materializing anything.
  MomentBackendChoice choice = options.backend;
  if (choice == MomentBackendChoice::kAuto) {
    const std::size_t budget = eng.memory_budget_bytes();
    const std::size_t resident_bytes = (3 * n * m + n) * sizeof(double);
    choice = (budget == 0 || resident_bytes <= budget)
                 ? MomentBackendChoice::kResident
                 : MomentBackendChoice::kMapped;
  }

  if (choice == MomentBackendChoice::kResident) {
    FileObjectSource source(&reader);
    uncertain::MomentMatrix mm = uncertain::DatasetBuilder::BuildMoments(
        &source, eng, options.batch_size);
    UCLUST_RETURN_NOT_OK(source.status());
    if (mm.size() != n) {
      return common::Status::Internal(
          path + ": ingested " + std::to_string(mm.size()) + " of " +
          std::to_string(n) + " objects");
    }
    if (labels != nullptr) UCLUST_RETURN_NOT_OK(reader.ReadLabels(labels));
    if (dataset_name != nullptr) *dataset_name = reader.name();
    return uncertain::MomentStorePtr(
        new uncertain::ResidentMomentStore(std::move(mm)));
  }

  const std::string sidecar = options.sidecar_path.empty()
                                  ? path + ".umom"
                                  : options.sidecar_path;
  // Effective chunk requirement: an explicit hint wins; otherwise, when a
  // budget is set, size chunks so the mapped window caches themselves
  // respect the budget that forced the Mapped backend — every thread keeps
  // up to kMomentWindowSlots windows alive, so threads x slots x chunk
  // bytes must fit. Floor to a power of two, clamped to [64, default]
  // rows. 0 = no requirement (format default).
  std::size_t chunk_rows = options.chunk_rows != 0 ? options.chunk_rows
                                                   : eng.moment_chunk_rows();
  if (chunk_rows == 0 && eng.memory_budget_bytes() > 0) {
    const std::size_t window_budget =
        eng.memory_budget_bytes() /
        (static_cast<std::size_t>(eng.num_threads()) * kMomentWindowSlots);
    const std::size_t row_bytes = (3 * m + 1) * sizeof(double);
    const std::size_t want = window_budget / row_bytes;
    std::size_t pow2 = 1;
    while (pow2 * 2 <= want && pow2 < kDefaultMomentChunkRows) pow2 *= 2;
    chunk_rows = std::max<std::size_t>(pow2, 64);
  }
  bool reuse = false;
  if (options.reuse_sidecar) {
    // Staleness guard: shape, byte size, last-write tick, AND a content
    // probe (first/last 4 KiB hash) of the source dataset must match what
    // the sidecar recorded. A dataset regenerated in place often reproduces
    // the exact byte count (fixed-size records) and can land in the same
    // mtime tick on coarse filesystems — the probe still differs, so the
    // stale sidecar is rebuilt, not served. On top of staleness, the
    // sidecar's chunks must not exceed the effective requirement: larger
    // chunks would blow the window-memory bound the caller (or the budget
    // derivation) sized for; smaller chunks only cost extra faults.
    auto info = ReadMomentFileInfo(sidecar);
    reuse = info.ok() && info.ValueOrDie().n == n &&
            info.ValueOrDie().m == m &&
            info.ValueOrDie().source_size == reader.file_bytes() &&
            info.ValueOrDie().source_mtime == FileMTimeTicks(path) &&
            info.ValueOrDie().source_probe == FileProbeHash(path) &&
            (chunk_rows == 0 ||
             info.ValueOrDie().chunk_rows <=
                 NormalizeMomentChunkRows(chunk_rows));
  }
  if (!reuse) {
    UCLUST_RETURN_NOT_OK(BuildMomentSidecar(path, sidecar, eng, chunk_rows,
                                            options.batch_size));
  }
  auto store = MappedMomentStore::Open(sidecar);
  UCLUST_RETURN_NOT_OK(store.status());
  if (store.ValueOrDie()->size() != n || store.ValueOrDie()->dims() != m) {
    return common::Status::Internal(sidecar +
                                    ": sidecar shape does not match " + path);
  }
  if (labels != nullptr) UCLUST_RETURN_NOT_OK(reader.ReadLabels(labels));
  if (dataset_name != nullptr) *dataset_name = reader.name();
  return uncertain::MomentStorePtr(std::move(store).ValueOrDie());
}

}  // namespace uclust::io
