#include "io/ingest.h"

namespace uclust::io {

std::span<const uncertain::UncertainObject> FileObjectSource::NextBatch(
    std::size_t max) {
  if (!status_.ok() || reader_->remaining() == 0) return {};
  status_ = reader_->ReadBatch(max, &batch_);
  if (!status_.ok()) return {};
  return batch_;
}

common::Result<uncertain::MomentMatrix> StreamMomentsFromFile(
    const std::string& path, const engine::Engine& eng,
    std::size_t batch_size, std::vector<int>* labels,
    std::string* dataset_name) {
  BinaryDatasetReader reader;
  UCLUST_RETURN_NOT_OK(reader.Open(path));
  FileObjectSource source(&reader);
  uncertain::MomentMatrix mm =
      uncertain::DatasetBuilder::BuildMoments(&source, eng, batch_size);
  UCLUST_RETURN_NOT_OK(source.status());
  if (mm.size() != reader.size()) {
    return common::Status::Internal(
        path + ": ingested " + std::to_string(mm.size()) + " of " +
        std::to_string(reader.size()) + " objects");
  }
  if (labels != nullptr) UCLUST_RETURN_NOT_OK(reader.ReadLabels(labels));
  if (dataset_name != nullptr) *dataset_name = reader.name();
  return mm;
}

}  // namespace uclust::io
