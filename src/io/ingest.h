// File-backed streaming ingestion: binary dataset file -> moment statistics
// in one bounded-memory pass.
//
// FileObjectSource adapts BinaryDatasetReader to the ObjectSource interface
// consumed by uncertain::DatasetBuilder, so file-backed and in-memory
// datasets share one ingestion path and produce bit-identical moments for
// any batch size and engine thread count (tests/test_io.cc).
//
// Two entry points sit on top:
//
//   * StreamMomentsFromFile — the classic fully-resident MomentMatrix; peak
//     memory is the O(n m) moment columns plus one batch of pdf objects.
//   * StreamMomentStoreFromFile — returns a MomentStore whose backend is
//     selected by EngineConfig::memory_budget_bytes: Resident when the
//     columns fit the budget (or it is unlimited), Mapped otherwise. On the
//     Mapped path the builder spills each batch straight into a .umom
//     sidecar (see moment_file.h), so peak memory is O(batch + chunk)
//     regardless of n, and a valid matching sidecar from an earlier run is
//     reused instead of rebuilt.
#ifndef UCLUST_IO_INGEST_H_
#define UCLUST_IO_INGEST_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "io/dataset_reader.h"
#include "uncertain/dataset_builder.h"
#include "uncertain/moment_store.h"
#include "uncertain/moments.h"

namespace uclust::io {

/// ObjectSource over an open BinaryDatasetReader; holds exactly one batch of
/// deserialized objects at a time.
class FileObjectSource final : public uncertain::ObjectSource {
 public:
  /// `reader` must outlive the source and have a validated header.
  explicit FileObjectSource(BinaryDatasetReader* reader) : reader_(reader) {}

  /// Error state of the underlying stream; check once draining is done
  /// (NextBatch has no error channel, so read failures end the stream
  /// early and are reported here).
  const common::Status& status() const { return status_; }

  std::span<const uncertain::UncertainObject> NextBatch(
      std::size_t max) override;

 private:
  BinaryDatasetReader* reader_;
  std::vector<uncertain::UncertainObject> batch_;
  common::Status status_;
};

/// Streams `path` into moment statistics with O(batch) resident pdf objects.
/// `labels`/`dataset_name` (optional) receive the file's labels column and
/// stored name.
common::Result<uncertain::MomentMatrix> StreamMomentsFromFile(
    const std::string& path,
    const engine::Engine& eng = engine::Engine::Serial(),
    std::size_t batch_size = uncertain::DatasetBuilder::kDefaultBatchSize,
    std::vector<int>* labels = nullptr, std::string* dataset_name = nullptr);

/// How StreamMomentStoreFromFile picks the MomentStore backend.
enum class MomentBackendChoice {
  kAuto,      ///< Resident iff the columns fit eng.memory_budget_bytes()
              ///< (0 = unlimited = Resident, mirroring PairwiseStore).
  kResident,  ///< Force the flat in-memory columns.
  kMapped,    ///< Force the mmap-backed .umom sidecar.
};

/// Tuning of a StreamMomentStoreFromFile call.
struct MomentStoreOptions {
  MomentBackendChoice backend = MomentBackendChoice::kAuto;
  /// Rows per sidecar chunk; 0 = the engine's moment_chunk_rows hint, then
  /// the format default. Rounded up to a power of two.
  std::size_t chunk_rows = 0;
  /// Sidecar location; "" = dataset path + ".umom".
  std::string sidecar_path;
  /// Reuse an existing sidecar when its header matches the dataset (same n,
  /// m, source byte size, last-write time, AND content probe — the
  /// staleness guard written at build time, so in-place regenerations that
  /// reproduce the byte count are still caught) and its chunks are no
  /// larger than the effective chunk requirement (explicit hint or
  /// budget-derived size — larger chunks would exceed the window-memory
  /// bound; smaller ones only cost extra faults). A mismatched or invalid
  /// sidecar is silently rebuilt; set false to force a rebuild regardless.
  bool reuse_sidecar = true;
  /// Streaming batch size for the ingestion pass.
  std::size_t batch_size = uncertain::DatasetBuilder::kDefaultBatchSize;
};

/// Streams `path` into a MomentStore whose backend is selected by the
/// engine's memory budget (see MomentStoreOptions to force one).
/// `labels`/`dataset_name` (optional) receive the file's labels column and
/// stored name. Both backends serve bit-identical moment statistics.
common::Result<uncertain::MomentStorePtr> StreamMomentStoreFromFile(
    const std::string& path,
    const engine::Engine& eng = engine::Engine::Serial(),
    const MomentStoreOptions& options = {},
    std::vector<int>* labels = nullptr, std::string* dataset_name = nullptr);

/// Builds (or rebuilds) the .umom moment sidecar for a binary dataset file
/// in one bounded-memory pass: reader batches -> DatasetBuilder spill mode
/// -> MomentFileWriter. Used by `dataset_gen --emit-moments` and by the
/// Mapped path of StreamMomentStoreFromFile.
common::Status BuildMomentSidecar(
    const std::string& dataset_path, const std::string& sidecar_path,
    const engine::Engine& eng = engine::Engine::Serial(),
    std::size_t chunk_rows = 0,
    std::size_t batch_size = uncertain::DatasetBuilder::kDefaultBatchSize);

}  // namespace uclust::io

#endif  // UCLUST_IO_INGEST_H_
