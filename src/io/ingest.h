// File-backed streaming ingestion: binary dataset file -> moment statistics
// in one bounded-memory pass.
//
// FileObjectSource adapts BinaryDatasetReader to the ObjectSource interface
// consumed by uncertain::DatasetBuilder, so file-backed and in-memory
// datasets share one ingestion path and produce bit-identical moments for
// any batch size and engine thread count (tests/test_io.cc).
//
// Two entry points sit on top:
//
//   * StreamMomentsFromFile — the classic fully-resident MomentMatrix; peak
//     memory is the O(n m) moment columns plus one batch of pdf objects.
//   * StreamMomentStoreFromFile — returns a MomentStore whose backend is
//     selected by EngineConfig::memory_budget_bytes: Resident when the
//     columns fit the budget (or it is unlimited), Mapped otherwise. On the
//     Mapped path the builder spills each batch straight into a .umom
//     sidecar (see moment_file.h), so peak memory is O(batch + chunk)
//     regardless of n, and a valid matching sidecar from an earlier run is
//     reused instead of rebuilt.
#ifndef UCLUST_IO_INGEST_H_
#define UCLUST_IO_INGEST_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "io/dataset_reader.h"
#include "uncertain/dataset_builder.h"
#include "uncertain/moment_store.h"
#include "uncertain/moments.h"

namespace uclust::io {

/// ObjectSource over an open BinaryDatasetReader; holds exactly one batch of
/// deserialized objects at a time.
class FileObjectSource final : public uncertain::ObjectSource {
 public:
  /// `reader` must outlive the source and have a validated header.
  explicit FileObjectSource(BinaryDatasetReader* reader) : reader_(reader) {}

  /// Error state of the underlying stream; check once draining is done
  /// (NextBatch has no error channel, so read failures end the stream
  /// early and are reported here).
  const common::Status& status() const { return status_; }

  std::span<const uncertain::UncertainObject> NextBatch(
      std::size_t max) override;

 private:
  BinaryDatasetReader* reader_;
  std::vector<uncertain::UncertainObject> batch_;
  common::Status status_;
};

/// Streams `path` into moment statistics with O(batch) resident pdf objects.
/// `labels`/`dataset_name` (optional) receive the file's labels column and
/// stored name.
common::Result<uncertain::MomentMatrix> StreamMomentsFromFile(
    const std::string& path,
    const engine::Engine& eng = engine::Engine::Serial(),
    std::size_t batch_size = uncertain::DatasetBuilder::kDefaultBatchSize,
    std::vector<int>* labels = nullptr, std::string* dataset_name = nullptr);

/// How StreamMomentStoreFromFile picks the MomentStore backend.
enum class MomentBackendChoice {
  kAuto,      ///< Resident iff the columns fit eng.memory_budget_bytes()
              ///< (0 = unlimited = Resident, mirroring PairwiseStore).
  kResident,  ///< Force the flat in-memory columns.
  kMapped,    ///< Force the mmap-backed .umom sidecar.
};

/// Tuning of a StreamMomentStoreFromFile call.
struct MomentStoreOptions {
  MomentBackendChoice backend = MomentBackendChoice::kAuto;
  /// Rows per sidecar chunk; 0 = the engine's moment_chunk_rows hint, then
  /// the format default. Rounded up to a power of two.
  std::size_t chunk_rows = 0;
  /// Sidecar location; "" = dataset path + ".umom".
  std::string sidecar_path;
  /// Reuse an existing sidecar when its header matches the dataset (same n,
  /// m, source byte size, last-write time, AND content probe — the
  /// staleness guard written at build time, so in-place regenerations that
  /// reproduce the byte count are still caught) and its chunks are no
  /// larger than the effective chunk requirement (explicit hint or
  /// budget-derived size — larger chunks would exceed the window-memory
  /// bound; smaller ones only cost extra faults). A mismatched or invalid
  /// sidecar is silently rebuilt; set false to force a rebuild regardless.
  bool reuse_sidecar = true;
  /// Streaming batch size for the ingestion pass.
  std::size_t batch_size = uncertain::DatasetBuilder::kDefaultBatchSize;
};

/// Streams `path` into a MomentStore whose backend is selected by the
/// engine's memory budget (see MomentStoreOptions to force one).
/// `labels`/`dataset_name` (optional) receive the file's labels column and
/// stored name. Both backends serve bit-identical moment statistics.
common::Result<uncertain::MomentStorePtr> StreamMomentStoreFromFile(
    const std::string& path,
    const engine::Engine& eng = engine::Engine::Serial(),
    const MomentStoreOptions& options = {},
    std::vector<int>* labels = nullptr, std::string* dataset_name = nullptr);

/// Builds (or rebuilds) the .umom moment sidecar for a binary dataset file
/// in one bounded-memory pass: reader batches -> DatasetBuilder spill mode
/// -> MomentFileWriter. Used by `dataset_gen --emit-moments` and by the
/// Mapped path of StreamMomentStoreFromFile.
common::Status BuildMomentSidecar(
    const std::string& dataset_path, const std::string& sidecar_path,
    const engine::Engine& eng = engine::Engine::Serial(),
    std::size_t chunk_rows = 0,
    std::size_t batch_size = uncertain::DatasetBuilder::kDefaultBatchSize);

/// Re-streamable batch-at-a-time moment statistics over a binary dataset
/// file — the input side of the mini-batch CK-means driver (and any other
/// consumer that wants moment rows in bounded memory without materializing
/// a MomentStore). Each NextBatch() deserializes one batch of pdf objects
/// and packs their moments into a reused flat scratch block through the
/// canonical MomentMatrix::PackRow, so the served values are bit-identical
/// to a full ingestion via DatasetBuilder for any batch size and thread
/// count. Rewind() restarts the record cursor for multi-pass consumers
/// (the underlying reader is forward-only, so a rewind reopens the file).
class MomentBatchStream {
 public:
  /// `eng` dispatches the per-batch packing pass.
  explicit MomentBatchStream(
      const engine::Engine& eng = engine::Engine::Serial())
      : engine_(eng) {}

  /// Opens `path` and validates the header.
  common::Status Open(const std::string& path);

  /// Number of objects in the file.
  std::size_t size() const { return n_; }
  /// Dimensionality of every object.
  std::size_t dims() const { return m_; }
  /// Dataset name stored in the file.
  const std::string& name() const { return name_; }

  /// Restarts the stream at object 0 (reopens the record cursor).
  common::Status Rewind();

  /// Packs the next min(max_rows, remaining) objects' moments into the
  /// internal scratch block and returns the row count (0 at end of stream).
  /// `max_rows` must be > 0.
  common::Result<std::size_t> NextBatch(std::size_t max_rows);

  /// Absolute object index of row 0 of the current batch.
  std::size_t base_index() const { return base_index_; }
  /// Flat view over the current batch's moment rows (batch-local indices;
  /// valid until the next NextBatch/Rewind call).
  uncertain::MomentView batch_view() const {
    return uncertain::MomentView(batch_rows_, m_, mean_.data(), mu2_.data(),
                                 var_.data(), total_var_.data());
  }

  /// Reads the mean vector of one object by absolute index through a fresh
  /// forward scan (the format has no random access); `out` must have dims()
  /// elements. O(index) — intended for rare lookups such as the CK-means
  /// empty-cluster reseed, not for bulk access.
  common::Status ReadMeanAt(std::size_t index, std::span<double> out) const;

  /// Reads the labels column (empty when the file is unlabeled).
  common::Status ReadLabels(std::vector<int>* labels);

 private:
  engine::Engine engine_;
  std::string path_;
  std::string name_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t base_index_ = 0;
  std::size_t next_index_ = 0;
  std::size_t batch_rows_ = 0;
  std::unique_ptr<BinaryDatasetReader> reader_;
  std::vector<uncertain::UncertainObject> objects_;
  std::vector<double> mean_, mu2_, var_, total_var_;
};

}  // namespace uclust::io

#endif  // UCLUST_IO_INGEST_H_
