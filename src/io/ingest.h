// File-backed streaming ingestion: binary dataset file -> MomentMatrix in
// one bounded-memory pass.
//
// FileObjectSource adapts BinaryDatasetReader to the ObjectSource interface
// consumed by uncertain::DatasetBuilder, so file-backed and in-memory
// datasets share one ingestion path and produce bit-identical moments for
// any batch size and engine thread count (tests/test_io.cc). Peak memory is
// the O(n m) moment columns plus one batch of pdf objects — raw samples and
// pdf parameters of the full dataset are never resident at once.
#ifndef UCLUST_IO_INGEST_H_
#define UCLUST_IO_INGEST_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "io/dataset_reader.h"
#include "uncertain/dataset_builder.h"
#include "uncertain/moments.h"

namespace uclust::io {

/// ObjectSource over an open BinaryDatasetReader; holds exactly one batch of
/// deserialized objects at a time.
class FileObjectSource final : public uncertain::ObjectSource {
 public:
  /// `reader` must outlive the source and have a validated header.
  explicit FileObjectSource(BinaryDatasetReader* reader) : reader_(reader) {}

  /// Error state of the underlying stream; check once draining is done
  /// (NextBatch has no error channel, so read failures end the stream
  /// early and are reported here).
  const common::Status& status() const { return status_; }

  std::span<const uncertain::UncertainObject> NextBatch(
      std::size_t max) override;

 private:
  BinaryDatasetReader* reader_;
  std::vector<uncertain::UncertainObject> batch_;
  common::Status status_;
};

/// Streams `path` into moment statistics with O(batch) resident pdf objects.
/// `labels`/`dataset_name` (optional) receive the file's labels column and
/// stored name.
common::Result<uncertain::MomentMatrix> StreamMomentsFromFile(
    const std::string& path,
    const engine::Engine& eng = engine::Engine::Serial(),
    std::size_t batch_size = uncertain::DatasetBuilder::kDefaultBatchSize,
    std::vector<int>* labels = nullptr, std::string* dataset_name = nullptr);

}  // namespace uclust::io

#endif  // UCLUST_IO_INGEST_H_
