#include "io/mmap_file.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define UCLUST_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace uclust::io {

namespace {

// Fills `dst` with `length` bytes at `offset`, preferring pread (thread-safe
// on a shared descriptor) and falling back to a private stream.
common::Status ReadExact(int fd, const std::string& path,
                         std::uint64_t offset, std::size_t length,
                         unsigned char* dst) {
#if UCLUST_HAVE_MMAP
  if (fd >= 0) {
    std::size_t done = 0;
    while (done < length) {
      const ssize_t got = ::pread(fd, dst + done, length - done,
                                  static_cast<off_t>(offset + done));
      if (got <= 0) {
        return common::Status::IOError(path + ": short read at offset " +
                                       std::to_string(offset + done));
      }
      done += static_cast<std::size_t>(got);
    }
    return common::Status::Ok();
  }
#else
  (void)fd;
#endif
  // Portable fallback: std::streamoff is at least 64-bit, so sidecars past
  // 2 GB — the out-of-core regime — seek correctly where a long-based
  // std::fseek would silently truncate the offset.
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return common::Status::IOError(path + ": cannot open for region read");
  }
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(reinterpret_cast<char*>(dst),
          static_cast<std::streamsize>(length));
  if (!in.good() ||
      in.gcount() != static_cast<std::streamsize>(length)) {
    return common::Status::IOError(path + ": short read at offset " +
                                   std::to_string(offset));
  }
  return common::Status::Ok();
}

}  // namespace

MappedRegion::~MappedRegion() { Release(); }

MappedRegion& MappedRegion::operator=(MappedRegion&& other) noexcept {
  if (this != &other) {
    Release();
    base_ = std::exchange(other.base_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    lead_ = std::exchange(other.lead_, 0);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

void MappedRegion::Release() {
  if (base_ == nullptr) return;
#if UCLUST_HAVE_MMAP
  if (mapped_) {
    ::munmap(base_, map_bytes_);
    base_ = nullptr;
    mapped_ = false;
    return;
  }
#endif
  std::free(base_);
  base_ = nullptr;
}

bool MmapSupported() {
#if UCLUST_HAVE_MMAP
  return true;
#else
  return false;
#endif
}

std::uint64_t FileMTimeTicks(const std::string& path) {
  std::error_code ec;
  const auto t = std::filesystem::last_write_time(path, ec);
  if (ec) return 0;
  return static_cast<std::uint64_t>(t.time_since_epoch().count());
}

std::uint64_t FileProbeHash(const std::string& path) {
  std::error_code ec;
  const std::uint64_t size =
      static_cast<std::uint64_t>(std::filesystem::file_size(path, ec));
  if (ec) return 0;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return 0;
  constexpr std::size_t kProbeBytes = 4096;
  char head[kProbeBytes];
  char tail[kProbeBytes];
  in.read(head, static_cast<std::streamsize>(std::min<std::uint64_t>(
                    kProbeBytes, size)));
  const std::size_t head_len = static_cast<std::size_t>(in.gcount());
  std::size_t tail_len = 0;
  if (size > kProbeBytes) {
    in.clear();
    in.seekg(static_cast<std::streamoff>(size - kProbeBytes));
    in.read(tail, kProbeBytes);
    tail_len = static_cast<std::size_t>(in.gcount());
  }
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const char* data, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
      h ^= static_cast<unsigned char>(data[i]);
      h *= 1099511628211ull;
    }
  };
  mix(reinterpret_cast<const char*>(&size), sizeof(size));
  mix(head, head_len);
  mix(tail, tail_len);
  return h;
}

std::uint64_t ProcessUniqueToken() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(::getpid());
#else
  // No getpid: ASLR-derived address entropy mixed with the first-call tick.
  static const std::uint64_t token =
      (static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(&token)) >>
       4) ^
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count());
  return token;
#endif
}

std::string UniqueScratchSiblingPath(const std::string& path) {
  static std::atomic<std::uint64_t> next{1};
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), ".tmp-%llx-%llu",
                static_cast<unsigned long long>(ProcessUniqueToken()),
                static_cast<unsigned long long>(
                    next.fetch_add(1, std::memory_order_relaxed)));
  return path + suffix;
}

common::Result<MappedRegion> MapFileRegion(int fd, const std::string& path,
                                           std::uint64_t offset,
                                           std::size_t length) {
  MappedRegion region;
  region.size_ = length;
  if (length == 0) return std::move(region);
#if UCLUST_HAVE_MMAP
  if (fd >= 0) {
    const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t aligned = offset - offset % page;
    const std::size_t lead = static_cast<std::size_t>(offset - aligned);
    const std::size_t map_bytes = lead + length;
    void* base = ::mmap(nullptr, map_bytes, PROT_READ, MAP_PRIVATE, fd,
                        static_cast<off_t>(aligned));
    if (base != MAP_FAILED) {
      // Chunk-granular prefetch: tell the OS the whole window is about to be
      // read so it can page it in ahead of the first access.
      ::madvise(base, map_bytes, MADV_WILLNEED);
      region.base_ = static_cast<unsigned char*>(base);
      region.map_bytes_ = map_bytes;
      region.lead_ = lead;
      region.mapped_ = true;
      return std::move(region);
    }
    // Fall through to the heap path: an mmap failure (e.g. ENOMEM under an
    // address-space cap, or an unmappable file system) degrades gracefully.
  }
#endif
  unsigned char* buf = static_cast<unsigned char*>(std::malloc(length));
  if (buf == nullptr) {
    return common::Status::IOError(path + ": cannot allocate " +
                                   std::to_string(length) +
                                   " bytes for the unmapped region fallback");
  }
  const common::Status st = ReadExact(fd, path, offset, length, buf);
  if (!st.ok()) {
    std::free(buf);
    return st;
  }
  region.base_ = buf;
  region.lead_ = 0;
  region.mapped_ = false;
  return std::move(region);
}

}  // namespace uclust::io
