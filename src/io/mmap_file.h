// Minimal read-only memory-mapping wrapper with a graceful heap fallback.
//
// MapFileRegion maps one byte window [offset, offset + length) of a file.
// On POSIX systems it uses mmap (page-aligning the request internally and
// issuing an madvise(WILLNEED) prefetch for the window); where mmap is
// unavailable — non-POSIX builds, or an mmap call that fails at runtime —
// it degrades to a heap buffer filled by positional reads, preserving the
// exact same bytes at the cost of losing OS-managed eviction. Callers can
// tell which mode they got via MappedRegion::mapped().
//
// Thread-safety: MapFileRegion is safe to call concurrently on the same
// open file descriptor (pread; the portable fallback opens its own stream).
#ifndef UCLUST_IO_MMAP_FILE_H_
#define UCLUST_IO_MMAP_FILE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace uclust::io {

/// One read-only byte window of a file. Movable; releases the mapping (or
/// frees the fallback buffer) on destruction.
class MappedRegion {
 public:
  MappedRegion() = default;
  ~MappedRegion();

  MappedRegion(MappedRegion&& other) noexcept { *this = std::move(other); }
  MappedRegion& operator=(MappedRegion&& other) noexcept;
  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;

  /// First byte of the requested window (NOT the page-aligned mapping base).
  const unsigned char* data() const { return base_ + lead_; }
  /// Bytes in the window.
  std::size_t size() const { return size_; }
  /// True when a window is held.
  bool valid() const { return base_ != nullptr; }
  /// True for a real mmap mapping, false for the heap fallback.
  bool mapped() const { return mapped_; }

 private:
  friend common::Result<MappedRegion> MapFileRegion(int fd,
                                                    const std::string& path,
                                                    std::uint64_t offset,
                                                    std::size_t length);
  void Release();

  unsigned char* base_ = nullptr;  // mapping base (page aligned) or heap buf
  std::size_t map_bytes_ = 0;      // bytes to unmap (0 for the heap fallback)
  std::size_t lead_ = 0;           // offset - page_floor(offset)
  std::size_t size_ = 0;
  bool mapped_ = false;
};

/// Maps [offset, offset + length) of the file. `fd` is used on POSIX
/// systems (pass the descriptor of an open file; it may be shared across
/// threads); `path` is used only by the portable fallback, which opens its
/// own stream per call.
common::Result<MappedRegion> MapFileRegion(int fd, const std::string& path,
                                           std::uint64_t offset,
                                           std::size_t length);

/// True when this build can attempt real mmap mappings.
bool MmapSupported();

/// Last-write time of `path` in filesystem-clock ticks (an opaque,
/// machine-stable unit; 0 when the file or timestamp is unavailable). Part
/// of the moment-sidecar staleness guard, so only equality on the same
/// machine is meaningful.
std::uint64_t FileMTimeTicks(const std::string& path);

/// FNV-1a hash over the first and last 4 KiB of `path` plus its byte size
/// (0 when the file is unreadable). The content part of the sidecar
/// staleness guard: two files of identical size written within one
/// mtime tick still differ here unless their probed bytes match.
std::uint64_t FileProbeHash(const std::string& path);

/// Process-unique token for scratch-file names: getpid where available,
/// ASLR-derived entropy elsewhere, so two processes sharing a directory
/// still produce distinct generated names.
std::uint64_t ProcessUniqueToken();

/// A sibling scratch path `<path>.tmp-<token>-<counter>`, unique per
/// (process, call). Sidecar rebuilds write here and rename into place on
/// success: concurrent rebuilds of one sidecar may race the rename (equal
/// parameters produce identical bytes, so last-wins is harmless) but must
/// never interleave writes into one shared tmp inode — a mixed file has
/// exactly the expected size and a clean header, so it passes validation
/// while serving wrong bytes.
std::string UniqueScratchSiblingPath(const std::string& path);

}  // namespace uclust::io

#endif  // UCLUST_IO_MMAP_FILE_H_
