#include "io/moment_file.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>

#include "io/binary_format.h"  // kEndianTag / kEndianTagSwapped
#include "io/mmap_file.h"
#include "io/moment_format.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace uclust::io {

// ------------------------------------------------------------------ writer --

MomentFileWriter::~MomentFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

common::Status MomentFileWriter::Fail(const std::string& msg) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  return common::Status::IOError(path_ + ": " + msg);
}

common::Status MomentFileWriter::Open(const std::string& path,
                                      std::size_t dims,
                                      std::size_t chunk_rows,
                                      uint64_t source_size,
                                      uint64_t source_mtime,
                                      uint64_t source_probe) {
  if (file_ != nullptr) {
    return common::Status::InvalidArgument("moment writer is already open");
  }
  if (dims == 0) return common::Status::InvalidArgument("dims must be > 0");
  path_ = path;
  m_ = dims;
  chunk_rows_ = NormalizeMomentChunkRows(chunk_rows);
  written_ = 0;
  buf_rows_ = 0;
  mean_buf_.resize(chunk_rows_ * m_);
  mu2_buf_.resize(chunk_rows_ * m_);
  var_buf_.resize(chunk_rows_ * m_);
  tv_buf_.resize(chunk_rows_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return common::Status::IOError("cannot create " + path);

  unsigned char header[kMomentHeaderBytes] = {};
  std::memcpy(header, kMomentMagic, sizeof(kMomentMagic));
  const uint32_t endian = kEndianTag;
  const uint32_t version = kMomentFormatVersion;
  const uint64_t n = 0;  // patched by Finish()
  const uint64_t m = m_;
  const uint64_t rows = chunk_rows_;
  std::memcpy(header + 8, &endian, sizeof(endian));
  std::memcpy(header + 12, &version, sizeof(version));
  std::memcpy(header + 16, &n, sizeof(n));
  std::memcpy(header + 24, &m, sizeof(m));
  std::memcpy(header + 32, &rows, sizeof(rows));
  std::memcpy(header + 40, &source_size, sizeof(source_size));
  std::memcpy(header + 48, &source_mtime, sizeof(source_mtime));
  std::memcpy(header + 56, &source_probe, sizeof(source_probe));
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
    return Fail("short write on header");
  }
  return common::Status::Ok();
}

common::Status MomentFileWriter::FlushChunk() {
  const std::size_t rows = buf_rows_;
  if (rows == 0) return common::Status::Ok();
  if (std::fwrite(mean_buf_.data(), sizeof(double), rows * m_, file_) !=
          rows * m_ ||
      std::fwrite(mu2_buf_.data(), sizeof(double), rows * m_, file_) !=
          rows * m_ ||
      std::fwrite(var_buf_.data(), sizeof(double), rows * m_, file_) !=
          rows * m_ ||
      std::fwrite(tv_buf_.data(), sizeof(double), rows, file_) != rows) {
    return Fail("short write on moment chunk");
  }
  buf_rows_ = 0;
  return common::Status::Ok();
}

common::Status MomentFileWriter::AppendRows(std::size_t count, std::size_t m,
                                            const double* mean,
                                            const double* mu2,
                                            const double* var,
                                            const double* total_var) {
  if (file_ == nullptr) {
    return common::Status::InvalidArgument("moment writer is not open");
  }
  if (m != m_) {
    return common::Status::InvalidArgument(
        "moment rows have " + std::to_string(m) + " dims, file has " +
        std::to_string(m_));
  }
  std::size_t done = 0;
  while (done < count) {
    const std::size_t take =
        std::min(count - done, chunk_rows_ - buf_rows_);
    std::memcpy(mean_buf_.data() + buf_rows_ * m_, mean + done * m_,
                take * m_ * sizeof(double));
    std::memcpy(mu2_buf_.data() + buf_rows_ * m_, mu2 + done * m_,
                take * m_ * sizeof(double));
    std::memcpy(var_buf_.data() + buf_rows_ * m_, var + done * m_,
                take * m_ * sizeof(double));
    std::memcpy(tv_buf_.data() + buf_rows_, total_var + done,
                take * sizeof(double));
    buf_rows_ += take;
    done += take;
    written_ += take;
    if (buf_rows_ == chunk_rows_) UCLUST_RETURN_NOT_OK(FlushChunk());
  }
  return common::Status::Ok();
}

common::Status MomentFileWriter::Finish() {
  if (file_ == nullptr) {
    return common::Status::InvalidArgument("moment writer is not open");
  }
  UCLUST_RETURN_NOT_OK(FlushChunk());
  const uint64_t n = written_;
  if (std::fseek(file_, 16, SEEK_SET) != 0 ||
      std::fwrite(&n, sizeof(n), 1, file_) != 1) {
    return Fail("failed to patch header");
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return common::Status::IOError(path_ + ": close failed");
  return common::Status::Ok();
}

// ------------------------------------------------------------------ header --

common::Result<MomentFileInfo> ReadMomentFileInfo(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return common::Status::NotFound("cannot open " + path);
  }
  auto corrupt = [&](const std::string& msg) {
    std::fclose(f);
    return common::Status::IOError(path + ": " + msg);
  };
  // std::filesystem reports 64-bit sizes everywhere; a long-based ftell
  // would cap validatable sidecars at 2 GB on LLP64 platforms.
  std::error_code size_ec;
  const uint64_t file_size =
      static_cast<uint64_t>(std::filesystem::file_size(path, size_ec));
  if (size_ec) return corrupt("cannot determine file size");
  unsigned char header[kMomentHeaderBytes];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    return corrupt("file too short for a moment-sidecar header");
  }
  std::fclose(f);
  f = nullptr;
  if (std::memcmp(header, kMomentMagic, sizeof(kMomentMagic)) != 0) {
    return common::Status::IOError(
        path + ": bad magic (not a uclust moment sidecar)");
  }
  uint32_t endian = 0, version = 0;
  uint64_t n = 0, m = 0, chunk_rows = 0, source_size = 0, source_mtime = 0,
           source_probe = 0;
  std::memcpy(&endian, header + 8, sizeof(endian));
  std::memcpy(&version, header + 12, sizeof(version));
  std::memcpy(&n, header + 16, sizeof(n));
  std::memcpy(&m, header + 24, sizeof(m));
  std::memcpy(&chunk_rows, header + 32, sizeof(chunk_rows));
  std::memcpy(&source_size, header + 40, sizeof(source_size));
  std::memcpy(&source_mtime, header + 48, sizeof(source_mtime));
  std::memcpy(&source_probe, header + 56, sizeof(source_probe));
  if (endian == kEndianTagSwapped) {
    return common::Status::IOError(
        path + ": sidecar was written on an opposite-endian machine");
  }
  if (endian != kEndianTag) {
    return common::Status::IOError(
        path + ": bad endianness canary (corrupt header)");
  }
  if (version == 0 || version > kMomentFormatVersion) {
    return common::Status::IOError(
        path + ": unsupported moment-format version " +
        std::to_string(version) + " (reader supports up to " +
        std::to_string(kMomentFormatVersion) + ")");
  }
  if (m == 0) {
    return common::Status::IOError(path + ": header declares zero dimensions");
  }
  if (chunk_rows == 0 || (chunk_rows & (chunk_rows - 1)) != 0) {
    return common::Status::IOError(
        path + ": chunk_rows must be a power of two");
  }
  // The payload size is fully determined by n and m (n rows of (3m+1)
  // doubles); an exact check rejects truncated and padded files alike.
  // Overflow-safe in plain uint64: headers whose n/m would wrap the
  // multiplication are rejected before it happens.
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  if (m > (kMax / sizeof(double) - 1) / 3) {
    return common::Status::IOError(
        path + ": header dimensionality overflows the size check");
  }
  const uint64_t row_bytes = (3 * m + 1) * sizeof(double);
  if (n != 0 && row_bytes > (kMax - kMomentHeaderBytes) / n) {
    return common::Status::IOError(
        path + ": header object count overflows the size check");
  }
  if (kMomentHeaderBytes + n * row_bytes != file_size) {
    return common::Status::IOError(
        path + ": physical size does not match header (truncated or padded "
               "sidecar)");
  }
  MomentFileInfo info;
  info.n = static_cast<std::size_t>(n);
  info.m = static_cast<std::size_t>(m);
  info.chunk_rows = static_cast<std::size_t>(chunk_rows);
  info.source_size = source_size;
  info.source_mtime = source_mtime;
  info.source_probe = source_probe;
  return info;
}

// ------------------------------------------------------------ mapped store --

namespace {

// Per-thread LRU of mapped chunk windows, shared across every live store
// (keyed by store serial + chunk index). One global array per thread keeps
// total address use bounded by kMomentWindowSlots x chunk bytes per thread
// no matter how many stores come and go; windows belonging to destroyed
// stores age out by normal LRU pressure, and the shared Counters keep their
// byte accounting safe after the store is gone.
struct WindowSlot {
  uint64_t serial = 0;  // 0 = empty
  std::size_t chunk = 0;
  uint64_t tick = 0;
  MappedRegion region;
  std::shared_ptr<void> counters;  // type-erased; see Drop()
  std::atomic<std::size_t>* bytes = nullptr;
};

struct WindowCache {
  std::array<WindowSlot, kMomentWindowSlots> slots;
  uint64_t tick = 0;

  static void Drop(WindowSlot* s) {
    if (s->bytes != nullptr && s->region.valid()) {
      s->bytes->fetch_sub(s->region.size(), std::memory_order_relaxed);
    }
    s->region = MappedRegion();
    s->counters.reset();
    s->bytes = nullptr;
    s->serial = 0;
    s->tick = 0;
  }

  ~WindowCache() {
    for (auto& s : slots) Drop(&s);
  }
};

WindowCache& LocalWindows() {
  thread_local WindowCache cache;
  return cache;
}

uint64_t NextStoreSerial() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MappedMomentStore::~MappedMomentStore() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
}

common::Result<std::unique_ptr<MappedMomentStore>> MappedMomentStore::Open(
    const std::string& path) {
  auto info = ReadMomentFileInfo(path);
  if (!info.ok()) return info.status();
  std::unique_ptr<MappedMomentStore> store(new MappedMomentStore());
  store->path_ = path;
  store->n_ = info.ValueOrDie().n;
  store->m_ = info.ValueOrDie().m;
  store->chunk_rows_ = info.ValueOrDie().chunk_rows;
  store->source_size_ = info.ValueOrDie().source_size;
  store->source_mtime_ = info.ValueOrDie().source_mtime;
  store->num_chunks_ =
      (store->n_ + store->chunk_rows_ - 1) / store->chunk_rows_;
  store->serial_ = NextStoreSerial();
#if defined(__unix__) || defined(__APPLE__)
  store->fd_ = ::open(path.c_str(), O_RDONLY);
  if (store->fd_ < 0) {
    return common::Status::IOError(path + ": cannot open for mapping");
  }
#endif
  return std::move(store);
}

std::size_t MappedMomentStore::RowsInChunk(std::size_t chunk) const {
  const std::size_t begin = chunk * chunk_rows_;
  return std::min(chunk_rows_, n_ - begin);
}

uncertain::MomentChunkPtrs MappedMomentStore::ChunkData(
    std::size_t chunk) const {
  WindowCache& wc = LocalWindows();
  ++wc.tick;
  WindowSlot* victim = &wc.slots[0];
  for (auto& s : wc.slots) {
    if (s.serial == serial_ && s.chunk == chunk && s.region.valid()) {
      s.tick = wc.tick;
      const std::size_t rows = RowsInChunk(chunk);
      const double* base = reinterpret_cast<const double*>(s.region.data());
      return {base, base + rows * m_, base + 2 * rows * m_,
              base + 3 * rows * m_};
    }
    if (s.tick < victim->tick) victim = &s;
  }

  // Fault: evict the thread's least-recently-used window and map the chunk.
  WindowCache::Drop(victim);
  const std::size_t rows = RowsInChunk(chunk);
  const uint64_t offset =
      kMomentHeaderBytes +
      static_cast<uint64_t>(chunk) * MomentChunkBytes(chunk_rows_, m_);
  auto region = MapFileRegion(fd_, path_, offset, MomentChunkBytes(rows, m_));
  if (!region.ok()) {
    // The view API is exception- and status-free by design (it sits inside
    // allocation-free hot loops, possibly on pool threads). A chunk that can
    // neither be mapped nor read back is unrecoverable mid-kernel.
    std::fprintf(stderr, "MappedMomentStore: %s\n",
                 region.status().ToString().c_str());
    std::abort();
  }
  victim->serial = serial_;
  victim->chunk = chunk;
  victim->tick = wc.tick;
  victim->region = std::move(region).ValueOrDie();
  victim->counters = counters_;
  victim->bytes = &counters_->bytes;
  if (victim->region.mapped()) {
    counters_->mmap_windows.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t live =
      counters_->bytes.fetch_add(victim->region.size(),
                                 std::memory_order_relaxed) +
      victim->region.size();
  std::size_t peak = counters_->peak.load(std::memory_order_relaxed);
  while (live > peak && !counters_->peak.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  const double* base = reinterpret_cast<const double*>(victim->region.data());
  return {base, base + rows * m_, base + 2 * rows * m_, base + 3 * rows * m_};
}

// ------------------------------------------------------------- convenience --

common::Status WriteMomentFile(const uncertain::MomentView& view,
                               const std::string& path,
                               std::size_t chunk_rows, uint64_t source_size) {
  if (view.size() > 0 && view.dims() == 0) {
    return common::Status::InvalidArgument(
        "cannot persist a zero-dimensional moment view");
  }
  MomentFileWriter writer;
  UCLUST_RETURN_NOT_OK(writer.Open(path, std::max<std::size_t>(view.dims(), 1),
                                   chunk_rows, source_size));
  if (!view.chunked() && view.size() > 0) {
    // Flat views are contiguous: one bulk append (the scalar total-variance
    // column is re-gathered because the view exposes it element-wise).
    std::vector<double> tv(view.size());
    for (std::size_t i = 0; i < view.size(); ++i) {
      tv[i] = view.total_variance(i);
    }
    UCLUST_RETURN_NOT_OK(writer.AppendRows(
        view.size(), view.dims(), view.mean(0).data(),
        view.second_moment(0).data(), view.variance(0).data(), tv.data()));
  } else {
    for (std::size_t i = 0; i < view.size(); ++i) {
      const double tv = view.total_variance(i);
      UCLUST_RETURN_NOT_OK(writer.AppendRows(
          1, view.dims(), view.mean(i).data(), view.second_moment(i).data(),
          view.variance(i).data(), &tv));
    }
  }
  return writer.Finish();
}

}  // namespace uclust::io
