// Writer and mmap-backed reader of the .umom moment sidecar format (see
// moment_format.h for the layout).
//
// MomentFileWriter is the io-layer implementation of uncertain::MomentSink:
// uncertain::DatasetBuilder in spill mode forwards each packed batch here,
// the writer regroups rows into fixed-size chunks in an O(chunk m) buffer
// and streams them to disk — so stream-ingest -> Mapped store never holds
// more than one chunk of moment data in memory.
//
// MappedMomentStore is the Mapped MomentStore backend: it validates a .umom
// header (magic, endianness canary, version, exact physical size) and then
// serves chunk windows through io::MapFileRegion, keeping a small per-thread
// LRU of mapped windows (kMomentWindowSlots chunks per thread). Address
// space — and, under memory pressure, resident memory — therefore stays
// bounded by threads x windows x chunk bytes instead of O(n m), while the
// served doubles are bit-identical to the Resident backend's.
#ifndef UCLUST_IO_MOMENT_FILE_H_
#define UCLUST_IO_MOMENT_FILE_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "uncertain/moment_store.h"
#include "uncertain/moments.h"

namespace uclust::io {

/// Mapped chunk windows each thread keeps alive at once. Spans served by a
/// chunked MomentView stay valid until the calling thread faults this many
/// OTHER chunks; every kernel in the library holds at most two distinct
/// rows at a time (see the contract in uncertain/moments.h).
inline constexpr std::size_t kMomentWindowSlots = 16;

/// Writes one .umom moment sidecar. Usage: Open() once, AppendRows() any
/// number of times (directly or as a DatasetBuilder spill sink), Finish()
/// (which seals the header; a file without Finish() is invalid).
class MomentFileWriter final : public uncertain::MomentSink {
 public:
  MomentFileWriter() = default;
  ~MomentFileWriter() override;

  MomentFileWriter(const MomentFileWriter&) = delete;
  MomentFileWriter& operator=(const MomentFileWriter&) = delete;

  /// Creates/truncates `path` and writes the provisional header.
  /// `chunk_rows` is normalized via NormalizeMomentChunkRows;
  /// `source_size`/`source_mtime`/`source_probe` describe the dataset file
  /// the moments derive from (byte size, FileMTimeTicks, FileProbeHash;
  /// 0 = standalone/unknown) and form the reuse staleness guard.
  common::Status Open(const std::string& path, std::size_t dims,
                      std::size_t chunk_rows = 0, uint64_t source_size = 0,
                      uint64_t source_mtime = 0, uint64_t source_probe = 0);

  /// Appends `count` canonically packed rows (see uncertain::MomentSink).
  common::Status AppendRows(std::size_t count, std::size_t m,
                            const double* mean, const double* mu2,
                            const double* var,
                            const double* total_var) override;

  /// Flushes the partial tail chunk, patches n into the header, and closes
  /// the file.
  common::Status Finish();

  /// Rows appended so far.
  std::size_t written() const { return written_; }

 private:
  common::Status Fail(const std::string& msg);
  common::Status FlushChunk();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::size_t m_ = 0;
  std::size_t chunk_rows_ = 0;
  std::size_t written_ = 0;
  std::size_t buf_rows_ = 0;  // rows accumulated in the pending chunk
  std::vector<double> mean_buf_;
  std::vector<double> mu2_buf_;
  std::vector<double> var_buf_;
  std::vector<double> tv_buf_;
};

/// Header metadata of a .umom file (see moment_format.h).
struct MomentFileInfo {
  std::size_t n = 0;
  std::size_t m = 0;
  std::size_t chunk_rows = 0;
  uint64_t source_size = 0;
  uint64_t source_mtime = 0;
  uint64_t source_probe = 0;
};

/// Reads and validates a .umom header, including the exact-file-size check.
common::Result<MomentFileInfo> ReadMomentFileInfo(const std::string& path);

/// The Mapped MomentStore backend: serves a validated .umom file through
/// chunk-granular mapped windows. Thread-safe for concurrent view access
/// (each thread owns its window LRU).
class MappedMomentStore final : public uncertain::MomentStore,
                                public uncertain::MomentChunkSource {
 public:
  /// Opens and validates `path`. The returned store owns the descriptor.
  static common::Result<std::unique_ptr<MappedMomentStore>> Open(
      const std::string& path);

  ~MappedMomentStore() override;

  MappedMomentStore(const MappedMomentStore&) = delete;
  MappedMomentStore& operator=(const MappedMomentStore&) = delete;

  uncertain::MomentBackend backend() const override {
    return uncertain::MomentBackend::kMapped;
  }
  uncertain::MomentView view() const override {
    return uncertain::MomentView(n_, m_, chunk_rows_, this);
  }
  /// Peak bytes of chunk windows mapped simultaneously across all threads.
  std::size_t moment_bytes_resident() const override {
    return counters_->peak.load(std::memory_order_relaxed);
  }
  const std::string& sidecar_path() const override { return path_; }

  /// Rows per chunk (the file's, which may differ from any caller hint).
  std::size_t chunk_rows() const { return chunk_rows_; }
  /// Source-dataset byte size recorded at write time (0 = standalone).
  uint64_t source_size() const { return source_size_; }
  /// Source-dataset last-write ticks recorded at write time (0 = unknown).
  uint64_t source_mtime() const { return source_mtime_; }
  /// True when at least one window came from a real mmap (false means every
  /// window so far used the heap-read fallback).
  bool used_mmap() const {
    return counters_->mmap_windows.load(std::memory_order_relaxed) > 0;
  }

  uncertain::MomentChunkPtrs ChunkData(std::size_t chunk) const override;

 private:
  // Cross-thread accounting, shared with per-thread window slots so evictions
  // that outlive the store still decrement safely.
  struct Counters {
    std::atomic<std::size_t> bytes{0};
    std::atomic<std::size_t> peak{0};
    std::atomic<std::size_t> mmap_windows{0};
  };

  MappedMomentStore() = default;

  std::size_t RowsInChunk(std::size_t chunk) const;

  std::string path_;
  int fd_ = -1;  // POSIX descriptor for mapping; -1 on portable fallback
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t chunk_rows_ = 0;
  std::size_t num_chunks_ = 0;
  uint64_t source_size_ = 0;
  uint64_t source_mtime_ = 0;
  uint64_t serial_ = 0;  // unique per store; keys the thread-local windows
  std::shared_ptr<Counters> counters_ = std::make_shared<Counters>();
};

/// Writes every row of `view` into a .umom sidecar at `path` (convenience
/// for benches/tests that already hold resident moments).
common::Status WriteMomentFile(const uncertain::MomentView& view,
                               const std::string& path,
                               std::size_t chunk_rows = 0,
                               uint64_t source_size = 0);

}  // namespace uclust::io

#endif  // UCLUST_IO_MOMENT_FILE_H_
