// On-disk layout of the uclust moment sidecar format (".umom").
//
// A .umom file persists one dataset's packed moment statistics — the exact
// bytes MomentMatrix::PackRow produces — so the Mapped MomentStore backend
// can serve them through mmap without ever materializing the O(n m) columns
// in heap memory. The layout is chunked: rows are grouped into fixed-size
// chunks (a power of two) so a consumer can map, prefetch, and evict
// chunk-granular windows while the OS pages the data in and out.
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     8  magic "uclustmm"
//        8     4  u32 endian tag 0x01020304 (readers reject byte-swapped
//                 files instead of silently mis-parsing them)
//       12     4  u32 format version (kMomentFormatVersion; readers reject
//                 newer)
//       16     8  u64 n — number of objects (patched on Finish())
//       24     8  u64 m — dimensionality
//       32     8  u64 chunk_rows — rows per chunk (power of two)
//       40     8  u64 source_size — byte size of the .ubin dataset this
//                 sidecar was derived from (0 = standalone)
//       48     8  u64 source_mtime — the dataset's last-write time in
//                 filesystem-clock ticks (io::FileMTimeTicks; 0 = unknown)
//       56     8  u64 source_probe — FNV-1a over the dataset's first and
//                 last 4 KiB plus its size (io::FileProbeHash; 0 = unknown).
//                 size + mtime + probe form the staleness guard for sidecar
//                 reuse: the probe catches in-place regenerations that
//                 reproduce both the byte count and the mtime tick (record
//                 payloads and the labels column differ, so the probed
//                 bytes differ)
//       64     -  ceil(n / chunk_rows) chunks back to back
//
// Chunk c covers rows [c * chunk_rows, min(n, (c+1) * chunk_rows)); with
// r = rows in the chunk, its payload is four back-to-back columns:
//
//   mean       r * m f64   (row-major)
//   mu2        r * m f64
//   var        r * m f64
//   total_var  r     f64
//
// so every chunk offset and every column offset is 8-byte aligned and the
// total file size is exactly kMomentHeaderBytes + (3 n m + n) * 8 — which
// readers verify, rejecting truncated or padded files. All integers are
// little-endian; all reals are IEEE-754 binary64. Version history:
// 1 = initial layout.
#ifndef UCLUST_IO_MOMENT_FORMAT_H_
#define UCLUST_IO_MOMENT_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace uclust::io {

/// File magic, first 8 bytes of every moment sidecar.
inline constexpr char kMomentMagic[8] = {'u', 'c', 'l', 'u', 's', 't',
                                         'm', 'm'};

/// Current (and only) moment-sidecar format version.
inline constexpr uint32_t kMomentFormatVersion = 1;

/// Total bytes of the fixed header (chunks follow immediately after).
inline constexpr std::size_t kMomentHeaderBytes = 64;

/// Default rows per chunk when no explicit chunk hint is given. At m = 64
/// a chunk is ~6.3 MiB; small enough to page in and out, large enough that
/// chunk-lookup overhead vanishes against the per-row compute.
inline constexpr std::size_t kDefaultMomentChunkRows = 4096;

/// Normalizes a user/engine chunk-rows hint to the format's constraint:
/// 0 becomes the default, everything else is rounded up to the next power
/// of two (clamped to [1, 2^20]).
inline std::size_t NormalizeMomentChunkRows(std::size_t hint) {
  if (hint == 0) return kDefaultMomentChunkRows;
  std::size_t rows = 1;
  while (rows < hint && rows < (std::size_t{1} << 20)) rows <<= 1;
  return rows;
}

/// Payload bytes of a chunk holding `rows` rows of dimensionality `m`.
inline std::size_t MomentChunkBytes(std::size_t rows, std::size_t m) {
  return (3 * rows * m + rows) * sizeof(double);
}

}  // namespace uclust::io

#endif  // UCLUST_IO_MOMENT_FORMAT_H_
