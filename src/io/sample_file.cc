#include "io/sample_file.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>

#include "engine/parallel_for.h"
#include "io/binary_format.h"  // kEndianTag / kEndianTagSwapped
#include "io/dataset_reader.h"
#include "io/mmap_file.h"
#include "io/sample_format.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace uclust::io {

// ------------------------------------------------------------------ writer --

SampleFileWriter::~SampleFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

common::Status SampleFileWriter::Fail(const std::string& msg) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  return common::Status::IOError(path_ + ": " + msg);
}

common::Status SampleFileWriter::Open(const std::string& path,
                                      std::size_t dims, int samples_per_object,
                                      uint64_t seed, std::size_t chunk_rows,
                                      uint64_t source_size,
                                      uint64_t source_mtime,
                                      uint64_t source_probe) {
  if (file_ != nullptr) {
    return common::Status::InvalidArgument("sample writer is already open");
  }
  if (dims == 0) return common::Status::InvalidArgument("dims must be > 0");
  if (samples_per_object <= 0) {
    return common::Status::InvalidArgument("samples_per_object must be > 0");
  }
  path_ = path;
  m_ = dims;
  samples_ = samples_per_object;
  row_doubles_ = static_cast<std::size_t>(samples_) * m_;
  chunk_rows_ = NormalizeSampleChunkRows(chunk_rows);
  written_ = 0;
  buf_rows_ = 0;
  buf_.resize(chunk_rows_ * row_doubles_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return common::Status::IOError("cannot create " + path);

  unsigned char header[kSampleHeaderBytes] = {};
  std::memcpy(header, kSampleMagic, sizeof(kSampleMagic));
  const uint32_t endian = kEndianTag;
  const uint32_t version = kSampleFormatVersion;
  const uint64_t n = 0;  // patched by Finish()
  const uint64_t m = m_;
  const uint64_t samples = static_cast<uint64_t>(samples_);
  const uint64_t rows = chunk_rows_;
  std::memcpy(header + 8, &endian, sizeof(endian));
  std::memcpy(header + 12, &version, sizeof(version));
  std::memcpy(header + 16, &n, sizeof(n));
  std::memcpy(header + 24, &m, sizeof(m));
  std::memcpy(header + 32, &samples, sizeof(samples));
  std::memcpy(header + 40, &rows, sizeof(rows));
  std::memcpy(header + 48, &seed, sizeof(seed));
  std::memcpy(header + 56, &source_size, sizeof(source_size));
  std::memcpy(header + 64, &source_mtime, sizeof(source_mtime));
  std::memcpy(header + 72, &source_probe, sizeof(source_probe));
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
    return Fail("short write on header");
  }
  return common::Status::Ok();
}

common::Status SampleFileWriter::FlushChunk() {
  const std::size_t rows = buf_rows_;
  if (rows == 0) return common::Status::Ok();
  if (std::fwrite(buf_.data(), sizeof(double), rows * row_doubles_, file_) !=
      rows * row_doubles_) {
    return Fail("short write on sample chunk");
  }
  buf_rows_ = 0;
  return common::Status::Ok();
}

common::Status SampleFileWriter::AppendRows(std::size_t count,
                                            const double* rows) {
  if (file_ == nullptr) {
    return common::Status::InvalidArgument("sample writer is not open");
  }
  std::size_t done = 0;
  while (done < count) {
    const std::size_t take = std::min(count - done, chunk_rows_ - buf_rows_);
    std::memcpy(buf_.data() + buf_rows_ * row_doubles_,
                rows + done * row_doubles_,
                take * row_doubles_ * sizeof(double));
    buf_rows_ += take;
    done += take;
    written_ += take;
    if (buf_rows_ == chunk_rows_) UCLUST_RETURN_NOT_OK(FlushChunk());
  }
  return common::Status::Ok();
}

common::Status SampleFileWriter::Finish() {
  if (file_ == nullptr) {
    return common::Status::InvalidArgument("sample writer is not open");
  }
  UCLUST_RETURN_NOT_OK(FlushChunk());
  const uint64_t n = written_;
  if (std::fseek(file_, 16, SEEK_SET) != 0 ||
      std::fwrite(&n, sizeof(n), 1, file_) != 1) {
    return Fail("failed to patch header");
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return common::Status::IOError(path_ + ": close failed");
  return common::Status::Ok();
}

// ------------------------------------------------------------------ header --

common::Result<SampleFileInfo> ReadSampleFileInfo(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return common::Status::NotFound("cannot open " + path);
  }
  auto corrupt = [&](const std::string& msg) {
    std::fclose(f);
    return common::Status::IOError(path + ": " + msg);
  };
  // std::filesystem reports 64-bit sizes everywhere; a long-based ftell
  // would cap validatable sidecars at 2 GB on LLP64 platforms.
  std::error_code size_ec;
  const uint64_t file_size =
      static_cast<uint64_t>(std::filesystem::file_size(path, size_ec));
  if (size_ec) return corrupt("cannot determine file size");
  unsigned char header[kSampleHeaderBytes];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    return corrupt("file too short for a sample-sidecar header");
  }
  std::fclose(f);
  f = nullptr;
  if (std::memcmp(header, kSampleMagic, sizeof(kSampleMagic)) != 0) {
    return common::Status::IOError(
        path + ": bad magic (not a uclust sample sidecar)");
  }
  uint32_t endian = 0, version = 0;
  uint64_t n = 0, m = 0, samples = 0, chunk_rows = 0, seed = 0,
           source_size = 0, source_mtime = 0, source_probe = 0;
  std::memcpy(&endian, header + 8, sizeof(endian));
  std::memcpy(&version, header + 12, sizeof(version));
  std::memcpy(&n, header + 16, sizeof(n));
  std::memcpy(&m, header + 24, sizeof(m));
  std::memcpy(&samples, header + 32, sizeof(samples));
  std::memcpy(&chunk_rows, header + 40, sizeof(chunk_rows));
  std::memcpy(&seed, header + 48, sizeof(seed));
  std::memcpy(&source_size, header + 56, sizeof(source_size));
  std::memcpy(&source_mtime, header + 64, sizeof(source_mtime));
  std::memcpy(&source_probe, header + 72, sizeof(source_probe));
  if (endian == kEndianTagSwapped) {
    return common::Status::IOError(
        path + ": sidecar was written on an opposite-endian machine");
  }
  if (endian != kEndianTag) {
    return common::Status::IOError(
        path + ": bad endianness canary (corrupt header)");
  }
  if (version == 0 || version > kSampleFormatVersion) {
    return common::Status::IOError(
        path + ": unsupported sample-format version " +
        std::to_string(version) + " (reader supports up to " +
        std::to_string(kSampleFormatVersion) + ")");
  }
  if (m == 0) {
    return common::Status::IOError(path + ": header declares zero dimensions");
  }
  if (samples == 0 ||
      samples > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return common::Status::IOError(
        path + ": header samples_per_object out of range");
  }
  if (chunk_rows == 0 || (chunk_rows & (chunk_rows - 1)) != 0) {
    return common::Status::IOError(
        path + ": chunk_rows must be a power of two");
  }
  // The payload size is fully determined by n, S, and m (n rows of S*m
  // doubles); an exact check rejects truncated and padded files alike.
  // Overflow-safe in plain uint64: headers whose n/S/m would wrap the
  // multiplication are rejected before it happens.
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  if (m > kMax / sizeof(double) / samples) {
    return common::Status::IOError(
        path + ": header row shape overflows the size check");
  }
  const uint64_t row_bytes = samples * m * sizeof(double);
  if (n != 0 && row_bytes > (kMax - kSampleHeaderBytes) / n) {
    return common::Status::IOError(
        path + ": header object count overflows the size check");
  }
  if (kSampleHeaderBytes + n * row_bytes != file_size) {
    return common::Status::IOError(
        path + ": physical size does not match header (truncated or padded "
               "sidecar)");
  }
  SampleFileInfo info;
  info.n = static_cast<std::size_t>(n);
  info.m = static_cast<std::size_t>(m);
  info.samples_per_object = static_cast<int>(samples);
  info.chunk_rows = static_cast<std::size_t>(chunk_rows);
  info.seed = seed;
  info.source_size = source_size;
  info.source_mtime = source_mtime;
  info.source_probe = source_probe;
  return info;
}

// ------------------------------------------------------------ mapped store --

namespace {

// Per-thread LRU of mapped chunk windows, shared across every live sample
// store (keyed by store serial + chunk index) — the same discipline as the
// moment-store windows, but a separate pool: sample chunks and moment chunks
// have very different sizes, and one workload faulting both must not let the
// wider rows evict the other store's whole working set.
struct WindowSlot {
  uint64_t serial = 0;  // 0 = empty
  std::size_t chunk = 0;
  uint64_t tick = 0;
  MappedRegion region;
  std::shared_ptr<void> counters;  // type-erased; see Drop()
  std::atomic<std::size_t>* bytes = nullptr;
};

struct WindowCache {
  std::array<WindowSlot, kSampleWindowSlots> slots;
  uint64_t tick = 0;

  static void Drop(WindowSlot* s) {
    if (s->bytes != nullptr && s->region.valid()) {
      s->bytes->fetch_sub(s->region.size(), std::memory_order_relaxed);
    }
    s->region = MappedRegion();
    s->counters.reset();
    s->bytes = nullptr;
    s->serial = 0;
    s->tick = 0;
  }

  ~WindowCache() {
    for (auto& s : slots) Drop(&s);
  }
};

WindowCache& LocalWindows() {
  thread_local WindowCache cache;
  return cache;
}

uint64_t NextStoreSerial() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MappedSampleStore::~MappedSampleStore() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
  if (delete_on_close_) std::remove(path_.c_str());
}

common::Result<std::unique_ptr<MappedSampleStore>> MappedSampleStore::Open(
    const std::string& path) {
  auto info = ReadSampleFileInfo(path);
  if (!info.ok()) return info.status();
  std::unique_ptr<MappedSampleStore> store(new MappedSampleStore());
  store->path_ = path;
  store->n_ = info.ValueOrDie().n;
  store->m_ = info.ValueOrDie().m;
  store->samples_ = info.ValueOrDie().samples_per_object;
  store->chunk_rows_ = info.ValueOrDie().chunk_rows;
  store->seed_ = info.ValueOrDie().seed;
  store->source_size_ = info.ValueOrDie().source_size;
  store->num_chunks_ =
      (store->n_ + store->chunk_rows_ - 1) / store->chunk_rows_;
  store->serial_ = NextStoreSerial();
#if defined(__unix__) || defined(__APPLE__)
  store->fd_ = ::open(path.c_str(), O_RDONLY);
  if (store->fd_ < 0) {
    return common::Status::IOError(path + ": cannot open for mapping");
  }
#endif
  return std::move(store);
}

std::size_t MappedSampleStore::RowsInChunk(std::size_t chunk) const {
  const std::size_t begin = chunk * chunk_rows_;
  return std::min(chunk_rows_, n_ - begin);
}

const double* MappedSampleStore::ChunkData(std::size_t chunk) const {
  WindowCache& wc = LocalWindows();
  ++wc.tick;
  WindowSlot* victim = &wc.slots[0];
  for (auto& s : wc.slots) {
    if (s.serial == serial_ && s.chunk == chunk && s.region.valid()) {
      s.tick = wc.tick;
      return reinterpret_cast<const double*>(s.region.data());
    }
    if (s.tick < victim->tick) victim = &s;
  }

  // Fault: evict the thread's least-recently-used window and map the chunk.
  WindowCache::Drop(victim);
  const std::size_t rows = RowsInChunk(chunk);
  const std::size_t s_count = static_cast<std::size_t>(samples_);
  const uint64_t offset =
      kSampleHeaderBytes +
      static_cast<uint64_t>(chunk) * SampleChunkBytes(chunk_rows_, s_count, m_);
  auto region =
      MapFileRegion(fd_, path_, offset, SampleChunkBytes(rows, s_count, m_));
  if (!region.ok()) {
    // The view API is exception- and status-free by design (it sits inside
    // allocation-free hot loops, possibly on pool threads). A chunk that can
    // neither be mapped nor read back is unrecoverable mid-kernel.
    std::fprintf(stderr, "MappedSampleStore: %s\n",
                 region.status().ToString().c_str());
    std::abort();
  }
  victim->serial = serial_;
  victim->chunk = chunk;
  victim->tick = wc.tick;
  victim->region = std::move(region).ValueOrDie();
  victim->counters = counters_;
  victim->bytes = &counters_->bytes;
  if (victim->region.mapped()) {
    counters_->mmap_windows.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t live =
      counters_->bytes.fetch_add(victim->region.size(),
                                 std::memory_order_relaxed) +
      victim->region.size();
  std::size_t peak = counters_->peak.load(std::memory_order_relaxed);
  while (live > peak && !counters_->peak.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  return reinterpret_cast<const double*>(victim->region.data());
}

// ----------------------------------------------------------------- builders --

common::Status WriteSampleFile(const uncertain::SampleView& view,
                               const std::string& path, uint64_t seed,
                               std::size_t chunk_rows, uint64_t source_size) {
  if (view.size() > 0 && view.dims() == 0) {
    return common::Status::InvalidArgument(
        "cannot persist a zero-dimensional sample view");
  }
  SampleFileWriter writer;
  UCLUST_RETURN_NOT_OK(writer.Open(
      path, std::max<std::size_t>(view.dims(), 1),
      std::max(view.samples_per_object(), 1), seed, chunk_rows, source_size));
  for (std::size_t i = 0; i < view.size(); ++i) {
    UCLUST_RETURN_NOT_OK(writer.AppendRows(1, view.ObjectSamples(i).data()));
  }
  return writer.Finish();
}

namespace {

// Shared tail of the two sidecar builders: unique temp sibling
// (UniqueScratchSiblingPath — concurrent rebuilds must never interleave
// into one tmp inode) + rename into place only on success, so a failed
// rebuild never destroys a previously valid sidecar (and a concurrent
// reader keeps its consistent view of the old inode).
common::Status CommitSidecar(const std::string& tmp_path,
                             const std::string& sidecar_path,
                             const common::Status& built) {
  if (!built.ok()) {
    std::remove(tmp_path.c_str());
    return built;
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, sidecar_path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return common::Status::IOError(sidecar_path +
                                   ": cannot move rebuilt sidecar into "
                                   "place: " + ec.message());
  }
  return common::Status::Ok();
}

}  // namespace

common::Status BuildSampleSidecar(const std::string& dataset_path,
                                  const std::string& sidecar_path,
                                  int samples_per_object, uint64_t seed,
                                  const engine::Engine& eng,
                                  std::size_t chunk_rows,
                                  std::size_t batch_size) {
  if (batch_size == 0) {
    return common::Status::InvalidArgument("batch_size must be > 0");
  }
  BinaryDatasetReader reader;
  UCLUST_RETURN_NOT_OK(reader.Open(dataset_path));
  const std::string tmp_path = UniqueScratchSiblingPath(sidecar_path);
  auto build = [&]() -> common::Status {
    SampleFileWriter writer;
    UCLUST_RETURN_NOT_OK(writer.Open(tmp_path, reader.dims(),
                                     samples_per_object, seed, chunk_rows,
                                     reader.file_bytes(),
                                     FileMTimeTicks(dataset_path),
                                     FileProbeHash(dataset_path)));
    const std::size_t row =
        static_cast<std::size_t>(samples_per_object) * reader.dims();
    std::vector<uncertain::UncertainObject> batch;
    std::vector<double> scratch;
    std::size_t base = 0;
    while (reader.remaining() > 0) {
      UCLUST_RETURN_NOT_OK(reader.ReadBatch(batch_size, &batch));
      if (batch.empty()) break;
      scratch.resize(batch.size() * row);
      // Absolute object indices seed the sub-streams, so the bytes are
      // independent of the batch partition (and identical to the Resident
      // backend's draws).
      engine::ParallelFor(eng, batch.size(),
                          [&](const engine::BlockedRange& r) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          uncertain::DrawObjectSamples(
              batch[i], seed, base + i, samples_per_object,
              std::span<double>(scratch.data() + i * row, row));
        }
      });
      UCLUST_RETURN_NOT_OK(writer.AppendRows(batch.size(), scratch.data()));
      base += batch.size();
    }
    if (writer.written() != reader.size()) {
      return common::Status::Internal(
          dataset_path + ": sampled " + std::to_string(writer.written()) +
          " of " + std::to_string(reader.size()) + " objects");
    }
    return writer.Finish();
  };
  return CommitSidecar(tmp_path, sidecar_path, build());
}

common::Status BuildSampleSidecarFromObjects(
    std::span<const uncertain::UncertainObject> objects,
    const std::string& sidecar_path, int samples_per_object, uint64_t seed,
    std::size_t chunk_rows, uint64_t source_size, uint64_t source_mtime,
    uint64_t source_probe) {
  const std::size_t m = objects.empty() ? 1 : objects[0].dims();
  const std::string tmp_path = UniqueScratchSiblingPath(sidecar_path);
  auto build = [&]() -> common::Status {
    SampleFileWriter writer;
    UCLUST_RETURN_NOT_OK(writer.Open(tmp_path, m, samples_per_object, seed,
                                     chunk_rows, source_size, source_mtime,
                                     source_probe));
    const std::size_t row = static_cast<std::size_t>(samples_per_object) * m;
    std::vector<double> scratch(row);
    for (std::size_t i = 0; i < objects.size(); ++i) {
      uncertain::DrawObjectSamples(objects[i], seed, i, samples_per_object,
                                   scratch);
      UCLUST_RETURN_NOT_OK(writer.AppendRows(1, scratch.data()));
    }
    return writer.Finish();
  };
  return CommitSidecar(tmp_path, sidecar_path, build());
}

// ------------------------------------------------------------------ factory --

std::string DefaultSampleSidecarPath(const std::string& dataset_path,
                                     int samples_per_object, uint64_t seed) {
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), ".s%d-%016llx.usmp",
                samples_per_object,
                static_cast<unsigned long long>(seed));
  return dataset_path + suffix;
}

namespace {

// Temp spill location for in-memory datasets: unique per (process, call) so
// concurrent stores never collide — two stores sharing a spill name would
// each unlink it on close, deleting the other's live file; the store unlinks
// it on destruction.
std::string TempSpillPath() {
  static std::atomic<uint64_t> next{1};
  const uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  std::error_code ec;
  std::filesystem::path dir = std::filesystem::temp_directory_path(ec);
  if (ec) dir = ".";
  char name[96];
  std::snprintf(name, sizeof(name), "uclust-samples-%llx-%llu.usmp",
                static_cast<unsigned long long>(ProcessUniqueToken()),
                static_cast<unsigned long long>(id));
  return (dir / name).string();
}

}  // namespace

common::Result<uncertain::SampleStorePtr> MakeSampleStore(
    const data::UncertainDataset& data, int samples_per_object, uint64_t seed,
    const engine::Engine& eng, const SampleStoreOptions& options) {
  if (samples_per_object <= 0) {
    return common::Status::InvalidArgument("samples_per_object must be > 0");
  }
  const std::size_t n = data.size();
  const std::size_t m = data.dims();
  const std::size_t s_count = static_cast<std::size_t>(samples_per_object);

  // Backend policy (mirrors StreamMomentStoreFromFile): unlimited budget, or
  // a sample block that fits it, stays resident; anything larger spills to
  // the mmap-backed sidecar.
  SampleBackendChoice choice = options.backend;
  if (choice == SampleBackendChoice::kAuto) {
    const std::size_t budget = eng.memory_budget_bytes();
    const std::size_t resident_bytes = n * s_count * m * sizeof(double);
    choice = (budget == 0 || resident_bytes <= budget)
                 ? SampleBackendChoice::kResident
                 : SampleBackendChoice::kMapped;
  }
  if (choice == SampleBackendChoice::kResident || n == 0) {
    return uncertain::SampleStorePtr(new uncertain::ResidentSampleStore(
        data.objects(), samples_per_object, seed, eng));
  }

  // Sidecar location: an explicit option wins, then the dataset's annotated
  // sidecar (service registry), then a param-encoded sibling of the source
  // file, then a self-deleting temp spill (in-memory dataset, nothing
  // durable to key a reusable file off).
  const std::string& source = data.source_path();
  std::string sidecar = options.sidecar_path;
  if (sidecar.empty()) {
    // The annotated sidecar is one pinned artifact drawn with one (S, seed);
    // every sampled algorithm carries a distinct default seed, so honoring
    // the pin for a mismatched request would rebuild-overwrite the shared
    // file on every alternating job — exactly the churn the param-encoded
    // default path exists to avoid. Use the pin only when its header matches
    // the request; otherwise fall through to the default location.
    const std::string& annotated = data.samples_sidecar_path();
    if (!annotated.empty()) {
      auto pinned = ReadSampleFileInfo(annotated);
      if (pinned.ok() &&
          pinned.ValueOrDie().samples_per_object == samples_per_object &&
          pinned.ValueOrDie().seed == seed) {
        sidecar = annotated;
      }
    }
  }
  if (sidecar.empty() && !source.empty()) {
    sidecar = DefaultSampleSidecarPath(source, samples_per_object, seed);
  }
  const bool temp_spill = sidecar.empty();
  if (temp_spill) sidecar = TempSpillPath();

  // Effective chunk requirement: an explicit hint wins; otherwise, when a
  // budget is set, size chunks so the mapped window caches themselves
  // respect the budget that forced the Mapped backend — every thread keeps
  // up to kSampleWindowSlots windows alive, so threads x slots x chunk
  // bytes must fit. Floor to a power of two, clamped to [16, default] rows
  // (the floor is 4x smaller than the moment store's 64 because a sample
  // row is S times wider than a moment row). 0 = no requirement.
  std::size_t chunk_rows = options.chunk_rows != 0 ? options.chunk_rows
                                                   : eng.sample_chunk_rows();
  if (chunk_rows == 0 && eng.memory_budget_bytes() > 0) {
    const std::size_t window_budget =
        eng.memory_budget_bytes() /
        (static_cast<std::size_t>(eng.num_threads()) * kSampleWindowSlots);
    const std::size_t row_bytes = SampleRowBytes(s_count, m);
    const std::size_t want = window_budget / row_bytes;
    std::size_t pow2 = 1;
    while (pow2 * 2 <= want && pow2 < kDefaultSampleChunkRows) pow2 *= 2;
    chunk_rows = std::max<std::size_t>(pow2, 16);
  }

  // Source staleness guard fields (0 = standalone, in-memory dataset).
  uint64_t source_size = 0, source_mtime = 0, source_probe = 0;
  if (!source.empty()) {
    std::error_code ec;
    source_size =
        static_cast<uint64_t>(std::filesystem::file_size(source, ec));
    if (ec) {
      return common::Status::IOError(source +
                                     ": cannot stat sample-store source");
    }
    source_mtime = FileMTimeTicks(source);
    source_probe = FileProbeHash(source);
  }

  bool reuse = false;
  if (options.reuse_sidecar && !temp_spill) {
    // The guard extends the moment-store staleness check with the draw
    // parameters: a sidecar over the right dataset but drawn with a
    // different seed or S is not the artifact the caller asked for. The
    // chunk requirement mirrors the moment factory: larger chunks would
    // blow the window-memory bound; smaller ones only cost extra faults.
    auto info = ReadSampleFileInfo(sidecar);
    reuse = info.ok() && info.ValueOrDie().n == n &&
            info.ValueOrDie().m == m &&
            info.ValueOrDie().samples_per_object == samples_per_object &&
            info.ValueOrDie().seed == seed &&
            info.ValueOrDie().source_size == source_size &&
            info.ValueOrDie().source_mtime == source_mtime &&
            info.ValueOrDie().source_probe == source_probe &&
            (chunk_rows == 0 ||
             info.ValueOrDie().chunk_rows <=
                 NormalizeSampleChunkRows(chunk_rows));
  }
  if (!reuse) {
    if (!source.empty()) {
      UCLUST_RETURN_NOT_OK(BuildSampleSidecar(source, sidecar,
                                              samples_per_object, seed, eng,
                                              chunk_rows,
                                              options.batch_size));
    } else {
      UCLUST_RETURN_NOT_OK(BuildSampleSidecarFromObjects(
          data.objects(), sidecar, samples_per_object, seed, chunk_rows));
    }
  }
  auto store = MappedSampleStore::Open(sidecar);
  UCLUST_RETURN_NOT_OK(store.status());
  if (store.ValueOrDie()->size() != n || store.ValueOrDie()->dims() != m ||
      store.ValueOrDie()->samples_per_object() != samples_per_object) {
    return common::Status::Internal(
        sidecar + ": sidecar shape does not match the dataset");
  }
  if (temp_spill) store.ValueOrDie()->set_delete_on_close(true);
  return uncertain::SampleStorePtr(std::move(store).ValueOrDie());
}

uncertain::SampleStorePtr MakeSampleStoreOrResident(
    const data::UncertainDataset& data, int samples_per_object, uint64_t seed,
    const engine::Engine& eng) {
  auto store = MakeSampleStore(data, samples_per_object, seed, eng);
  if (store.ok()) return std::move(store).ValueOrDie();
  std::fprintf(stderr,
               "sample store: %s; falling back to the resident backend\n",
               store.status().ToString().c_str());
  return uncertain::SampleStorePtr(new uncertain::ResidentSampleStore(
      data.objects(), samples_per_object, seed, eng));
}

}  // namespace uclust::io
