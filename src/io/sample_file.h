// Writer, mmap-backed reader, and backend-selecting factory of the .usmp
// sample sidecar format (see sample_format.h for the layout).
//
// SampleFileWriter streams object rows (S * m doubles each) into fixed-size
// chunks through an O(chunk) buffer, so building a sidecar never holds more
// than one chunk of sample data in memory. BuildSampleSidecar drives it from
// a binary dataset file in reader batches (the `dataset_gen --emit-samples`
// path), always through the canonical uncertain::DrawObjectSamples with
// absolute object indices — so a spilled sidecar is byte-for-byte what the
// Resident backend would draw.
//
// MappedSampleStore is the Mapped SampleStore backend: it validates a .usmp
// header (magic, endianness canary, version, exact physical size) and then
// serves chunk windows through io::MapFileRegion, keeping a small per-thread
// LRU of mapped windows (kSampleWindowSlots chunks per thread) — the same
// window discipline as MappedMomentStore, so address space stays bounded by
// threads x windows x chunk bytes instead of O(n S m).
//
// MakeSampleStore is the factory every sampled clusterer calls: it selects
// Resident vs Mapped from EngineConfig::memory_budget_bytes, reuses a valid
// matching sidecar (shape + samples-per-object + seed + source staleness
// guard), and otherwise builds one — next to the dataset's source file when
// the dataset is file-backed, or into a self-deleting temp spill otherwise.
#ifndef UCLUST_IO_SAMPLE_FILE_H_
#define UCLUST_IO_SAMPLE_FILE_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "engine/engine.h"
#include "uncertain/sample_store.h"

namespace uclust::io {

/// Mapped chunk windows each thread keeps alive at once. Spans served by a
/// chunked SampleView stay valid until the calling thread faults this many
/// OTHER chunks; every sampled kernel holds at most two distinct object rows
/// at a time (see the contract in uncertain/sample_store.h).
inline constexpr std::size_t kSampleWindowSlots = 16;

/// Writes one .usmp sample sidecar. Usage: Open() once, AppendRows() any
/// number of times, Finish() (which seals the header; a file without
/// Finish() is invalid).
class SampleFileWriter {
 public:
  SampleFileWriter() = default;
  ~SampleFileWriter();

  SampleFileWriter(const SampleFileWriter&) = delete;
  SampleFileWriter& operator=(const SampleFileWriter&) = delete;

  /// Creates/truncates `path` and writes the provisional header.
  /// `chunk_rows` is normalized via NormalizeSampleChunkRows; `seed` is the
  /// master seed the rows were drawn with (part of the reuse guard);
  /// `source_size`/`source_mtime`/`source_probe` describe the dataset file
  /// the samples derive from (byte size, FileMTimeTicks, FileProbeHash;
  /// 0 = standalone/unknown).
  common::Status Open(const std::string& path, std::size_t dims,
                      int samples_per_object, uint64_t seed,
                      std::size_t chunk_rows = 0, uint64_t source_size = 0,
                      uint64_t source_mtime = 0, uint64_t source_probe = 0);

  /// Appends `count` object rows of samples_per_object * dims doubles each
  /// (the uncertain::DrawObjectSamples packing), back to back in `rows`.
  common::Status AppendRows(std::size_t count, const double* rows);

  /// Flushes the partial tail chunk, patches n into the header, and closes
  /// the file.
  common::Status Finish();

  /// Object rows appended so far.
  std::size_t written() const { return written_; }

 private:
  common::Status Fail(const std::string& msg);
  common::Status FlushChunk();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::size_t m_ = 0;
  int samples_ = 0;
  std::size_t row_doubles_ = 0;  // samples_ * m_
  std::size_t chunk_rows_ = 0;
  std::size_t written_ = 0;
  std::size_t buf_rows_ = 0;  // rows accumulated in the pending chunk
  std::vector<double> buf_;
};

/// Header metadata of a .usmp file (see sample_format.h).
struct SampleFileInfo {
  std::size_t n = 0;
  std::size_t m = 0;
  int samples_per_object = 0;
  std::size_t chunk_rows = 0;
  uint64_t seed = 0;
  uint64_t source_size = 0;
  uint64_t source_mtime = 0;
  uint64_t source_probe = 0;
};

/// Reads and validates a .usmp header, including the exact-file-size check.
common::Result<SampleFileInfo> ReadSampleFileInfo(const std::string& path);

/// The Mapped SampleStore backend: serves a validated .usmp file through
/// chunk-granular mapped windows. Thread-safe for concurrent view access
/// (each thread owns its window LRU).
class MappedSampleStore final : public uncertain::SampleStore,
                                public uncertain::SampleChunkSource {
 public:
  /// Opens and validates `path`. The returned store owns the descriptor.
  static common::Result<std::unique_ptr<MappedSampleStore>> Open(
      const std::string& path);

  ~MappedSampleStore() override;

  MappedSampleStore(const MappedSampleStore&) = delete;
  MappedSampleStore& operator=(const MappedSampleStore&) = delete;

  uncertain::SampleBackend backend() const override {
    return uncertain::SampleBackend::kMapped;
  }
  uncertain::SampleView view() const override {
    return uncertain::SampleView(n_, samples_, m_, chunk_rows_, this);
  }
  /// Peak bytes of chunk windows mapped simultaneously across all threads.
  std::size_t sample_bytes_resident() const override {
    return counters_->peak.load(std::memory_order_relaxed);
  }
  const std::string& sidecar_path() const override { return path_; }

  /// Objects per chunk (the file's, which may differ from any caller hint).
  std::size_t chunk_rows() const { return chunk_rows_; }
  /// Master seed the sidecar's rows were drawn with.
  uint64_t seed() const { return seed_; }
  /// Source-dataset byte size recorded at write time (0 = standalone).
  uint64_t source_size() const { return source_size_; }
  /// True when at least one window came from a real mmap (false means every
  /// window so far used the heap-read fallback).
  bool used_mmap() const {
    return counters_->mmap_windows.load(std::memory_order_relaxed) > 0;
  }

  /// Unlinks the sidecar file when the store is destroyed. Set by the
  /// factory on temp spills drawn from in-memory datasets, which have no
  /// durable source to re-derive a path from.
  void set_delete_on_close(bool value) { delete_on_close_ = value; }

  const double* ChunkData(std::size_t chunk) const override;

 private:
  // Cross-thread accounting, shared with per-thread window slots so evictions
  // that outlive the store still decrement safely.
  struct Counters {
    std::atomic<std::size_t> bytes{0};
    std::atomic<std::size_t> peak{0};
    std::atomic<std::size_t> mmap_windows{0};
  };

  MappedSampleStore() = default;

  std::size_t RowsInChunk(std::size_t chunk) const;

  std::string path_;
  int fd_ = -1;  // POSIX descriptor for mapping; -1 on portable fallback
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  int samples_ = 0;
  std::size_t chunk_rows_ = 0;
  std::size_t num_chunks_ = 0;
  uint64_t seed_ = 0;
  uint64_t source_size_ = 0;
  bool delete_on_close_ = false;
  uint64_t serial_ = 0;  // unique per store; keys the thread-local windows
  std::shared_ptr<Counters> counters_ = std::make_shared<Counters>();
};

/// Writes every object row of `view` into a .usmp sidecar at `path`
/// (convenience for tests that already hold resident samples).
common::Status WriteSampleFile(const uncertain::SampleView& view,
                               const std::string& path, uint64_t seed,
                               std::size_t chunk_rows = 0,
                               uint64_t source_size = 0);

/// Builds (or rebuilds) the .usmp sample sidecar for a binary dataset file
/// in one bounded-memory pass: reader batches -> DrawObjectSamples (absolute
/// indices) -> SampleFileWriter. Used by `dataset_gen --emit-samples` and by
/// the Mapped path of MakeSampleStore.
common::Status BuildSampleSidecar(
    const std::string& dataset_path, const std::string& sidecar_path,
    int samples_per_object, uint64_t seed,
    const engine::Engine& eng = engine::Engine::Serial(),
    std::size_t chunk_rows = 0, std::size_t batch_size = 1024);

/// Builds a .usmp sidecar from already-resident objects (the temp-spill path
/// for in-memory datasets). `source_size`/`source_mtime`/`source_probe`
/// default to 0 = standalone.
common::Status BuildSampleSidecarFromObjects(
    std::span<const uncertain::UncertainObject> objects,
    const std::string& sidecar_path, int samples_per_object, uint64_t seed,
    std::size_t chunk_rows = 0, uint64_t source_size = 0,
    uint64_t source_mtime = 0, uint64_t source_probe = 0);

/// Canonical sidecar path for (dataset, S, seed): sibling of `dataset_path`
/// with the draw parameters encoded in the name, so different algorithms'
/// (S, seed) pairs never churn one shared file.
std::string DefaultSampleSidecarPath(const std::string& dataset_path,
                                     int samples_per_object, uint64_t seed);

/// How MakeSampleStore picks the SampleStore backend.
enum class SampleBackendChoice {
  kAuto,      ///< Resident iff the n*S*m block fits eng.memory_budget_bytes()
              ///< (0 = unlimited = Resident, mirroring the moment factory).
  kResident,  ///< Force the flat in-memory block.
  kMapped,    ///< Force the mmap-backed .usmp sidecar.
};

/// Tuning of a MakeSampleStore call.
struct SampleStoreOptions {
  SampleBackendChoice backend = SampleBackendChoice::kAuto;
  /// Objects per sidecar chunk; 0 = the engine's sample_chunk_rows hint,
  /// then a budget-derived size, then the format default. Rounded up to a
  /// power of two.
  std::size_t chunk_rows = 0;
  /// Sidecar location; "" = the dataset's annotated sidecar, then
  /// DefaultSampleSidecarPath next to its source file, then a self-deleting
  /// temp spill.
  std::string sidecar_path;
  /// Reuse an existing sidecar when its header matches the request (same n,
  /// m, samples_per_object, seed, and — when the dataset is file-backed —
  /// source byte size, last-write time, and content probe) and its chunks
  /// are no larger than the effective chunk requirement. A mismatched or
  /// invalid sidecar is silently rebuilt; set false to force a rebuild.
  bool reuse_sidecar = true;
  /// Streaming batch size for file-backed sidecar builds.
  std::size_t batch_size = 1024;
};

/// Creates the SampleStore serving `samples_per_object` realizations of
/// every object in `data`, drawn from `seed`, with the backend selected by
/// the engine's memory budget (see SampleStoreOptions to force one). Both
/// backends serve bit-identical sample bytes.
common::Result<uncertain::SampleStorePtr> MakeSampleStore(
    const data::UncertainDataset& data, int samples_per_object, uint64_t seed,
    const engine::Engine& eng = engine::Engine::Serial(),
    const SampleStoreOptions& options = {});

/// MakeSampleStore with the clusterer-facing failure policy: Cluster() has
/// no status channel, so a factory failure (unwritable sidecar location,
/// corrupt file, ...) falls back to the Resident backend with a stderr
/// warning — value-identical, only memory-hungrier.
uncertain::SampleStorePtr MakeSampleStoreOrResident(
    const data::UncertainDataset& data, int samples_per_object, uint64_t seed,
    const engine::Engine& eng = engine::Engine::Serial());

}  // namespace uclust::io

#endif  // UCLUST_IO_SAMPLE_FILE_H_
