// On-disk layout of the uclust sample sidecar format (".usmp").
//
// A .usmp file persists one dataset's Monte-Carlo realizations — the exact
// bytes the per-object rng sub-streams produce (common::DeriveSeed(seed, i),
// see uncertain/sample_store.h) — so the Mapped SampleStore backend can serve
// them through mmap without ever materializing the O(n S m) sample block in
// heap memory. The layout is chunked: objects are grouped into fixed-size
// chunks (a power of two) so a consumer can map, prefetch, and evict
// chunk-granular windows while the OS pages the data in and out.
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     8  magic "uclustsm"
//        8     4  u32 endian tag 0x01020304 (readers reject byte-swapped
//                 files instead of silently mis-parsing them)
//       12     4  u32 format version (kSampleFormatVersion; readers reject
//                 newer)
//       16     8  u64 n — number of objects (patched on Finish())
//       24     8  u64 m — dimensionality
//       32     8  u64 samples_per_object — realizations S per object
//       40     8  u64 chunk_rows — objects per chunk (power of two)
//       48     8  u64 seed — the master seed the per-object sub-streams were
//                 derived from. Part of the reuse guard: a sidecar drawn
//                 with a different seed (or a different S) is not the
//                 artifact a consumer asked for, even over the same dataset
//       56     8  u64 source_size — byte size of the .ubin dataset this
//                 sidecar was derived from (0 = standalone)
//       64     8  u64 source_mtime — the dataset's last-write time in
//                 filesystem-clock ticks (io::FileMTimeTicks; 0 = unknown)
//       72     8  u64 source_probe — FNV-1a over the dataset's first and
//                 last 4 KiB plus its size (io::FileProbeHash; 0 = unknown).
//                 size + mtime + probe form the staleness guard for sidecar
//                 reuse, exactly as in the .umom format
//       80    16  reserved (zero)
//       96     -  ceil(n / chunk_rows) chunks back to back
//
// Chunk c covers objects [c * chunk_rows, min(n, (c+1) * chunk_rows)); with
// r = objects in the chunk, its payload is r back-to-back object rows of
// S * m f64 each (object-major, then sample, then dimension — the same
// layout SampleView::ObjectSamples spans). Every chunk offset and every row
// offset is 8-byte aligned and the total file size is exactly
// kSampleHeaderBytes + n * S * m * 8 — which readers verify, rejecting
// truncated or padded files. All integers are little-endian; all reals are
// IEEE-754 binary64. Version history: 1 = initial layout.
#ifndef UCLUST_IO_SAMPLE_FORMAT_H_
#define UCLUST_IO_SAMPLE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace uclust::io {

/// File magic, first 8 bytes of every sample sidecar.
inline constexpr char kSampleMagic[8] = {'u', 'c', 'l', 'u', 's', 't',
                                         's', 'm'};

/// Current (and only) sample-sidecar format version.
inline constexpr uint32_t kSampleFormatVersion = 1;

/// Total bytes of the fixed header (chunks follow immediately after).
inline constexpr std::size_t kSampleHeaderBytes = 96;

/// Default objects per chunk when no explicit chunk hint is given. A sample
/// row is S * m doubles — an order of magnitude wider than a moment row —
/// so the default is proportionally smaller than the .umom one: at S = 32,
/// m = 64 a chunk is ~8 MiB.
inline constexpr std::size_t kDefaultSampleChunkRows = 512;

/// Normalizes a user/engine chunk-rows hint to the format's constraint:
/// 0 becomes the default, everything else is rounded up to the next power
/// of two (clamped to [1, 2^20]).
inline std::size_t NormalizeSampleChunkRows(std::size_t hint) {
  if (hint == 0) return kDefaultSampleChunkRows;
  std::size_t rows = 1;
  while (rows < hint && rows < (std::size_t{1} << 20)) rows <<= 1;
  return rows;
}

/// Payload bytes of one object row: S samples of dimensionality m.
inline std::size_t SampleRowBytes(std::size_t samples_per_object,
                                  std::size_t m) {
  return samples_per_object * m * sizeof(double);
}

/// Payload bytes of a chunk holding `rows` object rows.
inline std::size_t SampleChunkBytes(std::size_t rows,
                                    std::size_t samples_per_object,
                                    std::size_t m) {
  return rows * SampleRowBytes(samples_per_object, m);
}

}  // namespace uclust::io

#endif  // UCLUST_IO_SAMPLE_FORMAT_H_
