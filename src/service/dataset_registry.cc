#include "service/dataset_registry.h"

#include <string_view>

#include "io/dataset_reader.h"
#include "service/log.h"

namespace uclust::service {

common::Result<DatasetInfo> DatasetRegistry::Register(
    const std::string& path, const std::string& moments_path) {
  if (path.empty()) {
    return common::Status::InvalidArgument("registry: dataset path is empty");
  }
  if (!moments_path.empty()) {
    constexpr std::string_view kExt = ".umom";
    if (moments_path.size() < kExt.size() ||
        moments_path.compare(moments_path.size() - kExt.size(), kExt.size(),
                             kExt) != 0) {
      return common::Status::InvalidArgument(
          "registry: moments path must end in .umom: " + moments_path);
    }
  }

  // Validate the header before taking the lock — Open() touches the disk.
  io::BinaryDatasetReader reader;
  UCLUST_RETURN_NOT_OK(reader.Open(path));

  std::lock_guard<std::mutex> lock(mu_);
  for (DatasetInfo& existing : datasets_) {
    if (existing.path == path) {
      if (!moments_path.empty()) existing.moments_path = moments_path;
      return existing;
    }
  }
  DatasetInfo info;
  info.id = "ds-" + std::to_string(datasets_.size() + 1);
  info.path = path;
  info.name = reader.name();
  info.n = reader.size();
  info.m = reader.dims();
  info.num_classes = reader.num_classes();
  info.has_labels = reader.has_labels();
  info.file_bytes = reader.file_bytes();
  info.moments_path = moments_path;
  datasets_.push_back(info);
  LogEvent("dataset_registered", {{"dataset", info.id},
                                  {"path", info.path},
                                  {"n", std::to_string(info.n)},
                                  {"m", std::to_string(info.m)}});
  return info;
}

common::Result<DatasetInfo> DatasetRegistry::Get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const DatasetInfo& info : datasets_) {
    if (info.id == id) return info;
  }
  return common::Status::NotFound("registry: unknown dataset id: " + id);
}

std::vector<DatasetInfo> DatasetRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  return datasets_;
}

std::size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return datasets_.size();
}

}  // namespace uclust::service
