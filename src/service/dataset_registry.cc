#include "service/dataset_registry.h"

#include <string_view>

#include "io/dataset_reader.h"
#include "service/log.h"

namespace uclust::service {

namespace {

bool HasSuffix(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

common::Result<DatasetInfo> DatasetRegistry::Register(
    const std::string& path, const std::string& moments_path,
    const std::string& samples_path) {
  if (path.empty()) {
    return common::Status::InvalidArgument("registry: dataset path is empty");
  }
  if (!moments_path.empty() && !HasSuffix(moments_path, ".umom")) {
    return common::Status::InvalidArgument(
        "registry: moments path must end in .umom: " + moments_path);
  }
  if (!samples_path.empty() && !HasSuffix(samples_path, ".usmp")) {
    return common::Status::InvalidArgument(
        "registry: samples path must end in .usmp: " + samples_path);
  }

  // Validate the header before taking the lock — Open() touches the disk.
  io::BinaryDatasetReader reader;
  UCLUST_RETURN_NOT_OK(reader.Open(path));

  std::lock_guard<std::mutex> lock(mu_);
  for (DatasetInfo& existing : datasets_) {
    if (existing.path == path) {
      if (!moments_path.empty()) existing.moments_path = moments_path;
      if (!samples_path.empty()) existing.samples_path = samples_path;
      return existing;
    }
  }
  DatasetInfo info;
  info.id = "ds-" + std::to_string(datasets_.size() + 1);
  info.path = path;
  info.name = reader.name();
  info.n = reader.size();
  info.m = reader.dims();
  info.num_classes = reader.num_classes();
  info.has_labels = reader.has_labels();
  info.file_bytes = reader.file_bytes();
  info.moments_path = moments_path;
  info.samples_path = samples_path;
  datasets_.push_back(info);
  LogEvent("dataset_registered", {{"dataset", info.id},
                                  {"path", info.path},
                                  {"n", std::to_string(info.n)},
                                  {"m", std::to_string(info.m)}});
  return info;
}

common::Result<DatasetInfo> DatasetRegistry::Get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const DatasetInfo& info : datasets_) {
    if (info.id == id) return info;
  }
  return common::Status::NotFound("registry: unknown dataset id: " + id);
}

std::vector<DatasetInfo> DatasetRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  return datasets_;
}

std::size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return datasets_.size();
}

}  // namespace uclust::service
