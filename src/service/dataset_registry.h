// Dataset registry: the service's catalog of clusterable inputs. Clients
// register a binary dataset file (`.ubin`, the dataset_gen / binary_format
// layout) by path; the registry validates the header up front (magic,
// endianness, version — via io::BinaryDatasetReader::Open) and hands back a
// stable id ("ds-1", "ds-2", ...) that job specs reference. Re-registering
// the same canonical path returns the existing id rather than a duplicate.
//
// A registration may also carry a `.umom` moment sidecar path and/or a
// `.usmp` sample sidecar path; jobs that stream moments pass the former
// through io::MomentStoreOptions::sidecar_path, and sampled jobs pass the
// latter through the dataset's samples annotation into io::MakeSampleStore —
// so the staleness guards (n, m, byte size, mtime, content probe; plus
// samples-per-object and seed for samples) decide reuse-vs-rebuild exactly
// as the CLI tools do.
#ifndef UCLUST_SERVICE_DATASET_REGISTRY_H_
#define UCLUST_SERVICE_DATASET_REGISTRY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace uclust::service {

/// Everything the service knows about one registered dataset.
struct DatasetInfo {
  std::string id;            // "ds-1"
  std::string path;          // as registered
  std::string name;          // dataset name stored in the file header
  std::size_t n = 0;         // objects
  std::size_t m = 0;         // dimensions
  int num_classes = 0;       // 0 when unlabeled
  bool has_labels = false;
  std::uint64_t file_bytes = 0;
  std::string moments_path;  // optional .umom sidecar ("" = none)
  std::string samples_path;  // optional .usmp sidecar ("" = none)
};

/// Thread-safe id -> DatasetInfo catalog. Ids are process-lifetime stable;
/// there is no unregister (jobs may hold an id across their whole queue
/// wait, and the catalog is tiny next to the datasets themselves).
class DatasetRegistry {
 public:
  /// Validates `path`'s header and registers it. `moments_path` (optional)
  /// must end in ".umom" and `samples_path` (optional) in ".usmp" if given;
  /// both are recorded, not opened — the sidecar guards run when a job
  /// actually streams them. Registering an already-registered path updates
  /// the given sidecar paths and returns the existing entry.
  common::Result<DatasetInfo> Register(const std::string& path,
                                       const std::string& moments_path = "",
                                       const std::string& samples_path = "");

  /// Looks up an id. kNotFound with the id echoed when absent.
  common::Result<DatasetInfo> Get(const std::string& id) const;

  /// Snapshot of every registration, in id order.
  std::vector<DatasetInfo> List() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<DatasetInfo> datasets_;  // index i holds "ds-(i+1)"
};

}  // namespace uclust::service

#endif  // UCLUST_SERVICE_DATASET_REGISTRY_H_
