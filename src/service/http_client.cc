#include "service/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace uclust::service {

common::Result<HttpClientResponse> HttpFetch(int port,
                                             const std::string& method,
                                             const std::string& target,
                                             const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return common::Status::Internal("http_client: socket() failed: " +
                                    std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return common::Status::Internal("http_client: connect() failed: " + err);
  }

  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: 127.0.0.1:" + std::to_string(port) + "\r\n";
  if (!body.empty()) {
    req += "Content-Type: application/json\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "Connection: close\r\n\r\n";
  req += body;

  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      ::close(fd);
      return common::Status::Internal("http_client: send() failed");
    }
    off += static_cast<std::size_t>(n);
  }

  // The server closes after one response, so read to EOF.
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      ::close(fd);
      return common::Status::Internal("http_client: recv() failed: " +
                                      std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return common::Status::Internal("http_client: malformed response");
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return common::Status::Internal("http_client: malformed status line");
  }
  HttpClientResponse resp;
  resp.status = std::atoi(raw.c_str() + sp + 1);
  resp.body = raw.substr(head_end + 4);
  return resp;
}

}  // namespace uclust::service
