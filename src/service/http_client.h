// Minimal blocking HTTP/1.1 client for loopback use only: the smoke bench
// and the service tests talk to HttpServer through real sockets with it.
// One request per connection (matching the server's Connection: close
// policy); no TLS, no redirects, no keep-alive.
#ifndef UCLUST_SERVICE_HTTP_CLIENT_H_
#define UCLUST_SERVICE_HTTP_CLIENT_H_

#include <string>

#include "common/status.h"

namespace uclust::service {

struct HttpClientResponse {
  int status = 0;
  std::string body;
};

/// Performs one `method target` request against 127.0.0.1:`port` with an
/// optional JSON body, reads the full response, closes the socket. Errors
/// (connect failure, malformed response) come back as a non-OK Status.
common::Result<HttpClientResponse> HttpFetch(int port,
                                             const std::string& method,
                                             const std::string& target,
                                             const std::string& body = "");

}  // namespace uclust::service

#endif  // UCLUST_SERVICE_HTTP_CLIENT_H_
