#include "service/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "service/log.h"

namespace uclust::service {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u <= ' ' || u >= 127 || c == ':') return false;
  }
  return true;
}

// Parses a non-negative decimal with no sign/whitespace; false on overflow
// or non-digits. (strtoull would accept "  +7 " — too lenient for a
// Content-Length from an untrusted peer.)
bool ParseDecimal(std::string_view s, std::uint64_t* out) {
  if (s.empty() || s.size() > 19) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

void WriteAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer gone; nothing useful to do
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

const std::string& HttpRequest::Header(const std::string& lower_name) const {
  static const std::string kEmpty;
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return value;
  }
  return kEmpty;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

ParseOutcome ParseHttpRequest(std::string_view data,
                              const HttpServerConfig& cfg, HttpRequest* req,
                              std::size_t* consumed) {
  const std::size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    // No complete header block yet. Still enforce the cap: a peer that
    // streams an unbounded header line must be cut off, not buffered.
    if (data.size() > cfg.max_header_bytes) return ParseOutcome::kHeadersTooLarge;
    // A lone LF-terminated head is malformed rather than incomplete.
    if (data.find("\n\n") != std::string_view::npos) return ParseOutcome::kBad;
    return ParseOutcome::kNeedMore;
  }
  if (head_end + 4 > cfg.max_header_bytes) return ParseOutcome::kHeadersTooLarge;

  const std::string_view head = data.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // Request line: METHOD SP TARGET SP VERSION — exactly two spaces.
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return ParseOutcome::kBad;
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (!IsToken(method) || target.empty() || target.front() != '/' ||
      target.find(' ') != std::string_view::npos) {
    return ParseOutcome::kBad;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return ParseOutcome::kBad;

  HttpRequest parsed;
  parsed.method = std::string(method);
  parsed.target = std::string(target);
  parsed.version = std::string(version);

  // Header fields.
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view()
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    std::size_t eol = rest.find("\r\n");
    if (eol == std::string_view::npos) eol = rest.size();
    const std::string_view line = rest.substr(0, eol);
    rest.remove_prefix(eol == rest.size() ? eol : eol + 2);
    if (line.empty()) return ParseOutcome::kBad;  // CRLF CRLF handled above
    // Obsolete line folding (leading whitespace) is rejected outright.
    if (line.front() == ' ' || line.front() == '\t') return ParseOutcome::kBad;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return ParseOutcome::kBad;
    const std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) return ParseOutcome::kBad;
    parsed.headers.emplace_back(ToLower(name),
                                std::string(Trim(line.substr(colon + 1))));
  }

  // Body framing. Transfer-Encoding (chunked or otherwise) is out of scope.
  if (!parsed.Header("transfer-encoding").empty()) {
    return ParseOutcome::kUnsupported;
  }
  std::uint64_t content_length = 0;
  const std::string& cl = parsed.Header("content-length");
  if (!cl.empty()) {
    if (!ParseDecimal(cl, &content_length)) return ParseOutcome::kBad;
    // Duplicate, conflicting Content-Length headers are request smuggling
    // bait; reject any repeat.
    int count = 0;
    for (const auto& [name, value] : parsed.headers) {
      if (name == "content-length") ++count;
    }
    if (count > 1) return ParseOutcome::kBad;
  }
  if (content_length > cfg.max_body_bytes) return ParseOutcome::kBodyTooLarge;

  const std::size_t body_start = head_end + 4;
  if (data.size() - body_start < content_length) return ParseOutcome::kNeedMore;
  parsed.body = std::string(data.substr(body_start, content_length));

  *req = std::move(parsed);
  *consumed = body_start + static_cast<std::size_t>(content_length);
  return ParseOutcome::kDone;
}

std::string RenderHttpResponse(const HttpResponse& resp) {
  std::string out;
  char head[128];
  std::snprintf(head, sizeof(head), "HTTP/1.1 %d %s\r\n", resp.status,
                HttpStatusReason(resp.status));
  out += head;
  if (!resp.body.empty() || resp.status != 204) {
    out += "Content-Type: " + resp.content_type + "\r\n";
  }
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

HttpServer::HttpServer(HttpServerConfig cfg, HttpHandler handler)
    : cfg_(std::move(cfg)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

common::Status HttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return common::Status::Internal("http: socket() failed: " +
                                    std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return common::Status::InvalidArgument("http: bad bind address: " +
                                           cfg_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return common::Status::Internal("http: bind() failed: " + err);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return common::Status::Internal("http: listen() failed: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const std::size_t workers = cfg_.worker_threads == 0 ? 1 : cfg_.worker_threads;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  LogEvent("http_start", {{"addr", cfg_.bind_address},
                          {"port", std::to_string(port_)},
                          {"workers", std::to_string(workers)}});
  return common::Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // shutdown() wakes the blocking accept(); close() alone may not on all
  // platforms.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket is dead
    }
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.size() < cfg_.connection_backlog) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      cv_.notify_one();
    } else {
      HttpResponse busy;
      busy.status = 503;
      busy.body = "{\"error\": \"server busy\"}\n";
      WriteAll(fd, RenderHttpResponse(busy));
      ::close(fd);
    }
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !pending_.empty() || !running_.load(); });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  timeval tv{};
  tv.tv_sec = cfg_.recv_timeout_ms / 1000;
  tv.tv_usec = (cfg_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::string buf;
  HttpRequest req;
  std::size_t consumed = 0;
  char chunk[4096];
  HttpResponse resp;
  while (true) {
    const ParseOutcome outcome = ParseHttpRequest(buf, cfg_, &req, &consumed);
    if (outcome == ParseOutcome::kDone) {
      resp = handler_(req);
      break;
    }
    if (outcome != ParseOutcome::kNeedMore) {
      resp.status = outcome == ParseOutcome::kHeadersTooLarge ? 431
                    : outcome == ParseOutcome::kBodyTooLarge  ? 413
                    : outcome == ParseOutcome::kUnsupported   ? 501
                                                              : 400;
      resp.body = "{\"error\": \"" + std::string(HttpStatusReason(resp.status)) +
                  "\"}\n";
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    // EOF or error mid-request: timeout gets 408, truncation 400. An EOF
    // on a completely empty buffer is just a probe (health checkers do
    // this); close silently.
    if (buf.empty()) return;
    resp.status = (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) ? 408
                                                                       : 400;
    resp.body = "{\"error\": \"" + std::string(HttpStatusReason(resp.status)) +
                "\"}\n";
    break;
  }
  WriteAll(fd, RenderHttpResponse(resp));
}

}  // namespace uclust::service
