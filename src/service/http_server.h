// Minimal stdlib-only HTTP/1.1 front end for the clustering service: a
// blocking accept loop feeding a small worker pool over a bounded
// connection queue. Scope is deliberately narrow — loopback REST for job
// control, not a general web server:
//
//   * one request per connection (`Connection: close` on every response;
//     keep-alive is not negotiated),
//   * bodies require Content-Length (chunked transfer encoding is refused
//     with 501),
//   * hard caps on header bytes (431), body bytes (413), and per-connection
//     receive time (408), so a stalled or hostile peer cannot wedge a
//     worker; truncated or malformed requests get a 400 and the socket is
//     closed.
//
// Parsing is factored out (`ParseHttpRequest`) so the hardening paths are
// unit-testable without sockets.
#ifndef UCLUST_SERVICE_HTTP_SERVER_H_
#define UCLUST_SERVICE_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace uclust::service {

/// One parsed request. Header names are lower-cased at parse time;
/// `target` is the raw request-target (path + optional query, unescaped).
struct HttpRequest {
  std::string method;   // "GET", "POST", "DELETE", ...
  std::string target;   // "/v1/jobs/j-1"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup (names are stored lower-cased);
  /// returns "" when absent.
  const std::string& Header(const std::string& lower_name) const;
};

/// One response; the server adds Content-Length and Connection: close.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Maps a status code to its reason phrase ("OK", "Not Found", ...).
const char* HttpStatusReason(int status);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is readable via HttpServer::port().
  int port = 0;
  std::size_t worker_threads = 4;
  /// Pending accepted connections beyond the workers; further accepts are
  /// answered 503 and closed.
  std::size_t connection_backlog = 64;
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  /// Per-recv() timeout; a peer silent for longer gets 408.
  int recv_timeout_ms = 5000;
};

/// Incremental request parser outcome. kNeedMore means the buffer holds a
/// valid prefix — read more bytes; an eventual EOF there is a truncated
/// request (400).
enum class ParseOutcome {
  kDone,             // request fully parsed
  kNeedMore,         // valid so far, incomplete
  kBad,              // malformed -> 400
  kHeadersTooLarge,  // -> 431
  kBodyTooLarge,     // -> 413
  kUnsupported,      // chunked/unknown framing -> 501
};

/// Parses one request from `data`. On kDone fills `*req` and sets
/// `*consumed` to the bytes used. Limits come from `cfg`.
ParseOutcome ParseHttpRequest(std::string_view data,
                              const HttpServerConfig& cfg, HttpRequest* req,
                              std::size_t* consumed);

/// Serializes a response head+body exactly as the server writes it.
std::string RenderHttpResponse(const HttpResponse& resp);

class HttpServer {
 public:
  explicit HttpServer(HttpServerConfig cfg, HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds + listens and starts the accept loop and workers. Fails with
  /// kInternal if the socket cannot be bound.
  common::Status Start();

  /// Stops accepting, drains in-flight work, joins all threads. Idempotent.
  void Stop();

  /// The bound port (resolved after Start() when cfg.port == 0).
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  HttpServerConfig cfg_;
  HttpHandler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace uclust::service

#endif  // UCLUST_SERVICE_HTTP_SERVER_H_
