#include "service/job_manager.h"

#include <algorithm>
#include <chrono>

#include "clustering/ckmeans.h"
#include "clustering/registry.h"
#include "io/dataset_reader.h"
#include "service/log.h"

namespace uclust::service {

namespace {

double UptimeMs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The real clustering runner. UK-means / CK-means go through the
/// bounded-memory file-backed CK-means driver (bit-identical to the direct
/// sweeps by the library contract, and the only path that honors a budget
/// smaller than the resident moments); every other algorithm loads the
/// dataset fully resident and dispatches through the registry.
common::Result<clustering::ClusteringResult> RunClusteringJob(
    const JobSpec& spec, const DatasetInfo& dataset,
    const engine::EngineConfig& engine_cfg) {
  engine::Engine eng(engine_cfg);
  if (spec.algorithm == "UK-means" || spec.algorithm == "CK-means") {
    clustering::CkMeans::Params params;
    params.max_iters = spec.max_iters;
    params.init = clustering::InitStrategy::kRandom;
    params.reduction = engine_cfg.ukmeans_ckmeans_reduction;
    params.bound_pruning = engine_cfg.ukmeans_bound_pruning;
    params.minibatch_size = engine_cfg.ukmeans_minibatch_size;
    return clustering::CkMeans::ClusterFile(dataset.path, spec.k, spec.seed,
                                            params, eng);
  }
  common::Result<data::UncertainDataset> read =
      io::ReadUncertainDataset(dataset.path);
  if (!read.ok()) return read.status();
  data::UncertainDataset ds = std::move(read).ValueOrDie();
  // Sampled algorithms route their draws through io::MakeSampleStore; the
  // registered .usmp sidecar (if any) rides along as a dataset annotation.
  if (!dataset.samples_path.empty()) {
    ds.set_samples_sidecar_path(dataset.samples_path);
  }
  common::Result<std::unique_ptr<clustering::Clusterer>> clusterer =
      clustering::MakeClusterer(spec.algorithm, eng);
  if (!clusterer.ok()) return clusterer.status();
  return clusterer.ValueOrDie()->Cluster(ds, spec.k, spec.seed);
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobManager::JobManager(const DatasetRegistry* registry, JobManagerConfig cfg)
    : registry_(registry), cfg_(std::move(cfg)) {
  if (cfg_.executors < 1) cfg_.executors = 1;
  metrics_.global_budget_bytes = cfg_.global_budget_bytes;
}

JobManager::~JobManager() { Stop(); }

void JobManager::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  // The lanes are one long-lived RunTasks batch on the engine ThreadPool:
  // the pool contributes executors-1 workers and the holder thread is the
  // batch's calling lane, so exactly cfg_.executors loops run.
  pool_ = std::make_unique<engine::ThreadPool>(
      std::max(1, cfg_.executors - 1));
  const std::size_t lanes = static_cast<std::size_t>(cfg_.executors);
  pool_holder_ = std::thread([this, lanes] {
    pool_->RunTasks(lanes, [this](std::size_t) { ExecutorLoop(); });
  });
}

void JobManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) return;
    stop_ = true;
    for (Job* job : queue_) {
      job->state = JobState::kCancelled;
      job->finished_ms = UptimeMs();
      ++metrics_.cancelled;
    }
    queue_.clear();
    metrics_.queued = 0;
  }
  cv_.notify_all();
  if (pool_holder_.joinable()) pool_holder_.join();
  pool_.reset();
}

common::Result<std::string> JobManager::Submit(JobSpec spec,
                                               const std::string& request_id) {
  common::Result<DatasetInfo> dataset = registry_->Get(spec.dataset_id);
  if (!dataset.ok()) return dataset.status();

  const std::size_t global = cfg_.global_budget_bytes;
  std::size_t budget = spec.engine.memory_budget_bytes;
  if (global > 0) {
    if (budget == 0) budget = global;  // unbudgeted jobs claim the pool
    if (budget > global) {
      std::lock_guard<std::mutex> lock(mu_);
      ++metrics_.rejected;
      return common::Status::OutOfRange(
          "job: memory_budget_bytes " + std::to_string(budget) +
          " exceeds the global budget " + std::to_string(global));
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    return common::Status::Internal("job: manager is shut down");
  }
  if (queue_.size() >= cfg_.queue_capacity) {
    ++metrics_.rejected;
    return common::Status::OutOfRange(
        "job: queue full (" + std::to_string(cfg_.queue_capacity) +
        " queued jobs)");
  }
  auto job = std::make_unique<Job>();
  job->id = "j-" + std::to_string(jobs_.size() + 1);
  job->spec = std::move(spec);
  job->dataset = std::move(dataset).ValueOrDie();
  job->budget = budget;
  job->request_id = request_id;
  job->queued_ms = UptimeMs();
  Job* raw = job.get();
  jobs_.push_back(std::move(job));
  queue_.push_back(raw);
  ++metrics_.submitted;
  metrics_.queued = queue_.size();
  const std::string id = raw->id;
  lock.unlock();
  cv_.notify_all();
  LogEvent("job_queued", {{"request", request_id},
                          {"job", id},
                          {"dataset", raw->dataset.id},
                          {"algorithm", raw->spec.algorithm},
                          {"k", std::to_string(raw->spec.k)},
                          {"budget", std::to_string(budget)}});
  return id;
}

bool JobManager::Admissible(const Job& job) const {
  if (cfg_.global_budget_bytes == 0) return true;
  return budget_in_use_ + job.budget <= cfg_.global_budget_bytes;
}

void JobManager::ExecutorLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // FIFO head-of-line admission: only the queue head is eligible, and
      // it runs only when its budget fits. A blocked head blocks the lane
      // — that is the serialization guarantee, not a defect.
      for (;;) {
        if (stop_) return;
        if (!queue_.empty()) {
          if (Admissible(*queue_.front())) break;
          if (!queue_.front()->counted_admission_wait) {
            queue_.front()->counted_admission_wait = true;
            ++metrics_.admission_waits;
          }
        }
        cv_.wait(lock);
      }
      job = queue_.front();
      queue_.pop_front();
      metrics_.queued = queue_.size();
      job->state = JobState::kRunning;
      job->started_ms = UptimeMs();
      budget_in_use_ += job->budget;
      metrics_.budget_in_use_bytes = budget_in_use_;
      ++metrics_.running;
      metrics_.max_running_concurrent =
          std::max(metrics_.max_running_concurrent, metrics_.running);
    }
    cv_.notify_all();  // the new head may be admissible for another lane

    LogEvent("job_start", {{"job", job->id},
                           {"request", job->request_id},
                           {"algorithm", job->spec.algorithm},
                           {"budget", std::to_string(job->budget)}});

    // Run outside the lock. The admitted budget becomes the job's engine
    // budget so the per-job memory machinery enforces it.
    engine::EngineConfig engine_cfg = job->spec.engine;
    if (cfg_.global_budget_bytes > 0) {
      engine_cfg.memory_budget_bytes = job->budget;
    }
    common::Result<clustering::ClusteringResult> outcome =
        cfg_.runner_override
            ? cfg_.runner_override(job->spec, job->dataset, engine_cfg)
            : RunClusteringJob(job->spec, job->dataset, engine_cfg);

    {
      std::lock_guard<std::mutex> lock(mu_);
      job->finished_ms = UptimeMs();
      if (outcome.ok()) {
        job->result = std::move(outcome).ValueOrDie();
        job->state = JobState::kDone;
        ++metrics_.completed;
      } else {
        job->error = outcome.status().ToString();
        job->state = JobState::kFailed;
        ++metrics_.failed;
      }
      budget_in_use_ -= job->budget;
      metrics_.budget_in_use_bytes = budget_in_use_;
      --metrics_.running;
    }
    cv_.notify_all();
    LogEvent("job_finish",
             {{"job", job->id},
              {"request", job->request_id},
              {"state", JobStateName(job->state)},
              {"ms", std::to_string(job->finished_ms - job->started_ms)}});
  }
}

common::Result<JobSnapshot> JobManager::Get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Job>& job : jobs_) {
    if (job->id == id) return SnapshotLocked(*job);
  }
  return common::Status::NotFound("job: unknown job id: " + id);
}

common::Status JobManager::Cancel(const std::string& id) {
  std::unique_lock<std::mutex> lock(mu_);
  Job* found = nullptr;
  for (const std::unique_ptr<Job>& job : jobs_) {
    if (job->id == id) {
      found = job.get();
      break;
    }
  }
  if (found == nullptr) {
    return common::Status::NotFound("job: unknown job id: " + id);
  }
  switch (found->state) {
    case JobState::kQueued: {
      queue_.erase(std::find(queue_.begin(), queue_.end(), found));
      found->state = JobState::kCancelled;
      found->finished_ms = UptimeMs();
      ++metrics_.cancelled;
      metrics_.queued = queue_.size();
      lock.unlock();
      cv_.notify_all();  // the head may have changed
      LogEvent("job_cancelled", {{"job", id}});
      return common::Status::Ok();
    }
    case JobState::kRunning:
      return common::Status::InvalidArgument(
          "job: " + id + " is running and cannot be cancelled");
    default:
      return common::Status::Ok();  // already terminal — idempotent
  }
}

bool JobManager::Wait(const std::string& id, int timeout_ms) const {
  const auto terminal = [this, &id]() {
    for (const std::unique_ptr<Job>& job : jobs_) {
      if (job->id != id) continue;
      return job->state == JobState::kDone ||
             job->state == JobState::kFailed ||
             job->state == JobState::kCancelled;
    }
    return false;  // unknown id never becomes terminal
  };
  std::unique_lock<std::mutex> lock(mu_);
  if (timeout_ms < 0) {
    cv_.wait(lock, terminal);
    return true;
  }
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), terminal);
}

JobMetrics JobManager::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

JobSnapshot JobManager::SnapshotLocked(const Job& job) const {
  JobSnapshot snap;
  snap.id = job.id;
  snap.state = job.state;
  snap.spec = job.spec;
  snap.dataset = job.dataset;
  snap.effective_budget_bytes = job.budget;
  snap.error = job.error;
  snap.result = job.result;
  snap.request_id = job.request_id;
  snap.queued_ms = job.queued_ms;
  snap.started_ms = job.started_ms;
  snap.finished_ms = job.finished_ms;
  return snap;
}

}  // namespace uclust::service
