// Asynchronous clustering jobs: a bounded FIFO queue feeding executor
// lanes that run on the engine's existing ThreadPool, with admission
// control that carves every running job's memory budget out of one global
// `memory_budget_bytes` pool.
//
// Lifecycle: queued -> running -> done | failed, or queued -> cancelled.
// A running job is never cancelled mid-compute (the kernels have no
// preemption points); Cancel() on a running job is a 409-style error.
//
// Admission control semantics (the service's budget contract):
//   * Let B = JobManagerConfig::global_budget_bytes (0 = unlimited).
//   * A job's effective budget b is its spec's engine.memory_budget_bytes,
//     or B itself when the spec leaves it 0 (an unbudgeted job claims the
//     whole pool and therefore runs alone).
//   * b > B is rejected at submit (the job could never be admitted).
//   * Executors admit strictly in FIFO order: the queue head waits until
//     budget_in_use + b <= B, and nothing behind it may overtake. Two
//     concurrent jobs that each need more than B/2 therefore serialize —
//     observable via the max_running_concurrent metric.
//   * The admitted b is written into the job's EngineConfig before the run,
//     so the engine-level budget machinery (tiled pairwise stores, mapped
//     moment columns, epoch streaming) enforces per-job what admission
//     granted globally.
#ifndef UCLUST_SERVICE_JOB_MANAGER_H_
#define UCLUST_SERVICE_JOB_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "clustering/clusterer.h"
#include "common/status.h"
#include "engine/thread_pool.h"
#include "service/dataset_registry.h"
#include "service/job_spec.h"

namespace uclust::service {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

/// Stable lowercase name ("queued", "running", "done", "failed",
/// "cancelled") — the state strings of the REST API.
const char* JobStateName(JobState state);

struct JobManagerConfig {
  /// Concurrent executor lanes (jobs running at once, budget permitting).
  int executors = 2;
  /// Max queued-but-not-running jobs; submits beyond it are rejected
  /// (429-style), not blocked.
  std::size_t queue_capacity = 32;
  /// The global memory pool admission carves from. 0 = unlimited (no
  /// admission constraint; jobs run whenever a lane is free).
  std::size_t global_budget_bytes = 0;

  /// Runs one job: (spec, dataset, engine config with the admitted budget
  /// applied) -> result. Tests override it to control job duration
  /// deterministically (e.g. latch-blocked runners for admission tests);
  /// empty = the real clustering runner.
  using Runner = std::function<common::Result<clustering::ClusteringResult>(
      const JobSpec&, const DatasetInfo&, const engine::EngineConfig&)>;
  Runner runner_override;
};

/// Point-in-time copy of one job's externally visible state.
struct JobSnapshot {
  std::string id;  // "j-1"
  JobState state = JobState::kQueued;
  JobSpec spec;
  DatasetInfo dataset;
  /// The budget admission reserves while the job runs (0 iff the global
  /// pool is unlimited and the spec set none).
  std::size_t effective_budget_bytes = 0;
  std::string error;                   // non-empty iff kFailed
  clustering::ClusteringResult result; // valid iff kDone
  std::string request_id;              // correlation id of the submit
  double queued_ms = 0;    // process-uptime stamps; 0 = not reached
  double started_ms = 0;
  double finished_ms = 0;
};

/// Counters + gauges for GET /v1/metrics. Monotonic unless noted.
struct JobMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  // queue-full + over-global-budget submits
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t admission_waits = 0;  // jobs that stalled at the queue head
  std::size_t queued = 0;             // gauge
  std::size_t running = 0;            // gauge
  /// High-water mark of simultaneously running jobs — the admission-
  /// serialization tests' observable.
  std::size_t max_running_concurrent = 0;
  std::size_t global_budget_bytes = 0;
  std::size_t budget_in_use_bytes = 0;  // gauge
};

class JobManager {
 public:
  /// `registry` must outlive the manager; Submit resolves dataset ids
  /// against it.
  JobManager(const DatasetRegistry* registry, JobManagerConfig cfg);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Spins up the executor lanes (idempotent).
  void Start();
  /// Stops accepting work, drains running jobs, joins the lanes. Queued
  /// jobs are marked cancelled.
  void Stop();

  /// Validates against the registry + admission rules and enqueues.
  /// Returns the job id, or: NotFound (unknown dataset), OutOfRange
  /// (effective budget exceeds the global pool, or queue full — the
  /// message distinguishes them).
  common::Result<std::string> Submit(JobSpec spec,
                                     const std::string& request_id);

  /// Snapshot of one job; NotFound for unknown ids.
  common::Result<JobSnapshot> Get(const std::string& id) const;

  /// Cancels a queued job. Running jobs return InvalidArgument (the API
  /// maps it to 409); terminal jobs are a no-op success.
  common::Status Cancel(const std::string& id);

  /// Blocks until the job reaches a terminal state or `timeout_ms` passes.
  /// True iff terminal. timeout_ms < 0 waits forever.
  bool Wait(const std::string& id, int timeout_ms) const;

  JobMetrics Metrics() const;

 private:
  struct Job {
    std::string id;
    JobState state = JobState::kQueued;
    JobSpec spec;
    DatasetInfo dataset;
    std::size_t budget = 0;
    bool counted_admission_wait = false;
    std::string error;
    clustering::ClusteringResult result;
    std::string request_id;
    double queued_ms = 0, started_ms = 0, finished_ms = 0;
  };

  void ExecutorLoop();
  // Budget check for the queue head; caller holds mu_.
  bool Admissible(const Job& job) const;
  JobSnapshot SnapshotLocked(const Job& job) const;

  const DatasetRegistry* registry_;
  JobManagerConfig cfg_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<std::unique_ptr<Job>> jobs_;  // index i holds "j-(i+1)"
  std::deque<Job*> queue_;
  std::size_t budget_in_use_ = 0;
  JobMetrics metrics_;
  bool stop_ = false;
  bool started_ = false;

  /// The executor lanes run as one long-lived batch on the engine's
  /// ThreadPool primitive (dispatched from a single holder thread, since
  /// RunTasks blocks until the batch — i.e. service shutdown — completes).
  std::unique_ptr<engine::ThreadPool> pool_;
  std::thread pool_holder_;
};

}  // namespace uclust::service

#endif  // UCLUST_SERVICE_JOB_MANAGER_H_
