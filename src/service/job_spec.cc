#include "service/job_spec.h"

#include <cmath>

#include "clustering/registry.h"

namespace uclust::service {

namespace {

// Normalizes one JSON knob value to the string form ApplyEngineKnob
// parses. Integral numbers, booleans, and strings only — a fractional
// number is an error (every numeric knob is an integer).
common::Result<std::string> KnobValueToString(const std::string& key,
                                              const common::JsonValue& v) {
  switch (v.type()) {
    case common::JsonValue::Type::kString:
      return v.AsString();
    case common::JsonValue::Type::kBool:
      return std::string(v.AsBool() ? "true" : "false");
    case common::JsonValue::Type::kNumber: {
      const double d = v.AsDouble();
      if (!std::isfinite(d) || d != std::floor(d)) {
        return common::Status::InvalidArgument(
            "job spec: engine." + key + " must be an integer");
      }
      return std::to_string(static_cast<int64_t>(d));
    }
    default:
      return common::Status::InvalidArgument(
          "job spec: engine." + key + " must be a number, bool, or string");
  }
}

common::Status ExpectInt(const std::string& key, const common::JsonValue& v,
                         int64_t min, int64_t max, int64_t* out) {
  if (!v.is_number() || v.AsDouble() != std::floor(v.AsDouble())) {
    return common::Status::InvalidArgument("job spec: " + key +
                                           " must be an integer");
  }
  const int64_t i = v.AsInt();
  if (i < min || i > max) {
    return common::Status::OutOfRange(
        "job spec: " + key + " = " + std::to_string(i) + " out of range [" +
        std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  *out = i;
  return common::Status::Ok();
}

}  // namespace

common::Result<JobSpec> JobSpec::FromJson(std::string_view text) {
  common::Result<common::JsonValue> parsed = common::ParseJson(text);
  if (!parsed.ok()) {
    return common::Status::InvalidArgument("job spec: " +
                                           parsed.status().message());
  }
  return FromJsonValue(parsed.ValueOrDie());
}

common::Result<JobSpec> JobSpec::FromJsonValue(const common::JsonValue& root) {
  if (!root.is_object()) {
    return common::Status::InvalidArgument(
        "job spec: request body must be a JSON object");
  }
  JobSpec spec;
  bool saw_k = false;
  for (const auto& [key, value] : root.members()) {
    if (key == "dataset_id") {
      if (!value.is_string() || value.AsString().empty()) {
        return common::Status::InvalidArgument(
            "job spec: dataset_id must be a non-empty string");
      }
      spec.dataset_id = value.AsString();
    } else if (key == "algorithm") {
      if (!value.is_string()) {
        return common::Status::InvalidArgument(
            "job spec: algorithm must be a string");
      }
      spec.algorithm = value.AsString();
    } else if (key == "k") {
      int64_t k = 0;
      UCLUST_RETURN_NOT_OK(ExpectInt("k", value, 1, 1 << 28, &k));
      spec.k = static_cast<int>(k);
      saw_k = true;
    } else if (key == "seed") {
      int64_t seed = 0;
      UCLUST_RETURN_NOT_OK(
          ExpectInt("seed", value, 0, INT64_MAX, &seed));
      spec.seed = static_cast<std::uint64_t>(seed);
    } else if (key == "max_iters") {
      int64_t iters = 0;
      UCLUST_RETURN_NOT_OK(ExpectInt("max_iters", value, 1, 1 << 24, &iters));
      spec.max_iters = static_cast<int>(iters);
    } else if (key == "include_labels") {
      if (!value.is_bool()) {
        return common::Status::InvalidArgument(
            "job spec: include_labels must be a boolean");
      }
      spec.include_labels = value.AsBool();
    } else if (key == "engine") {
      if (!value.is_object()) {
        return common::Status::InvalidArgument(
            "job spec: engine must be an object of knob key/values");
      }
      for (const auto& [knob, knob_value] : value.members()) {
        common::Result<std::string> normalized =
            KnobValueToString(knob, knob_value);
        if (!normalized.ok()) return normalized.status();
        const std::string& str = normalized.ValueOrDie();
        common::Status applied =
            engine::ApplyEngineKnob(knob, str, &spec.engine);
        if (!applied.ok()) {
          return common::Status::InvalidArgument("job spec: engine." + knob +
                                                 ": " + applied.message());
        }
        spec.engine_knobs.emplace_back(knob, str);
      }
    } else {
      return common::Status::InvalidArgument("job spec: unknown key: " + key);
    }
  }
  if (spec.dataset_id.empty()) {
    return common::Status::InvalidArgument("job spec: dataset_id is required");
  }
  if (!saw_k) {
    return common::Status::InvalidArgument("job spec: k is required");
  }
  // Algorithm names are validated against the registry at submit time so a
  // typo fails the request, not the job.
  bool known = false;
  for (const std::string& name : clustering::RegisteredClusterers()) {
    if (name == spec.algorithm) {
      known = true;
      break;
    }
  }
  if (!known) {
    return common::Status::InvalidArgument(
        "job spec: unknown algorithm: " + spec.algorithm +
        " (see GET /v1/algorithms)");
  }
  return spec;
}

void JobSpec::AppendJson(common::JsonWriter* w) const {
  w->BeginObject();
  w->KV("dataset_id", dataset_id);
  w->KV("algorithm", algorithm);
  w->KV("k", k);
  w->KV("seed", static_cast<int64_t>(seed));
  w->KV("max_iters", max_iters);
  w->KV("include_labels", include_labels);
  w->Key("engine");
  w->BeginObject();
  for (const auto& [key, value] : engine_knobs) {
    w->KV(key, value);
  }
  w->EndObject();
  w->EndObject();
}

std::string JobSpec::ToJson() const {
  common::JsonWriter w;
  AppendJson(&w);
  return w.str();
}

}  // namespace uclust::service
