// JobSpec: the single validated path from an external request (JSON body
// or string key/values) to a runnable clustering configuration. Everything
// a job needs is here — dataset id, algorithm, k, seed, iteration cap,
// result shape — plus the engine knobs, which are applied through the one
// canonical string-knob table (engine::ApplyEngineKnob), so the service
// accepts exactly the keys and value grammar the CLI flags do.
//
// Validation is strict and happens at submit time, never in the job
// runner: unknown top-level keys, unknown algorithms, non-positive k, and
// malformed knob values are all InvalidArgument before a job id is ever
// allocated.
#ifndef UCLUST_SERVICE_JOB_SPEC_H_
#define UCLUST_SERVICE_JOB_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "engine/engine.h"

namespace uclust::service {

struct JobSpec {
  std::string dataset_id;
  /// Any clustering::RegisteredClusterers() name. "UK-means" and "CK-means"
  /// run through the bounded-memory file-backed CK-means driver (they are
  /// bit-identical by the library contract); every other algorithm loads
  /// the dataset fully resident.
  std::string algorithm = "CK-means";
  int k = 0;
  std::uint64_t seed = 0;
  int max_iters = 100;
  /// Include the per-object labels array in the result JSON (counters and
  /// objective are always included).
  bool include_labels = true;
  /// The applied engine configuration (defaults + knobs, in document
  /// order).
  engine::EngineConfig engine;
  /// The knob key/value pairs as received, for the ToJson() echo.
  std::vector<std::pair<std::string, std::string>> engine_knobs;

  /// Parses + validates a JSON request body:
  ///   {"dataset_id": "ds-1", "algorithm": "CK-means", "k": 8,
  ///    "seed": 42, "max_iters": 100, "include_labels": false,
  ///    "engine": {"threads": 4, "memory_budget_mb": 64}}
  /// Only dataset_id and k are required. Engine knob values may be JSON
  /// numbers (integral), booleans, or strings; they are normalized to
  /// strings and applied via engine::ApplyEngineKnob in document order.
  static common::Result<JobSpec> FromJson(std::string_view text);
  /// Same, over an already-parsed object.
  static common::Result<JobSpec> FromJsonValue(const common::JsonValue& root);

  /// Canonical JSON echo of the validated spec (what GET /v1/jobs/{id}
  /// reports as "spec").
  std::string ToJson() const;
  /// Appends the spec as the next value of an in-progress document.
  void AppendJson(common::JsonWriter* w) const;
};

}  // namespace uclust::service

#endif  // UCLUST_SERVICE_JOB_SPEC_H_
