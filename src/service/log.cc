#include "service/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace uclust::service {

namespace {

std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::atomic<bool>& Enabled() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

double UptimeMs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

bool NeedsQuoting(const std::string& v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n') {
      return true;
    }
  }
  return false;
}

void AppendValue(std::string* line, const std::string& v) {
  if (!NeedsQuoting(v)) {
    *line += v;
    return;
  }
  *line += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') *line += '\\';
    if (c == '\n') {
      *line += "\\n";
      continue;
    }
    *line += c;
  }
  *line += '"';
}

}  // namespace

void LogEvent(std::string_view event,
              std::initializer_list<LogField> fields) {
  if (!Enabled().load(std::memory_order_relaxed)) return;
  std::string line;
  char head[64];
  std::snprintf(head, sizeof(head), "ts=%.1f event=", UptimeMs());
  line += head;
  line.append(event.data(), event.size());
  for (const LogField& field : fields) {
    line += ' ';
    line.append(field.first.data(), field.first.size());
    line += '=';
    AppendValue(&line, field.second);
  }
  line += '\n';
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void SetLogEnabled(bool enabled) {
  Enabled().store(enabled, std::memory_order_relaxed);
}

std::string NextRequestId() {
  static std::atomic<uint64_t> counter{0};
  return "r-" + std::to_string(counter.fetch_add(1) + 1);
}

}  // namespace uclust::service
