// Structured logging for the service layer: one key=value line per event,
// with request/job correlation ids threaded through every route and job
// transition, so a single grep over the log reconstructs a job's lifecycle
// (submit request id -> job id -> state transitions -> result request id).
//
// Deliberately tiny: events go to stderr (stdout stays clean for tool
// output), a process-wide mutex keeps lines atomic across the HTTP worker
// pool and the job executors, and values are quoted only when they need
// to be — the lines stay both human-readable and machine-splittable.
#ifndef UCLUST_SERVICE_LOG_H_
#define UCLUST_SERVICE_LOG_H_

#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>

namespace uclust::service {

/// One log field: key=value. Values containing spaces, quotes, or '=' are
/// emitted double-quoted with backslash escapes.
using LogField = std::pair<std::string_view, std::string>;

/// Emits `ts=<uptime-ms> event=<event> k1=v1 k2=v2 ...` as one atomic
/// stderr line. The timestamp is milliseconds since process start — stable
/// across log diffing, free of wall-clock skew within a run.
void LogEvent(std::string_view event, std::initializer_list<LogField> fields);

/// Globally disables/enables event emission (tests silence the logger).
void SetLogEnabled(bool enabled);

/// Fresh process-unique request correlation id ("r-1", "r-2", ...).
std::string NextRequestId();

}  // namespace uclust::service

#endif  // UCLUST_SERVICE_LOG_H_
