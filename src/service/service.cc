#include "service/service.h"

#include <vector>

#include "clustering/registry.h"
#include "clustering/result_json.h"
#include "common/json.h"
#include "service/log.h"

namespace uclust::service {

namespace {

HttpResponse ErrorResponse(int status, const std::string& message) {
  common::JsonWriter w;
  w.BeginObject();
  w.KV("error", message);
  w.EndObject();
  HttpResponse resp;
  resp.status = status;
  resp.body = w.str() + "\n";
  return resp;
}

/// Default Status -> HTTP mapping; routes override where a code means
/// something more specific (e.g. Cancel's InvalidArgument is a 409).
int StatusToHttp(const common::Status& st) {
  switch (st.code()) {
    case common::StatusCode::kOk: return 200;
    case common::StatusCode::kInvalidArgument: return 400;
    case common::StatusCode::kOutOfRange: return 429;
    case common::StatusCode::kNotFound: return 404;
    case common::StatusCode::kIOError: return 500;
    case common::StatusCode::kInternal: return 500;
  }
  return 500;
}

HttpResponse StatusResponse(const common::Status& st) {
  return ErrorResponse(StatusToHttp(st), st.ToString());
}

void AppendDatasetJson(common::JsonWriter* w, const DatasetInfo& info) {
  w->BeginObject();
  w->KV("id", info.id);
  w->KV("path", info.path);
  w->KV("name", info.name);
  w->KV("n", info.n);
  w->KV("m", info.m);
  w->KV("num_classes", info.num_classes);
  w->KV("has_labels", info.has_labels);
  w->KV("file_bytes", static_cast<int64_t>(info.file_bytes));
  w->KV("moments_path", info.moments_path);
  w->KV("samples_path", info.samples_path);
  w->EndObject();
}

void AppendJobJson(common::JsonWriter* w, const JobSnapshot& snap) {
  w->BeginObject();
  w->KV("id", snap.id);
  w->KV("state", JobStateName(snap.state));
  w->KV("request_id", snap.request_id);
  w->KV("dataset_id", snap.dataset.id);
  w->KV("effective_budget_bytes", snap.effective_budget_bytes);
  w->Key("spec");
  snap.spec.AppendJson(w);
  w->KV("queued_ms", snap.queued_ms);
  w->KV("started_ms", snap.started_ms);
  w->KV("finished_ms", snap.finished_ms);
  if (snap.state == JobState::kFailed) w->KV("error", snap.error);
  w->EndObject();
}

/// Splits a request target into path segments, dropping any query string.
std::vector<std::string> PathSegments(const std::string& target) {
  std::string path = target;
  const std::size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
  std::vector<std::string> segments;
  std::size_t begin = 0;
  while (begin < path.size()) {
    if (path[begin] == '/') {
      ++begin;
      continue;
    }
    std::size_t end = path.find('/', begin);
    if (end == std::string::npos) end = path.size();
    segments.push_back(path.substr(begin, end - begin));
    begin = end;
  }
  return segments;
}

}  // namespace

ClusteringService::ClusteringService(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  jobs_ = std::make_unique<JobManager>(&registry_, cfg_.jobs);
}

ClusteringService::~ClusteringService() { Stop(); }

common::Status ClusteringService::Start() {
  jobs_->Start();
  server_ = std::make_unique<HttpServer>(
      cfg_.http, [this](const HttpRequest& req) { return Handle(req); });
  return server_->Start();
}

void ClusteringService::Stop() {
  if (server_) server_->Stop();
  jobs_->Stop();
}

HttpResponse ClusteringService::Handle(const HttpRequest& req) {
  const std::string request_id = NextRequestId();
  LogEvent("request", {{"request", request_id},
                       {"method", req.method},
                       {"target", req.target}});
  HttpResponse resp = Route(req, request_id);
  LogEvent("response", {{"request", request_id},
                        {"status", std::to_string(resp.status)}});
  return resp;
}

HttpResponse ClusteringService::Route(const HttpRequest& req,
                                      const std::string& request_id) {
  const std::vector<std::string> seg = PathSegments(req.target);

  if (seg.size() == 1 && seg[0] == "healthz") {
    if (req.method != "GET") return ErrorResponse(405, "GET only");
    HttpResponse resp;
    resp.body = "{\"status\": \"ok\"}\n";
    return resp;
  }
  if (seg.empty() || seg[0] != "v1") {
    return ErrorResponse(404, "unknown route: " + req.target);
  }
  if (seg.size() == 2 && seg[1] == "algorithms") {
    if (req.method != "GET") return ErrorResponse(405, "GET only");
    common::JsonWriter w;
    w.BeginObject();
    w.Key("algorithms");
    w.BeginArray();
    for (const std::string& name : clustering::RegisteredClusterers()) {
      w.Value(name);
    }
    w.EndArray();
    w.EndObject();
    HttpResponse resp;
    resp.body = w.str() + "\n";
    return resp;
  }
  if (seg.size() >= 2 && seg[1] == "datasets") {
    return HandleDatasets(req, seg.size() >= 3 ? seg[2] : "");
  }
  if (seg.size() >= 2 && seg[1] == "jobs") {
    return HandleJobs(req, seg.size() >= 3 ? seg[2] : "",
                      seg.size() >= 4 ? seg[3] : "", request_id);
  }
  if (seg.size() == 2 && seg[1] == "metrics") {
    if (req.method != "GET") return ErrorResponse(405, "GET only");
    return HandleMetrics();
  }
  return ErrorResponse(404, "unknown route: " + req.target);
}

HttpResponse ClusteringService::HandleDatasets(const HttpRequest& req,
                                               const std::string& id) {
  if (id.empty() && req.method == "POST") {
    common::Result<common::JsonValue> parsed = common::ParseJson(req.body);
    if (!parsed.ok()) {
      return ErrorResponse(400, "datasets: " + parsed.status().message());
    }
    const common::JsonValue& root = parsed.ValueOrDie();
    if (!root.is_object()) {
      return ErrorResponse(400, "datasets: body must be a JSON object");
    }
    const common::JsonValue* path = root.Find("path");
    if (path == nullptr || !path->is_string()) {
      return ErrorResponse(400, "datasets: \"path\" (string) is required");
    }
    const common::JsonValue* moments = root.Find("moments_path");
    if (moments != nullptr && !moments->is_string()) {
      return ErrorResponse(400, "datasets: \"moments_path\" must be a string");
    }
    const common::JsonValue* samples = root.Find("samples_path");
    if (samples != nullptr && !samples->is_string()) {
      return ErrorResponse(400, "datasets: \"samples_path\" must be a string");
    }
    common::Result<DatasetInfo> info = registry_.Register(
        path->AsString(), moments != nullptr ? moments->AsString() : "",
        samples != nullptr ? samples->AsString() : "");
    if (!info.ok()) return StatusResponse(info.status());
    common::JsonWriter w;
    AppendDatasetJson(&w, info.ValueOrDie());
    HttpResponse resp;
    resp.status = 201;
    resp.body = w.str() + "\n";
    return resp;
  }
  if (req.method != "GET") {
    return ErrorResponse(405, "datasets: GET or POST only");
  }
  if (id.empty()) {
    common::JsonWriter w;
    w.BeginObject();
    w.Key("datasets");
    w.BeginArray();
    for (const DatasetInfo& info : registry_.List()) {
      AppendDatasetJson(&w, info);
    }
    w.EndArray();
    w.EndObject();
    HttpResponse resp;
    resp.body = w.str() + "\n";
    return resp;
  }
  common::Result<DatasetInfo> info = registry_.Get(id);
  if (!info.ok()) return StatusResponse(info.status());
  common::JsonWriter w;
  AppendDatasetJson(&w, info.ValueOrDie());
  HttpResponse resp;
  resp.body = w.str() + "\n";
  return resp;
}

HttpResponse ClusteringService::HandleJobs(const HttpRequest& req,
                                           const std::string& id,
                                           const std::string& sub,
                                           const std::string& request_id) {
  if (id.empty()) {
    if (req.method != "POST") return ErrorResponse(405, "jobs: POST only");
    common::Result<JobSpec> spec = JobSpec::FromJson(req.body);
    if (!spec.ok()) return StatusResponse(spec.status());
    common::Result<std::string> job_id =
        jobs_->Submit(std::move(spec).ValueOrDie(), request_id);
    if (!job_id.ok()) return StatusResponse(job_id.status());
    common::JsonWriter w;
    w.BeginObject();
    w.KV("job_id", job_id.ValueOrDie());
    w.KV("state", "queued");
    w.KV("request_id", request_id);
    w.EndObject();
    HttpResponse resp;
    resp.status = 202;
    resp.body = w.str() + "\n";
    return resp;
  }

  if (req.method == "DELETE") {
    if (!sub.empty()) return ErrorResponse(404, "jobs: unknown subresource");
    common::Status st = jobs_->Cancel(id);
    if (!st.ok()) {
      // A running job cannot be cancelled — that is a conflict with its
      // current state, not a malformed request.
      const int code = st.code() == common::StatusCode::kInvalidArgument
                           ? 409
                           : StatusToHttp(st);
      return ErrorResponse(code, st.ToString());
    }
    common::JsonWriter w;
    w.BeginObject();
    w.KV("job_id", id);
    w.KV("state", "cancelled");
    w.EndObject();
    HttpResponse resp;
    resp.body = w.str() + "\n";
    return resp;
  }
  if (req.method != "GET") {
    return ErrorResponse(405, "jobs: GET or DELETE only");
  }

  common::Result<JobSnapshot> snap = jobs_->Get(id);
  if (!snap.ok()) return StatusResponse(snap.status());
  const JobSnapshot& job = snap.ValueOrDie();

  if (sub.empty()) {
    common::JsonWriter w;
    AppendJobJson(&w, job);
    HttpResponse resp;
    resp.body = w.str() + "\n";
    return resp;
  }
  if (sub != "result") return ErrorResponse(404, "jobs: unknown subresource");
  if (job.state == JobState::kFailed) {
    return ErrorResponse(500, "job " + id + " failed: " + job.error);
  }
  if (job.state != JobState::kDone) {
    return ErrorResponse(409, "job " + id + " is " +
                                  JobStateName(job.state) +
                                  "; result is available once done");
  }
  common::JsonWriter w;
  w.BeginObject();
  w.KV("job_id", job.id);
  w.KV("algorithm", job.spec.algorithm);
  w.KV("dataset_id", job.dataset.id);
  w.Key("result");
  clustering::AppendResultJson(&w, job.result, job.spec.include_labels);
  w.EndObject();
  HttpResponse resp;
  resp.body = w.str() + "\n";
  return resp;
}

HttpResponse ClusteringService::HandleMetrics() const {
  const JobMetrics m = jobs_->Metrics();
  common::JsonWriter w;
  w.BeginObject();
  w.KV("submitted", static_cast<int64_t>(m.submitted));
  w.KV("rejected", static_cast<int64_t>(m.rejected));
  w.KV("completed", static_cast<int64_t>(m.completed));
  w.KV("failed", static_cast<int64_t>(m.failed));
  w.KV("cancelled", static_cast<int64_t>(m.cancelled));
  w.KV("admission_waits", static_cast<int64_t>(m.admission_waits));
  w.KV("queued", m.queued);
  w.KV("running", m.running);
  w.KV("max_running_concurrent", m.max_running_concurrent);
  w.KV("global_budget_bytes", m.global_budget_bytes);
  w.KV("budget_in_use_bytes", m.budget_in_use_bytes);
  w.KV("datasets", registry_.size());
  w.EndObject();
  HttpResponse resp;
  resp.body = w.str() + "\n";
  return resp;
}

}  // namespace uclust::service
