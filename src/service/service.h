// ClusteringService: the clustering-as-a-service facade. Owns the dataset
// registry, the async job manager, and the HTTP front end, and maps the
// versioned REST surface onto them:
//
//   GET    /healthz              liveness ("ok" once routable)
//   GET    /v1/algorithms        registered clusterer names
//   POST   /v1/datasets          {"path": ..., "moments_path"?: ...,
//                                 "samples_path"?: ...} -> 201
//   GET    /v1/datasets          registration list
//   GET    /v1/datasets/{id}     one registration
//   POST   /v1/jobs              JobSpec body -> 202 {"job_id", "state"}
//   GET    /v1/jobs/{id}         job status (state machine + spec echo)
//   GET    /v1/jobs/{id}/result  canonical ClusteringResult JSON (409 until
//                                the job is done)
//   DELETE /v1/jobs/{id}         cancel a queued job (409 when running)
//   GET    /v1/metrics           job counters/gauges + admission stats
//
// Handle() is public and socket-free: tests and the in-process smoke bench
// drive the full route surface directly, while tools/serve wires it behind
// HttpServer. Every request gets a correlation id ("r-N") that is logged
// with the request, stored on any job it submits, and echoed in bodies.
#ifndef UCLUST_SERVICE_SERVICE_H_
#define UCLUST_SERVICE_SERVICE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "service/dataset_registry.h"
#include "service/http_server.h"
#include "service/job_manager.h"

namespace uclust::service {

struct ServiceConfig {
  HttpServerConfig http;
  JobManagerConfig jobs;
};

class ClusteringService {
 public:
  explicit ClusteringService(ServiceConfig cfg);
  ~ClusteringService();

  ClusteringService(const ClusteringService&) = delete;
  ClusteringService& operator=(const ClusteringService&) = delete;

  /// Starts the job executors and binds the HTTP listener.
  common::Status Start();
  /// Stops the listener, drains running jobs, joins everything.
  void Stop();

  /// The bound HTTP port (after Start()).
  int port() const { return server_ ? server_->port() : 0; }

  /// Full route dispatch, no sockets involved.
  HttpResponse Handle(const HttpRequest& req);

  DatasetRegistry& registry() { return registry_; }
  JobManager& jobs() { return *jobs_; }

 private:
  HttpResponse Route(const HttpRequest& req, const std::string& request_id);
  HttpResponse HandleDatasets(const HttpRequest& req, const std::string& id);
  HttpResponse HandleJobs(const HttpRequest& req, const std::string& id,
                          const std::string& sub,
                          const std::string& request_id);
  HttpResponse HandleMetrics() const;

  ServiceConfig cfg_;
  DatasetRegistry registry_;
  std::unique_ptr<JobManager> jobs_;
  std::unique_ptr<HttpServer> server_;
};

}  // namespace uclust::service

#endif  // UCLUST_SERVICE_SERVICE_H_
