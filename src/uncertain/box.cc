#include "uncertain/box.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace uclust::uncertain {

Box::Box(std::vector<double> lower, std::vector<double> upper)
    : lower_(std::move(lower)), upper_(std::move(upper)) {
  assert(lower_.size() == upper_.size());
#ifndef NDEBUG
  for (std::size_t j = 0; j < lower_.size(); ++j) {
    assert(lower_[j] <= upper_[j]);
  }
#endif
}

std::vector<double> Box::Center() const {
  std::vector<double> c(dims());
  for (std::size_t j = 0; j < dims(); ++j) {
    c[j] = 0.5 * (lower_[j] + upper_[j]);
  }
  return c;
}

bool Box::Contains(std::span<const double> point) const {
  assert(point.size() == dims());
  for (std::size_t j = 0; j < dims(); ++j) {
    if (point[j] < lower_[j] || point[j] > upper_[j]) return false;
  }
  return true;
}

double Box::MinSquaredDistanceTo(std::span<const double> point) const {
  assert(point.size() == dims());
  double acc = 0.0;
  for (std::size_t j = 0; j < dims(); ++j) {
    double d = 0.0;
    if (point[j] < lower_[j]) {
      d = lower_[j] - point[j];
    } else if (point[j] > upper_[j]) {
      d = point[j] - upper_[j];
    }
    acc += d * d;
  }
  return acc;
}

double Box::MinSquaredDistanceTo(const Box& other) const {
  assert(other.dims() == dims());
  double acc = 0.0;
  for (std::size_t j = 0; j < dims(); ++j) {
    // Per-dimension interval gap: 0 when [lo, hi] overlaps [olo, ohi].
    double d = 0.0;
    if (other.upper_[j] < lower_[j]) {
      d = lower_[j] - other.upper_[j];
    } else if (other.lower_[j] > upper_[j]) {
      d = other.lower_[j] - upper_[j];
    }
    acc += d * d;
  }
  return acc;
}

double Box::MaxSquaredDistanceTo(std::span<const double> point) const {
  assert(point.size() == dims());
  double acc = 0.0;
  for (std::size_t j = 0; j < dims(); ++j) {
    const double dlo = std::fabs(point[j] - lower_[j]);
    const double dhi = std::fabs(point[j] - upper_[j]);
    const double d = std::max(dlo, dhi);
    acc += d * d;
  }
  return acc;
}

double Box::MaxSquaredDistanceTo(const Box& other) const {
  assert(other.dims() == dims());
  double acc = 0.0;
  for (std::size_t j = 0; j < dims(); ++j) {
    // The farthest pair of interval points is an endpoint pair: either this
    // lower against the other upper, or this upper against the other lower.
    const double dlo = std::fabs(lower_[j] - other.upper_[j]);
    const double dhi = std::fabs(upper_[j] - other.lower_[j]);
    const double d = std::max(dlo, dhi);
    acc += d * d;
  }
  return acc;
}

Box Box::BoundingUnion(const Box& a, const Box& b) {
  assert(a.dims() == b.dims());
  std::vector<double> lo(a.dims());
  std::vector<double> hi(a.dims());
  for (std::size_t j = 0; j < a.dims(); ++j) {
    lo[j] = std::min(a.lower_[j], b.lower_[j]);
    hi[j] = std::max(a.upper_[j], b.upper_[j]);
  }
  return Box(std::move(lo), std::move(hi));
}

bool Box::EntirelyCloserTo(std::span<const double> a,
                           std::span<const double> b) const {
  assert(a.size() == dims() && b.size() == dims());
  // ||x - b||^2 - ||x - a||^2 = -2 x.(b - a) + ||b||^2 - ||a||^2.
  // The box is entirely closer to `a` iff the minimum of this expression
  // over the box is >= 0. Minimizing means maximizing x.(b - a), achieved
  // per dimension at the corner in the direction of (b - a).
  double norm_diff = 0.0;  // ||b||^2 - ||a||^2
  double max_dot = 0.0;    // max over box of x.(b - a)
  for (std::size_t j = 0; j < dims(); ++j) {
    norm_diff += b[j] * b[j] - a[j] * a[j];
    const double w = b[j] - a[j];
    max_dot += w > 0.0 ? w * upper_[j] : w * lower_[j];
  }
  return norm_diff - 2.0 * max_dot >= 0.0;
}

}  // namespace uclust::uncertain
