// Axis-aligned box: the multidimensional domain region of an uncertain
// object, and the geometric primitive behind the MinMax-BB and Voronoi
// (bisector) pruning rules.
#ifndef UCLUST_UNCERTAIN_BOX_H_
#define UCLUST_UNCERTAIN_BOX_H_

#include <span>
#include <vector>

namespace uclust::uncertain {

/// Axis-aligned box [lower_1, upper_1] x ... x [lower_m, upper_m].
class Box {
 public:
  Box() = default;
  /// Creates a box from bounds; requires equal sizes and lower <= upper.
  Box(std::vector<double> lower, std::vector<double> upper);

  /// Dimensionality.
  std::size_t dims() const { return lower_.size(); }
  /// Per-dimension lower bounds.
  const std::vector<double>& lower() const { return lower_; }
  /// Per-dimension upper bounds.
  const std::vector<double>& upper() const { return upper_; }
  /// Geometric center.
  std::vector<double> Center() const;
  /// True iff the point lies inside (inclusive).
  bool Contains(std::span<const double> point) const;

  /// Smallest squared Euclidean distance from `point` to any box point
  /// (0 when the point is inside). Used by MinMax-BB lower bounds.
  double MinSquaredDistanceTo(std::span<const double> point) const;
  /// Smallest squared Euclidean distance between any point of this box and
  /// any point of `other` (0 when the boxes overlap). The tightest
  /// box-based lower bound on the distance between two uncertain objects'
  /// realizations; used by the pair-level sweep pruning.
  double MinSquaredDistanceTo(const Box& other) const;
  /// Largest squared Euclidean distance from `point` to any box point.
  /// Used by MinMax-BB upper bounds.
  double MaxSquaredDistanceTo(std::span<const double> point) const;
  /// Largest squared Euclidean distance between any point of this box and
  /// any point of `other`: an upper bound on the distance between two
  /// uncertain objects' realizations. Together with the min bound this
  /// brackets every realization distance, which is what the spatial-index
  /// rank and nearest-candidate queries build on.
  double MaxSquaredDistanceTo(const Box& other) const;

  /// Smallest bounding box containing both boxes (the MMVar mixture region
  /// union is represented by its bounding box).
  static Box BoundingUnion(const Box& a, const Box& b);

  /// True iff every point x of the box is at least as close to `a` as to
  /// `b` under squared Euclidean distance, i.e. the box lies entirely in
  /// `a`'s closed half-space of the (a, b) perpendicular bisector. This is
  /// the Voronoi bisector test of the VDBiP pruning algorithm.
  bool EntirelyCloserTo(std::span<const double> a,
                        std::span<const double> b) const;

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_BOX_H_
