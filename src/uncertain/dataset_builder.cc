#include "uncertain/dataset_builder.h"

#include <algorithm>
#include <cassert>

#include "engine/parallel_for.h"

namespace uclust::uncertain {

ObjectSource::~ObjectSource() = default;

std::span<const UncertainObject> VectorObjectSource::NextBatch(
    std::size_t max) {
  assert(max > 0);
  const std::size_t count = std::min(max, objects_.size() - cursor_);
  const auto batch = objects_.subspan(cursor_, count);
  cursor_ += count;
  return batch;
}

void DatasetBuilder::AddBatch(std::span<const UncertainObject> batch) {
  if (batch.empty() || !sink_status_.ok()) return;
  if (m_ == 0) m_ = batch[0].dims();
  // Resident mode packs at the absolute row offset; spill mode packs the
  // batch at offset 0 of the reused scratch block and forwards it. Either
  // way every row goes through the canonical MomentMatrix::PackRow.
  const std::size_t base = sink_ == nullptr ? n_ : 0;
  n_ += batch.size();
  mean_.resize((base + batch.size()) * m_);
  mu2_.resize((base + batch.size()) * m_);
  var_.resize((base + batch.size()) * m_);
  total_var_.resize(base + batch.size());
  engine::ParallelFor(engine_, batch.size(),
                      [&](const engine::BlockedRange& r) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const UncertainObject& o = batch[i];
      assert(o.dims() == m_);
      const std::size_t row = (base + i) * m_;
      MomentMatrix::PackRow(o.mean(), o.second_moment(), o.variance(),
                            mean_.data() + row, mu2_.data() + row,
                            var_.data() + row, total_var_.data() + base + i);
    }
  });
  if (sink_ != nullptr) {
    sink_status_ = sink_->AppendRows(batch.size(), m_, mean_.data(),
                                     mu2_.data(), var_.data(),
                                     total_var_.data());
  }
}

void DatasetBuilder::Consume(ObjectSource* source, std::size_t batch_size) {
  assert(source != nullptr && batch_size > 0);
  while (sink_status_.ok()) {
    const auto batch = source->NextBatch(batch_size);
    if (batch.empty()) break;
    AddBatch(batch);
  }
}

MomentMatrix DatasetBuilder::Build() {
  assert(sink_ == nullptr && "Build() is for resident mode; a spill-mode "
                             "builder's rows already went to the sink");
  return MomentMatrix::FromColumns(n_, m_, std::move(mean_), std::move(mu2_),
                                   std::move(var_), std::move(total_var_));
}

MomentMatrix DatasetBuilder::BuildMoments(ObjectSource* source,
                                          const engine::Engine& eng,
                                          std::size_t batch_size) {
  DatasetBuilder builder(eng);
  builder.Consume(source, batch_size);
  return builder.Build();
}

}  // namespace uclust::uncertain
