#include "uncertain/dataset_builder.h"

#include <algorithm>
#include <cassert>

#include "engine/parallel_for.h"

namespace uclust::uncertain {

ObjectSource::~ObjectSource() = default;

std::span<const UncertainObject> VectorObjectSource::NextBatch(
    std::size_t max) {
  assert(max > 0);
  const std::size_t count = std::min(max, objects_.size() - cursor_);
  const auto batch = objects_.subspan(cursor_, count);
  cursor_ += count;
  return batch;
}

void DatasetBuilder::AddBatch(std::span<const UncertainObject> batch) {
  if (batch.empty()) return;
  if (m_ == 0) m_ = batch[0].dims();
  const std::size_t base = n_;
  n_ += batch.size();
  mean_.resize(n_ * m_);
  mu2_.resize(n_ * m_);
  var_.resize(n_ * m_);
  total_var_.resize(n_);
  engine::ParallelFor(engine_, batch.size(),
                      [&](const engine::BlockedRange& r) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const UncertainObject& o = batch[i];
      assert(o.dims() == m_);
      const std::size_t row = (base + i) * m_;
      std::copy(o.mean().begin(), o.mean().end(), mean_.begin() + row);
      std::copy(o.second_moment().begin(), o.second_moment().end(),
                mu2_.begin() + row);
      std::copy(o.variance().begin(), o.variance().end(), var_.begin() + row);
      // Summed in dimension order, matching MomentMatrix::AppendRow (the
      // object's cached total_variance() is the same sum; recomputing here
      // keeps the bit-identity contract independent of that cache).
      double tv = 0.0;
      for (std::size_t j = 0; j < m_; ++j) tv += var_[row + j];
      total_var_[base + i] = tv;
    }
  });
}

void DatasetBuilder::Consume(ObjectSource* source, std::size_t batch_size) {
  assert(source != nullptr && batch_size > 0);
  for (;;) {
    const auto batch = source->NextBatch(batch_size);
    if (batch.empty()) break;
    AddBatch(batch);
  }
}

MomentMatrix DatasetBuilder::Build() {
  return MomentMatrix::FromColumns(n_, m_, std::move(mean_), std::move(mu2_),
                                   std::move(var_), std::move(total_var_));
}

MomentMatrix DatasetBuilder::BuildMoments(ObjectSource* source,
                                          const engine::Engine& eng,
                                          std::size_t batch_size) {
  DatasetBuilder builder(eng);
  builder.Consume(source, batch_size);
  return builder.Build();
}

}  // namespace uclust::uncertain
