// Bounded-memory moment ingestion (the streaming form of Algorithm 1's
// "Line 1" precomputation).
//
// The fast algorithms (UK-means, MMVar, UCPC) consume only moment
// statistics, so a dataset never needs to be resident as pdf objects: a
// DatasetBuilder consumes uncertain objects batch-by-batch — from any
// ObjectSource — and packs their first/second moments and variances
// incrementally through the canonical MomentMatrix::PackRow path. It writes
// straight into either MomentStore backend:
//
//   * resident mode (default): rows accumulate in flat columns; Build()
//     finalizes them into a MomentMatrix. Peak memory is O(n m).
//   * spill mode (a MomentSink is attached): each batch is packed into an
//     O(batch m) scratch block and forwarded to the sink — in practice the
//     .umom sidecar writer behind the Mapped backend — so the full columns
//     are NEVER materialized; peak memory is O(batch m) regardless of n.
//
// Determinism contract: both modes produce bytes bit-identical to
// MomentMatrix::FromObjects over the same object sequence, for ANY batch
// partition and ANY engine thread count (rows land at absolute offsets; the
// per-row total-variance sum always runs in dimension order inside PackRow).
#ifndef UCLUST_UNCERTAIN_DATASET_BUILDER_H_
#define UCLUST_UNCERTAIN_DATASET_BUILDER_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "uncertain/moment_store.h"
#include "uncertain/moments.h"
#include "uncertain/uncertain_object.h"

namespace uclust::uncertain {

/// A producer of uncertain objects in sequence, consumed batch-by-batch.
/// Implementations: VectorObjectSource (the classic in-memory path) and
/// io::FileObjectSource (streaming reads of the binary dataset format).
class ObjectSource {
 public:
  virtual ~ObjectSource();

  /// Hands out the next batch of at most `max` objects (empty span when the
  /// source is exhausted). The span must stay valid until the next call;
  /// `max` must be > 0.
  virtual std::span<const UncertainObject> NextBatch(std::size_t max) = 0;
};

/// ObjectSource over objects already resident in memory (zero-copy: batches
/// are subspans of the backing storage).
class VectorObjectSource final : public ObjectSource {
 public:
  explicit VectorObjectSource(std::span<const UncertainObject> objects)
      : objects_(objects) {}

  std::span<const UncertainObject> NextBatch(std::size_t max) override;

 private:
  std::span<const UncertainObject> objects_;
  std::size_t cursor_ = 0;
};

/// Incremental moment builder. Feed batches (or whole sources), then Build()
/// once (resident mode) or let the sink's Finish() seal the file (spill
/// mode); the builder must not be reused afterwards.
class DatasetBuilder {
 public:
  /// Default batch granularity used by Consume()-style entry points.
  static constexpr std::size_t kDefaultBatchSize = 4096;

  /// Resident mode: rows accumulate into flat columns for Build().
  explicit DatasetBuilder(const engine::Engine& eng = engine::Engine::Serial())
      : engine_(eng) {}

  /// Spill mode: every batch is forwarded to `sink` (which must outlive the
  /// builder); Build() must not be called. Sink failures surface through
  /// status() and stop Consume() early.
  DatasetBuilder(const engine::Engine& eng, MomentSink* sink)
      : engine_(eng), sink_(sink) {}

  /// Appends one object's moment row.
  void Add(const UncertainObject& o) { AddBatch({&o, 1}); }

  /// Appends one batch; rows are packed concurrently via the engine's
  /// ParallelFor (each row is an independent write, so any thread count
  /// yields identical columns). No-op after a sink failure.
  void AddBatch(std::span<const UncertainObject> batch);

  /// Drains `source` in batches of `batch_size` (stops early on a sink
  /// failure; check status()).
  void Consume(ObjectSource* source,
               std::size_t batch_size = kDefaultBatchSize);

  /// Error state of the attached sink (always OK in resident mode).
  const common::Status& status() const { return sink_status_; }

  /// Objects ingested so far.
  std::size_t size() const { return n_; }
  /// Dimensionality (0 until the first object arrives).
  std::size_t dims() const { return m_; }

  /// Finalizes into a MomentMatrix (moves the columns out). Resident mode
  /// only.
  MomentMatrix Build();

  /// One-shot convenience: drains `source` and returns the matrix.
  static MomentMatrix BuildMoments(
      ObjectSource* source, const engine::Engine& eng = engine::Engine::Serial(),
      std::size_t batch_size = kDefaultBatchSize);

 private:
  engine::Engine engine_;
  MomentSink* sink_ = nullptr;
  common::Status sink_status_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  // Resident mode: the full columns. Spill mode: O(batch m) scratch reused
  // across batches.
  std::vector<double> mean_;
  std::vector<double> mu2_;
  std::vector<double> var_;
  std::vector<double> total_var_;
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_DATASET_BUILDER_H_
