#include "uncertain/dirac_pdf.h"

namespace uclust::uncertain {

PdfPtr DiracPdf::Make(double x) { return std::make_shared<DiracPdf>(x); }

}  // namespace uclust::uncertain
