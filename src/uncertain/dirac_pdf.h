// Degenerate (Dirac) pdf: all mass at a single point.
//
// Deterministic objects are modeled as uncertain objects whose per-dimension
// pdfs are Dirac; UK-means / UCPC / MMVar then degenerate to classic K-means,
// which is exactly what the paper's "Case 1" evaluation protocol needs.
#ifndef UCLUST_UNCERTAIN_DIRAC_PDF_H_
#define UCLUST_UNCERTAIN_DIRAC_PDF_H_

#include <limits>

#include "uncertain/pdf.h"

namespace uclust::uncertain {

/// Point mass at `x`. Density() returns +infinity at x (by convention) and 0
/// elsewhere; moments and sampling are exact.
class DiracPdf final : public Pdf {
 public:
  /// Creates a point mass at x.
  explicit DiracPdf(double x) : x_(x) {}

  /// Convenience factory.
  static PdfPtr Make(double x);

  double mean() const override { return x_; }
  double second_moment() const override { return x_ * x_; }
  double lower() const override { return x_; }
  double upper() const override { return x_; }
  double Density(double x) const override {
    return x == x_ ? std::numeric_limits<double>::infinity() : 0.0;
  }
  double Cdf(double x) const override { return x >= x_ ? 1.0 : 0.0; }
  double Sample(common::Rng* /*rng*/) const override { return x_; }
  const char* TypeName() const override { return "dirac"; }

 private:
  double x_;
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_DIRAC_PDF_H_
