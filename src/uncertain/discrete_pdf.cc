#include "uncertain/discrete_pdf.h"

#include <algorithm>
#include <cassert>

namespace uclust::uncertain {

DiscretePdf::DiscretePdf(std::vector<double> values,
                         std::vector<double> weights)
    : values_(std::move(values)), weights_(std::move(weights)) {
  assert(!values_.empty());
  assert(values_.size() == weights_.size());
  double total = 0.0;
  for (double w : weights_) {
    assert(w > 0.0);
    total += w;
  }
  for (double& w : weights_) w /= total;
  ComputeDerived();
}

DiscretePdf::DiscretePdf(NormalizedTag, std::vector<double> values,
                         std::vector<double> weights)
    : values_(std::move(values)), weights_(std::move(weights)) {
  assert(!values_.empty());
  assert(values_.size() == weights_.size());
  ComputeDerived();
}

void DiscretePdf::ComputeDerived() {
  cum_.reserve(weights_.size());
  double acc = 0.0;
  lo_ = values_[0];
  hi_ = values_[0];
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    assert(weights_[i] > 0.0);
    acc += weights_[i];
    cum_.push_back(acc);
    mean_ += weights_[i] * values_[i];
    m2_ += weights_[i] * values_[i] * values_[i];
    lo_ = std::min(lo_, values_[i]);
    hi_ = std::max(hi_, values_[i]);
  }
  cum_.back() = 1.0;  // guard against rounding drift
}

PdfPtr DiscretePdf::Uniformly(std::vector<double> values) {
  std::vector<double> w(values.size(), 1.0);
  return std::make_shared<DiscretePdf>(std::move(values), std::move(w));
}

PdfPtr DiscretePdf::FromNormalized(std::vector<double> values,
                                   std::vector<double> weights) {
  return std::shared_ptr<DiscretePdf>(
      new DiscretePdf(NormalizedTag{}, std::move(values), std::move(weights)));
}

double DiscretePdf::Density(double x) const {
  double mass = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == x) mass += weights_[i];
  }
  return mass;
}

double DiscretePdf::Cdf(double x) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] <= x) acc += weights_[i];
  }
  return acc;
}

double DiscretePdf::Sample(common::Rng* rng) const {
  const double u = rng->Uniform();
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  const std::size_t idx =
      std::min(static_cast<std::size_t>(it - cum_.begin()),
               values_.size() - 1);
  return values_[idx];
}

}  // namespace uclust::uncertain
