// Discrete (weighted point-mass) pdf.
//
// Useful for (a) representing empirically sampled uncertainty (the
// sample-based representation used by the early uncertain-clustering papers)
// and (b) constructing exact test fixtures whose moments are trivial to
// compute by hand.
#ifndef UCLUST_UNCERTAIN_DISCRETE_PDF_H_
#define UCLUST_UNCERTAIN_DISCRETE_PDF_H_

#include <vector>

#include "uncertain/pdf.h"

namespace uclust::uncertain {

/// Finite mixture of point masses: values v_i with weights w_i (w_i > 0,
/// normalized internally to sum to 1).
class DiscretePdf final : public Pdf {
 public:
  /// Creates a discrete pdf; `values` and `weights` must be non-empty and of
  /// equal length, with positive weights.
  DiscretePdf(std::vector<double> values, std::vector<double> weights);

  /// Uniformly weighted point masses.
  static PdfPtr Uniformly(std::vector<double> values);

  /// Reconstructs a pdf from weights that are already normalized (as
  /// returned by weights()). Skips the renormalizing division so that a
  /// serialize/deserialize round trip reproduces the original moments
  /// bit-for-bit; used by the binary dataset format.
  static PdfPtr FromNormalized(std::vector<double> values,
                               std::vector<double> weights);

  /// The support points.
  const std::vector<double>& values() const { return values_; }
  /// The normalized weights.
  const std::vector<double>& weights() const { return weights_; }

  double mean() const override { return mean_; }
  double second_moment() const override { return m2_; }
  double lower() const override { return lo_; }
  double upper() const override { return hi_; }
  /// Returns the *probability mass* at x (not a density); 0 off-support.
  double Density(double x) const override;
  double Cdf(double x) const override;
  double Sample(common::Rng* rng) const override;
  const char* TypeName() const override { return "discrete"; }

 private:
  struct NormalizedTag {};
  DiscretePdf(NormalizedTag, std::vector<double> values,
              std::vector<double> weights);
  void ComputeDerived();

  std::vector<double> values_;
  std::vector<double> weights_;  // normalized
  std::vector<double> cum_;      // cumulative weights for sampling
  double mean_ = 0.0;
  double m2_ = 0.0;
  double lo_ = 0.0;
  double hi_ = 0.0;
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_DISCRETE_PDF_H_
