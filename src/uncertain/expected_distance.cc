#include "uncertain/expected_distance.h"

#include <cassert>

#include "clustering/simd/simd.h"
#include "common/math_utils.h"

namespace uclust::uncertain {

double ExpectedSquaredDistanceToPoint(const UncertainObject& o,
                                      std::span<const double> y) {
  assert(y.size() == o.dims());
  return o.total_variance() + common::SquaredDistance(o.mean(), y);
}

double ExpectedSquaredDistance(const UncertainObject& a,
                               const UncertainObject& b) {
  assert(a.dims() == b.dims());
  // Dispatched closed-form ED^ kernel; the (sqdist + tv_a) + tv_b fold
  // order inside matches this function's historical expression.
  return clustering::simd::Ed2(a.mean().data(), b.mean().data(), a.dims(),
                               a.total_variance(), b.total_variance());
}

double SampledExpectedSquaredDistanceToPoint(const UncertainObject& o,
                                             std::span<const double> y,
                                             common::Rng* rng, int samples) {
  assert(samples > 0);
  std::vector<double> x(o.dims());
  double acc = 0.0;
  for (int s = 0; s < samples; ++s) {
    o.SampleInto(rng, x);
    acc += common::SquaredDistance(x, y);
  }
  return acc / samples;
}

double SampledExpectedSquaredDistance(const UncertainObject& a,
                                      const UncertainObject& b,
                                      common::Rng* rng, int samples) {
  assert(samples > 0);
  assert(a.dims() == b.dims());
  std::vector<double> x(a.dims());
  std::vector<double> y(b.dims());
  double acc = 0.0;
  for (int s = 0; s < samples; ++s) {
    a.SampleInto(rng, x);
    b.SampleInto(rng, y);
    acc += common::SquaredDistance(x, y);
  }
  return acc / samples;
}

}  // namespace uclust::uncertain
