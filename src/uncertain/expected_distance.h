// Closed-form expected squared Euclidean distances between uncertain objects
// and points/objects — the workhorse formulas of the paper:
//
//   ED(o, y)    = sigma^2(o) + ||mu(o) - y||^2            (Eq. 8)
//   ED^(o, o')  = sum_j [mu2_j(o) - 2 mu_j(o) mu_j(o') + mu2_j(o')]
//               = ||mu(o) - mu(o')||^2 + sigma^2(o) + sigma^2(o')  (Lemma 3)
#ifndef UCLUST_UNCERTAIN_EXPECTED_DISTANCE_H_
#define UCLUST_UNCERTAIN_EXPECTED_DISTANCE_H_

#include <span>

#include "uncertain/uncertain_object.h"

namespace uclust::uncertain {

/// Expected squared distance between an uncertain object and a deterministic
/// point (Eq. 8): ED(o, y) = ED(o, mu(o)) + ||y - mu(o)||^2, where
/// ED(o, mu(o)) = sigma^2(o). O(m).
double ExpectedSquaredDistanceToPoint(const UncertainObject& o,
                                      std::span<const double> y);

/// Expected squared distance between two uncertain objects (Lemma 3). O(m).
double ExpectedSquaredDistance(const UncertainObject& a,
                               const UncertainObject& b);

/// Monte-Carlo estimate of E[ d2(o, y) ] using `samples` fresh realizations;
/// exercised by tests to validate the closed forms and by the basic UK-means
/// to reproduce the original sample-based cost profile.
double SampledExpectedSquaredDistanceToPoint(const UncertainObject& o,
                                             std::span<const double> y,
                                             common::Rng* rng, int samples);

/// Monte-Carlo estimate of E[ d2(o, o') ] with matched independent draws.
double SampledExpectedSquaredDistance(const UncertainObject& a,
                                      const UncertainObject& b,
                                      common::Rng* rng, int samples);

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_EXPECTED_DISTANCE_H_
