#include "uncertain/exponential_pdf.h"

#include <cassert>
#include <cmath>

#include "common/math_utils.h"

namespace uclust::uncertain {

namespace {

// Unit-rate (lambda = 1) truncated-Exponential constants on [0, q95]:
//   u   = exp(-q95) = 0.05 (mass beyond the region)
//   m1  = E[Y]   = 1 - q95 * u / (1 - u)
//   m2  = E[Y^2] = (2 - u * (q95^2 + 2 q95 + 2)) / (1 - u)
// For rate lambda these scale as m1/lambda and m2/lambda^2.
constexpr double kQ95 = common::kExp95;
const double kTailMass = std::exp(-kQ95);  // == 0.05 by construction
const double kUnitM1 = 1.0 - kQ95 * kTailMass / (1.0 - kTailMass);
const double kUnitM2 =
    (2.0 - kTailMass * (kQ95 * kQ95 + 2.0 * kQ95 + 2.0)) / (1.0 - kTailMass);

}  // namespace

TruncatedExponentialPdf::TruncatedExponentialPdf(double w, double rate)
    : w_(w), rate_(rate) {
  assert(rate > 0.0 && "TruncatedExponentialPdf requires rate > 0");
  span_ = kQ95 / rate_;
  shift_ = w_ - kUnitM1 / rate_;
  var_ = (kUnitM2 - kUnitM1 * kUnitM1) / (rate_ * rate_);
}

PdfPtr TruncatedExponentialPdf::Make(double w, double rate) {
  return std::make_shared<TruncatedExponentialPdf>(w, rate);
}

double TruncatedExponentialPdf::second_moment() const {
  return var_ + w_ * w_;
}

double TruncatedExponentialPdf::Density(double x) const {
  if (x < lower() || x > upper()) return 0.0;
  const double y = x - shift_;
  return rate_ * std::exp(-rate_ * y) / (1.0 - kTailMass);
}

double TruncatedExponentialPdf::Cdf(double x) const {
  if (x <= lower()) return 0.0;
  if (x >= upper()) return 1.0;
  const double y = x - shift_;
  return (1.0 - std::exp(-rate_ * y)) / (1.0 - kTailMass);
}

double TruncatedExponentialPdf::Sample(common::Rng* rng) const {
  // Inverse CDF restricted to the truncated support.
  const double u = rng->Uniform();
  const double y = -std::log(1.0 - u * (1.0 - kTailMass)) / rate_;
  return shift_ + y;
}

}  // namespace uclust::uncertain
