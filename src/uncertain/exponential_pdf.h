// Shifted Exponential pdf truncated to its 95% region.
//
// The paper requires each generated pdf to have its expected value exactly at
// the original deterministic point w. We use a shifted Exponential with rate
// lambda starting at s, truncated to [s, s + q95/lambda] where
// q95 = -ln(0.05), and choose s so that the *truncated* mean is exactly w.
#ifndef UCLUST_UNCERTAIN_EXPONENTIAL_PDF_H_
#define UCLUST_UNCERTAIN_EXPONENTIAL_PDF_H_

#include "uncertain/pdf.h"

namespace uclust::uncertain {

/// Exponential(rate) shifted to start at s and truncated to its 95% region,
/// parameterized by the desired (truncated) mean `w`.
class TruncatedExponentialPdf final : public Pdf {
 public:
  /// Creates a truncated shifted Exponential with truncated mean exactly `w`
  /// and rate `rate` (> 0); larger rates concentrate the mass.
  TruncatedExponentialPdf(double w, double rate);

  /// Convenience factory.
  static PdfPtr Make(double w, double rate);

  /// The rate parameter lambda.
  double rate() const { return rate_; }
  /// The shift s (start of the support).
  double shift() const { return shift_; }

  double mean() const override { return w_; }
  double second_moment() const override;
  double lower() const override { return shift_; }
  double upper() const override { return shift_ + span_; }
  double Density(double x) const override;
  double Cdf(double x) const override;
  double Sample(common::Rng* rng) const override;
  const char* TypeName() const override { return "exponential"; }

 private:
  double w_;       // truncated mean (== the original deterministic value)
  double rate_;    // lambda
  double shift_;   // s = w - m1/lambda
  double span_;    // q95 / lambda
  double var_;     // truncated variance
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_EXPONENTIAL_PDF_H_
