#include "uncertain/moment_store.h"

namespace uclust::uncertain {

MomentStore::~MomentStore() = default;

MomentSink::~MomentSink() = default;

std::string MomentBackendName(MomentBackend backend) {
  switch (backend) {
    case MomentBackend::kResident:
      return "resident";
    case MomentBackend::kMapped:
      return "mapped";
  }
  return "unknown";
}

const std::string& MomentStore::sidecar_path() const {
  static const std::string* empty = new std::string();
  return *empty;
}

}  // namespace uclust::uncertain
