// The MomentStore abstraction: ownership backends behind the MomentView
// span interface.
//
// After streaming ingestion (PR 3) and memory-budgeted pairwise tables
// (PR 2), the O(n m) moment columns were the last all-in-RAM artifact of the
// clustering stack. A MomentStore decouples how the moment statistics are
// OWNED from how kernels READ them (always through MomentView):
//
//   kResident — today's flat std::vector columns (a MomentMatrix); the
//               default, zero-copy spans, no per-access indirection;
//   kMapped   — moment columns persisted to a versioned, endianness-checked
//               .umom sidecar file and served chunk-by-chunk through mmap
//               windows (io::MappedMomentStore), so datasets whose moment
//               columns exceed RAM — or the configured
//               EngineConfig::memory_budget_bytes — still cluster.
//
// Invariant: both backends serve bit-identical doubles (the bytes come from
// the same canonical MomentMatrix::PackRow packing), so every clustering
// built on a store is identical across backends, thread counts, and batch
// sizes — only memory and I/O cost change (tests/test_moment_store.cc).
//
// Layering: this header owns the interface and the Resident backend; the
// Mapped backend and the backend-selecting factory live in src/io
// (moment_file.h / ingest.h) because they need the file format and mmap.
#ifndef UCLUST_UNCERTAIN_MOMENT_STORE_H_
#define UCLUST_UNCERTAIN_MOMENT_STORE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "uncertain/moments.h"

namespace uclust::uncertain {

/// Storage policy of a MomentStore.
enum class MomentBackend { kResident, kMapped };

/// Lower-case display name ("resident", "mapped").
std::string MomentBackendName(MomentBackend backend);

/// One dataset's moment statistics behind an ownership backend.
class MomentStore {
 public:
  virtual ~MomentStore();

  /// The storage policy in effect.
  virtual MomentBackend backend() const = 0;
  /// Span-returning view every kernel consumes. Cheap; valid while the store
  /// is alive.
  virtual MomentView view() const = 0;
  /// Bytes of moment storage pinned in process memory: the full columns for
  /// the Resident backend, the peak bytes of simultaneously mapped chunk
  /// windows for the Mapped backend.
  virtual std::size_t moment_bytes_resident() const = 0;
  /// Path of the .umom sidecar backing the store ("" for Resident).
  virtual const std::string& sidecar_path() const;

  /// Number of objects n.
  std::size_t size() const { return view().size(); }
  /// Dimensionality m.
  std::size_t dims() const { return view().dims(); }
};

using MomentStorePtr = std::unique_ptr<MomentStore>;

/// The Resident backend: owns a flat MomentMatrix.
class ResidentMomentStore final : public MomentStore {
 public:
  explicit ResidentMomentStore(MomentMatrix matrix)
      : matrix_(std::move(matrix)) {}

  MomentBackend backend() const override { return MomentBackend::kResident; }
  MomentView view() const override { return matrix_.view(); }
  std::size_t moment_bytes_resident() const override {
    return (3 * matrix_.size() * matrix_.dims() + matrix_.size()) *
           sizeof(double);
  }

  /// The underlying flat matrix.
  const MomentMatrix& matrix() const { return matrix_; }

 private:
  MomentMatrix matrix_;
};

/// Row-stream consumer of canonically packed moment rows — the uncertain
/// layer's handle on the .umom sidecar writer (io::MomentFileWriter), which
/// lets DatasetBuilder spill moments straight to the Mapped backend without
/// ever materializing the full columns.
class MomentSink {
 public:
  virtual ~MomentSink();

  /// Appends `count` rows packed by MomentMatrix::PackRow: mean/mu2/var are
  /// row-major count x m, total_var has length count. `m` must be identical
  /// across calls.
  virtual common::Status AppendRows(std::size_t count, std::size_t m,
                                    const double* mean, const double* mu2,
                                    const double* var,
                                    const double* total_var) = 0;
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_MOMENT_STORE_H_
