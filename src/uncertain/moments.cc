#include "uncertain/moments.h"

#include <algorithm>
#include <cassert>

#include "clustering/simd/simd.h"

namespace uclust::uncertain {

MomentChunkSource::~MomentChunkSource() = default;

MomentMatrix::MomentMatrix(std::size_t n, std::size_t m) : m_(m) {
  mean_.reserve(n * m);
  mu2_.reserve(n * m);
  var_.reserve(n * m);
  total_var_.reserve(n);
}

MomentMatrix MomentMatrix::FromObjects(
    std::span<const UncertainObject> objects) {
  MomentMatrix mm(objects.size(), objects.empty() ? 0 : objects[0].dims());
  for (const UncertainObject& o : objects) {
    mm.AppendRow(o.mean(), o.second_moment(), o.variance());
  }
  return mm;
}

MomentMatrix MomentMatrix::FromColumns(std::size_t n, std::size_t m,
                                       std::vector<double> mean,
                                       std::vector<double> mu2,
                                       std::vector<double> var,
                                       std::vector<double> total_var) {
  assert(mean.size() == n * m && mu2.size() == n * m && var.size() == n * m);
  assert(total_var.size() == n);
  MomentMatrix mm;
  mm.n_ = n;
  mm.m_ = m;
  mm.mean_ = std::move(mean);
  mm.mu2_ = std::move(mu2);
  mm.var_ = std::move(var);
  mm.total_var_ = std::move(total_var);
  return mm;
}

void MomentMatrix::PackRow(std::span<const double> mean,
                           std::span<const double> mu2,
                           std::span<const double> var, double* mean_dst,
                           double* mu2_dst, double* var_dst,
                           double* total_var_dst) {
  const std::size_t m = mean.size();
  assert(mu2.size() == m && var.size() == m);
  // Dispatched packing kernel: copies the three columns and writes
  // total_var as the lane-blocked sum of var — the same summation order
  // UncertainObject uses, keeping object-based and moment-based total
  // variance bit-coherent.
  clustering::simd::PackRow(mean.data(), mu2.data(), var.data(), m, mean_dst,
                            mu2_dst, var_dst, total_var_dst);
}

void MomentMatrix::AppendRow(std::span<const double> mean,
                             std::span<const double> mu2,
                             std::span<const double> var) {
  if (n_ == 0 && m_ == 0) m_ = mean.size();
  assert(mean.size() == m_ && mu2.size() == m_ && var.size() == m_);
  const std::size_t row = n_ * m_;
  mean_.resize(row + m_);
  mu2_.resize(row + m_);
  var_.resize(row + m_);
  total_var_.resize(n_ + 1);
  PackRow(mean, mu2, var, mean_.data() + row, mu2_.data() + row,
          var_.data() + row, total_var_.data() + n_);
  ++n_;
}

}  // namespace uclust::uncertain
