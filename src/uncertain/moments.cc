#include "uncertain/moments.h"

#include <cassert>

namespace uclust::uncertain {

MomentMatrix::MomentMatrix(std::size_t n, std::size_t m) : m_(m) {
  mean_.reserve(n * m);
  mu2_.reserve(n * m);
  var_.reserve(n * m);
  total_var_.reserve(n);
}

MomentMatrix MomentMatrix::FromObjects(
    std::span<const UncertainObject> objects) {
  MomentMatrix mm(objects.size(), objects.empty() ? 0 : objects[0].dims());
  for (const UncertainObject& o : objects) {
    mm.AppendRow(o.mean(), o.second_moment(), o.variance());
  }
  return mm;
}

MomentMatrix MomentMatrix::FromColumns(std::size_t n, std::size_t m,
                                       std::vector<double> mean,
                                       std::vector<double> mu2,
                                       std::vector<double> var,
                                       std::vector<double> total_var) {
  assert(mean.size() == n * m && mu2.size() == n * m && var.size() == n * m);
  assert(total_var.size() == n);
  MomentMatrix mm;
  mm.n_ = n;
  mm.m_ = m;
  mm.mean_ = std::move(mean);
  mm.mu2_ = std::move(mu2);
  mm.var_ = std::move(var);
  mm.total_var_ = std::move(total_var);
  return mm;
}

void MomentMatrix::AppendRow(std::span<const double> mean,
                             std::span<const double> mu2,
                             std::span<const double> var) {
  if (n_ == 0 && m_ == 0) m_ = mean.size();
  assert(mean.size() == m_ && mu2.size() == m_ && var.size() == m_);
  mean_.insert(mean_.end(), mean.begin(), mean.end());
  mu2_.insert(mu2_.end(), mu2.begin(), mu2.end());
  var_.insert(var_.end(), var.begin(), var.end());
  double tv = 0.0;
  for (double v : var) tv += v;
  total_var_.push_back(tv);
  ++n_;
}

}  // namespace uclust::uncertain
