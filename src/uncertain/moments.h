// Packed per-object moment statistics.
//
// Every "fast" algorithm in the paper (UK-means, MMVar, UCPC) consumes only
// the per-dimension expected values, second-order moments, and variances of
// the objects (Theorem 3 / Lemma 3 / Eq. 8). MomentMatrix stores exactly
// those sufficient statistics in flat cache-friendly arrays so that kernels
// can run on millions of objects without materializing pdf objects.
#ifndef UCLUST_UNCERTAIN_MOMENTS_H_
#define UCLUST_UNCERTAIN_MOMENTS_H_

#include <span>
#include <vector>

#include "uncertain/uncertain_object.h"

namespace uclust::uncertain {

/// Row-major (n x m) matrices of mean, second moment, and variance, plus the
/// per-object scalar total variance.
class MomentMatrix {
 public:
  MomentMatrix() = default;

  /// Creates an empty matrix with reserved capacity.
  MomentMatrix(std::size_t n, std::size_t m);

  /// Packs the moments of existing uncertain objects.
  static MomentMatrix FromObjects(std::span<const UncertainObject> objects);

  /// Adopts pre-packed flat columns (row-major n x m; total_var of length n).
  /// Used by DatasetBuilder, which fills the columns batch-by-batch.
  static MomentMatrix FromColumns(std::size_t n, std::size_t m,
                                  std::vector<double> mean,
                                  std::vector<double> mu2,
                                  std::vector<double> var,
                                  std::vector<double> total_var);

  /// Appends one object row given its mean/second-moment/variance vectors.
  void AppendRow(std::span<const double> mean, std::span<const double> mu2,
                 std::span<const double> var);

  /// Number of objects n.
  std::size_t size() const { return n_; }
  /// Dimensionality m.
  std::size_t dims() const { return m_; }

  /// mu(o_i) as a length-m span.
  std::span<const double> mean(std::size_t i) const {
    return {mean_.data() + i * m_, m_};
  }
  /// mu2(o_i) as a length-m span.
  std::span<const double> second_moment(std::size_t i) const {
    return {mu2_.data() + i * m_, m_};
  }
  /// sigma^2(o_i) per-dimension, as a length-m span.
  std::span<const double> variance(std::size_t i) const {
    return {var_.data() + i * m_, m_};
  }
  /// Scalar total variance sigma^2(o_i) (Eq. 6).
  double total_variance(std::size_t i) const { return total_var_[i]; }

 private:
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::vector<double> mean_;
  std::vector<double> mu2_;
  std::vector<double> var_;
  std::vector<double> total_var_;
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_MOMENTS_H_
