// Packed per-object moment statistics and the view interface every
// moment-consuming kernel is written against.
//
// Every "fast" algorithm in the paper (UK-means, MMVar, UCPC) consumes only
// the per-dimension expected values, second-order moments, and variances of
// the objects (Theorem 3 / Lemma 3 / Eq. 8). Those sufficient statistics are
// served through MomentView, a non-owning span-returning accessor with two
// storage shapes behind one hot-loop-friendly API:
//
//   * flat    — four contiguous columns (the Resident MomentStore backend and
//               the classic MomentMatrix); accessors are branch-predictable
//               pointer arithmetic, identical to the historical layout;
//   * chunked — rows grouped into fixed-size chunks (a power of two) served
//               by a MomentChunkSource, which is how the Mapped (out-of-core
//               .umom) backend pages moment columns in and out on demand.
//
// Span-validity contract (chunked views only): a span returned by a chunked
// view stays valid on the calling thread until that thread accesses rows
// from several (>= 8) OTHER chunks. Consumers must therefore not cache row
// spans across object iterations — every kernel in src/clustering and
// src/eval holds at most two distinct rows at once, which is well within the
// window every chunk source keeps mapped. Flat views have no such limit.
#ifndef UCLUST_UNCERTAIN_MOMENTS_H_
#define UCLUST_UNCERTAIN_MOMENTS_H_

#include <cassert>
#include <span>
#include <vector>

#include "uncertain/uncertain_object.h"

namespace uclust::uncertain {

/// Column base pointers of one chunk of moment rows (each column row-major
/// rows_in_chunk x m; total_var of length rows_in_chunk).
struct MomentChunkPtrs {
  const double* mean = nullptr;
  const double* mu2 = nullptr;
  const double* var = nullptr;
  const double* total_var = nullptr;
};

/// Provider of chunk data for chunked MomentViews. Implementations may fault
/// chunks in lazily (the mmap-backed store does); ChunkData must be safe to
/// call concurrently from different threads and the returned pointers must
/// honor the span-validity contract documented at the top of this file.
class MomentChunkSource {
 public:
  virtual ~MomentChunkSource();

  /// Base pointers of chunk `chunk` (0-based). May block on I/O.
  virtual MomentChunkPtrs ChunkData(std::size_t chunk) const = 0;
};

/// Non-owning view over n x m moment statistics. Cheap to copy; the backing
/// storage (MomentMatrix, MomentStore, chunk source) must outlive it.
class MomentView {
 public:
  MomentView() = default;

  /// Flat view over four contiguous columns (row-major n x m; total_var of
  /// length n).
  MomentView(std::size_t n, std::size_t m, const double* mean,
             const double* mu2, const double* var, const double* total_var)
      : n_(n), m_(m), flat_{mean, mu2, var, total_var} {}

  /// Chunked view: rows [c*chunk_rows, min(n, (c+1)*chunk_rows)) live in
  /// chunk c of `source`. `chunk_rows` must be a power of two.
  MomentView(std::size_t n, std::size_t m, std::size_t chunk_rows,
             const MomentChunkSource* source)
      : n_(n), m_(m), mask_(chunk_rows - 1), source_(source) {
    assert(chunk_rows > 0 && (chunk_rows & (chunk_rows - 1)) == 0);
    while ((std::size_t{1} << shift_) < chunk_rows) ++shift_;
  }

  /// Number of objects n.
  std::size_t size() const { return n_; }
  /// Dimensionality m.
  std::size_t dims() const { return m_; }
  /// True when rows are served chunk-by-chunk (the out-of-core shape).
  bool chunked() const { return source_ != nullptr; }
  /// Rows per chunk (meaningful only when chunked()).
  std::size_t chunk_rows() const { return mask_ + 1; }

  /// mu(o_i) as a length-m span.
  std::span<const double> mean(std::size_t i) const {
    if (source_ == nullptr) return {flat_.mean + i * m_, m_};
    return {source_->ChunkData(i >> shift_).mean + (i & mask_) * m_, m_};
  }
  /// mu2(o_i) as a length-m span.
  std::span<const double> second_moment(std::size_t i) const {
    if (source_ == nullptr) return {flat_.mu2 + i * m_, m_};
    return {source_->ChunkData(i >> shift_).mu2 + (i & mask_) * m_, m_};
  }
  /// sigma^2(o_i) per-dimension, as a length-m span.
  std::span<const double> variance(std::size_t i) const {
    if (source_ == nullptr) return {flat_.var + i * m_, m_};
    return {source_->ChunkData(i >> shift_).var + (i & mask_) * m_, m_};
  }
  /// Scalar total variance sigma^2(o_i) (Eq. 6).
  double total_variance(std::size_t i) const {
    if (source_ == nullptr) return flat_.total_var[i];
    return source_->ChunkData(i >> shift_).total_var[i & mask_];
  }

 private:
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  unsigned shift_ = 0;
  std::size_t mask_ = 0;
  MomentChunkPtrs flat_{};
  const MomentChunkSource* source_ = nullptr;
};

/// Row-major (n x m) matrices of mean, second moment, and variance, plus the
/// per-object scalar total variance — the flat in-memory packing behind the
/// Resident MomentStore backend and every synthetic moment producer.
class MomentMatrix {
 public:
  MomentMatrix() = default;

  /// Creates an empty matrix with reserved capacity.
  MomentMatrix(std::size_t n, std::size_t m);

  /// Packs the moments of existing uncertain objects.
  static MomentMatrix FromObjects(std::span<const UncertainObject> objects);

  /// Adopts pre-packed flat columns (row-major n x m; total_var of length n).
  /// Used by DatasetBuilder, which fills the columns batch-by-batch.
  static MomentMatrix FromColumns(std::size_t n, std::size_t m,
                                  std::vector<double> mean,
                                  std::vector<double> mu2,
                                  std::vector<double> var,
                                  std::vector<double> total_var);

  /// The canonical row packing every ingestion path runs through (AppendRow,
  /// DatasetBuilder's resident and spill modes, the .umom sidecar writer):
  /// copies the three length-m vectors to their destinations and writes the
  /// total-variance sum accumulated in dimension order. Centralizing it here
  /// means the packed layout and the floating-point summation order can
  /// never diverge between in-memory and streamed ingestion.
  static void PackRow(std::span<const double> mean,
                      std::span<const double> mu2, std::span<const double> var,
                      double* mean_dst, double* mu2_dst, double* var_dst,
                      double* total_var_dst);

  /// Appends one object row given its mean/second-moment/variance vectors.
  void AppendRow(std::span<const double> mean, std::span<const double> mu2,
                 std::span<const double> var);

  /// Number of objects n.
  std::size_t size() const { return n_; }
  /// Dimensionality m.
  std::size_t dims() const { return m_; }

  /// Flat view over the packed columns (valid while the matrix is alive and
  /// not reallocated by further AppendRow calls).
  MomentView view() const {
    return MomentView(n_, m_, mean_.data(), mu2_.data(), var_.data(),
                      total_var_.data());
  }
  /// Implicit conversion so every span-view consumer accepts a MomentMatrix
  /// directly (the matrix is just the flat storage behind the view API).
  operator MomentView() const { return view(); }  // NOLINT(runtime/explicit)

  /// mu(o_i) as a length-m span.
  std::span<const double> mean(std::size_t i) const {
    return {mean_.data() + i * m_, m_};
  }
  /// mu2(o_i) as a length-m span.
  std::span<const double> second_moment(std::size_t i) const {
    return {mu2_.data() + i * m_, m_};
  }
  /// sigma^2(o_i) per-dimension, as a length-m span.
  std::span<const double> variance(std::size_t i) const {
    return {var_.data() + i * m_, m_};
  }
  /// Scalar total variance sigma^2(o_i) (Eq. 6).
  double total_variance(std::size_t i) const { return total_var_[i]; }

 private:
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::vector<double> mean_;
  std::vector<double> mu2_;
  std::vector<double> var_;
  std::vector<double> total_var_;
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_MOMENTS_H_
