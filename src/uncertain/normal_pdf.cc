#include "uncertain/normal_pdf.h"

#include <cassert>
#include <cmath>

#include "common/math_utils.h"

namespace uclust::uncertain {

namespace {

// Inverse of the standard Normal CDF via Newton iteration seeded with the
// Beasley-Springer-Moro style logistic approximation; only used once per pdf
// construction so simplicity beats speed.
double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Crude initial guess.
  double z = 0.0;
  for (int i = 0; i < 60; ++i) {
    const double f = common::NormalCdf(z) - p;
    const double d = common::NormalPdf(z);
    if (d < 1e-300) break;
    const double step = f / d;
    z -= step;
    if (std::fabs(step) < 1e-14) break;
  }
  return z;
}

}  // namespace

namespace {

// Central region [-c, c] with untruncated mass `coverage`:
// Phi(c) = (1 + coverage) / 2. The default coverage has a precomputed
// constant because dataset generators construct millions of these.
double CoverageToHalfWidth(double coverage) {
  assert(coverage > 0.0 && coverage < 1.0);
  return coverage == 0.95 ? common::kNormal95
                          : NormalQuantile(0.5 * (1.0 + coverage));
}

}  // namespace

TruncatedNormalPdf::TruncatedNormalPdf(double mu, double sigma,
                                       double coverage)
    : TruncatedNormalPdf(HalfWidthTag{}, mu, sigma,
                         CoverageToHalfWidth(coverage)) {}

// The single derivation of mass_/variance_: a pdf rebuilt from
// half_width_sigmas() (the binary format's stored parameter) carries
// bit-identical moments because it runs these exact expressions.
TruncatedNormalPdf::TruncatedNormalPdf(HalfWidthTag, double mu, double sigma,
                                       double half_width)
    : mu_(mu), sigma_(sigma), c_(half_width) {
  assert(sigma > 0.0 && "TruncatedNormalPdf requires sigma > 0");
  assert(half_width > 0.0);
  mass_ = 2.0 * common::NormalCdf(c_) - 1.0;
  // Symmetric truncation: Var = sigma^2 * (1 - 2 c phi(c) / mass).
  variance_ =
      sigma_ * sigma_ * (1.0 - 2.0 * c_ * common::NormalPdf(c_) / mass_);
}

PdfPtr TruncatedNormalPdf::Make(double mu, double sigma) {
  return std::make_shared<TruncatedNormalPdf>(mu, sigma);
}

PdfPtr TruncatedNormalPdf::FromHalfWidth(double mu, double sigma,
                                         double half_width) {
  return std::shared_ptr<TruncatedNormalPdf>(
      new TruncatedNormalPdf(HalfWidthTag{}, mu, sigma, half_width));
}

double TruncatedNormalPdf::second_moment() const {
  return variance_ + mu_ * mu_;
}

double TruncatedNormalPdf::Density(double x) const {
  if (x < lower() || x > upper()) return 0.0;
  const double z = (x - mu_) / sigma_;
  return common::NormalPdf(z) / (sigma_ * mass_);
}

double TruncatedNormalPdf::Cdf(double x) const {
  if (x <= lower()) return 0.0;
  if (x >= upper()) return 1.0;
  const double z = (x - mu_) / sigma_;
  return (common::NormalCdf(z) - common::NormalCdf(-c_)) / mass_;
}

double TruncatedNormalPdf::Sample(common::Rng* rng) const {
  // Rejection from the untruncated Normal; acceptance = coverage (>= 95%).
  for (;;) {
    const double x = rng->Normal(mu_, sigma_);
    if (x >= lower() && x <= upper()) return x;
  }
}

}  // namespace uclust::uncertain
