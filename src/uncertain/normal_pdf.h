// Normal pdf truncated to a central region holding `coverage` of the mass.
//
// The paper's uncertainty protocol (Section 5.1) assigns each point a Normal
// pdf whose expected value is the point and defines the object's domain
// region as the interval containing ~95% of the pdf area. Definition 1
// requires f > 0 exactly on the region, so we truncate and renormalize; the
// symmetric truncation keeps the mean unchanged and shrinks the variance by a
// known closed-form factor.
#ifndef UCLUST_UNCERTAIN_NORMAL_PDF_H_
#define UCLUST_UNCERTAIN_NORMAL_PDF_H_

#include "uncertain/pdf.h"

namespace uclust::uncertain {

/// Normal(mu, sigma) truncated to [mu - c*sigma, mu + c*sigma].
class TruncatedNormalPdf final : public Pdf {
 public:
  /// Creates a truncated Normal; `coverage` in (0, 1) selects c such that the
  /// untruncated mass of the region is `coverage` (default 0.95).
  TruncatedNormalPdf(double mu, double sigma, double coverage = 0.95);

  /// Convenience factory with the default 95% region.
  static PdfPtr Make(double mu, double sigma);

  /// Reconstructs a pdf from (mu, sigma, half_width_sigmas()) — the exact
  /// parameterization the binary dataset format stores. Bypasses the
  /// coverage -> c quantile inversion so that a serialize/deserialize round
  /// trip reproduces the original moments bit-for-bit.
  static PdfPtr FromHalfWidth(double mu, double sigma, double half_width);

  /// Untruncated location parameter (== mean(), by symmetry).
  double mu() const { return mu_; }
  /// Untruncated scale parameter.
  double sigma() const { return sigma_; }
  /// Truncation half-width c in sigma units (region = mu +- c*sigma).
  double half_width_sigmas() const { return c_; }

  double mean() const override { return mu_; }
  double second_moment() const override;
  double lower() const override { return mu_ - c_ * sigma_; }
  double upper() const override { return mu_ + c_ * sigma_; }
  double Density(double x) const override;
  double Cdf(double x) const override;
  double Sample(common::Rng* rng) const override;
  const char* TypeName() const override { return "normal"; }

 private:
  struct HalfWidthTag {};
  TruncatedNormalPdf(HalfWidthTag, double mu, double sigma, double half_width);

  double mu_;
  double sigma_;
  double c_;          // half-width in sigma units
  double mass_;       // untruncated mass of the region: 2*Phi(c) - 1
  double variance_;   // truncated variance (closed form)
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_NORMAL_PDF_H_
