#include "uncertain/pdf.h"

namespace uclust::uncertain {

Pdf::~Pdf() = default;

double Pdf::variance() const {
  const double m = mean();
  const double v = second_moment() - m * m;
  // Guard tiny negative values from floating-point cancellation.
  return v > 0.0 ? v : 0.0;
}

}  // namespace uclust::uncertain
