// Univariate probability density building block of the uncertainty model.
//
// A multivariate uncertain object (Definition 1 of the paper) is represented
// as a product of per-dimension pdfs over an axis-aligned box region; all
// formulas the paper relies on (Eqs. 2-6, Lemma 3, Theorem 3) consume only
// per-dimension first and second moments, which every Pdf exposes in closed
// form.
#ifndef UCLUST_UNCERTAIN_PDF_H_
#define UCLUST_UNCERTAIN_PDF_H_

#include <memory>
#include <string>

#include "common/rng.h"

namespace uclust::uncertain {

/// Abstract univariate pdf with bounded support and analytic moments.
///
/// Implementations are immutable after construction and safe to share across
/// threads and objects.
class Pdf {
 public:
  virtual ~Pdf();

  /// Expected value E[X].
  virtual double mean() const = 0;
  /// Second raw moment E[X^2].
  virtual double second_moment() const = 0;
  /// Variance E[X^2] - E[X]^2 (non-negative by construction).
  double variance() const;

  /// Lower end of the domain region (support of the truncated pdf).
  virtual double lower() const = 0;
  /// Upper end of the domain region.
  virtual double upper() const = 0;

  /// Density at x; zero outside [lower(), upper()].
  virtual double Density(double x) const = 0;
  /// Cumulative distribution function at x.
  virtual double Cdf(double x) const = 0;
  /// Draws one realization (always inside [lower(), upper()]).
  virtual double Sample(common::Rng* rng) const = 0;

  /// Short type tag ("uniform", "normal", ...), used in diagnostics.
  virtual const char* TypeName() const = 0;
};

/// Shared immutable pdf handle used throughout the library.
using PdfPtr = std::shared_ptr<const Pdf>;

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_PDF_H_
