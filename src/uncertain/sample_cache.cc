#include "uncertain/sample_cache.h"

#include <cassert>

#include "common/math_utils.h"
#include "engine/parallel_for.h"

namespace uclust::uncertain {

SampleCache::SampleCache(std::span<const UncertainObject> objects,
                         int samples_per_object, uint64_t seed,
                         const engine::Engine& eng)
    : count_(objects.size()),
      samples_(samples_per_object),
      dims_(objects.empty() ? 0 : objects[0].dims()) {
  assert(samples_per_object > 0);
  data_.resize(count_ * static_cast<std::size_t>(samples_) * dims_);
  const std::size_t row = static_cast<std::size_t>(samples_) * dims_;
  // One seeded sub-stream per object: the draws do not depend on the order
  // in which objects are processed, so any thread count (and the serial
  // path) fills the cache with exactly the same values.
  engine::ParallelFor(eng, count_, [&](const engine::BlockedRange& r) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      assert(objects[i].dims() == dims_);
      common::Rng rng(common::DeriveSeed(seed, i));
      std::size_t off = i * row;
      for (int s = 0; s < samples_; ++s) {
        objects[i].SampleInto(&rng,
                              std::span<double>(data_.data() + off, dims_));
        off += dims_;
      }
    }
  });
}

std::span<const double> SampleCache::SampleOf(std::size_t i, int s) const {
  assert(i < count_ && s >= 0 && s < samples_);
  const std::size_t off =
      (i * static_cast<std::size_t>(samples_) + static_cast<std::size_t>(s)) *
      dims_;
  return std::span<const double>(data_.data() + off, dims_);
}

double SampleCache::ExpectedSquaredDistanceToPoint(
    std::size_t i, std::span<const double> y) const {
  double acc = 0.0;
  for (int s = 0; s < samples_; ++s) {
    acc += common::SquaredDistance(SampleOf(i, s), y);
  }
  return acc / samples_;
}

double SampleCache::DistanceProbability(std::size_t i, std::size_t j,
                                        double eps) const {
  const double eps2 = eps * eps;
  int hits = 0;
  for (int s = 0; s < samples_; ++s) {
    if (common::SquaredDistance(SampleOf(i, s), SampleOf(j, s)) <= eps2) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / samples_;
}

}  // namespace uclust::uncertain
