// Precomputed Monte-Carlo realizations for sample-based algorithms (basic
// UK-means, FDBSCAN, FOPTICS). The original algorithms treat pdfs as black
// boxes and integrate numerically over a fixed sample set; caching the draws
// reproduces that cost profile (S-dependent inner loops) while keeping runs
// deterministic.
#ifndef UCLUST_UNCERTAIN_SAMPLE_CACHE_H_
#define UCLUST_UNCERTAIN_SAMPLE_CACHE_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "uncertain/uncertain_object.h"

namespace uclust::uncertain {

/// Fixed sample sets: `samples_per_object` realizations for each object,
/// stored row-major (object-major, then sample, then dimension).
class SampleCache {
 public:
  /// Draws `samples_per_object` realizations of every object with the seed.
  /// Object i draws from its own sub-stream (common::DeriveSeed(seed, i)),
  /// so the cache contents are bit-identical for any engine thread count and
  /// are independent of the drawing order.
  SampleCache(std::span<const UncertainObject> objects,
              int samples_per_object, uint64_t seed,
              const engine::Engine& eng = engine::Engine::Serial());

  /// Number of objects covered.
  std::size_t size() const { return count_; }
  /// Number of cached samples per object.
  int samples_per_object() const { return samples_; }
  /// Dimensionality of each sample.
  std::size_t dims() const { return dims_; }

  /// The s-th cached realization of object i, as a length-m span.
  std::span<const double> SampleOf(std::size_t i, int s) const;

  /// Sample-average of ||x - y||^2 over the cached realizations of object i
  /// (the basic UK-means expected-distance estimator). O(S * m).
  double ExpectedSquaredDistanceToPoint(std::size_t i,
                                        std::span<const double> y) const;

  /// Matched-pairs estimate of Pr[ dist(o_i, o_j) <= eps ] over the cached
  /// realizations (FDBSCAN distance probability). O(S * m).
  double DistanceProbability(std::size_t i, std::size_t j, double eps) const;

 private:
  std::size_t count_;
  int samples_;
  std::size_t dims_;
  std::vector<double> data_;  // count * samples * dims
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_SAMPLE_CACHE_H_
