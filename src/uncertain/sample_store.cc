#include "uncertain/sample_store.h"

#include <cassert>

#include "common/math_utils.h"
#include "engine/parallel_for.h"

namespace uclust::uncertain {

std::string SampleBackendName(SampleBackend backend) {
  return backend == SampleBackend::kResident ? "resident" : "mapped";
}

void DrawObjectSamples(const UncertainObject& object, uint64_t seed,
                       std::size_t index, int samples_per_object,
                       std::span<double> out) {
  const std::size_t m = object.dims();
  assert(out.size() == static_cast<std::size_t>(samples_per_object) * m);
  common::Rng rng(common::DeriveSeed(seed, index));
  std::size_t off = 0;
  for (int s = 0; s < samples_per_object; ++s) {
    object.SampleInto(&rng, out.subspan(off, m));
    off += m;
  }
}

SampleChunkSource::~SampleChunkSource() = default;

double SampleView::ExpectedSquaredDistanceToPoint(
    std::size_t i, std::span<const double> y) const {
  const std::span<const double> row = ObjectSamples(i);
  double acc = 0.0;
  for (int s = 0; s < samples_; ++s) {
    acc += common::SquaredDistance(
        row.subspan(static_cast<std::size_t>(s) * m_, m_), y);
  }
  return acc / samples_;
}

double SampleView::DistanceProbability(std::size_t i, std::size_t j,
                                       double eps) const {
  const std::span<const double> ri = ObjectSamples(i);
  const std::span<const double> rj = ObjectSamples(j);
  const double eps2 = eps * eps;
  int hits = 0;
  for (int s = 0; s < samples_; ++s) {
    const std::size_t off = static_cast<std::size_t>(s) * m_;
    if (common::SquaredDistance(ri.subspan(off, m_), rj.subspan(off, m_)) <=
        eps2) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / samples_;
}

SampleStore::~SampleStore() = default;

const std::string& SampleStore::sidecar_path() const {
  static const std::string* empty = new std::string();
  return *empty;
}

ResidentSampleStore::ResidentSampleStore(
    std::span<const UncertainObject> objects, int samples_per_object,
    uint64_t seed, const engine::Engine& eng)
    : count_(objects.size()),
      samples_(samples_per_object),
      dims_(objects.empty() ? 0 : objects[0].dims()) {
  assert(samples_per_object > 0);
  const std::size_t row = static_cast<std::size_t>(samples_) * dims_;
  data_.resize(count_ * row);
  engine::ParallelFor(eng, count_, [&](const engine::BlockedRange& r) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      assert(objects[i].dims() == dims_);
      DrawObjectSamples(objects[i], seed, i, samples_,
                        std::span<double>(data_.data() + i * row, row));
    }
  });
}

}  // namespace uclust::uncertain
