// The SampleStore abstraction: Monte-Carlo realizations behind the
// SampleView span interface.
//
// The sample-based algorithms (UK-medoids fuzzy distance, basic UK-means,
// FDBSCAN, FOPTICS) integrate numerically over a fixed set of S realizations
// per object. Historically those draws lived in one resident O(n S m) block
// (SampleCache) — after moments and pairwise tables became budget-governed,
// the last artifact forcing sampled workloads to fit in RAM. A SampleStore
// decouples how the draws are OWNED from how kernels READ them (always
// through SampleView):
//
//   kResident — one flat std::vector block (the historical layout); the
//               default, zero-copy spans, no per-access indirection;
//   kMapped   — draws persisted to a versioned, endianness-checked .usmp
//               sidecar file and served chunk-by-chunk through mmap windows
//               (io::MappedSampleStore), so datasets whose sample block
//               exceeds RAM — or the configured
//               EngineConfig::memory_budget_bytes — still cluster.
//
// Invariant: both backends serve bit-identical doubles. The bytes come from
// one canonical draw function, DrawObjectSamples, which seeds object i's
// sub-stream from common::DeriveSeed(seed, i) — so the draws never depend on
// which objects were materialized first, in what order, or by which backend.
// Every sampled clustering built on a store is therefore identical across
// backends, chunk sizes, thread counts, and regenerate-vs-reuse sidecar
// paths (tests/test_sample_store.cc, tests/test_parallel_determinism.cc).
//
// Span-validity contract (chunked views only): a span returned by a chunked
// view stays valid on the calling thread until that thread accesses objects
// from several (>= 8) OTHER chunks. Consumers must not cache sample spans
// across object iterations — every sampled kernel holds at most two distinct
// object rows at once, well within the window every chunk source keeps
// mapped. Flat views have no such limit.
//
// Layering: this header owns the interface, the canonical draw, and the
// Resident backend; the Mapped backend and the backend-selecting factory
// live in src/io (sample_file.h) because they need the file format and mmap.
#ifndef UCLUST_UNCERTAIN_SAMPLE_STORE_H_
#define UCLUST_UNCERTAIN_SAMPLE_STORE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "uncertain/uncertain_object.h"

namespace uclust::uncertain {

/// Storage policy of a SampleStore.
enum class SampleBackend { kResident, kMapped };

/// Lower-case display name ("resident", "mapped").
std::string SampleBackendName(SampleBackend backend);

/// The canonical draw: fills `out` (size S * m) with the S realizations of
/// `object`, which is object number `index` of its dataset, drawn from the
/// sub-stream common::DeriveSeed(seed, index). Every producer of sample
/// bytes — the Resident fill, the .usmp sidecar writer, dataset_gen
/// --emit-samples — runs through this function, so the bytes for object i
/// are a pure function of (pdf records, seed, i, S) and never of visitation
/// or materialization order.
void DrawObjectSamples(const UncertainObject& object, uint64_t seed,
                       std::size_t index, int samples_per_object,
                       std::span<double> out);

/// Provider of chunk data for chunked SampleViews. Implementations may fault
/// chunks in lazily (the mmap-backed store does); ChunkData must be safe to
/// call concurrently from different threads and the returned pointer must
/// honor the span-validity contract documented at the top of this file.
class SampleChunkSource {
 public:
  virtual ~SampleChunkSource();

  /// Base pointer of chunk `chunk` (0-based): rows_in_chunk back-to-back
  /// object rows of S * m doubles. May block on I/O.
  virtual const double* ChunkData(std::size_t chunk) const = 0;
};

/// Non-owning view over n objects' samples (S realizations of dimension m
/// each, object-major then sample then dimension). Cheap to copy; the
/// backing storage must outlive it.
class SampleView {
 public:
  SampleView() = default;

  /// Flat view over one contiguous n * S * m block.
  SampleView(std::size_t n, int samples_per_object, std::size_t m,
             const double* data)
      : n_(n), samples_(samples_per_object), m_(m), flat_(data) {}

  /// Chunked view: objects [c*chunk_rows, min(n, (c+1)*chunk_rows)) live in
  /// chunk c of `source`. `chunk_rows` must be a power of two.
  SampleView(std::size_t n, int samples_per_object, std::size_t m,
             std::size_t chunk_rows, const SampleChunkSource* source)
      : n_(n), samples_(samples_per_object), m_(m), mask_(chunk_rows - 1),
        source_(source) {
    assert(chunk_rows > 0 && (chunk_rows & (chunk_rows - 1)) == 0);
    while ((std::size_t{1} << shift_) < chunk_rows) ++shift_;
  }

  /// Number of objects n.
  std::size_t size() const { return n_; }
  /// Realizations per object S.
  int samples_per_object() const { return samples_; }
  /// Dimensionality m of each realization.
  std::size_t dims() const { return m_; }
  /// True when rows are served chunk-by-chunk (the out-of-core shape).
  bool chunked() const { return source_ != nullptr; }
  /// Objects per chunk (meaningful only when chunked()).
  std::size_t chunk_rows() const { return mask_ + 1; }

  /// All S realizations of object i as one contiguous S * m span.
  std::span<const double> ObjectSamples(std::size_t i) const {
    const std::size_t row = static_cast<std::size_t>(samples_) * m_;
    if (source_ == nullptr) return {flat_ + i * row, row};
    return {source_->ChunkData(i >> shift_) + (i & mask_) * row, row};
  }

  /// The s-th realization of object i, as a length-m span.
  std::span<const double> SampleOf(std::size_t i, int s) const {
    assert(s >= 0 && s < samples_);
    return ObjectSamples(i).subspan(static_cast<std::size_t>(s) * m_, m_);
  }

  /// Sample-average of ||x - y||^2 over the realizations of object i (the
  /// basic UK-means expected-distance estimator). O(S * m).
  double ExpectedSquaredDistanceToPoint(std::size_t i,
                                        std::span<const double> y) const;

  /// Matched-pairs estimate of Pr[ dist(o_i, o_j) <= eps ] over the
  /// realizations (FDBSCAN distance probability). O(S * m).
  double DistanceProbability(std::size_t i, std::size_t j, double eps) const;

 private:
  std::size_t n_ = 0;
  int samples_ = 0;
  std::size_t m_ = 0;
  unsigned shift_ = 0;
  std::size_t mask_ = 0;
  const double* flat_ = nullptr;
  const SampleChunkSource* source_ = nullptr;
};

/// One dataset's sample set behind an ownership backend.
class SampleStore {
 public:
  virtual ~SampleStore();

  /// The storage policy in effect.
  virtual SampleBackend backend() const = 0;
  /// Span-returning view every sampled kernel consumes. Cheap; valid while
  /// the store is alive.
  virtual SampleView view() const = 0;
  /// Bytes of sample storage pinned in process memory: the full block for
  /// the Resident backend, the peak bytes of simultaneously mapped chunk
  /// windows for the Mapped backend.
  virtual std::size_t sample_bytes_resident() const = 0;
  /// Path of the .usmp sidecar backing the store ("" for Resident).
  virtual const std::string& sidecar_path() const;

  /// Number of objects n.
  std::size_t size() const { return view().size(); }
  /// Realizations per object S.
  int samples_per_object() const { return view().samples_per_object(); }
  /// Dimensionality m.
  std::size_t dims() const { return view().dims(); }
};

using SampleStorePtr = std::unique_ptr<SampleStore>;

/// The Resident backend: owns one flat block, filled in parallel through the
/// canonical per-object draw (bit-identical for any thread count).
class ResidentSampleStore final : public SampleStore {
 public:
  ResidentSampleStore(std::span<const UncertainObject> objects,
                      int samples_per_object, uint64_t seed,
                      const engine::Engine& eng = engine::Engine::Serial());

  SampleBackend backend() const override { return SampleBackend::kResident; }
  SampleView view() const override {
    return SampleView(count_, samples_, dims_, data_.data());
  }
  std::size_t sample_bytes_resident() const override {
    return data_.size() * sizeof(double);
  }

 private:
  std::size_t count_;
  int samples_;
  std::size_t dims_;
  std::vector<double> data_;  // count * samples * dims
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_SAMPLE_STORE_H_
