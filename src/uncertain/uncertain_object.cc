#include "uncertain/uncertain_object.h"

#include <cassert>

#include "clustering/simd/simd.h"
#include "uncertain/dirac_pdf.h"

namespace uclust::uncertain {

UncertainObject::UncertainObject(std::vector<PdfPtr> dims)
    : pdfs_(std::move(dims)) {
  assert(!pdfs_.empty() && "UncertainObject requires >= 1 dimension");
  const std::size_t m = pdfs_.size();
  mean_.resize(m);
  second_moment_.resize(m);
  variance_.resize(m);
  std::vector<double> lo(m), hi(m);
  for (std::size_t j = 0; j < m; ++j) {
    assert(pdfs_[j] != nullptr);
    mean_[j] = pdfs_[j]->mean();
    second_moment_[j] = pdfs_[j]->second_moment();
    variance_[j] = pdfs_[j]->variance();
    lo[j] = pdfs_[j]->lower();
    hi[j] = pdfs_[j]->upper();
  }
  // Lane-blocked sum, the same order MomentMatrix::PackRow uses — so the
  // object-based ExpectedSquaredDistance and the moment-based objectives
  // see bit-identical total variances.
  total_variance_ = clustering::simd::Sum(variance_.data(), m);
  region_ = Box(std::move(lo), std::move(hi));
}

UncertainObject UncertainObject::Deterministic(std::span<const double> point) {
  std::vector<PdfPtr> dims;
  dims.reserve(point.size());
  for (double x : point) dims.push_back(DiracPdf::Make(x));
  return UncertainObject(std::move(dims));
}

void UncertainObject::SampleInto(common::Rng* rng,
                                 std::span<double> out) const {
  assert(out.size() == dims());
  for (std::size_t j = 0; j < dims(); ++j) {
    out[j] = pdfs_[j]->Sample(rng);
  }
}

std::vector<double> UncertainObject::Sample(common::Rng* rng) const {
  std::vector<double> out(dims());
  SampleInto(rng, out);
  return out;
}

}  // namespace uclust::uncertain
