// Multivariate uncertain object (Definition 1 of the paper): an axis-aligned
// domain region plus a pdf, represented here as a product of independent
// per-dimension pdfs. First/second moments and variances are cached on
// construction because every algorithm in the library consumes them heavily.
#ifndef UCLUST_UNCERTAIN_UNCERTAIN_OBJECT_H_
#define UCLUST_UNCERTAIN_UNCERTAIN_OBJECT_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "uncertain/box.h"
#include "uncertain/pdf.h"

namespace uclust::uncertain {

/// An m-dimensional uncertain object o = (R, f) with product-form pdf.
///
/// Copyable (pdfs are shared immutable state). All moment accessors are O(1)
/// after construction.
class UncertainObject {
 public:
  /// Creates an object from per-dimension pdfs (must be non-empty).
  explicit UncertainObject(std::vector<PdfPtr> dims);

  /// Convenience: a deterministic (Dirac) object at `point`.
  static UncertainObject Deterministic(std::span<const double> point);

  /// Dimensionality m.
  std::size_t dims() const { return pdfs_.size(); }
  /// The j-th per-dimension pdf.
  const Pdf& pdf(std::size_t j) const { return *pdfs_[j]; }

  /// Expected value vector mu(o) (Eq. 2).
  const std::vector<double>& mean() const { return mean_; }
  /// Second-order moment vector mu2(o) (Eq. 2).
  const std::vector<double>& second_moment() const { return second_moment_; }
  /// Variance vector sigma^2(o) (Eq. 3).
  const std::vector<double>& variance() const { return variance_; }
  /// Global scalar variance sigma^2(o) = sum_j (sigma^2)_j (Eq. 6).
  double total_variance() const { return total_variance_; }

  /// Domain region R (the product of per-dimension supports).
  const Box& region() const { return region_; }

  /// Draws one deterministic realization into `out` (size m).
  void SampleInto(common::Rng* rng, std::span<double> out) const;
  /// Draws one deterministic realization.
  std::vector<double> Sample(common::Rng* rng) const;

 private:
  std::vector<PdfPtr> pdfs_;
  std::vector<double> mean_;
  std::vector<double> second_moment_;
  std::vector<double> variance_;
  double total_variance_ = 0.0;
  Box region_;
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_UNCERTAIN_OBJECT_H_
