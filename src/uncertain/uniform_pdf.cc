#include "uncertain/uniform_pdf.h"

#include <cassert>

namespace uclust::uncertain {

UniformPdf::UniformPdf(double lo, double hi) : lo_(lo), hi_(hi) {
  assert(lo < hi && "UniformPdf requires lo < hi");
}

PdfPtr UniformPdf::Centered(double center, double halfwidth) {
  return std::make_shared<UniformPdf>(center - halfwidth, center + halfwidth);
}

double UniformPdf::mean() const { return 0.5 * (lo_ + hi_); }

double UniformPdf::second_moment() const {
  // E[X^2] = (lo^2 + lo*hi + hi^2) / 3.
  return (lo_ * lo_ + lo_ * hi_ + hi_ * hi_) / 3.0;
}

double UniformPdf::Density(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  return 1.0 / (hi_ - lo_);
}

double UniformPdf::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformPdf::Sample(common::Rng* rng) const {
  return rng->Uniform(lo_, hi_);
}

}  // namespace uclust::uncertain
