// Uniform pdf on [lo, hi]. The domain region equals the full support (100% of
// the mass), so no truncation is involved.
#ifndef UCLUST_UNCERTAIN_UNIFORM_PDF_H_
#define UCLUST_UNCERTAIN_UNIFORM_PDF_H_

#include "uncertain/pdf.h"

namespace uclust::uncertain {

/// Continuous uniform distribution on [lo, hi], lo < hi.
class UniformPdf final : public Pdf {
 public:
  /// Creates a uniform pdf on [lo, hi]; requires lo < hi.
  UniformPdf(double lo, double hi);

  /// Convenience: uniform centered at `center` with half-width `halfwidth`.
  static PdfPtr Centered(double center, double halfwidth);

  double mean() const override;
  double second_moment() const override;
  double lower() const override { return lo_; }
  double upper() const override { return hi_; }
  double Density(double x) const override;
  double Cdf(double x) const override;
  double Sample(common::Rng* rng) const override;
  const char* TypeName() const override { return "uniform"; }

 private:
  double lo_;
  double hi_;
};

}  // namespace uclust::uncertain

#endif  // UCLUST_UNCERTAIN_UNIFORM_PDF_H_
