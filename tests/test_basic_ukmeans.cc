// Tests for basic UK-means and its pruning strategies. The central property:
// MinMax-BB / Voronoi / cluster-shift pruning are *exact* with respect to the
// sample-based estimator (every cached sample lies inside the object's
// region), so pruned runs must produce identical assignments to the
// unpruned run while computing strictly fewer expected distances.
#include <gtest/gtest.h>

#include <tuple>

#include "clustering/basic_ukmeans.h"
#include "clustering/pruning.h"
#include "clustering/ukmeans.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"
#include "uncertain/sample_store.h"

namespace uclust::clustering {
namespace {

data::UncertainDataset PlantedDataset(std::size_t n, int classes,
                                      uint64_t seed,
                                      data::PdfFamily family =
                                          data::PdfFamily::kNormal) {
  data::MixtureParams params;
  params.n = n;
  params.dims = 3;
  params.classes = classes;
  params.min_separation = 0.45;
  const auto d = data::MakeGaussianMixture(params, seed, "planted");
  data::UncertaintyParams up;
  up.family = family;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

TEST(Pruning, MinMaxBoundsBracketSampledEd) {
  const auto ds = PlantedDataset(50, 3, 1);
  const uncertain::ResidentSampleStore store(ds.objects(), 16, 99);
  const uncertain::SampleView cache = store.view();
  common::Rng rng(2);
  for (int t = 0; t < 200; ++t) {
    const std::size_t i = rng.Index(ds.size());
    std::vector<double> c(3);
    for (auto& v : c) v = rng.Uniform(-0.5, 1.5);
    const EdBounds b = MinMaxBounds(ds.object(i).region(), c);
    const double ed = cache.ExpectedSquaredDistanceToPoint(i, c);
    EXPECT_GE(ed, b.lb - 1e-9);
    EXPECT_LE(ed, b.ub + 1e-9);
  }
}

TEST(Pruning, ShiftBoundsBracketMovedCentroidEd) {
  const auto ds = PlantedDataset(30, 2, 3);
  const uncertain::ResidentSampleStore store(ds.objects(), 32, 77);
  const uncertain::SampleView cache = store.view();
  common::Rng rng(4);
  for (int t = 0; t < 200; ++t) {
    const std::size_t i = rng.Index(ds.size());
    std::vector<double> c0(3), c1(3);
    for (std::size_t j = 0; j < 3; ++j) {
      c0[j] = rng.Uniform(-0.5, 1.5);
      c1[j] = c0[j] + rng.Uniform(-0.3, 0.3);
    }
    const double ed0 = cache.ExpectedSquaredDistanceToPoint(i, c0);
    const double shift = common::Distance(c0, c1);
    const EdBounds b = ShiftBounds(ed0, shift);
    const double ed1 = cache.ExpectedSquaredDistanceToPoint(i, c1);
    EXPECT_GE(ed1, b.lb - 1e-9);
    EXPECT_LE(ed1, b.ub + 1e-9);
  }
}

TEST(Pruning, TightestOfIntersects) {
  const EdBounds a{1.0, 5.0};
  const EdBounds b{2.0, 7.0};
  const EdBounds t = TightestOf(a, b);
  EXPECT_DOUBLE_EQ(t.lb, 2.0);
  EXPECT_DOUBLE_EQ(t.ub, 5.0);
}

TEST(Pruning, VoronoiFilterKeepsWinner) {
  // A tiny box near centroid 0 must prune the remote centroid 1.
  const uncertain::Box box({0.0, 0.0}, {0.1, 0.1});
  const std::vector<double> centroids{0.05, 0.05, 10.0, 10.0};  // k=2, m=2
  std::vector<int> cand{0, 1};
  VoronoiFilter(box, centroids, 2, &cand);
  ASSERT_EQ(cand.size(), 1u);
  EXPECT_EQ(cand[0], 0);
}

TEST(Pruning, VoronoiFilterKeepsAmbiguous) {
  // A box straddling the bisector cannot prune either centroid.
  const uncertain::Box box({-1.0, 0.0}, {1.0, 0.1});
  const std::vector<double> centroids{-2.0, 0.0, 2.0, 0.0};
  std::vector<int> cand{0, 1};
  VoronoiFilter(box, centroids, 2, &cand);
  EXPECT_EQ(cand.size(), 2u);
}

TEST(Pruning, StrategyNames) {
  EXPECT_STREQ(PruningStrategyName(PruningStrategy::kNone), "none");
  EXPECT_STREQ(PruningStrategyName(PruningStrategy::kMinMaxBB), "MinMax-BB");
  EXPECT_STREQ(PruningStrategyName(PruningStrategy::kVoronoi), "VDBiP");
}

TEST(BasicUkmeans, NamesReflectConfiguration) {
  BasicUkmeans::Params p;
  EXPECT_EQ(BasicUkmeans(p).name(), "bUK-means");
  p.pruning = PruningStrategy::kMinMaxBB;
  EXPECT_EQ(BasicUkmeans(p).name(), "MinMax-BB");
  p.cluster_shift = true;
  EXPECT_EQ(BasicUkmeans(p).name(), "MinMax-BB+shift");
  p.pruning = PruningStrategy::kVoronoi;
  EXPECT_EQ(BasicUkmeans(p).name(), "VDBiP+shift");
}

TEST(BasicUkmeans, RecoversPlantedClusters) {
  const auto ds = PlantedDataset(200, 3, 5);
  const BasicUkmeans algo;
  const ClusteringResult r = algo.Cluster(ds, 3, 6);
  EXPECT_GT(eval::AdjustedRand(ds.labels(), r.labels), 0.85);
  EXPECT_GT(r.ed_evaluations, 0);
}

// Exactness of pruning: identical labels, fewer ED evaluations.
using PruneParam = std::tuple<PruningStrategy, bool>;

class PruningExactness : public ::testing::TestWithParam<PruneParam> {};

TEST_P(PruningExactness, SameLabelsFewerEvaluations) {
  const auto [strategy, shift] = GetParam();
  const auto ds = PlantedDataset(150, 4, 7);
  BasicUkmeans::Params base;
  const BasicUkmeans unpruned(base);
  BasicUkmeans::Params pruned_params;
  pruned_params.pruning = strategy;
  pruned_params.cluster_shift = shift;
  const BasicUkmeans pruned(pruned_params);

  const ClusteringResult a = unpruned.Cluster(ds, 4, 8);
  const ClusteringResult b = pruned.Cluster(ds, 4, 8);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_LT(b.ed_evaluations, a.ed_evaluations);
  EXPECT_NEAR(a.objective, b.objective, 1e-9 * (1.0 + a.objective));
}

std::string PruneParamName(
    const ::testing::TestParamInfo<PruneParam>& param_info) {
  std::string name = std::get<0>(param_info.param) ==
                             PruningStrategy::kMinMaxBB
                         ? "MinMaxBB"
                         : "Voronoi";
  if (std::get<1>(param_info.param)) name += "Shift";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PruningExactness,
    ::testing::Values(PruneParam{PruningStrategy::kMinMaxBB, false},
                      PruneParam{PruningStrategy::kMinMaxBB, true},
                      PruneParam{PruningStrategy::kVoronoi, false},
                      PruneParam{PruningStrategy::kVoronoi, true}),
    PruneParamName);

TEST(BasicUkmeans, AgreesWithFastUkmeansOnSeparatedData) {
  // On well-separated clusters the sampled assignment matches the exact one.
  const auto ds = PlantedDataset(200, 3, 9);
  const Ukmeans fast;
  const BasicUkmeans slow;
  const ClusteringResult a = fast.Cluster(ds, 3, 10);
  const ClusteringResult b = slow.Cluster(ds, 3, 10);
  EXPECT_GT(eval::AdjustedRand(a.labels, b.labels), 0.95);
}

TEST(BasicUkmeans, ExponentialFamilyAlsoExact) {
  // Pruning exactness must hold for skewed (exponential) regions too.
  const auto ds = PlantedDataset(120, 3, 11, data::PdfFamily::kExponential);
  const BasicUkmeans unpruned;
  BasicUkmeans::Params p;
  p.pruning = PruningStrategy::kVoronoi;
  p.cluster_shift = true;
  const BasicUkmeans pruned(p);
  const ClusteringResult a = unpruned.Cluster(ds, 3, 12);
  const ClusteringResult b = pruned.Cluster(ds, 3, 12);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(BasicUkmeans, DeterministicGivenSeeds) {
  const auto ds = PlantedDataset(100, 3, 13);
  const BasicUkmeans algo;
  const auto a = algo.Cluster(ds, 3, 14);
  const auto b = algo.Cluster(ds, 3, 14);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.ed_evaluations, b.ed_evaluations);
}

TEST(BasicUkmeans, SampleCountControlsCost) {
  const auto ds = PlantedDataset(80, 2, 15);
  BasicUkmeans::Params small, large;
  small.samples = 4;
  large.samples = 64;
  // Same number of ED evaluations (structure-driven), but each is costlier;
  // we verify the run completes and stays deterministic for both.
  const auto a = BasicUkmeans(small).Cluster(ds, 2, 16);
  const auto b = BasicUkmeans(large).Cluster(ds, 2, 16);
  EXPECT_EQ(a.labels.size(), b.labels.size());
  EXPECT_GT(eval::AdjustedRand(a.labels, b.labels), 0.8);
}

}  // namespace
}  // namespace uclust::clustering
